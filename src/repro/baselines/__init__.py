"""Calibrated CPU/GPU baselines standing in for the paper's measured
TensorFlow runs (see DESIGN.md for the substitution rationale)."""

from repro.baselines.base import CalibratedBaseline, network_work
from repro.baselines.cpu import XEON_E5_2697_V3, CpuBaseline
from repro.baselines.gpu import TITAN_XP, GpuBaseline
from repro.baselines.roofline import DeviceSpec, LayerWork, roofline_time

__all__ = [
    "CalibratedBaseline",
    "CpuBaseline",
    "DeviceSpec",
    "GpuBaseline",
    "LayerWork",
    "TITAN_XP",
    "XEON_E5_2697_V3",
    "network_work",
    "roofline_time",
]
