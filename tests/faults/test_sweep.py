"""The fault-sweep experiment: reproducible, monotone, honest about crashes."""

import pytest

from repro.common.errors import SimulationError
from repro.faults import render_fault_sweep, run_fault_sweep

RATES = (0.0, 1e-5, 1e-4)


@pytest.fixture(scope="module")
def sweep():
    return run_fault_sweep(rates=RATES, n_images=4)


class TestSweepValidation:
    def test_needs_rates(self):
        with pytest.raises(SimulationError, match="at least one rate"):
            run_fault_sweep(rates=())

    def test_rates_must_be_probabilities(self):
        with pytest.raises(SimulationError, match="probabilities"):
            run_fault_sweep(rates=(0.0, 2.0))

    def test_needs_images(self):
        with pytest.raises(SimulationError, match="positive image"):
            run_fault_sweep(rates=RATES, n_images=0)


class TestSweepCurve:
    def test_clean_baseline_and_monotone_degradation(self, sweep):
        assert sweep["ok"]
        assert sweep["top1"][0] == 1.0 and sweep["exact"][0] == 1.0
        assert sweep["crashed"][0] == 0
        for earlier, later in zip(sweep["top1"], sweep["top1"][1:]):
            assert later <= earlier
        # At the harshest rate the arrays are visibly corrupted.
        assert sweep["exact"][-1] < 1.0

    def test_same_seeds_reproduce_the_curve(self, sweep):
        again = run_fault_sweep(rates=RATES, n_images=4)
        assert again == sweep

    def test_fault_seed_names_a_different_chip_population(self, sweep):
        other = run_fault_sweep(rates=RATES, n_images=4, fault_seed=1000)
        assert other["ok"]      # any population degrades monotonically
        assert (other["top1"], other["exact"]) != (
            sweep["top1"], sweep["exact"])

    def test_render_lists_every_rate_and_the_verdict(self, sweep):
        text = render_fault_sweep(sweep)
        for rate in RATES:
            assert f"{rate:.2e}" in text
        assert "curve monotone non-increasing: True" in text


class TestFlakyAmps:
    def test_flaky_columns_cost_accuracy_even_at_rate_zero(self):
        stats = run_fault_sweep(
            rates=(0.0,), n_images=4,
            flaky_columns=tuple((a, c) for a in range(8)
                                for c in range(0, 64, 8)),
            flaky_rate=0.5)
        assert stats["exact"][0] < 1.0
        # clean_baseline only demands perfection at rate 0 with no other
        # faults armed; flaky amps legitimately break it.
        assert not stats["ok"]
