"""Lifting and checking the cross-array primitives.

``move_across`` and ``reduce_across_arrays`` are composite calls like any
other: the recorder sees them, the lifter produces :class:`OpFacts` with
interconnect provenance (``array_shift``), and the static passes check
the same dataflow discipline the sanitizer enforces at runtime.
"""

import numpy as np

from repro.engine.bitserial import FleetBitSerialUnit, Operand
from repro.engine.packed import make_fleet
from repro.verify import ProgramFacts, Region, op_facts, verify_program
from repro.verify.facts import ALIGNED_OR_DISJOINT, DISJOINT
from repro.verify.recorder import record_programs

ROWS, COLS = 64, 16


class TestOpFacts:
    def test_move_across_facts(self):
        facts = op_facts("move_across", 3, "move_across", {
            "src": Operand(0, 8), "dst": Operand(16, 8),
            "stride": 2, "group": 4})
        assert facts.reads == (Region(0, 8),)
        assert facts.writes == (Region(16, 8),)
        assert facts.array_shift == 2
        (constraint,) = facts.constraints
        assert constraint.kind == ALIGNED_OR_DISJOINT

    def test_reduce_across_facts(self):
        facts = op_facts("reduce_across_arrays", 7, "reduce_across_arrays",
                         {"base": Operand(0, 9), "segment": Operand(16, 8),
                          "group": 8, "width": 8})
        # Reads the width-bit partials, writes the width+1-bit total;
        # the segment is internal ping-pong scratch.
        assert facts.reads == (Region(0, 8),)
        assert facts.writes == (Region(0, 9),)
        assert facts.scratch_writes == (Region(16, 8),)
        assert facts.array_shift == 4  # the widest hop of the tree
        assert facts.carry  # the adds ripple a carry protocol
        (constraint,) = facts.constraints
        assert constraint.kind == DISJOINT

    def test_array_local_ops_have_no_array_shift(self):
        facts = op_facts("add", 0, "add", {
            "a": Operand(0, 4), "b": Operand(4, 4), "dst": Operand(8, 5)})
        assert facts.array_shift is None


class TestLiftedPrograms:
    def lifted(self, body):
        # sanitize=False even under NEURALCACHE_SANITIZE=1: these tests
        # check the *static* passes, so the runtime must not pre-empt
        # the seeded violations (agreement is covered elsewhere).
        fleet = make_fleet(4, ROWS, COLS, packed=True, sanitize=False)
        unit = FleetBitSerialUnit(fleet)
        with record_programs() as recorder:
            recorder.annotate("cross-array")
            body(unit)
        (program,) = recorder.programs()
        return program

    def test_clean_reduction_program_verifies(self):
        # No zeroing of the carry-out row: the tree's adds write it, so a
        # prior zero would (correctly) be flagged as a dead write.
        def body(unit):
            unit.write_values(Operand(0, 8),
                              np.full((4, COLS), 3, dtype=np.int64))
            unit.reduce_across_arrays(Operand(0, 9), Operand(16, 8),
                                      group=4, width=8)
        program = self.lifted(body)
        names = [op.name.split("(")[0] for op in program.ops]
        assert "reduce_across_arrays" in names
        assert verify_program(program) == []

    def test_nested_internals_are_suppressed(self):
        # reduce_across_arrays is one step in the lifted program — its
        # internal move_across/add calls must not leak into the stream.
        def body(unit):
            unit.write_values(Operand(0, 8), 1)
            unit.reduce_across_arrays(Operand(0, 9), Operand(16, 8),
                                      group=4, width=8)
        program = self.lifted(body)
        names = [op.name.split("(")[0] for op in program.ops]
        assert names.count("reduce_across_arrays") == 1
        assert "move_across" not in names
        assert "add" not in names

    def test_reduction_over_uninitialized_base_is_caught(self):
        def body(unit):
            unit.reduce_across_arrays(Operand(0, 9), Operand(16, 8),
                                      group=4, width=8)
        program = self.lifted(body)
        findings = verify_program(program)
        assert "uninit-read" in {f.check for f in findings}

    def test_aliasing_segment_is_caught(self):
        # A segment overlapping the base would corrupt the ping-pong; the
        # DISJOINT constraint trips and the overlap pass reports it.
        facts = op_facts("reduce_across_arrays", 0, "reduce_across_arrays",
                         {"base": Operand(0, 9), "segment": Operand(4, 8),
                          "group": 4, "width": 8})
        assert any(c.violated() for c in facts.constraints)
        program = ProgramFacts("alias", ROWS, COLS, (facts,),
                               preloaded=(Region(0, 8),))
        assert "overlap" in {f.check for f in verify_program(program)}

    def test_recorded_move_across_verifies(self):
        def body(unit):
            unit.write_values(Operand(0, 8), 5)
            unit.move_across(Operand(0, 8), Operand(16, 8), stride=1,
                             group=4)
            unit.read_values(Operand(16, 8))
        program = self.lifted(body)
        assert verify_program(program) == []
        move = next(op for op in program.ops
                    if op.name.startswith("move_across"))
        assert move.array_shift == 1
