"""Tests for the top-level configuration bundle."""

import pytest

from repro.cache.geometry import xeon_45mb
from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.sram.cost import CycleCosts


class TestDefaults:
    def test_paper_defaults(self):
        config = NeuralCacheConfig()
        assert config.geometry.total_arrays == 4480
        assert config.costs.mode == "paper"
        assert config.frequency_hz == 2.5e9
        assert config.sockets == 2
        assert config.element_bits == 8

    def test_interconnect_bound_to_geometry(self):
        config = NeuralCacheConfig()
        assert config.interconnect.geometry is config.geometry
        assert config.interconnect.frequency_hz == config.frequency_hz

    def test_with_geometry_preserves_other_fields(self):
        config = NeuralCacheConfig(sockets=4)
        scaled = config.with_geometry(xeon_45mb())
        assert scaled.geometry.slices == 18
        assert scaled.sockets == 4
        assert scaled.costs is config.costs

    def test_io_way_slots(self):
        config = NeuralCacheConfig()
        # 14 slices x 1 reserved I/O way x 16 arrays x 256 bitlines.
        assert config.io_way_slots == 14 * 16 * 256

    def test_output_buffer_bytes(self):
        config = NeuralCacheConfig()
        expected = 14 * 128 * 1024 * 0.5
        assert config.output_buffer_bytes == pytest.approx(expected)


class TestPeakThroughput:
    def test_peak_ops_matches_28_tops_claim(self):
        """Sec. VII: 'Neural Cache achieves 28 TOPs/s at 22nm'. One op =
        one 8-bit multiply at the paper's n^2+5n-2 cycles."""
        config = NeuralCacheConfig()
        peak = config.peak_ops_per_second()
        assert peak == pytest.approx(28e12, rel=0.01)

    def test_peak_scales_with_capacity(self):
        base = NeuralCacheConfig()
        big = base.with_geometry(xeon_45mb())
        ratio = big.peak_ops_per_second() / base.peak_ops_per_second()
        assert ratio == pytest.approx(18 / 14)

    def test_custom_op_cost(self):
        config = NeuralCacheConfig()
        assert config.peak_ops_per_second(op_cycles=1) == pytest.approx(
            config.geometry.alu_slots * 2.5e9)
        with pytest.raises(SimulationError):
            config.peak_ops_per_second(op_cycles=0)


class TestValidation:
    def test_bad_frequency(self):
        with pytest.raises(SimulationError):
            NeuralCacheConfig(frequency_hz=0)

    def test_bad_sockets(self):
        with pytest.raises(SimulationError):
            NeuralCacheConfig(sockets=0)

    def test_bad_buffer_fraction(self):
        with pytest.raises(SimulationError):
            NeuralCacheConfig(output_buffer_fraction=0.0)
        with pytest.raises(SimulationError):
            NeuralCacheConfig(output_buffer_fraction=1.5)

    def test_bad_calibrations(self):
        with pytest.raises(SimulationError):
            NeuralCacheConfig(input_gather_calibration=0.5)
        with pytest.raises(SimulationError):
            NeuralCacheConfig(output_gather_calibration=0.0)
        with pytest.raises(SimulationError):
            NeuralCacheConfig(input_reuse_floor=0.0)

    def test_bad_thresholds(self):
        with pytest.raises(SimulationError):
            NeuralCacheConfig(split_threshold_bytes=0)
        with pytest.raises(SimulationError):
            NeuralCacheConfig(pack_limit=0)
        with pytest.raises(SimulationError):
            NeuralCacheConfig(element_bits=0)

    def test_derived_cost_preset_accepted(self):
        config = NeuralCacheConfig(costs=CycleCosts.derived())
        assert config.costs.mode == "derived"