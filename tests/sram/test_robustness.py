"""Tests for the multi-row activation stability model (Sec. II-B / V)."""

import pytest

from repro.common.errors import SimulationError
from repro.sram.robustness import (
    CHOSEN_RWL_VOLTAGE,
    MAX_DEMONSTRATED_ROWS,
    ReadStabilityModel,
    choose_rwl_voltage,
)


@pytest.fixture
def model():
    return ReadStabilityModel()


class TestMarginAnchors:
    def test_published_voltage_gives_six_sigma(self, model):
        # "to achieve industry standard 6 sigma margin, we choose 0.66V".
        margin = model.margin_sigma(CHOSEN_RWL_VOLTAGE, rows_activated=2)
        assert margin == pytest.approx(6.0, abs=0.1)
        assert model.is_industry_robust(CHOSEN_RWL_VOLTAGE)

    def test_full_vdd_multirow_is_unsafe(self, model):
        # Without under-drive the margin collapses — the reason normal
        # caches never activate two rows.
        assert model.margin_sigma(0.9, rows_activated=2) == pytest.approx(0.0)
        assert model.failure_probability(0.9) == pytest.approx(0.5)

    def test_margin_grows_with_underdrive(self, model):
        margins = [model.margin_sigma(v) for v in (0.85, 0.75, 0.66, 0.6)]
        assert margins == sorted(margins)

    def test_margin_degrades_gently_with_rows(self, model):
        two = model.margin_sigma(CHOSEN_RWL_VOLTAGE, 2)
        sixty_four = model.margin_sigma(CHOSEN_RWL_VOLTAGE,
                                        MAX_DEMONSTRATED_ROWS)
        assert sixty_four < two
        assert sixty_four > 0.8 * two  # mild, per the 64-row silicon result


class TestFailureRates:
    def test_twenty_test_chips_show_no_corruption(self, model):
        """Sec. II-B: across 20 x 8KB chips with 64 simultaneous rows,
        'data corruption does not occur'."""
        cells = 20 * 8 * 1024 * 8
        expected = model.expected_failures(CHOSEN_RWL_VOLTAGE, cells,
                                           MAX_DEMONSTRATED_ROWS)
        assert expected < 0.05

    def test_monte_carlo_clean_at_published_point(self, model):
        flips = model.monte_carlo_failures(CHOSEN_RWL_VOLTAGE,
                                           cells=1_000_000,
                                           rows_activated=2, seed=1)
        assert flips == 0

    def test_monte_carlo_fails_at_full_vdd(self, model):
        flips = model.monte_carlo_failures(0.9, cells=10_000,
                                           rows_activated=2, seed=1)
        assert flips > 4000  # ~half the cells sit past the disturb point

    def test_expected_failures_scale_with_cells(self, model):
        one = model.expected_failures(0.8, 1_000)
        two = model.expected_failures(0.8, 2_000)
        assert two == pytest.approx(2 * one)


class TestDelayTradeoff:
    def test_published_delay_anchors(self, model):
        assert model.compute_delay_ps(0.9) == pytest.approx(654.0)
        assert model.compute_delay_ps(0.66) == pytest.approx(1022.0)

    def test_delay_ratio_about_1_6(self, model):
        # "the computation SRAM delay is about 1.6x larger than normal".
        assert model.delay_ratio() == pytest.approx(1.56, abs=0.01)

    def test_more_underdrive_costs_more_delay(self, model):
        assert model.compute_delay_ps(0.6) > model.compute_delay_ps(0.7)


class TestVoltageSelection:
    def test_chooser_lands_near_published_voltage(self):
        voltage = choose_rwl_voltage()
        assert voltage == pytest.approx(CHOSEN_RWL_VOLTAGE, abs=0.01)

    def test_more_rows_need_more_underdrive(self):
        v2 = choose_rwl_voltage(rows_activated=2)
        v64 = choose_rwl_voltage(rows_activated=64)
        assert v64 < v2


class TestValidation:
    def test_voltage_bounds(self, model):
        with pytest.raises(SimulationError):
            model.margin_sigma(0.0)
        with pytest.raises(SimulationError):
            model.margin_sigma(1.2)

    def test_row_bounds(self, model):
        with pytest.raises(SimulationError):
            model.margin_sigma(0.66, rows_activated=1)

    def test_cell_bounds(self, model):
        with pytest.raises(SimulationError):
            model.expected_failures(0.66, -1)
        with pytest.raises(SimulationError):
            model.monte_carlo_failures(0.66, 0)
