"""Hardware fault model: stuck cells, dead wordlines, flaky sense amps.

The paper computes inside commodity 6T SRAM arrays, so device
non-idealities are not an exotic concern — a manufacturing defect or a
marginal cell shows up directly in the bit-serial arithmetic.
:class:`FaultyPlaneStore` makes those defects injectable behind the
:class:`~repro.engine.fleet.PlaneStore` seam, the same composition point
the shadow sanitizer uses, so any fleet (unpacked, packed, or
shared-memory) can run on electrically imperfect arrays without the
sequencer knowing.

Fault semantics:

* **stuck-at cells** clamp on *write*: whatever value a write drives
  into a stuck cell, the stored bit is the stuck value. Every write path
  of the seam (``store_plane``/``write_back``/``write_row``/
  ``load_bits``/``move_plane``) re-applies the per-row clamp masks, and
  the clamp is applied once at construction so stuck-at-1 cells read 1
  even before the first write. Reads then see the clamped storage for
  free — including the two-row compute sensing, whose AND/NOR rails are
  computed from the stored planes.
* **dead wordlines** are whole rows stuck at 0 (a broken row driver):
  modeled as stuck-at-0 across every column of that row.
* **flaky sense amps** are *read*-side and transient: each chosen
  column's amp flips its sensed bit with probability ``flaky_rate``
  per sensing (both rails flip together — one amp, one bad sample).
  Storage is untouched, so the same row can read differently twice.

Determinism: the stuck-at set is sampled from ``(seed, fault_index)``
via a *rate-independent* uniform field — each cell draws one u ~ U[0,1)
and is faulty iff ``u < stuck_rate`` — so the fault set at a lower rate
is a strict subset of the set at any higher rate. That nesting is what
makes the ``fault-sweep`` accuracy curve monotone by construction
rather than by luck. Flaky-amp draws come from an independent seeded
stream and are consumed one batch per sensing, so a re-run replays the
same flips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.common.errors import SimulationError
from repro.engine.fleet import PlaneStore

__all__ = ["FaultyPlaneStore", "HardwareFaultModel"]


@dataclass(frozen=True)
class HardwareFaultModel:
    """A seeded description of the electrical defects to inject."""

    #: Seed of the stuck-at field and the flaky-amp flip stream.
    seed: int = 0
    #: Per-cell stuck-at probability (nested across rates, see module
    #: docstring). The stuck value is a fair coin per faulty cell.
    stuck_rate: float = 0.0
    #: Explicit stuck cells as ``(array, row, col, value)`` tuples.
    stuck_cells: tuple = ()
    #: Whole rows stuck at 0, as ``(array, row)`` tuples.
    dead_wordlines: tuple = ()
    #: Flaky sense amps, as ``(array, col)`` tuples.
    flaky_columns: tuple = ()
    #: Per-sensing flip probability of each flaky amp.
    flaky_rate: float = 0.5

    def __post_init__(self):
        for name in ("stuck_rate", "flaky_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(
                    f"{name} must be a probability in [0, 1], got {rate}")
        object.__setattr__(self, "stuck_cells",
                           tuple(tuple(c) for c in self.stuck_cells))
        object.__setattr__(self, "dead_wordlines",
                           tuple(tuple(c) for c in self.dead_wordlines))
        object.__setattr__(self, "flaky_columns",
                           tuple(tuple(c) for c in self.flaky_columns))
        for array, row, col, value in self.stuck_cells:
            if min(array, row, col) < 0 or value not in (0, 1):
                raise SimulationError(
                    f"stuck cell ({array}, {row}, {col}, {value}) must "
                    f"have non-negative coordinates and a 0/1 value")
        for array, row in self.dead_wordlines:
            if min(array, row) < 0:
                raise SimulationError(
                    f"dead wordline ({array}, {row}) must have "
                    f"non-negative coordinates")
        for array, col in self.flaky_columns:
            if min(array, col) < 0:
                raise SimulationError(
                    f"flaky column ({array}, {col}) must have "
                    f"non-negative coordinates")

    @property
    def any_faults(self) -> bool:
        """Whether this model injects anything at all."""
        return bool(self.stuck_rate > 0 or self.stuck_cells
                    or self.dead_wordlines
                    or (self.flaky_columns and self.flaky_rate > 0))


class FaultyPlaneStore:
    """A :class:`PlaneStore` wrapper that injects electrical defects.

    Composition, not inheritance — exactly like the shadow sanitizer,
    and composable with it (``ShadowPlaneStore(FaultyPlaneStore(store))``
    is what ``make_fleet`` builds when both are active: discipline is
    checked on the program's accesses, defects corrupt the storage
    underneath). ``fault_index`` distinguishes the fleets one executor
    creates, so each gets its own slice of the seeded defect field.

    Fault coordinates outside this fleet's geometry are ignored — one
    model can describe a campaign over heterogeneous fleets.
    """

    def __init__(self, store: PlaneStore, model: HardwareFaultModel,
                 fault_index: int = 0):
        self._store = store
        self.model = model
        self.fault_index = fault_index
        self.n_arrays = store.n_arrays
        self.rows = store.rows
        self.cols = store.cols
        #: row -> (keep_mask, force_mask) native planes; the stuck-at
        #: clamp is ``dst = (dst & keep) | force``.
        self._clamps: dict[int, tuple] = {}
        self._flaky_cells = [
            (array, col) for array, col in model.flaky_columns
            if array < self.n_arrays and col < self.cols]
        self._flaky_rng = np.random.default_rng(
            (model.seed, fault_index, 0xF1A))
        self._build_clamps()
        for row in self._clamps:
            self._clamp(row)

    # -- defect sampling ----------------------------------------------
    def _build_clamps(self) -> None:
        model = self.model
        shape = (self.n_arrays, self.rows, self.cols)
        stuck0 = np.zeros(shape, dtype=bool)
        stuck1 = np.zeros(shape, dtype=bool)
        if model.stuck_rate > 0.0:
            rng = np.random.default_rng((model.seed, self.fault_index))
            # Rate-independent field: same (seed, index) -> same u and
            # stuck values at every rate, so fault sets nest.
            field = rng.random(shape, dtype=np.float32)
            values = rng.integers(0, 2, size=shape, dtype=np.uint8)
            faulty = field < model.stuck_rate
            stuck1 |= faulty & (values == 1)
            stuck0 |= faulty & (values == 0)
        for array, row, col, value in model.stuck_cells:
            if array < self.n_arrays and row < self.rows and col < self.cols:
                stuck1[array, row, col] = bool(value)
                stuck0[array, row, col] = not value
        for array, row in model.dead_wordlines:
            if array < self.n_arrays and row < self.rows:
                stuck0[array, row, :] = True
                stuck1[array, row, :] = False
        faulty_rows = np.nonzero((stuck0 | stuck1).any(axis=(0, 2)))[0]
        for row in faulty_rows:
            stuck = (stuck0[:, row] | stuck1[:, row]).astype(np.uint8)
            keep = self._store.plane_not(self._store.pack_plane(stuck))
            force = self._store.pack_plane(
                stuck1[:, row].astype(np.uint8))
            self._clamps[int(row)] = (keep, force)

    @property
    def faulty_rows(self) -> tuple[int, ...]:
        """Rows holding at least one stuck cell (sorted)."""
        return tuple(sorted(self._clamps))

    # -- fault application --------------------------------------------
    def _clamp(self, row: int) -> None:
        clamp = self._clamps.get(row)
        if clamp is None:
            return
        keep, force = clamp
        dst = self._store.row_plane(row)
        dst[...] = (dst & keep) | force

    def _clamp_span(self, top_row: int, n_rows: int) -> None:
        if not self._clamps:
            return
        for row in range(top_row, top_row + n_rows):
            self._clamp(row)

    def _amp_flips(self):
        """Native plane of this sensing's amp flips, or ``None``.

        One draw per flaky amp per call, hit or miss, so the flip
        stream is a pure function of (seed, fault_index, sense count).
        """
        if not self._flaky_cells or self.model.flaky_rate <= 0:
            return None
        draws = self._flaky_rng.random(len(self._flaky_cells))
        flips = np.zeros((self.n_arrays, self.cols), dtype=np.uint8)
        hit = False
        for (array, col), draw in zip(self._flaky_cells, draws):
            if draw < self.model.flaky_rate:
                flips[array, col] = 1
                hit = True
        if not hit:
            return None
        return self._store.pack_plane(flips)

    # -- counters (shared read-modify-write with the inner store) -----
    @property
    def access_cycles(self) -> int:
        return self._store.access_cycles

    @access_cycles.setter
    def access_cycles(self, value: int) -> None:
        self._store.access_cycles = value

    @property
    def compute_cycles(self) -> int:
        return self._store.compute_cycles

    @compute_cycles.setter
    def compute_cycles(self, value: int) -> None:
        self._store.compute_cycles = value

    # -- read paths (flaky amps corrupt sensing, not storage) ---------
    def read_plane(self, row: int) -> np.ndarray:
        plane = self._store.read_plane(row)
        flips = self._amp_flips()
        return plane if flips is None else plane ^ flips

    def sense(self, row_a: int, row_b: int) -> tuple[np.ndarray, np.ndarray]:
        bl, blb = self._store.sense(row_a, row_b)
        flips = self._amp_flips()
        if flips is not None:
            bl, blb = bl ^ flips, blb ^ flips
        return bl, blb

    def sense_single(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        bl, blb = self._store.sense_single(row)
        flips = self._amp_flips()
        if flips is not None:
            bl, blb = bl ^ flips, blb ^ flips
        return bl, blb

    # -- write paths (stuck cells clamp what was just driven) ---------
    def store_plane(self, row: int, plane: np.ndarray,
                    mask: np.ndarray | None = None) -> None:
        self._store.store_plane(row, plane, mask)
        self._clamp(row)

    def write_back(self, row: int, plane: np.ndarray,
                   mask: np.ndarray | None = None) -> None:
        self._store.write_back(row, plane, mask)
        self._clamp(row)

    def write_row(self, row: int, bits: np.ndarray,
                  mask: np.ndarray | None = None) -> None:
        self._store.write_row(row, bits, mask)
        self._clamp(row)

    def load_bits(self, top_row: int, bits: np.ndarray,
                  col_offset: int = 0) -> None:
        self._store.load_bits(top_row, bits, col_offset)
        self._clamp_span(top_row, np.asarray(bits).shape[-2])

    def move_plane(self, src_row: int, dst_row: int, stride: int,
                   group: int) -> None:
        self._store.move_plane(src_row, dst_row, stride, group)
        self._clamp(dst_row)

    # -- everything else is the inner store's business ----------------
    def __getattr__(self, name: str) -> Any:
        return getattr(self._store, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultyPlaneStore({self._store!r}, "
                f"index={self.fault_index})")
