"""Functional model of an 8KB compute-capable SRAM array.

The paper's arrays (Figure 3d) have 256 wordlines by 256 bitlines. Activating
two wordlines simultaneously performs a wired operation on every bitline in
the analog domain (Figure 2b):

* sensing the bit-line (``BL``) yields ``A AND B``;
* sensing the bit-line complement (``BLB``) yields ``(NOT A) AND (NOT B)``,
  i.e. ``A NOR B``.

This module models that behaviour digitally and bit-exactly. Word-line
under-drive (the 0.66 V read voltage that protects cells during multi-row
activation) only affects delay and energy, which are captured by
:mod:`repro.sram.energy`; functionally reads are non-destructive.

Since the array-fleet refactor, :class:`SRAMArray` is a thin ``n_arrays=1``
view over a :class:`repro.engine.fleet.PlaneStore` — the vectorized engine
that executes the same primitives across *all* arrays of a slice at once.
It only talks to the backing store through the store seam (plane ops and
the host-currency bulk paths), so it views the unpacked
:class:`~repro.engine.fleet.ArrayFleet` and the packed
:class:`~repro.engine.packed.PackedArrayFleet` interchangeably while its
own scalar API stays 0/1 uint8 vectors. The API and the cycle accounting
are unchanged: the fleet's lockstep counters coincide with the per-array
counters when the fleet has one member, so the 8.6 pJ / 15.4 pJ
per-256-bitline-cycle energy charging (22 nm numbers from Sec. V) is
unaffected.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ArrayStateError
from repro.engine.fleet import (
    DEFAULT_COLS,
    DEFAULT_ROWS,
    ArrayFleet,
    PlaneStore,
)

__all__ = ["DEFAULT_COLS", "DEFAULT_ROWS", "SRAMArray"]


class SRAMArray:
    """A single compute-capable SRAM array: a plane-store fleet of one.

    Parameters
    ----------
    rows:
        Number of wordlines (default 256).
    cols:
        Number of bitlines (default 256). Each bitline is one bit-serial
        ALU slot.
    fleet:
        Optional existing single-array plane store to view (unpacked or
        packed). By default a fresh ``ArrayFleet(1, rows, cols)`` backs
        the array.
    """

    def __init__(self, rows: int = DEFAULT_ROWS, cols: int = DEFAULT_COLS,
                 fleet: PlaneStore | None = None):
        if fleet is None:
            fleet = ArrayFleet(1, rows, cols)
        elif fleet.n_arrays != 1:
            raise ArrayStateError(
                f"SRAMArray views exactly one array, got a fleet of "
                f"{fleet.n_arrays}")
        self.fleet = fleet
        self.rows = fleet.rows
        self.cols = fleet.cols

    # ------------------------------------------------------------------
    # Fleet-view plumbing
    # ------------------------------------------------------------------
    @property
    def _bits(self) -> np.ndarray:
        """The array's bit plane (a live view into the backing fleet).

        Only the unpacked reference store has a byte-per-bit tensor to
        view; packed-backed arrays must go through :meth:`dump_bits`.
        """
        if not isinstance(self.fleet, ArrayFleet):
            raise ArrayStateError(
                f"{type(self.fleet).__name__} has no byte-per-bit view; "
                f"use dump_bits")
        return self.fleet._bits[0]

    @property
    def access_cycles(self) -> int:
        """Plain read/write cycles (delegated to the fleet counter)."""
        return self.fleet.access_cycles

    @access_cycles.setter
    def access_cycles(self, value: int) -> None:
        self.fleet.access_cycles = value

    @property
    def compute_cycles(self) -> int:
        """Two-row activation cycles (delegated to the fleet counter)."""
        return self.fleet.compute_cycles

    @compute_cycles.setter
    def compute_cycles(self, value: int) -> None:
        self.fleet.compute_cycles = value

    # ------------------------------------------------------------------
    # Plain SRAM behaviour (single wordline)
    # ------------------------------------------------------------------
    def read_row(self, row: int) -> np.ndarray:
        """Read one wordline; returns a copy of its 0/1 bit vector."""
        return self.fleet.read_row(row)[0]

    def write_row(self, row: int, bits: np.ndarray,
                  mask: np.ndarray | None = None) -> None:
        """Write one wordline.

        ``mask`` models the per-column bit-line drivers gated by the tag
        latch (Figure 7): columns where ``mask == 0`` keep their old value.
        """
        self.fleet._check_row(row)
        bits = self._coerce_bits(bits)
        self.fleet.access_cycles += 1
        self._store(row, bits, mask)

    # ------------------------------------------------------------------
    # Compute behaviour (two simultaneous wordlines)
    # ------------------------------------------------------------------
    def sense(self, row_a: int, row_b: int) -> tuple[np.ndarray, np.ndarray]:
        """Activate two wordlines and sense both bit-line rails.

        Returns ``(bl, blb)`` where ``bl[i] = A[i] AND B[i]`` and
        ``blb[i] = A[i] NOR B[i]`` for every bitline ``i``, exactly as in
        Figure 2b. Reads are non-destructive (the silicon guarantees this
        via word-line under-drive; 20 fabricated test chips tolerate 64
        simultaneous rows, the architecture only ever uses two).
        """
        bl, blb = self.fleet.sense(row_a, row_b)
        return self.fleet.unpack_plane(bl)[0], self.fleet.unpack_plane(blb)[0]

    def sense_single(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """Activate one wordline in compute mode (the other operand reads
        as all-ones on BL sensing, i.e. ``bl = A`` and ``blb = NOT A``).

        Used for moves and tag loads, which only need one operand row.
        """
        bl, blb = self.fleet.sense_single(row)
        return self.fleet.unpack_plane(bl)[0], self.fleet.unpack_plane(blb)[0]

    def write_back(self, row: int, bits: np.ndarray,
                   mask: np.ndarray | None = None) -> None:
        """Phase-2 write of a compute cycle (WWL activation).

        Does *not* count an extra cycle: the paper's compute cycle has a
        sensing phase and a write-back phase inside one clock.
        """
        self.fleet._check_row(row)
        bits = self._coerce_bits(bits)
        self._store(row, bits, mask)

    def _store(self, row: int, bits: np.ndarray,
               mask: np.ndarray | None) -> None:
        """Write already-validated bits into the backing fleet plane
        through the store seam (single validation pass; the fleet's own
        coercion is skipped)."""
        fleet = self.fleet
        plane = fleet.pack_plane(bits[None, :])
        packed_mask = (None if mask is None else
                       fleet.pack_plane(self._coerce_bits(mask)[None, :]))
        fleet.store_plane(row, plane, packed_mask)

    # ------------------------------------------------------------------
    # Test/host-side helpers (no cycle accounting; data arrives via TMU)
    # ------------------------------------------------------------------
    def load_bits(self, top_row: int, bits: np.ndarray,
                  col_offset: int = 0) -> None:
        """Bulk-store a bit matrix with its row 0 at ``top_row``.

        This is the host/TMU path used to initialise array contents; cycle
        costs for getting data into the array are charged by the transfer
        models, not here.
        """
        bits = np.atleast_2d(np.asarray(bits, dtype=np.uint8))
        self.fleet.load_bits(top_row, bits[None, :, :], col_offset)

    def dump_bits(self, top_row: int, n_rows: int,
                  col_offset: int = 0, n_cols: int | None = None) -> np.ndarray:
        """Bulk-read a bit matrix (host/TMU path, no cycle accounting)."""
        return self.fleet.dump_bits(top_row, n_rows, col_offset, n_cols)[0]

    def reset_counters(self) -> None:
        """Zero the access/compute cycle counters."""
        self.fleet.reset_counters()

    # ------------------------------------------------------------------
    def _coerce_bits(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.cols,):
            raise ArrayStateError(
                f"expected a row of {self.cols} bits, got shape {bits.shape}")
        if np.any(bits > 1):
            raise ArrayStateError("bit values must be 0 or 1")
        return bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SRAMArray(rows={self.rows}, cols={self.cols}, "
                f"access={self.access_cycles}, compute={self.compute_cycles})")
