"""Golden quantized executor: the NumPy reference both paths must match.

This plays the role TensorFlow's instrumented traces played for the paper's
simulator (Sec. V: "The simulator is verified by running data traces on it
and matching the results with traces obtained from instrumenting the
TensorFlow model"). Every integer step — zero-point handling, padding,
accumulation, ReLU, fixed-point requantization — is defined here, and the
bit-serial functional executor must reproduce it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import QuantizationError, ShapeError
from repro.nn.graph import Network, Node
from repro.nn.layers import (
    Add,
    AvgPool,
    BatchNorm,
    Concat,
    Conv2D,
    FullyConnected,
    MaxPool,
    QuantizedBatchNorm,
    same_padding_offsets,
)
from repro.nn.tensor import (
    QuantParams,
    QuantizedTensor,
    RequantParams,
    round_shift,
)


@dataclass(frozen=True)
class ConvWeights:
    """Quantized filters and requantization parameters for one conv node."""

    filters: QuantizedTensor      # (R, S, C, M) uint8
    requant: RequantParams

    @property
    def zero_point(self) -> int:
        return self.filters.params.zero_point


@dataclass(frozen=True)
class BnWeights:
    """Integer batch-norm parameters (Sec. IV-D's CPU-computed scalars).

    ``multiplier`` is a per-channel uint16 scale, ``bias`` a per-channel
    signed integer (with the input zero point already folded in), and
    ``shift`` the common fixed-point exponent.
    """

    multiplier: np.ndarray   # (C,) uint16 range
    bias: np.ndarray         # (C,) int64
    shift: int

    def __post_init__(self) -> None:
        if self.multiplier.ndim != 1 or self.bias.shape != self.multiplier.shape:
            raise QuantizationError(
                "BN multiplier/bias must be matching per-channel vectors")
        if np.any(self.multiplier < 1) or np.any(self.multiplier >= 1 << 16):
            raise QuantizationError("BN multipliers must fit uint16 and be "
                                    "positive")
        if self.shift < 0:
            raise QuantizationError("BN shift must be non-negative")

    @property
    def channels(self) -> int:
        return self.multiplier.shape[0]


def bn_apply(q: np.ndarray, weights: BnWeights, zp_out: int,
             relu: bool) -> np.ndarray:
    """The shared integer BN pipeline on an (H, W, C) uint8 tensor."""
    if q.shape[-1] != weights.channels:
        raise QuantizationError(
            f"BN expects {weights.channels} channels, got {q.shape[-1]}")
    acc = (q.astype(np.int64) * weights.multiplier.astype(np.int64)
           + weights.bias.astype(np.int64))
    if relu:
        acc = np.maximum(acc, 0)
    out = round_shift(acc, weights.shift) + zp_out
    return np.clip(out, 0, 255).astype(np.uint8)


@dataclass
class NetworkWeights:
    """All learned state of a quantized network."""

    input_params: QuantParams
    activation_params: QuantParams
    conv_weights: dict[str, ConvWeights] = field(default_factory=dict)
    bn_weights: dict[str, BnWeights] = field(default_factory=dict)

    def for_node(self, name: str) -> ConvWeights:
        try:
            return self.conv_weights[name]
        except KeyError:
            raise QuantizationError(f"no weights for node {name!r}") from None

    def bn_for_node(self, name: str) -> BnWeights:
        try:
            return self.bn_weights[name]
        except KeyError:
            raise QuantizationError(
                f"no batch-norm parameters for node {name!r}") from None


def initialise_weights(network: Network, seed: int = 0,
                       weight_sigma: float = 0.1,
                       activation_range: tuple[float, float] = (0.0, 6.0),
                       ) -> NetworkWeights:
    """Random-but-realistic quantized weights for every conv node.

    All activations share one set of quantization parameters (a uniform
    post-ReLU range), which keeps channel concatenation exact — real
    quantized Inception deployments requantize branches to a common scale
    before concat for the same reason.
    """
    rng = np.random.default_rng(seed)
    activation = QuantParams.from_range(*activation_range)
    weights = NetworkWeights(input_params=activation,
                             activation_params=activation)
    for node in network.conv_nodes():
        conv = network.conv_of(node)
        in_shape = network.input_shape_of(node.name)
        r, s, c, m = conv.filter_shape(in_shape)
        real = rng.normal(0.0, weight_sigma, size=(r, s, c, m))
        filters = QuantizedTensor.from_real(real)
        acc_scale = activation.scale * filters.params.scale
        requant = RequantParams.from_scales(acc_scale, activation)
        weights.conv_weights[node.name] = ConvWeights(filters=filters,
                                                      requant=requant)
    for node in network.layer_nodes():
        if not isinstance(node.layer, QuantizedBatchNorm):
            continue
        channels = node.output_shape[2]
        shift = 12
        # Per-channel gamma/beta around identity; fold the input zero
        # point into the bias, as the CPU-side computation would.
        gamma = rng.lognormal(mean=0.0, sigma=0.15, size=channels)
        beta = rng.normal(0.0, 0.4, size=channels)
        multiplier = np.clip(np.round(gamma * (1 << shift)), 1,
                             (1 << 16) - 1).astype(np.int64)
        bias_real = np.round(beta / activation.scale * (1 << shift))
        bias = (bias_real
                - activation.zero_point * multiplier).astype(np.int64)
        weights.bn_weights[node.name] = BnWeights(
            multiplier=multiplier, bias=bias, shift=shift)
    return weights


# ---------------------------------------------------------------------------
# Integer building blocks (shared semantics for both execution paths)
# ---------------------------------------------------------------------------
def pad_input(data: np.ndarray, kernel: tuple[int, int], stride: int,
              padding: str, fill: int) -> np.ndarray:
    """Apply TF 'same' padding with ``fill`` (the input zero point, so
    padded taps contribute exactly zero to the true accumulation)."""
    if padding == "valid":
        return data
    h, w = data.shape[:2]
    top, bottom = same_padding_offsets(h, kernel[0], stride)
    left, right = same_padding_offsets(w, kernel[1], stride)
    return np.pad(data, ((top, bottom), (left, right), (0, 0)),
                  constant_values=fill)


def conv_accumulate(x_q: np.ndarray, x_zp: int, w_q: np.ndarray, w_zp: int,
                    stride: int, padding: str) -> np.ndarray:
    """The int32 conv accumulator: ``sum((x - x_zp) * (w - w_zp))``.

    ``x_q`` is (H, W, C) uint8; ``w_q`` is (R, S, C, M) uint8. Returns an
    (E, F, M) int64 array. Padded positions hold ``x_zp`` and therefore
    contribute zero.
    """
    if x_q.ndim != 3 or w_q.ndim != 4:
        raise ShapeError(
            f"expected (H,W,C) input and (R,S,C,M) filters, got "
            f"{x_q.shape} and {w_q.shape}")
    if x_q.shape[2] != w_q.shape[2]:
        raise ShapeError(
            f"channel mismatch: input C={x_q.shape[2]}, filter C="
            f"{w_q.shape[2]}")
    r, s, c, m = w_q.shape
    padded = pad_input(x_q, (r, s), stride, padding, fill=x_zp)
    e = (padded.shape[0] - r) // stride + 1
    f = (padded.shape[1] - s) // stride + 1
    x = padded.astype(np.int64) - x_zp
    w = w_q.astype(np.int64).reshape(r * s * c, m) - w_zp
    # im2col: gather every window into rows of (e*f, r*s*c).
    windows = np.empty((e, f, r * s * c), dtype=np.int64)
    for i in range(r):
        for j in range(s):
            patch = x[i:i + e * stride:stride, j:j + f * stride:stride, :]
            windows[:, :, (i * s + j) * c:(i * s + j + 1) * c] = patch
    acc = windows.reshape(e * f, r * s * c) @ w
    return acc.reshape(e, f, m)


def maxpool_quantized(x_q: np.ndarray, kernel: tuple[int, int], stride: int,
                      padding: str) -> np.ndarray:
    """Max pooling on uint8 codes (monotone, so codes compare directly)."""
    padded = pad_input(x_q, kernel, stride, padding, fill=0)
    r, s = kernel
    e = (padded.shape[0] - r) // stride + 1
    f = (padded.shape[1] - s) // stride + 1
    out = np.zeros((e, f, x_q.shape[2]), dtype=np.uint8)
    for i in range(r):
        for j in range(s):
            patch = padded[i:i + e * stride:stride, j:j + f * stride:stride, :]
            np.maximum(out, patch, out=out)
    return out


def avgpool_quantized(x_q: np.ndarray, kernel: tuple[int, int], stride: int,
                      padding: str) -> np.ndarray:
    """Average pooling: window sum then integer (floor) division.

    The divisor counts only in-bounds taps under 'same' padding. Floor
    division matches the in-cache restoring divider exactly.
    """
    r, s = kernel
    padded = pad_input(x_q, kernel, stride, padding, fill=0).astype(np.int64)
    ones = np.ones_like(x_q[:, :, :1], dtype=np.int64)
    counts = pad_input(ones, kernel, stride, padding, fill=0)
    e = (padded.shape[0] - r) // stride + 1
    f = (padded.shape[1] - s) // stride + 1
    total = np.zeros((e, f, x_q.shape[2]), dtype=np.int64)
    count = np.zeros((e, f, 1), dtype=np.int64)
    for i in range(r):
        for j in range(s):
            total += padded[i:i + e * stride:stride,
                            j:j + f * stride:stride, :]
            count += counts[i:i + e * stride:stride,
                            j:j + f * stride:stride, :]
    return (total // count).astype(np.uint8)


def add_quantized(a_q: np.ndarray, b_q: np.ndarray, zero_point: int,
                  relu: bool = False) -> np.ndarray:
    """Element-wise quantized addition with shared parameters.

    Exact when both operands share scale/zero-point:
    ``q_out = clamp(q_a + q_b - zp)``; ReLU then clamps below the zero
    point.
    """
    if a_q.shape != b_q.shape:
        raise ShapeError(
            f"elementwise add needs matching shapes: {a_q.shape} vs "
            f"{b_q.shape}")
    total = a_q.astype(np.int64) + b_q.astype(np.int64) - zero_point
    if relu:
        total = np.maximum(total, zero_point)
    return np.clip(total, 0, 255).astype(np.uint8)


def finalize_conv(acc: np.ndarray, relu: bool,
                  requant: RequantParams) -> np.ndarray:
    """ReLU (optional) then requantize — shared by both executors."""
    acc = np.asarray(acc, dtype=np.int64)
    if relu:
        acc = np.maximum(acc, 0)
    return requant.apply(acc)


# ---------------------------------------------------------------------------
# Whole-network execution
# ---------------------------------------------------------------------------
class ReferenceExecutor:
    """Runs a quantized network with NumPy integer arithmetic."""

    def __init__(self, network: Network, weights: NetworkWeights):
        self.network = network
        self.weights = weights

    def run(self, image: QuantizedTensor) -> dict[str, QuantizedTensor]:
        """Execute all layers; returns every node's output by name."""
        if image.shape != self.network.input_shape:
            raise ShapeError(
                f"input shape {image.shape} does not match network "
                f"{self.network.input_shape}")
        results: dict[str, QuantizedTensor] = {
            self.network.input_name: image}
        for node in self.network.layer_nodes():
            inputs = [results[name] for name in node.inputs]
            results[node.name] = self._run_node(node, inputs)
        return results

    def run_output(self, image: QuantizedTensor) -> QuantizedTensor:
        """Execute and return only the final node's output."""
        return self.run(image)[self.network.output_name]

    # ------------------------------------------------------------------
    def _run_node(self, node: Node,
                  inputs: list[QuantizedTensor]) -> QuantizedTensor:
        layer = node.layer
        activation = self.weights.activation_params
        if isinstance(layer, (Conv2D, FullyConnected)):
            conv = self.network.conv_of(node)
            x = inputs[0]
            data = x.data
            if isinstance(layer, FullyConnected):
                data = data.reshape(1, 1, -1)
            w = self.weights.for_node(node.name)
            acc = conv_accumulate(data, x.params.zero_point,
                                  w.filters.data, w.zero_point,
                                  conv.stride, conv.padding)
            out = finalize_conv(acc, conv.relu, w.requant)
            return QuantizedTensor(out, activation)
        if isinstance(layer, MaxPool):
            out = maxpool_quantized(inputs[0].data, layer.kernel,
                                    layer.stride, layer.padding)
            return QuantizedTensor(out, inputs[0].params)
        if isinstance(layer, AvgPool):
            out = avgpool_quantized(inputs[0].data, layer.kernel,
                                    layer.stride, layer.padding)
            return QuantizedTensor(out, inputs[0].params)
        if isinstance(layer, Concat):
            data = np.concatenate([t.data for t in inputs], axis=2)
            return QuantizedTensor(data, inputs[0].params)
        if isinstance(layer, Add):
            out = add_quantized(inputs[0].data, inputs[1].data,
                                inputs[0].params.zero_point, layer.relu)
            return QuantizedTensor(out, inputs[0].params)
        if isinstance(layer, QuantizedBatchNorm):
            bn = self.weights.bn_for_node(node.name)
            out = bn_apply(inputs[0].data, bn, activation.zero_point,
                           layer.relu)
            return QuantizedTensor(out, activation)
        if isinstance(layer, BatchNorm):
            return inputs[0]
        raise ShapeError(f"unsupported layer type {type(layer).__name__}")
