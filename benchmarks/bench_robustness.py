"""Sec. II-B / V: multi-row activation stability Monte Carlo.

Benchmarks the Monte Carlo disturb analysis at the published operating
point and asserts the silicon anchors: six-sigma at 0.66 V, clean 64-row
operation across twenty 8KB test chips, and the ~1.6x compute-delay cost.
"""

from repro.analysis import robustness_report
from repro.sram.robustness import (
    CHOSEN_RWL_VOLTAGE,
    ReadStabilityModel,
    choose_rwl_voltage,
)


def run_monte_carlo():
    model = ReadStabilityModel()
    flips_published = model.monte_carlo_failures(
        CHOSEN_RWL_VOLTAGE, cells=500_000, rows_activated=64, seed=3)
    flips_unsafe = model.monte_carlo_failures(
        0.9, cells=10_000, rows_activated=2, seed=3)
    return model, flips_published, flips_unsafe


def test_robustness_monte_carlo(benchmark, record):
    model, flips_published, flips_unsafe = benchmark(run_monte_carlo)
    assert flips_published == 0          # the 20-test-chip result
    assert flips_unsafe > 1000           # full-VDD multi-row corrupts
    assert model.is_industry_robust(CHOSEN_RWL_VOLTAGE)
    assert abs(choose_rwl_voltage() - CHOSEN_RWL_VOLTAGE) <= 0.01
    assert abs(model.delay_ratio() - 1.56) < 0.02
    record(robustness_report())
