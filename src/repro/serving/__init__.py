"""Async batched serving: the request-stream frontend over the fleet.

The paper's data-center throughput story (Sec. VI-B, Fig. 16) assumes a
continuous request stream batched onto the node's sockets. This package
is that serving subsystem:

* :class:`~repro.serving.server.Server` — an asyncio request queue.
  ``await server.submit(image)`` resolves to the image's network output;
  arrivals coalesce into batches under ``max_batch`` / ``max_wait_ms``
  and execute on a pool of backends (any object with
  ``run_requests(network, images)``, typically one
  :class:`~repro.engine.sharding.ShardedBackend` per node).
* :func:`~repro.serving.loadgen.run_load` /
  :func:`~repro.serving.loadgen.run_serving_benchmark` — deterministic
  load generation plus the correctness gate: no lost responses, no
  duplicated responses, every response bit-exact against the direct
  ``run_requests`` path.
* :class:`~repro.serving.server.ServingReport` — p50/p95/p99 tail
  latency and throughput of one served stream.
"""

from repro.serving.loadgen import (
    LoadResult,
    render_serving_report,
    run_load,
    run_serving_benchmark,
)
from repro.serving.server import Server, ServingBackend, ServingReport

__all__ = [
    "LoadResult",
    "Server",
    "ServingBackend",
    "ServingReport",
    "render_serving_report",
    "run_load",
    "run_serving_benchmark",
]
