"""The unified Backend API: one ``run(network, batch_size)`` for every
execution engine.

The reproduction has two ways to execute a network:

* the **analytic** simulator (:class:`repro.core.executor.NeuralCacheSimulator`)
  — the paper's deterministic latency/energy model, which handles
  Inception-scale networks;
* the **functional** fleet executor
  (:class:`repro.core.functional.FunctionalExecutor` on top of
  :class:`~repro.engine.fleet.ArrayFleet`) — bit-exact in-cache execution
  for verification-scale networks.

Callers (the CLI, the experiment harness, benchmarks, future sharded or
serving backends) should not care which engine they hold: the
:class:`Backend` protocol pins the shared surface to
``run(network, batch_size) -> BackendResult``, and :func:`get_backend`
resolves engines by name.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Protocol, runtime_checkable

import numpy as np

from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.core.executor import InferenceResult, NeuralCacheSimulator
from repro.core.functional import CycleReport, FunctionalExecutor
from repro.nn.graph import Network


@dataclass(frozen=True)
class BackendOptions:
    """Every construction-time backend knob, in one value.

    This is the single construction surface for
    :func:`get_backend`: instead of a growing tail of keyword arguments
    (``batched``, ``driver``, ...), callers build one frozen options
    object and hand it to any backend factory. Knobs that do not apply
    to a backend are rejected at construction with a clear error (the
    analytic model has no shard pool to drive), so a typo'd or misplaced
    option never silently does nothing.

    ``sparsity`` turns on bit-plane sparsity skipping in the functional
    engines: all-zero operand bit planes are detected at the plane store
    and their multiply/add steps elided fleet-wide, making the cycle
    report data-dependent (``CycleReport.skipped`` /
    ``CycleReport.dense_cycles``) while outputs stay bit-exact.

    ``precision`` attaches a
    :class:`~repro.core.precision.LayerPrecision` table so conv layers
    run narrowed bit-serial sequences (validated against the network's
    layer names at map time).
    """

    #: Fold the whole batch into each layer's fleet pass (functional
    #: engines; the analytic model ignores it for registry uniformity).
    batched: bool = True
    #: Shard driver for the sharded backends: ``serial``, ``thread``,
    #: ``process`` or ``pool``. ``None`` keeps the engine default.
    driver: str | None = None
    #: Shard (socket) count for the sharded backends.
    shards: int | None = None
    #: Shadow-state sanitizer for the functional fleets; ``None`` defers
    #: to the ``NEURALCACHE_SANITIZE`` environment variable.
    sanitize: bool | None = None
    #: Software fault plan (:class:`repro.faults.plan.FaultPlan`) armed
    #: in the sharded pool driver's workers.
    faults: object | None = None
    #: Skip all-zero operand bit planes (functional engines).
    sparsity: bool = False
    #: Per-layer element precision table
    #: (:class:`~repro.core.precision.LayerPrecision`).
    precision: object | None = field(default=None, hash=False)

    def for_functional(self) -> dict:
        """The options every functional (fleet) engine consumes."""
        return {"batched": self.batched, "sanitize": self.sanitize,
                "sparsity": self.sparsity, "precision": self.precision}


@dataclass(frozen=True)
class ShardReport:
    """One shard's slice of a sharded batch (socket-level breakdown)."""

    #: Shard index within the sharded backend (0-based).
    shard: int
    #: Images the round-robin assignment handed this shard.
    images: int
    #: The shard's aggregate functional compute-cycle report.
    report: CycleReport
    #: Self-healing actions the pool driver took for this shard during
    #: the batch (stringified RecoveryEvents: respawns, re-dispatches,
    #: degrades). Empty on healthy runs and on every other driver.
    recoveries: tuple = ()


@dataclass(frozen=True)
class BatchOutcome:
    """What a functional engine produced for an *explicit* image stream.

    This is the serving-side counterpart of :class:`BackendResult`:
    ``run(network, batch_size)`` generates its own deterministic images,
    while ``run_requests(network, images)`` executes images a caller
    (the request queue in :mod:`repro.serving`, a shard driver, a test)
    actually handed over — and must therefore return one response per
    image, in arrival order, not just the last image's outputs.
    """

    #: Aggregate functional compute-cycle report for the stream.
    report: CycleReport
    #: The network output tensor of image ``i`` at position ``i``.
    responses: tuple
    #: Node name -> QuantizedTensor for the last image (debug surface,
    #: same shape as :attr:`BackendResult.outputs`); ``None`` when the
    #: stream was empty.
    outputs: dict | None
    #: Images verified bit-exact against the golden executor.
    verified: int


@dataclass(frozen=True)
class BackendResult:
    """What any backend returns for one batch.

    The analytic engine fills the wall-clock/energy fields; the functional
    engine fills the cycle report and per-node outputs. Both always fill
    the identification fields, so callers can render a result without
    knowing which engine produced it.
    """

    backend: str
    network: str
    batch_size: int
    #: Wall-clock seconds for the batch on one socket (analytic only).
    latency_s: float | None = None
    #: Joules for the batch (analytic only).
    energy_j: float | None = None
    #: Full analytic schedule detail (analytic only).
    inference: InferenceResult | None = None
    #: Aggregate functional compute-cycle report (functional only).
    report: CycleReport | None = None
    #: Node name -> QuantizedTensor for the last image (functional only).
    outputs: dict | None = None
    #: Images verified bit-exact against the golden executor (functional).
    verified_images: int = 0
    #: Whether bit-exact verification was requested for this run, so the
    #: summary can distinguish "verify off" from "verified 0/N".
    verify: bool = False
    #: Per-shard cycle breakdown (sharded backends only).
    shard_reports: tuple[ShardReport, ...] | None = None

    def summary(self) -> str:
        """A short human-readable account of the run."""
        lines = [f"backend={self.backend} network={self.network} "
                 f"batch={self.batch_size}"]
        if self.latency_s is not None:
            lines.append(f"  latency: {self.latency_s * 1e3:.3f} ms "
                         f"({self.latency_s / self.batch_size * 1e3:.3f} "
                         f"ms/image)")
        if self.energy_j is not None:
            lines.append(f"  energy: {self.energy_j:.3f} J")
        if self.report is not None:
            r = self.report
            lines.append(f"  compute cycles: {r.total} (mac {r.mac}, "
                         f"reduce {r.reduction}, quant {r.quantization}, "
                         f"pool {r.pooling}) over {r.passes} array passes")
            if r.skipped:
                lines.append(f"  sparsity: {r.skipped} cycles skipped "
                             f"(dense-equivalent {r.dense_cycles}, "
                             f"{r.dense_cycles / r.total:.2f}x)")
        if self.shard_reports is not None:
            for s in self.shard_reports:
                lines.append(f"  shard {s.shard}: {s.images} image(s), "
                             f"{s.report.total} compute cycles over "
                             f"{s.report.passes} array passes")
                for event in s.recoveries:
                    lines.append(f"    recovery: {event}")
        if self.verify:
            # Explicit even at 0/N, so a verification-skipped run never
            # reads the same as a verify-off run.
            lines.append(f"  verified bit-exact vs golden executor on "
                         f"{self.verified_images}/{self.batch_size} "
                         f"image(s)")
        elif self.verified_images:
            lines.append(f"  verified bit-exact vs golden executor on "
                         f"{self.verified_images} image(s)")
        return "\n".join(lines)


def check_batch_size(batch_size: int, backend: str) -> None:
    """Reject non-positive batch sizes, uniformly across all backends.

    Every ``Backend.run`` implementation calls this first, so programmatic
    callers get the same guarantee the CLI enforces — no backend silently
    produces nonsense latency/throughput for ``batch_size <= 0``.
    """
    if batch_size <= 0:
        raise SimulationError(
            f"backend {backend!r}: batch size must be positive, "
            f"got {batch_size}")


def deterministic_images(network: Network, weights, seed: int,
                         batch_size: int) -> list:
    """The deterministic pseudo-random input stream every functional
    backend runs: image ``i`` depends only on ``(network, seed, i)``, so a
    sharded run over any assignment of this stream sees exactly the images
    the unsharded run would."""
    from repro.nn import QuantizedTensor

    rng = np.random.default_rng(seed)
    return [QuantizedTensor.from_real(
                rng.uniform(0, 6, network.input_shape),
                weights.input_params)
            for _ in range(batch_size)]


@runtime_checkable
class Backend(Protocol):
    """Anything that can execute a network for a batch.

    Structural: a backend needs a ``name`` and ``run``. Engines are free
    to expose richer engine-specific surfaces (the analytic backend has
    ``throughput`` and ``simulator``), but shared callers stick to this.
    """

    name: str

    def run(self, network: Network, batch_size: int = 1) -> BackendResult:
        """Execute ``batch_size`` inferences and aggregate the results."""
        ...  # pragma: no cover - protocol signature


class AnalyticBackend:
    """The paper's deterministic model behind the Backend protocol.

    Simulators are cached per network object (bounded, LRU), so repeated
    ``run`` calls (latency sweeps, batching sweeps) pay the mapping cost
    once — the behaviour the experiment harness previously got from
    caching a concrete :class:`NeuralCacheSimulator` — without pinning
    every network a long-lived backend ever served.
    """

    name = "analytic"
    #: Most-recently-used simulators kept alive per backend.
    CACHE_SIZE = 4

    def __init__(self, config: NeuralCacheConfig | None = None):
        self.config = config if config is not None else NeuralCacheConfig()
        self._simulators: dict[int, tuple[Network, NeuralCacheSimulator]] = {}

    def simulator(self, network: Network) -> NeuralCacheSimulator:
        """The cached simulator for ``network`` (engine-specific surface)."""
        key = id(network)
        entry = self._simulators.pop(key, None)
        if entry is None or entry[0] is not network:
            entry = (network, NeuralCacheSimulator(network, self.config))
        self._simulators[key] = entry       # re-insert = most recent
        while len(self._simulators) > self.CACHE_SIZE:
            self._simulators.pop(next(iter(self._simulators)))
        return entry[1]

    def run(self, network: Network, batch_size: int = 1) -> BackendResult:
        check_batch_size(batch_size, self.name)
        result = self.simulator(network).run(batch_size)
        return BackendResult(
            backend=self.name, network=network.name, batch_size=batch_size,
            latency_s=result.total_time, energy_j=result.total_energy,
            inference=result)

    def throughput(self, network: Network, batch_size: int = 1) -> float:
        """Inferences/s for the node (socket-scaled, Sec. VI-B)."""
        check_batch_size(batch_size, self.name)
        return self.simulator(network).throughput(batch_size)

    def default_network(self) -> Network:
        """The paper's workload: Inception v3."""
        from repro.nn import build_inception_v3
        return build_inception_v3()


class FleetExecutor:
    """Bit-exact functional execution on the array fleet, as a Backend.

    Every image of the batch runs through
    :class:`~repro.core.functional.FunctionalExecutor` (whose layers
    execute as single lockstep sequences across a
    :class:`~repro.engine.fleet.PlaneStore` fleet) and, when ``verify``
    is on, is checked bit-for-bit against the golden NumPy executor — the
    reproduction's analogue of the paper's trace-matching verification.

    ``packed`` selects the bit-plane store: the packed uint64 word store
    (:class:`~repro.engine.packed.PackedArrayFleet`, 8x smaller and
    several times faster per lockstep op) or the unpacked byte-per-bit
    reference. Both are registered — ``get_backend("fleet")`` and
    ``get_backend("fleet-packed")`` — and produce identical outputs and
    cycle reports; property tests pin that equivalence.

    ``batched`` (default) folds the whole batch into each layer's fleet
    dimension — one :meth:`FunctionalExecutor.run_batch
    <repro.core.functional.FunctionalExecutor.run_batch>` pass computes
    every image, ~batch-times faster in wall-clock with bit-identical
    outputs and cycle reports (the arrays are parallel hardware; batching
    changes wall-clock, not modeled cycles). ``batched=False`` keeps the
    per-image loop as a reference/regression path.

    Weights default to :func:`repro.nn.reference.initialise_weights` with
    a fixed seed; inputs are deterministic pseudo-random activations, so
    two runs of the same backend agree exactly.
    """

    name = "fleet"

    def __init__(self, config: NeuralCacheConfig | None = None,
                 weights=None, seed: int = 0, verify: bool = True,
                 packed: bool = False, batched: bool = True,
                 sparsity: bool = False, sanitize: bool | None = None,
                 precision=None):
        self.config = config if config is not None else NeuralCacheConfig()
        self.weights = weights
        self.seed = seed
        self.verify = verify
        self.packed = packed
        self.batched = batched
        #: Bit-plane sparsity skipping (data-dependent ``CycleReport``;
        #: outputs stay bit-exact, verified against the golden executor).
        self.sparsity = sparsity
        #: Shadow-state sanitizer override (None = env default).
        self.sanitize = sanitize
        #: Per-layer precision table, overriding ``network.precision``.
        self.precision = precision
        self.name = "fleet-packed" if packed else "fleet"

    def weights_for(self, network: Network):
        """The run's weights: explicit, or seeded deterministically."""
        from repro.nn.reference import initialise_weights

        if self.weights is not None:
            return self.weights
        return initialise_weights(network, seed=self.seed)

    def golden_for(self, network: Network, weights):
        """The golden NumPy executor, or ``None`` when verify is off."""
        from repro.nn import ReferenceExecutor

        return ReferenceExecutor(network, weights) if self.verify else None

    def run(self, network: Network, batch_size: int = 1) -> BackendResult:
        check_batch_size(batch_size, self.name)
        weights = self.weights_for(network)
        golden = self.golden_for(network, weights)
        images = deterministic_images(network, weights, self.seed,
                                      batch_size)
        outcome = self.run_images(network, images, weights, golden)
        return BackendResult(
            backend=self.name, network=network.name, batch_size=batch_size,
            report=outcome.report, outputs=outcome.outputs,
            verified_images=outcome.verified, verify=self.verify)

    def run_images(self, network: Network, images, weights=None,
                   golden=None) -> BatchOutcome:
        """Drive explicit images through one persistent executor.

        Thin, documented wrapper over :meth:`run_requests` kept as the
        shard-level entry point
        (:class:`~repro.engine.sharding.ShardedBackend` drives it per
        shard). It returns the same :class:`BatchOutcome` as
        ``run_requests`` — the three functional entry points (``run``,
        ``run_images``, ``run_requests``) all speak
        :class:`BatchOutcome`/:class:`BackendResult`, never bare tuples.
        """
        return self.run_requests(network, images, weights, golden)

    def run_requests(self, network: Network, images, weights=None,
                     golden=None) -> BatchOutcome:
        """Execute an explicit image stream; per-image responses.

        One :class:`~repro.core.functional.FunctionalExecutor` serves the
        whole stream, so every layer's mapping is planned exactly once per
        batch (filters stay resident, Sec. IV-E) — not once per image.
        With ``batched`` (the default) the whole stream additionally
        executes as *one* fleet pass per layer, the batch folded into the
        fleet's array axis; ``batched=False`` falls back to the per-image
        loop, whose outputs and aggregate cycle report are identical.

        The returned :class:`BatchOutcome` carries the network output of
        image ``i`` at ``responses[i]`` — this is the entry point the
        serving frontend (:mod:`repro.serving`) coalesces request batches
        into.
        """
        if weights is None:
            weights = self.weights_for(network)
        if golden is None:
            golden = self.golden_for(network, weights)
        images = list(images)
        if not images:
            return BatchOutcome(report=CycleReport(), responses=(),
                                outputs=None, verified=0)
        executor = FunctionalExecutor(network, weights, self.config,
                                      packed=self.packed,
                                      sparsity=self.sparsity,
                                      sanitize=self.sanitize,
                                      precision=self.precision)
        if self.batched:
            results = executor.run_batch(images)
            responses = tuple(results[network.output_name])
            verified = self._verify_batch(network, images, responses,
                                          golden)
            outputs = {name: tensors[-1]
                       for name, tensors in results.items()}
            return BatchOutcome(report=executor.total_report(),
                                responses=responses, outputs=outputs,
                                verified=verified)
        total = CycleReport()
        responses = []
        outputs = None
        verified = 0
        for image in images:
            outputs = executor.run(image)
            responses.append(outputs[network.output_name])
            if golden is not None:
                self._verify_batch(network, [image], [responses[-1]],
                                   golden)
                verified += 1
            total = total.merged(executor.total_report())
        return BatchOutcome(report=total, responses=tuple(responses),
                            outputs=outputs, verified=verified)

    def _verify_batch(self, network: Network, images, outputs,
                      golden) -> int:
        """Check each image's output bit-for-bit against the golden
        executor; returns how many were verified (0 with verify off)."""
        if golden is None:
            return 0
        for image, got in zip(images, outputs):
            expected = golden.run_output(image)
            if not np.array_equal(got.data, expected.data):
                raise SimulationError(
                    f"functional output of {network.name!r} diverged "
                    f"from the golden executor")
        return len(images)

    def default_network(self) -> Network:
        """A verification-scale conv+pool network (the functional path is
        bounded to layers whose reduction fits one array, Sec. IV-A)."""
        return tiny_verification_network()


def tiny_verification_network(size: int = 8, channels: int = 8,
                              filters: int = 8) -> Network:
    """A small conv -> maxpool graph for functional verification demos."""
    from repro.nn import Conv2D, MaxPool

    net = Network(name="fleet-verify")
    x = net.add_input("in", (size, size, channels))
    net.add("conv", Conv2D(filters, (3, 3), padding="same"), x)
    net.add("pool", MaxPool(kernel=(2, 2), stride=2, padding="valid"),
            "conv")
    return net


def _check_unsharded(name: str, options: BackendOptions) -> None:
    """Reject shard-pool knobs on engines that have no shard pool."""
    if options.driver is not None:
        raise SimulationError(
            f"backend {name!r} does not take a shard driver; only the "
            f"sharded backends run a shard pool")
    if options.shards is not None:
        raise SimulationError(
            f"backend {name!r} does not take a shard count; only the "
            f"sharded backends split work over shards")
    if options.faults is not None:
        raise SimulationError(
            f"backend {name!r} does not take a software fault plan; "
            f"only the sharded pool driver arms chaos hooks")


def _check_analytic(options: BackendOptions) -> None:
    """The analytic model has no functional fleets to configure."""
    _check_unsharded("analytic", options)
    for knob, pointer in (("sparsity", "the functional fleet engines"),
                          ("sanitize", "the functional fleet engines")):
        if getattr(options, knob) not in (None, False):
            raise SimulationError(
                f"backend 'analytic' does not take {knob!r}; only "
                f"{pointer} execute bit planes")
    if options.precision is not None:
        raise SimulationError(
            "backend 'analytic' takes per-layer precision from the "
            "network itself; attach the table as `network.precision` "
            "instead of a backend option")


def _analytic(config: NeuralCacheConfig | None = None,
              options: BackendOptions | None = None) -> AnalyticBackend:
    """The analytic model. It has no functional per-image loop to fold,
    so ``batched`` is accepted for registry uniformity and ignored."""
    options = options if options is not None else BackendOptions()
    _check_analytic(options)
    return AnalyticBackend(config)


def _fleet(config: NeuralCacheConfig | None = None,
           options: BackendOptions | None = None) -> FleetExecutor:
    """The fleet executor on the unpacked reference store."""
    options = options if options is not None else BackendOptions()
    _check_unsharded("fleet", options)
    return FleetExecutor(config, **options.for_functional())


def _packed_fleet(config: NeuralCacheConfig | None = None,
                  options: BackendOptions | None = None) -> FleetExecutor:
    """The fleet executor on the packed uint64 plane store."""
    options = options if options is not None else BackendOptions()
    _check_unsharded("fleet-packed", options)
    return FleetExecutor(config, packed=True, **options.for_functional())


def _sharded(config: NeuralCacheConfig | None = None,
             options: BackendOptions | None = None) -> Backend:
    """Multi-socket sharded execution on packed per-shard fleets."""
    from repro.engine.sharding import ShardedBackend
    options = options if options is not None else BackendOptions()
    return ShardedBackend(
        config, shards=options.shards, batched=options.batched,
        driver=options.driver if options.driver is not None else "serial",
        fault_plan=options.faults, sparsity=options.sparsity,
        sanitize=options.sanitize, precision=options.precision)


def _sharded_unpacked(config: NeuralCacheConfig | None = None,
                      options: BackendOptions | None = None) -> Backend:
    """The sharded backend on the unpacked reference store."""
    from repro.engine.sharding import ShardedBackend
    options = options if options is not None else BackendOptions()
    return ShardedBackend(
        config, shards=options.shards, packed=False,
        batched=options.batched,
        driver=options.driver if options.driver is not None else "serial",
        fault_plan=options.faults, sparsity=options.sparsity,
        sanitize=options.sanitize, precision=options.precision)


#: Registered engine factories ((config, options) -> Backend), by
#: CLI/experiment name. Every factory takes the same
#: :class:`BackendOptions` value and rejects knobs it cannot honour.
BACKENDS: dict = {
    AnalyticBackend.name: _analytic,
    FleetExecutor.name: _fleet,
    "fleet-packed": _packed_fleet,
    "sharded": _sharded,
    "sharded-unpacked": _sharded_unpacked,
}


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` (and the CLI's --backend)."""
    return tuple(BACKENDS)


def get_backend(name: str, config: NeuralCacheConfig | None = None,
                options: BackendOptions | None = None,
                batched: bool | None = None,
                driver: str | None = None) -> Backend:
    """Resolve a backend by name; raises on unknown names.

    ``options`` is the construction surface: one
    :class:`BackendOptions` value carrying every backend knob (batch
    folding, shard driver and count, sanitizer, fault plan, bit-plane
    sparsity, per-layer precision). Factories reject options they cannot
    honour — the analytic model has no fleets to sparsify, the unsharded
    engines no pool to drive. The ``pool`` driver forks persistent
    workers at construction, so it is POSIX-only (requires the ``fork``
    start method) and should be resolved before the process starts any
    threads.

    ``batched``/``driver`` are the pre-``BackendOptions`` keyword
    arguments, kept for one release as a deprecated shim: passing either
    emits a :class:`DeprecationWarning` and folds the value into
    ``options``. They cannot override a knob an explicit ``options``
    already set.
    """
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise SimulationError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}") from None
    if batched is not None or driver is not None:
        warnings.warn(
            "get_backend(batched=..., driver=...) is deprecated; pass "
            "get_backend(name, config, options=BackendOptions(...)) "
            "instead", DeprecationWarning, stacklevel=2)
        base = options if options is not None else BackendOptions()
        legacy: dict = {}
        if batched is not None:
            if options is not None and options.batched != batched:
                raise SimulationError(
                    "conflicting 'batched': set it on BackendOptions, "
                    "not the deprecated keyword")
            legacy["batched"] = batched
        if driver is not None:
            if options is not None and options.driver is not None \
                    and options.driver != driver:
                raise SimulationError(
                    "conflicting 'driver': set it on BackendOptions, "
                    "not the deprecated keyword")
            legacy["driver"] = driver
        options = replace(base, **legacy)
    return factory(config, options)
