"""Tests for the network DAG."""

import pytest

from repro.common.errors import ShapeError
from repro.nn import AvgPool, Concat, Conv2D, FullyConnected, Network


def small_net():
    net = Network(name="small")
    x = net.add_input("in", (8, 8, 3))
    x = net.add("c1", Conv2D(8, (3, 3)), x, group="stem")
    a = net.add("b0", Conv2D(4, (1, 1)), x, group="mix")
    b = net.add("b1", Conv2D(4, (3, 3)), x, group="mix")
    x = net.add("cat", Concat(), (a, b), group="mix")
    x = net.add("pool", AvgPool((8, 8), padding="valid"), x, group="head")
    net.add("fc", FullyConnected(5), x, group="head")
    return net


class TestConstruction:
    def test_shapes_inferred_on_insertion(self):
        net = small_net()
        assert net.node("c1").output_shape == (8, 8, 8)
        assert net.node("cat").output_shape == (8, 8, 8)
        assert net.node("fc").output_shape == (1, 1, 5)

    def test_input_properties(self):
        net = small_net()
        assert net.input_name == "in"
        assert net.input_shape == (8, 8, 3)

    def test_output_is_last_node(self):
        assert small_net().output_name == "fc"

    def test_duplicate_name_rejected(self):
        net = small_net()
        with pytest.raises(ShapeError):
            net.add("c1", Conv2D(8, (3, 3)), "in")

    def test_unknown_input_rejected(self):
        net = small_net()
        with pytest.raises(ShapeError):
            net.add("bad", Conv2D(8, (3, 3)), "nope")

    def test_second_input_rejected(self):
        net = small_net()
        with pytest.raises(ShapeError):
            net.add_input("in2", (4, 4, 1))

    def test_multi_input_only_for_concat(self):
        net = small_net()
        with pytest.raises(ShapeError):
            net.add("bad", Conv2D(8, (3, 3)), ("c1", "cat"))

    def test_missing_node_lookup(self):
        with pytest.raises(ShapeError):
            small_net().node("ghost")


class TestQueries:
    def test_topological_order(self):
        names = [n.name for n in small_net().nodes()]
        assert names.index("c1") < names.index("b0") < names.index("cat")

    def test_layer_nodes_excludes_input(self):
        assert all(n.layer is not None for n in small_net().layer_nodes())

    def test_groups_in_order(self):
        assert small_net().groups() == ["stem", "mix", "head"]

    def test_group_nodes(self):
        nodes = small_net().group_nodes("mix")
        assert {n.name for n in nodes} == {"b0", "b1", "cat"}
        with pytest.raises(ShapeError):
            small_net().group_nodes("ghost")

    def test_consumers(self):
        net = small_net()
        assert {n.name for n in net.consumers("c1")} == {"b0", "b1"}
        assert {n.name for n in net.consumers("fc")} == set()

    def test_input_shape_of(self):
        net = small_net()
        assert net.input_shape_of("b0") == (8, 8, 8)
        with pytest.raises(ShapeError):
            net.input_shape_of("in")


class TestCounting:
    def test_conv_nodes_include_fc(self):
        names = {n.name for n in small_net().conv_nodes()}
        assert names == {"c1", "b0", "b1", "fc"}

    def test_conv_of_fc(self):
        net = small_net()
        conv = net.conv_of(net.node("fc"))
        assert conv.kernel == (1, 1)
        assert conv.out_channels == 5

    def test_conv_of_non_conv_rejected(self):
        net = small_net()
        with pytest.raises(ShapeError):
            net.conv_of(net.node("cat"))

    def test_total_weight_bytes(self):
        net = small_net()
        expected = (9 * 3 * 8) + (1 * 8 * 4) + (9 * 8 * 4) + (8 * 5)
        assert net.total_weight_bytes() == expected

    def test_total_convolutions(self):
        net = small_net()
        expected = 8 * 8 * 8 + 8 * 8 * 4 + 8 * 8 * 4 + 5
        assert net.total_convolutions() == expected

    def test_total_macs_positive_and_consistent(self):
        net = small_net()
        assert net.total_macs() > net.total_convolutions()
