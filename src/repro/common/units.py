"""Unit helpers: bytes, frequencies, times and energies.

The simulator reasons in plain floats (seconds, joules, bytes) but the paper
and its figures use mixed units (ms, pJ, MB, GHz). These helpers keep
conversions explicit and consistently named: ``X_to_Y(value)``.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024

GHZ = 1e9
MHZ = 1e6

PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` into seconds."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Convert seconds into (fractional) cycles at ``frequency_hz``."""
    return seconds * frequency_hz


def seconds_to_ms(seconds: float) -> float:
    """Seconds to milliseconds."""
    return seconds / MILLI


def ms_to_seconds(ms: float) -> float:
    """Milliseconds to seconds."""
    return ms * MILLI


def seconds_to_us(seconds: float) -> float:
    """Seconds to microseconds."""
    return seconds / MICRO


def joules_to_pj(joules: float) -> float:
    """Joules to picojoules."""
    return joules / PICO


def pj_to_joules(pj: float) -> float:
    """Picojoules to joules."""
    return pj * PICO


def bytes_to_mb(n_bytes: float) -> float:
    """Bytes to mebibytes (the paper's 'MB' column uses 2**20)."""
    return n_bytes / MB


def mb_to_bytes(mb: float) -> float:
    """Mebibytes to bytes."""
    return mb * MB


def bytes_per_second_to_gbps(bps: float) -> float:
    """Bytes/second to GB/s (2**30-based)."""
    return bps / GB


def gbps_to_bytes_per_second(gbps: float) -> float:
    """GB/s (2**30-based) to bytes/second."""
    return gbps * GB
