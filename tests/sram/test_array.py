"""Unit tests for the compute SRAM array model."""

import numpy as np
import pytest

from repro.common.errors import ArrayStateError
from repro.sram import SRAMArray


def row(bits, cols=256):
    out = np.zeros(cols, dtype=np.uint8)
    out[:len(bits)] = bits
    return out


class TestPlainAccess:
    def test_starts_zeroed(self):
        array = SRAMArray()
        assert np.all(array.dump_bits(0, array.rows) == 0)

    def test_write_then_read_row(self):
        array = SRAMArray()
        data = row([1, 0, 1, 1])
        array.write_row(3, data)
        assert np.array_equal(array.read_row(3), data)

    def test_read_returns_copy(self):
        array = SRAMArray()
        got = array.read_row(0)
        got[0] = 1
        assert array.read_row(0)[0] == 0

    def test_masked_write_preserves_unselected_columns(self):
        array = SRAMArray()
        array.write_row(0, row([1, 1, 1, 1]))
        mask = row([1, 0, 1, 0])
        array.write_row(0, row([0, 0, 0, 0]), mask=mask)
        assert np.array_equal(array.read_row(0)[:4], [0, 1, 0, 1])

    def test_access_cycles_counted(self):
        array = SRAMArray()
        array.write_row(0, row([1]))
        array.read_row(0)
        assert array.access_cycles == 2
        assert array.compute_cycles == 0

    def test_row_bounds_checked(self):
        array = SRAMArray(rows=8, cols=8)
        with pytest.raises(ArrayStateError):
            array.read_row(8)
        with pytest.raises(ArrayStateError):
            array.write_row(-1, np.zeros(8, dtype=np.uint8))

    def test_bad_bit_width_rejected(self):
        array = SRAMArray(rows=8, cols=8)
        with pytest.raises(ArrayStateError):
            array.write_row(0, np.zeros(7, dtype=np.uint8))

    def test_non_binary_values_rejected(self):
        array = SRAMArray(rows=8, cols=8)
        with pytest.raises(ArrayStateError):
            array.write_row(0, np.full(8, 2, dtype=np.uint8))


class TestComputeSensing:
    def test_sense_produces_and_and_nor(self):
        array = SRAMArray()
        array.write_row(0, row([0, 0, 1, 1]))
        array.write_row(1, row([0, 1, 0, 1]))
        bl, blb = array.sense(0, 1)
        assert np.array_equal(bl[:4], [0, 0, 0, 1])      # A AND B
        assert np.array_equal(blb[:4], [1, 0, 0, 0])     # A NOR B

    def test_sense_is_nondestructive(self):
        array = SRAMArray()
        a = row([1, 0, 1])
        b = row([0, 1, 1])
        array.write_row(0, a)
        array.write_row(1, b)
        array.sense(0, 1)
        assert np.array_equal(array.read_row(0), a)
        assert np.array_equal(array.read_row(1), b)

    def test_sense_same_row_rejected(self):
        array = SRAMArray()
        with pytest.raises(ArrayStateError):
            array.sense(5, 5)

    def test_sense_single_gives_value_and_complement(self):
        array = SRAMArray()
        array.write_row(0, row([1, 0, 1]))
        bl, blb = array.sense_single(0)
        assert np.array_equal(bl[:3], [1, 0, 1])
        assert np.array_equal(blb[:3], [0, 1, 0])

    def test_compute_cycles_counted(self):
        array = SRAMArray()
        array.sense(0, 1)
        array.sense_single(2)
        assert array.compute_cycles == 2
        assert array.access_cycles == 0

    def test_write_back_costs_no_extra_cycle(self):
        array = SRAMArray()
        before = array.compute_cycles
        array.write_back(0, row([1]))
        assert array.compute_cycles == before

    def test_reset_counters(self):
        array = SRAMArray()
        array.sense(0, 1)
        array.read_row(0)
        array.reset_counters()
        assert array.access_cycles == 0
        assert array.compute_cycles == 0


class TestBulkHelpers:
    def test_load_dump_round_trip(self):
        array = SRAMArray(rows=16, cols=8)
        bits = np.eye(4, 8, dtype=np.uint8)
        array.load_bits(4, bits)
        assert np.array_equal(array.dump_bits(4, 4), bits)

    def test_load_with_column_offset(self):
        array = SRAMArray(rows=8, cols=8)
        array.load_bits(0, np.ones((2, 3), dtype=np.uint8), col_offset=5)
        assert np.array_equal(array.dump_bits(0, 2, col_offset=5, n_cols=3),
                              np.ones((2, 3), dtype=np.uint8))
        assert np.all(array.dump_bits(0, 2, col_offset=0, n_cols=5) == 0)

    def test_load_out_of_bounds_rejected(self):
        array = SRAMArray(rows=8, cols=8)
        with pytest.raises(ArrayStateError):
            array.load_bits(7, np.ones((2, 8), dtype=np.uint8))
        with pytest.raises(ArrayStateError):
            array.load_bits(0, np.ones((2, 4), dtype=np.uint8), col_offset=6)

    def test_geometry_validation(self):
        with pytest.raises(ArrayStateError):
            SRAMArray(rows=0)
        with pytest.raises(ArrayStateError):
            SRAMArray(cols=-1)
