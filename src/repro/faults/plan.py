"""Seeded fault plans: what breaks, where, and on which message.

A :class:`FaultPlan` is the single deterministic description of a chaos
run. It carries two independent halves:

* **software faults** (:class:`PoolFault`) — injected by the pool
  worker itself when it receives its ``seq``-th ``run`` message: die
  mid-batch (``kill``), answer late (``delay``), or finish the work but
  never answer (``drop``, which the parent can only observe as a hang).
  The parent's per-worker send counters drive ``seq``, so the schedule
  is a pure function of the dispatch history — re-running the same
  batch stream replays the same faults;
* **hardware faults** (:class:`~repro.faults.hardware.HardwareFaultModel`)
  — stuck-at bit-cells, dead wordlines and flaky sense amps, applied by
  wrapping every fleet's plane store in a
  :class:`~repro.faults.hardware.FaultyPlaneStore`.

Plans are frozen dataclasses of primitives, so they pickle across the
fork boundary into pool workers unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.hardware import HardwareFaultModel

__all__ = ["FaultPlan", "PoolFault"]

#: Software fault kinds a pool worker can inject on a run message.
POOL_FAULT_KINDS: tuple[str, ...] = ("kill", "delay", "drop")


@dataclass(frozen=True)
class PoolFault:
    """One recurring software fault on the pool's run-message stream.

    The fault fires on every ``run`` message whose per-worker sequence
    number is a multiple of ``every`` (the first message is ``seq=1``,
    so ``every=3`` fires on the 3rd, 6th, ... message a worker slot
    receives). ``kill`` and ``drop`` destroy the worker's reply, so they
    require ``every >= 2`` — the supervised re-dispatch arrives with a
    fresh sequence number and must be able to land between two firings,
    otherwise the plan would kill its own recovery forever.
    """

    #: ``kill`` (``os._exit`` mid-batch), ``delay`` or ``drop``.
    kind: str
    #: Worker slot the fault targets; ``None`` targets every slot.
    shard: int | None = None
    #: Fire on every ``every``-th run message of the targeted slot.
    every: int = 2
    #: Reply delay in seconds (``delay`` faults only).
    delay_s: float = 0.05

    def __post_init__(self):
        if self.kind not in POOL_FAULT_KINDS:
            raise SimulationError(
                f"unknown pool fault kind {self.kind!r}; available: "
                f"{', '.join(POOL_FAULT_KINDS)}")
        if self.every < 1:
            raise SimulationError(
                f"pool fault cadence must be >= 1, got {self.every}")
        if self.kind in ("kill", "drop") and self.every < 2:
            raise SimulationError(
                f"a {self.kind!r} fault with every={self.every} would "
                f"also destroy every re-dispatched retry; use every >= 2")
        if self.delay_s < 0:
            raise SimulationError(
                f"fault delay must be non-negative, got {self.delay_s}")
        if self.shard is not None and self.shard < 0:
            raise SimulationError(
                f"fault shard must be non-negative, got {self.shard}")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic chaos schedule: software + hardware faults."""

    #: Seed namespace for anything stochastic downstream (the hardware
    #: model carries its own seed; this one names the plan).
    seed: int = 0
    #: Software faults on the pool's message stream.
    pool: tuple[PoolFault, ...] = ()
    #: Bit-cell/sense-amp fault model applied inside every worker's
    #: fleets (``None`` = electrically perfect arrays).
    hardware: "HardwareFaultModel | None" = None

    def __post_init__(self):
        object.__setattr__(self, "pool", tuple(self.pool))
        for fault in self.pool:
            if not isinstance(fault, PoolFault):
                raise SimulationError(
                    f"pool faults must be PoolFault instances, got "
                    f"{type(fault).__name__}")

    def pool_action(self, shard: int, seq: int) -> PoolFault | None:
        """The fault (if any) a worker applies to run message ``seq``.

        First matching fault wins, so a plan can layer a targeted fault
        over a broadcast one.
        """
        for fault in self.pool:
            if fault.shard is not None and fault.shard != shard:
                continue
            if seq % fault.every == 0:
                return fault
        return None
