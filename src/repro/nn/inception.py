"""Inception v3 (Szegedy et al., the paper's benchmark model).

Builds the full inference graph — 95 convolution sub-layers across 20
top-level groups — with the exact channel counts of the TF-slim reference
implementation the paper profiled. The per-group statistics reproduce
Table I:

* ``Conv``  = sum of output elements of the group's convolutions;
* ``Filter Size`` = filter bytes (8-bit weights);
* ``Input Size`` = the group's external input volume times the number of
  branches that read it (the convention that matches every published row).

Known discrepancies with the published table (see EXPERIMENTS.md):

* the paper's Mixed_6e row repeats Mixed_6c/6d's counts although its own
  C-range column (192-768) implies the standard 192-channel Mixed_6e built
  here (554,880 convolutions, 2.04 MB of filters);
* the paper's Mixed_6a filter size (0.255 MB) corresponds to reading the
  TF-slim scope name ``Branch_0/Conv2d_1a_1x1`` as a true 1x1 filter; the
  actual op in that scope is a 3x3 stride-2 convolution (a 1x1 stride-2
  conv would discard three quarters of its input), giving 1.10 MB;
* the paper counts "94 convolutional sub-layers" where the faithful graph
  has 95 (the FC-as-conv layer accounts for the difference).

All remaining 18 rows' Conv / Filter Size / Input Size columns match the
published table exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import bytes_to_mb
from repro.nn.graph import Network, Node
from repro.nn.layers import AvgPool, Concat, Conv2D, FullyConnected, MaxPool

INPUT_SHAPE = (299, 299, 3)
NUM_CLASSES = 1001


def _conv(net: Network, name: str, src: str, channels: int,
          kernel: tuple[int, int], stride: int = 1, padding: str = "same",
          group: str | None = None) -> str:
    return net.add(name, Conv2D(out_channels=channels, kernel=kernel,
                                stride=stride, padding=padding),
                   src, group=group)


def _inception_a(net: Network, name: str, src: str, pool_channels: int) -> str:
    """35x35 module (Mixed_5b/5c/5d): 1x1 / 5x5 / double-3x3 / pool-proj."""
    b0 = _conv(net, f"{name}/Branch_0/Conv2d_0a_1x1", src, 64, (1, 1),
               group=name)
    b1 = _conv(net, f"{name}/Branch_1/Conv2d_0a_1x1", src, 48, (1, 1),
               group=name)
    b1 = _conv(net, f"{name}/Branch_1/Conv2d_0b_5x5", b1, 64, (5, 5),
               group=name)
    b2 = _conv(net, f"{name}/Branch_2/Conv2d_0a_1x1", src, 64, (1, 1),
               group=name)
    b2 = _conv(net, f"{name}/Branch_2/Conv2d_0b_3x3", b2, 96, (3, 3),
               group=name)
    b2 = _conv(net, f"{name}/Branch_2/Conv2d_0c_3x3", b2, 96, (3, 3),
               group=name)
    b3 = net.add(f"{name}/Branch_3/AvgPool_0a_3x3",
                 AvgPool(kernel=(3, 3), stride=1, padding="same"), src,
                 group=name)
    b3 = _conv(net, f"{name}/Branch_3/Conv2d_0b_1x1", b3, pool_channels,
               (1, 1), group=name)
    return net.add(f"{name}/concat", Concat(), (b0, b1, b2, b3), group=name)


def _reduction_a(net: Network, name: str, src: str) -> str:
    """35->17 reduction (Mixed_6a): strided 3x3 / double-3x3 / maxpool."""
    b0 = _conv(net, f"{name}/Branch_0/Conv2d_1a_1x1", src, 384, (3, 3),
               stride=2, padding="valid", group=name)
    b1 = _conv(net, f"{name}/Branch_1/Conv2d_0a_1x1", src, 64, (1, 1),
               group=name)
    b1 = _conv(net, f"{name}/Branch_1/Conv2d_0b_3x3", b1, 96, (3, 3),
               group=name)
    b1 = _conv(net, f"{name}/Branch_1/Conv2d_1a_1x1", b1, 96, (3, 3),
               stride=2, padding="valid", group=name)
    b2 = net.add(f"{name}/Branch_2/MaxPool_1a_3x3",
                 MaxPool(kernel=(3, 3), stride=2, padding="valid"), src,
                 group=name)
    return net.add(f"{name}/concat", Concat(), (b0, b1, b2), group=name)


def _inception_b(net: Network, name: str, src: str, mid_channels: int) -> str:
    """17x17 module (Mixed_6b..6e): factorised 7x7 convolutions."""
    k = mid_channels
    b0 = _conv(net, f"{name}/Branch_0/Conv2d_0a_1x1", src, 192, (1, 1),
               group=name)
    b1 = _conv(net, f"{name}/Branch_1/Conv2d_0a_1x1", src, k, (1, 1),
               group=name)
    b1 = _conv(net, f"{name}/Branch_1/Conv2d_0b_1x7", b1, k, (1, 7),
               group=name)
    b1 = _conv(net, f"{name}/Branch_1/Conv2d_0c_7x1", b1, 192, (7, 1),
               group=name)
    b2 = _conv(net, f"{name}/Branch_2/Conv2d_0a_1x1", src, k, (1, 1),
               group=name)
    b2 = _conv(net, f"{name}/Branch_2/Conv2d_0b_7x1", b2, k, (7, 1),
               group=name)
    b2 = _conv(net, f"{name}/Branch_2/Conv2d_0c_1x7", b2, k, (1, 7),
               group=name)
    b2 = _conv(net, f"{name}/Branch_2/Conv2d_0d_7x1", b2, k, (7, 1),
               group=name)
    b2 = _conv(net, f"{name}/Branch_2/Conv2d_0e_1x7", b2, 192, (1, 7),
               group=name)
    b3 = net.add(f"{name}/Branch_3/AvgPool_0a_3x3",
                 AvgPool(kernel=(3, 3), stride=1, padding="same"), src,
                 group=name)
    b3 = _conv(net, f"{name}/Branch_3/Conv2d_0b_1x1", b3, 192, (1, 1),
               group=name)
    return net.add(f"{name}/concat", Concat(), (b0, b1, b2, b3), group=name)


def _reduction_b(net: Network, name: str, src: str) -> str:
    """17->8 reduction (Mixed_7a)."""
    b0 = _conv(net, f"{name}/Branch_0/Conv2d_0a_1x1", src, 192, (1, 1),
               group=name)
    b0 = _conv(net, f"{name}/Branch_0/Conv2d_1a_3x3", b0, 320, (3, 3),
               stride=2, padding="valid", group=name)
    b1 = _conv(net, f"{name}/Branch_1/Conv2d_0a_1x1", src, 192, (1, 1),
               group=name)
    b1 = _conv(net, f"{name}/Branch_1/Conv2d_0b_1x7", b1, 192, (1, 7),
               group=name)
    b1 = _conv(net, f"{name}/Branch_1/Conv2d_0c_7x1", b1, 192, (7, 1),
               group=name)
    b1 = _conv(net, f"{name}/Branch_1/Conv2d_1a_3x3", b1, 192, (3, 3),
               stride=2, padding="valid", group=name)
    b2 = net.add(f"{name}/Branch_2/MaxPool_1a_3x3",
                 MaxPool(kernel=(3, 3), stride=2, padding="valid"), src,
                 group=name)
    return net.add(f"{name}/concat", Concat(), (b0, b1, b2), group=name)


def _inception_c(net: Network, name: str, src: str) -> str:
    """8x8 module (Mixed_7b/7c): split 3x3 into parallel 1x3 and 3x1."""
    b0 = _conv(net, f"{name}/Branch_0/Conv2d_0a_1x1", src, 320, (1, 1),
               group=name)
    b1 = _conv(net, f"{name}/Branch_1/Conv2d_0a_1x1", src, 384, (1, 1),
               group=name)
    b1a = _conv(net, f"{name}/Branch_1/Conv2d_0b_1x3", b1, 384, (1, 3),
                group=name)
    b1b = _conv(net, f"{name}/Branch_1/Conv2d_0b_3x1", b1, 384, (3, 1),
                group=name)
    b2 = _conv(net, f"{name}/Branch_2/Conv2d_0a_1x1", src, 448, (1, 1),
               group=name)
    b2 = _conv(net, f"{name}/Branch_2/Conv2d_0b_3x3", b2, 384, (3, 3),
               group=name)
    b2a = _conv(net, f"{name}/Branch_2/Conv2d_0c_1x3", b2, 384, (1, 3),
                group=name)
    b2b = _conv(net, f"{name}/Branch_2/Conv2d_0d_3x1", b2, 384, (3, 1),
                group=name)
    b3 = net.add(f"{name}/Branch_3/AvgPool_0a_3x3",
                 AvgPool(kernel=(3, 3), stride=1, padding="same"), src,
                 group=name)
    b3 = _conv(net, f"{name}/Branch_3/Conv2d_0b_1x1", b3, 192, (1, 1),
               group=name)
    return net.add(f"{name}/concat", Concat(),
                   (b0, b1a, b1b, b2a, b2b, b3), group=name)


def build_inception_v3() -> Network:
    """The full Inception v3 inference graph (Table I's 20 groups)."""
    net = Network(name="inception_v3")
    x = net.add_input("input", INPUT_SHAPE)
    x = _conv(net, "Conv2d_1a_3x3", x, 32, (3, 3), stride=2, padding="valid")
    x = _conv(net, "Conv2d_2a_3x3", x, 32, (3, 3), padding="valid")
    x = _conv(net, "Conv2d_2b_3x3", x, 64, (3, 3), padding="same")
    x = net.add("MaxPool_3a_3x3", MaxPool(kernel=(3, 3), stride=2,
                                          padding="valid"), x)
    x = _conv(net, "Conv2d_3b_1x1", x, 80, (1, 1), padding="valid")
    x = _conv(net, "Conv2d_4a_3x3", x, 192, (3, 3), padding="valid")
    x = net.add("MaxPool_5a_3x3", MaxPool(kernel=(3, 3), stride=2,
                                          padding="valid"), x)
    x = _inception_a(net, "Mixed_5b", x, pool_channels=32)
    x = _inception_a(net, "Mixed_5c", x, pool_channels=64)
    x = _inception_a(net, "Mixed_5d", x, pool_channels=64)
    x = _reduction_a(net, "Mixed_6a", x)
    x = _inception_b(net, "Mixed_6b", x, mid_channels=128)
    x = _inception_b(net, "Mixed_6c", x, mid_channels=160)
    x = _inception_b(net, "Mixed_6d", x, mid_channels=160)
    x = _inception_b(net, "Mixed_6e", x, mid_channels=192)
    x = _reduction_b(net, "Mixed_7a", x)
    x = _inception_c(net, "Mixed_7b", x)
    x = _inception_c(net, "Mixed_7c", x)
    x = net.add("AvgPool", AvgPool(kernel=(8, 8), stride=1,
                                   padding="valid"), x)
    net.add("FullyConnected", FullyConnected(out_features=NUM_CLASSES), x)
    return net


# ---------------------------------------------------------------------------
# Table I regeneration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LayerGroupStats:
    """One row of Table I."""

    group: str
    input_height: int
    kernel_sizes: tuple[int, int]      # (min, max) of R*S over convs
    output_height: int
    channels: tuple[int, int]          # (min, max) conv input channels
    out_channels: tuple[int, int]      # (min, max) conv output channels
    convolutions: int
    filter_bytes: int
    input_bytes: int

    @property
    def filter_mb(self) -> float:
        return bytes_to_mb(self.filter_bytes)

    @property
    def input_mb(self) -> float:
        return bytes_to_mb(self.input_bytes)

    def kernel_label(self) -> str:
        lo, hi = self.kernel_sizes
        return str(lo) if lo == hi else f"{lo}-{hi}"

    def channel_label(self) -> str:
        lo, hi = self.channels
        return str(lo) if lo == hi else f"{lo}-{hi}"


def _external_inputs(net: Network, group: str) -> list[Node]:
    """Group nodes whose (first) input comes from outside the group —
    the 'branches' of Table I's input-size convention."""
    members = {n.name for n in net.group_nodes(group)}
    heads = []
    for node in net.group_nodes(group):
        if any(name not in members for name in node.inputs):
            heads.append(node)
    return heads


def group_stats(net: Network, group: str) -> LayerGroupStats:
    """Compute one Table I row from the graph."""
    nodes = net.group_nodes(group)
    heads = _external_inputs(net, group)
    external_name = next(name for name in heads[0].inputs
                         if name not in {n.name for n in nodes})
    external_shape = net.node(external_name).output_shape
    input_volume = external_shape[0] * external_shape[1] * external_shape[2]

    convs = [n for n in nodes
             if n.name in {c.name for c in net.conv_nodes()}]
    kernel_sizes = []
    in_channels = []
    out_channels = []
    convolutions = 0
    filter_bytes = 0
    for node in convs:
        conv = net.conv_of(node)
        in_shape = net.input_shape_of(node.name)
        kernel_sizes.append(conv.kernel[0] * conv.kernel[1])
        in_channels.append(in_shape[2])
        out_channels.append(conv.out_channels)
        convolutions += conv.convolutions(in_shape)
        filter_bytes += conv.weight_bytes(in_shape)

    last = nodes[-1]
    if not convs:
        # Pool-only groups: the paper reports C = 0 and M = pool channels.
        in_channels = [0]
        out_channels = [last.output_shape[2]]
        kernel_sizes = [nodes[0].layer.window]  # type: ignore[union-attr]
    return LayerGroupStats(
        group=group,
        input_height=external_shape[0],
        kernel_sizes=(min(kernel_sizes), max(kernel_sizes)),
        output_height=last.output_shape[0],
        channels=(min(in_channels), max(in_channels)),
        out_channels=(min(out_channels), max(out_channels)),
        convolutions=convolutions,
        filter_bytes=filter_bytes,
        input_bytes=input_volume * len(heads),
    )


def table1(net: Network | None = None) -> list[LayerGroupStats]:
    """All Table I rows, in network order."""
    if net is None:
        net = build_inception_v3()
    return [group_stats(net, group) for group in net.groups()]
