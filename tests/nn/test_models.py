"""Tests for the model zoo and the element-wise Add layer."""

import numpy as np
import pytest

from repro.common.errors import ShapeError
from repro.config import NeuralCacheConfig
from repro.core.executor import NeuralCacheSimulator
from repro.nn import (
    Add,
    QuantizedTensor,
    ReferenceExecutor,
    build_lenet5,
    build_mlp,
    build_resnet_tiny,
    build_vgg_tiny,
    initialise_weights,
    model_zoo,
)
from repro.nn.reference import add_quantized

RNG = np.random.default_rng(31)


class TestAddLayer:
    def test_shape_inference(self):
        assert Add().output_shape((4, 4, 8), (4, 4, 8)) == (4, 4, 8)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ShapeError):
            Add().output_shape((4, 4, 8), (4, 4, 16))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ShapeError):
            Add().output_shape((4, 4, 8))

    def test_add_quantized_exact(self):
        a = RNG.integers(0, 256, (3, 3, 2)).astype(np.uint8)
        b = RNG.integers(0, 256, (3, 3, 2)).astype(np.uint8)
        zp = 30
        out = add_quantized(a, b, zp)
        expected = np.clip(a.astype(int) + b.astype(int) - zp, 0, 255)
        assert np.array_equal(out, expected.astype(np.uint8))

    def test_add_quantized_relu_clamps_at_zero_point(self):
        a = np.zeros((2, 2, 1), dtype=np.uint8)
        b = np.zeros((2, 2, 1), dtype=np.uint8)
        out = add_quantized(a, b, zero_point=50, relu=True)
        assert np.all(out == 50)

    def test_add_quantized_shape_check(self):
        with pytest.raises(ShapeError):
            add_quantized(np.zeros((2, 2, 1), dtype=np.uint8),
                          np.zeros((2, 2, 2), dtype=np.uint8), 0)


class TestModelShapes:
    def test_lenet(self):
        net = build_lenet5()
        assert net.input_shape == (28, 28, 1)
        assert net.node(net.output_name).output_shape == (1, 1, 10)

    def test_vgg_tiny(self):
        net = build_vgg_tiny()
        assert net.node("block3/pool").output_shape == (2, 2, 32)
        assert net.node(net.output_name).output_shape == (1, 1, 10)

    def test_vgg_validation(self):
        with pytest.raises(ShapeError):
            build_vgg_tiny(input_size=10, blocks=3)
        with pytest.raises(ShapeError):
            build_vgg_tiny(blocks=0)

    def test_resnet_tiny(self):
        net = build_resnet_tiny()
        assert net.node("stage1/block1/add").output_shape == (16, 16, 8)
        assert net.node("stage2/block1/add").output_shape == (8, 8, 16)
        assert net.node(net.output_name).output_shape == (1, 1, 10)

    def test_resnet_projection_only_on_channel_change(self):
        net = build_resnet_tiny()
        names = {n.name for n in net.layer_nodes()}
        assert "stage2/block1/projection" in names
        assert "stage1/block2/projection" not in names

    def test_resnet_validation(self):
        with pytest.raises(ShapeError):
            build_resnet_tiny(input_size=10)

    def test_mlp(self):
        net = build_mlp()
        assert net.node(net.output_name).output_shape == (1, 1, 10)
        assert len(net.conv_nodes()) == 3

    def test_zoo_names(self):
        zoo = model_zoo()
        assert set(zoo) == {"lenet5", "vgg-tiny", "resnet-tiny", "mlp",
                            "inception-v3", "inception-span"}


class TestModelsRunEverywhere:
    @pytest.mark.parametrize("builder", [build_lenet5, build_vgg_tiny,
                                         build_resnet_tiny, build_mlp])
    def test_reference_execution(self, builder):
        net = builder()
        weights = initialise_weights(net, seed=9)
        image = QuantizedTensor.from_real(
            RNG.uniform(0, 6, net.input_shape), weights.input_params)
        out = ReferenceExecutor(net, weights).run_output(image)
        assert out.shape == net.node(net.output_name).output_shape

    @pytest.mark.parametrize("builder", [build_lenet5, build_vgg_tiny,
                                         build_resnet_tiny, build_mlp])
    def test_analytic_simulation(self, builder):
        net = builder()
        result = NeuralCacheSimulator(net, NeuralCacheConfig()).run()
        assert result.total_time > 0
        assert result.total_energy > 0

    def test_resnet_add_layers_are_mapped(self):
        net = build_resnet_tiny()
        sim = NeuralCacheSimulator(net)
        add_mappings = [m for m in sim.mappings if m.kind == "add"]
        assert len(add_mappings) == 4
        for mapping in add_mappings:
            assert mapping.filter_load_bytes == 0
            assert mapping.channels_padded == 1
            assert mapping.input_bytes_per_output == 2

    def test_add_layers_are_cheap(self):
        """Residual adds should be a tiny share of ResNet's latency."""
        net = build_resnet_tiny()
        result = NeuralCacheSimulator(net).run()
        add_time = sum(r.latency for r in result.layers
                       if r.schedule.mapping.kind == "add")
        assert add_time < 0.05 * result.total_time
