"""Word-line region allocation inside one compute array (Figure 10).

The mapper reserves vertical regions of an array for filters, inputs,
scratchpad, partial sums, outputs and the two 4-byte reduction segments.
:class:`ArrayLayout` is a simple bump allocator over the 256 wordlines with
named regions, used both by the functional executor (which needs real row
numbers) and by the mapping engine (which only needs to know whether a
layer's regions fit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import LayoutError
from repro.sram.bitserial import Operand

#: Bits per element everywhere in Neural Cache's data layout (Sec. IV):
#: "each data element is stored as a multiple of a byte".
BITS_PER_BYTE = 8

#: Fixed region heights from Figure 10 (in wordlines).
SCRATCHPAD_BITS = 2 * BITS_PER_BYTE     # 2x8: multiplication scratchpad
PARTIAL_SUM_BITS = 3 * BITS_PER_BYTE    # 3x8: MAC partial sums
OUTPUT_BITS = 4 * BITS_PER_BYTE         # 4x8: per-convolution output
REDUCTION_SEGMENT_BITS = 4 * BITS_PER_BYTE  # 4x8: each reduction operand


@dataclass
class ArrayLayout:
    """Named vertical regions over one array's wordlines."""

    rows: int = 256
    _next: int = 0
    _regions: dict[str, Operand] = field(default_factory=dict)

    def allocate(self, name: str, nbits: int) -> Operand:
        """Reserve ``nbits`` contiguous wordlines under ``name``."""
        if name in self._regions:
            raise LayoutError(f"region {name!r} already allocated")
        if nbits <= 0:
            raise LayoutError(f"region {name!r} must be positive, got {nbits}")
        if self._next + nbits > self.rows:
            raise LayoutError(
                f"region {name!r} ({nbits} rows) does not fit: "
                f"{self.rows - self._next} of {self.rows} rows remain")
        region = Operand(self._next, nbits)
        self._regions[name] = region
        self._next += nbits
        return region

    def region(self, name: str) -> Operand:
        """Look up a previously allocated region."""
        try:
            return self._regions[name]
        except KeyError:
            raise LayoutError(f"no region named {name!r}") from None

    @property
    def used_rows(self) -> int:
        """Wordlines consumed so far."""
        return self._next

    @property
    def free_rows(self) -> int:
        """Wordlines still available."""
        return self.rows - self._next

    def names(self) -> list[str]:
        """Allocated region names in allocation order."""
        return list(self._regions)


def conv_layout(filter_bytes: int, rows: int = 256,
                extra_input_bytes: int = 0,
                outputs: int = 1) -> ArrayLayout:
    """Build the convolution layout of Figure 10(a).

    Per bitline: ``filter_bytes`` (= R'.S' after packing/splitting) of
    filter weights, the same height of input elements, a 2-byte scratchpad,
    a 3-byte partial sum and 4-byte outputs. ``extra_input_bytes`` models
    the input-reuse buffering of Sec. IV-A; ``outputs`` reserves space for
    several serial convolutions' results.
    """
    if filter_bytes <= 0:
        raise LayoutError(f"filter height must be positive, got {filter_bytes}")
    layout = ArrayLayout(rows=rows)
    layout.allocate("filter", filter_bytes * BITS_PER_BYTE)
    layout.allocate("input",
                    (filter_bytes + extra_input_bytes) * BITS_PER_BYTE)
    layout.allocate("scratchpad", SCRATCHPAD_BITS)
    layout.allocate("partial_sum", PARTIAL_SUM_BITS)
    layout.allocate("output", OUTPUT_BITS * outputs)
    return layout


def reduction_layout(rows: int = 256, filter_bytes: int = 0) -> ArrayLayout:
    """Build the reduction layout of Figure 10(b).

    The scratchpad and partial sums are dead by reduction time and are
    overwritten by the two 4-byte reduction segments (the paper reuses that
    space: "the scratch pad and partial sum can be overwritten for
    reduction").
    """
    layout = ArrayLayout(rows=rows)
    if filter_bytes:
        layout.allocate("filter", filter_bytes * BITS_PER_BYTE)
        layout.allocate("input", filter_bytes * BITS_PER_BYTE)
    layout.allocate("reduce_a", REDUCTION_SEGMENT_BITS)
    layout.allocate("reduce_b", REDUCTION_SEGMENT_BITS)
    layout.allocate("output", OUTPUT_BITS)
    return layout


def max_conv_filter_bytes(rows: int = 256) -> int:
    """Largest R'.S' (bytes per bitline) that still fits Figure 10(a).

    With 256 rows this is 11; the paper splits filters above 9 bytes, which
    leaves two bytes of input-reuse headroom for the common 3x3 case.
    """
    fixed = SCRATCHPAD_BITS + PARTIAL_SUM_BITS + OUTPUT_BITS
    return (rows - fixed) // (2 * BITS_PER_BYTE)
