"""Static dataflow verification and runtime sanitizing for Neural Cache
programs.

Design note — the ProgramFacts IR
=================================

The paper's execution model is "validate a program once, broadcast it to
thousands of arrays in lockstep" (Sec. IV-F). This package is the
*validate once* half, built around one IR with two frontends and two
consumers:

::

    ControlFSM ISA program ──lift_isa_program──┐
                                               ├─> ProgramFacts ─> passes
    recorded FleetBitSerialUnit calls ──lift_calls──┘      │
                                                           v
    any PlaneStore ── ShadowPlaneStore ──(dynamic oracle)── agreement

:class:`~repro.verify.facts.ProgramFacts` is a *linear* dataflow IR: one
record per program step declaring the wordline regions it reads, writes,
predicated-writes (read-modify-write through the tag-gated drivers),
scratches (write-then-consume), its tag/carry latch effects, and the
aliasing constraints its implementation imposes. Linearity is not a
simplification — broadcast programs genuinely have no branches (control
flow lives on the host), which is why straight-line passes are *complete*
for this machine: def-before-use, operand-overlap legality, geometry
bounds, tag/carry discipline and dead-write detection each need one walk.

All per-op semantics live in the lifters (:mod:`repro.verify.lift`); the
passes (:mod:`repro.verify.passes`) are generic interpreters over the
records. A future transformation — e.g. BitWave-style zero-plane skipping
or the ROADMAP's cross-array reduction — hangs its legality analysis
here: transform the op list, re-run the passes, and diff the facts
against the original program's to prove dataflow equivalence.

The second half is the shadow-state sanitizer
(:class:`~repro.verify.sanitizer.ShadowPlaneStore`, enabled by
``make_fleet(..., sanitize=True)`` or ``NEURALCACHE_SANITIZE=1``): a
per-row init tracker on the store seam that raises structured
:class:`~repro.common.errors.VerifyError` at the exact offending
primitive. It is the ground truth the static ``uninit-read`` pass is
property-tested against — static-clean programs must execute without a
raise; seeded violations must trip both.

``python -m repro verify`` checks every registered model's recorded layer
programs (see :mod:`repro.verify.cli`); CI runs it as the ``verify`` job.
"""

from repro.common.errors import VerifyError
from repro.verify.extract import (
    ModelPrograms,
    extract_model_programs,
    registered_models,
)
from repro.verify.facts import (
    EXECUTED,
    SKIPPED,
    Constraint,
    OpFacts,
    ProgramFacts,
    Region,
)
from repro.verify.lift import lift_calls, lift_isa_program, op_facts
from repro.verify.passes import (
    Finding,
    assert_clean,
    check_bounds,
    check_dead_writes,
    check_def_before_use,
    check_overlap,
    check_skips,
    check_tag_carry,
    verify_program,
)
from repro.verify.recorder import (
    ProgramRecorder,
    RecordedCall,
    record_programs,
)
from repro.verify.sanitizer import ShadowPlaneStore

__all__ = [
    "EXECUTED",
    "SKIPPED",
    "Constraint",
    "Finding",
    "ModelPrograms",
    "OpFacts",
    "ProgramFacts",
    "ProgramRecorder",
    "RecordedCall",
    "Region",
    "ShadowPlaneStore",
    "VerifyError",
    "assert_clean",
    "check_bounds",
    "check_dead_writes",
    "check_def_before_use",
    "check_overlap",
    "check_skips",
    "check_tag_carry",
    "extract_model_programs",
    "lift_calls",
    "lift_isa_program",
    "op_facts",
    "record_programs",
    "registered_models",
    "verify_program",
]
