"""``python -m repro verify`` — statically check every model's programs.

Extracts the per-layer bit-serial programs of each registered model (one
recorded functional inference; sequences are data-independent) and runs
all static passes over them. Exit status 0 means every extracted program
is clean; any finding, or a failure to extract a model that should run,
exits 1. Models the functional engine cannot execute are reported as
skipped — the paper-side analytic model covers them, there is simply no
program to lift.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.verify.extract import extract_model_programs, registered_models
from repro.verify.passes import verify_program

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro verify",
        description="Statically verify the dataflow of every registered "
                    "model's bit-serial layer programs.")
    parser.add_argument("--model", action="append", default=None,
                        metavar="NAME",
                        help="check only this model (repeatable; default: "
                             "all registered models)")
    parser.add_argument("--unpacked", action="store_true",
                        help="record over the unpacked reference store "
                             "instead of the packed word store")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="list every checked program, not just totals")
    args = parser.parse_args(argv)

    names = args.model if args.model else registered_models()
    unknown = [n for n in names if n not in registered_models()]
    if unknown:
        parser.error(f"unknown model(s): {', '.join(unknown)}; "
                     f"registered: {', '.join(registered_models())}")

    total_programs = 0
    total_ops = 0
    failures = 0
    for name in names:
        extracted = extract_model_programs(name, packed=not args.unpacked)
        if extracted.skipped is not None:
            print(f"{name}: SKIP ({extracted.skipped})")
            continue
        model_findings = 0
        for facts in extracted.programs:
            findings = verify_program(facts)
            total_programs += 1
            total_ops += len(facts)
            if findings:
                model_findings += len(findings)
                failures += len(findings)
                print(f"{name}/{facts.label}: {len(findings)} finding(s)")
                for finding in findings:
                    print(f"  {finding}")
            elif args.verbose:
                print(f"{name}/{facts.label}: ok ({len(facts)} ops)")
        if not model_findings:
            print(f"{name}: ok ({len(extracted.programs)} programs)")
    print(f"verified {total_programs} programs / {total_ops} ops: "
          f"{failures} finding(s)")
    return 1 if failures else 0
