"""Energy, delay and area model of the compute SRAM array (Sec. V, Fig. 12).

All constants come from the paper's SPICE characterisation of an 8KB
computational SRAM at 28 nm, scaled to the 22 nm node of the modelled Xeon
E5-2697 v3:

* compute cycle (two-row activation + write-back over 256 bitlines):
  25.7 pJ at 28 nm -> 15.4 pJ at 22 nm, delay 1022 ps;
* normal SRAM access cycle: 13.9 pJ -> 8.6 pJ, delay 654 ps;
* compute frequency is conservatively set to 2.5 GHz (vs 4 GHz for plain
  accesses);
* the extra bit-line peripherals and decoder cost 7.5% area per array,
  which is under 2% of the processor die.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import pj_to_joules

# -- published constants (Sec. V) -------------------------------------------
COMPUTE_ENERGY_PJ_28NM = 25.7
ACCESS_ENERGY_PJ_28NM = 13.9
COMPUTE_ENERGY_PJ_22NM = 15.4
ACCESS_ENERGY_PJ_22NM = 8.6

COMPUTE_DELAY_PS = 1022.0
ACCESS_DELAY_PS = 654.0

COMPUTE_FREQUENCY_HZ = 2.5e9
ACCESS_FREQUENCY_HZ = 4.0e9

#: Fraction of array area added by compute peripherals (Fig. 12).
ARRAY_AREA_OVERHEAD = 0.075

#: Figure 12 layout dimensions (um): the base array with wordline drivers
#: and the extra height added by the computation logic.
ARRAY_WIDTH_UM = 263.0
ARRAY_HEIGHT_UM = 120.0
COMPUTE_LOGIC_EXTRA_UM = 7.0


@dataclass(frozen=True)
class ArrayEnergyModel:
    """Per-cycle energy of one 8KB array (whole 256-bitline row per cycle)."""

    compute_pj: float = COMPUTE_ENERGY_PJ_22NM
    access_pj: float = ACCESS_ENERGY_PJ_22NM

    @classmethod
    def at_28nm(cls) -> "ArrayEnergyModel":
        """The as-fabricated 28 nm test-chip numbers."""
        return cls(compute_pj=COMPUTE_ENERGY_PJ_28NM,
                   access_pj=ACCESS_ENERGY_PJ_28NM)

    def compute_energy(self, cycles: float, arrays: float = 1.0) -> float:
        """Joules spent by ``arrays`` arrays doing ``cycles`` compute cycles."""
        self._check(cycles, arrays)
        return pj_to_joules(self.compute_pj) * cycles * arrays

    def access_energy(self, cycles: float, arrays: float = 1.0) -> float:
        """Joules spent by ``arrays`` arrays doing ``cycles`` access cycles."""
        self._check(cycles, arrays)
        return pj_to_joules(self.access_pj) * cycles * arrays

    @staticmethod
    def _check(cycles: float, arrays: float) -> None:
        if cycles < 0 or arrays < 0:
            raise ValueError("cycle and array counts must be non-negative")


@dataclass(frozen=True)
class ArrayAreaModel:
    """Area accounting for the compute-enabled array (Fig. 12)."""

    width_um: float = ARRAY_WIDTH_UM
    height_um: float = ARRAY_HEIGHT_UM
    compute_extra_um: float = COMPUTE_LOGIC_EXTRA_UM

    @property
    def total_area_mm2(self) -> float:
        """Total area of one compute-enabled array in mm^2."""
        return self.width_um * self.height_um * 1e-6

    @property
    def overhead_fraction(self) -> float:
        """Area overhead of compute support relative to the plain array.

        The published figure is 7.5% (extra peripherals plus an extra
        decoder); the pure-height contribution of the peripheral logic is
        ``compute_extra_um / (height - compute_extra_um)``.
        """
        return ARRAY_AREA_OVERHEAD

    def die_overhead_fraction(self, cache_die_fraction: float = 0.25) -> float:
        """Overhead relative to the whole processor die.

        ``cache_die_fraction`` is the share of die area occupied by the
        re-purposed SRAM data arrays; with the paper's default this lands
        below 2%.
        """
        if not 0 < cache_die_fraction <= 1:
            raise ValueError(
                f"cache_die_fraction must be in (0, 1], got "
                f"{cache_die_fraction}")
        return self.overhead_fraction * cache_die_fraction
