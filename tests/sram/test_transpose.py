"""Tests for the Transpose Memory Unit (Figure 8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ArrayStateError
from repro.sram import TransposeMemoryUnit


class TestFunctional:
    def test_transpose_shape(self):
        tmu = TransposeMemoryUnit(word_bits=8)
        bits = tmu.transpose(np.arange(16))
        assert bits.shape == (8, 16)

    def test_transpose_bit_placement(self):
        tmu = TransposeMemoryUnit(word_bits=4)
        bits = tmu.transpose(np.array([0b1010]))
        # LSB-first rows: bit 0 at row 0.
        assert list(bits[:, 0]) == [0, 1, 0, 1]

    def test_round_trip(self):
        tmu = TransposeMemoryUnit(word_bits=8)
        values = np.array([0, 1, 127, 128, 255, 42])
        assert np.array_equal(tmu.untranspose(tmu.transpose(values)), values)

    def test_untranspose_validates_shape(self):
        tmu = TransposeMemoryUnit(word_bits=8)
        with pytest.raises(ArrayStateError):
            tmu.untranspose(np.zeros((4, 8), dtype=np.uint8))

    def test_vector_only(self):
        tmu = TransposeMemoryUnit()
        with pytest.raises(ArrayStateError):
            tmu.transpose(np.zeros((2, 2)))


class TestCycleModel:
    def test_single_batch_cost(self):
        tmu = TransposeMemoryUnit(word_bits=8, capacity_words=64)
        tmu.transpose(np.zeros(64, dtype=np.int64))
        # 64 word writes + 8 bit-row reads.
        assert tmu.cycles == 64 + 8

    def test_multi_batch_cost(self):
        tmu = TransposeMemoryUnit(word_bits=8, capacity_words=64)
        tmu.transpose(np.zeros(100, dtype=np.int64))
        assert tmu.cycles == (64 + 8) + (36 + 8)

    def test_untranspose_costs_the_same(self):
        tmu_a = TransposeMemoryUnit()
        tmu_b = TransposeMemoryUnit()
        values = np.arange(50)
        bits = tmu_a.transpose(values)
        tmu_b.untranspose(bits)
        assert tmu_a.cycles == tmu_b.cycles

    def test_invalid_geometry(self):
        with pytest.raises(ArrayStateError):
            TransposeMemoryUnit(word_bits=0)


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                max_size=200))
@settings(max_examples=50, deadline=None)
def test_round_trip_property(values):
    tmu = TransposeMemoryUnit(word_bits=8)
    array = np.array(values, dtype=np.int64)
    assert np.array_equal(tmu.untranspose(tmu.transpose(array)), array)


class TestRoundTripRagged:
    """Round trips on ragged widths that straddle batch boundaries."""

    @given(st.integers(min_value=1, max_value=16),
           st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_width_round_trips(self, word_bits, data):
        n = data.draw(st.integers(min_value=1, max_value=150))
        values = data.draw(st.lists(
            st.integers(min_value=0, max_value=(1 << word_bits) - 1),
            min_size=n, max_size=n))
        tmu = TransposeMemoryUnit(word_bits=word_bits, capacity_words=64)
        array = np.array(values, dtype=np.int64)
        bits = tmu.transpose(array)
        assert bits.shape == (word_bits, n)
        assert np.array_equal(tmu.untranspose(bits), array)

    @pytest.mark.parametrize("word_bits", [1, 8, 16])
    @given(st.lists(st.booleans(), min_size=1, max_size=130))
    @settings(max_examples=40, deadline=None)
    def test_bit_rows_are_faithful(self, word_bits, flags):
        # Values chosen per-bit: row k of the transpose must equal bit k
        # of every word, for the narrowest, paper (8), and widest widths.
        tmu = TransposeMemoryUnit(word_bits=word_bits, capacity_words=32)
        values = np.array([int(f) * ((1 << word_bits) - 1) for f in flags],
                          dtype=np.int64)
        bits = tmu.transpose(values)
        for k in range(word_bits):
            assert np.array_equal(bits[k], (values >> k) & 1)

    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_cycle_model_matches_batching(self, word_bits, n):
        # Each batch of up to capacity_words costs batch_size word writes
        # plus word_bits bit-row reads, ragged tail included.
        capacity = 64
        tmu = TransposeMemoryUnit(word_bits=word_bits,
                                  capacity_words=capacity)
        tmu.transpose(np.zeros(n, dtype=np.int64))
        full, tail = divmod(n, capacity)
        expected = full * (capacity + word_bits)
        if tail:
            expected += tail + word_bits
        assert tmu.cycles == expected
