"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro                 # everything, in paper order
    python -m repro figure14 table3 # specific experiments
    python -m repro --list          # available experiment names
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import experiments

#: name -> zero-argument callable returning an ExperimentResult.
EXPERIMENTS = {
    "table1": experiments.table1,
    "table2": experiments.table2,
    "table3": experiments.table3,
    "table4": experiments.table4,
    "figure13": experiments.figure13,
    "figure14": experiments.figure14,
    "figure15": experiments.figure15,
    "figure16": experiments.figure16,
    "example6a": experiments.section6a_example,
    "arithmetic": experiments.arithmetic_latencies,
    "peak": experiments.peak_throughput,
    "area": experiments.area_report,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Neural Cache (ISCA 2018) reproduction: regenerate "
                    "the paper's tables and figures.")
    parser.add_argument("names", nargs="*", metavar="EXPERIMENT",
                        help="experiments to run (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment names")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)} "
                     f"(use --list)")
    for name in names:
        print(EXPERIMENTS[name]().render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
