"""The ProgramFacts dataflow IR.

One linear fact record per program step — a broadcast ISA instruction or a
top-level :class:`~repro.engine.bitserial.FleetBitSerialUnit` composite
call. Each record declares *what the step does to architectural state*
(wordline regions read/written, tag and carry latch effects) plus the
*legality constraints* the step's implementation imposes on its operands
(which region pairs must be disjoint, or aligned-or-disjoint). The passes
in :mod:`repro.verify.passes` are generic interpreters over these records;
all per-op knowledge lives in the lifters (:mod:`repro.verify.lift`).

Regions are wordline spans: the column axis is fully parallel in the
paper's execution model (every bitline runs the same bit-serial program),
so row-granular facts are exact for dataflow purposes. The one place
columns matter — cross-bitline shifts — is carried as ``col_shift``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Region:
    """A span of ``nbits`` wordlines starting at ``row`` (LSB-first)."""

    row: int
    nbits: int

    @property
    def end(self) -> int:
        """One past the last wordline."""
        return self.row + self.nbits

    def overlaps(self, other: "Region") -> bool:
        """True when the two spans share any wordline."""
        return self.row < other.end and other.row < self.end

    def aligned(self, other: "Region") -> bool:
        """True when both spans start on the same wordline.

        Aligned operands advance in lockstep through an LSB-first
        elementwise sequence (bit ``k`` of both is the same cycle), which
        is what makes in-place forms like ``add(a, b, dst=b)`` legal.
        """
        return self.row == other.row

    def __str__(self) -> str:
        return f"r{self.row}:{self.nbits}"


#: Constraint kinds understood by the overlap pass.
DISJOINT = "disjoint"
ALIGNED_OR_DISJOINT = "aligned-or-disjoint"


@dataclass(frozen=True)
class Constraint:
    """A legality requirement between two operand regions of one op."""

    a: Region
    b: Region
    kind: str
    reason: str

    def violated(self) -> bool:
        """True when the pair breaks the constraint."""
        if not self.a.overlaps(self.b):
            return False
        if self.kind == ALIGNED_OR_DISJOINT:
            return not self.a.aligned(self.b)
        return True  # DISJOINT


#: Tag latch effects (the ``tag`` field of :class:`OpFacts`).
TAG_SET = "set"          # leaves the tag latch live (load_tag, search, ...)
TAG_CLEAR = "clear"      # re-enables all write drivers (set_tag_all)
TAG_REQUIRE = "require"  # a predicated op: needs a live tag to mean anything
TAG_SELF = "self"        # loads and clears the tag internally (multiply, ...)

#: Carry protocol steps (elements of ``OpFacts.carry``).
CARRY_INIT = "init"      # clear_carry / set_carry before a ripple
CARRY_CYCLE = "cycle"    # full-adder cycles consuming/producing the latch
CARRY_STORE = "store"    # the carry-out write-back that consumes the latch

#: Op dispositions (the ``disposition`` field of :class:`OpFacts`).
EXECUTED = "executed"    # the step ran and its effects are architectural
SKIPPED = "skipped"      # a sparsity skip: the step was elided fleet-wide


@dataclass(frozen=True)
class OpFacts:
    """Dataflow facts of one program step.

    ``reads``/``writes`` are unconditional; ``pred_writes`` are tag-gated
    writes, which the write drivers implement as a read-modify-write of
    the destination (unselected columns keep their value), so the passes
    treat them as a read *and* a write. ``scratch_writes`` are regions the
    op writes and then consumes internally (a ``sub``'s complemented
    subtrahend, a ``mac``'s product scratchpad): they define rows like any
    write, but their value is dead on exit, so reusing the same scratch in
    the next op is not a dead write. ``inits`` are host/TMU-path loads
    (``write_values`` and friends): definitions that cost no compute
    cycles. ``tag_source`` rows are read into the tag latch and must be
    initialized like any other read.

    ``disposition`` distinguishes executed steps from sparsity skips
    (:data:`SKIPPED`): a skip elides a sub-sequence of an enclosing
    composite after probing a zero operand plane, so it *reads* the probed
    plane but writes nothing. ``skip_dest`` records the destination region
    the elided sub-sequence would have touched; the skip pass checks it is
    provably zero-preserving (covered by an enclosing op's writes).
    """

    name: str
    index: int
    reads: tuple[Region, ...] = ()
    writes: tuple[Region, ...] = ()
    pred_writes: tuple[Region, ...] = ()
    scratch_writes: tuple[Region, ...] = ()
    inits: tuple[Region, ...] = ()
    tag: str | None = None
    tag_source: tuple[Region, ...] = ()
    carry: tuple[str, ...] = ()
    constraints: tuple[Constraint, ...] = ()
    col_shift: int | None = None
    #: Cross-array data movement: the stride (in arrays, within a
    #: reduction group) this op's reads arrive over — ``move_across``'s
    #: hop distance, or the widest hop of a ``reduce_across_arrays``
    #: tree. ``None`` for array-local ops. Reads stay per-wordline either
    #: way; the field records interconnect provenance for the program.
    array_shift: int | None = None
    disposition: str = EXECUTED
    #: Destination region an elided (:data:`SKIPPED`) sub-sequence would
    #: have written. ``None`` for executed ops.
    skip_dest: Region | None = None

    def all_regions(self) -> tuple[Region, ...]:
        """Every region the op touches (for bounds checking)."""
        regions = (self.reads + self.writes + self.pred_writes
                   + self.scratch_writes + self.inits + self.tag_source)
        if self.skip_dest is not None:
            regions += (self.skip_dest,)
        return regions


@dataclass(frozen=True)
class ProgramFacts:
    """A lifted linear program plus the geometry it must run within.

    ``preloaded`` declares wordline regions the caller guarantees are
    initialized before the program starts (externally staged data) —
    recorded engine sequences need none because their host loads appear
    as ``inits`` ops in the stream.
    """

    label: str
    rows: int
    cols: int
    ops: tuple[OpFacts, ...] = ()
    preloaded: tuple[Region, ...] = field(default=())

    def __len__(self) -> int:
        return len(self.ops)
