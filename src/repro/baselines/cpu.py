"""Xeon E5-2697 v3 baseline (Table II, left column).

Calibration anchors (see DESIGN.md's substitution table):

* batch-1 latency ~86 ms — the paper's measured unquantized TensorFlow
  Inception v3 time (the quantized build was *slower* on CPU, 540 ms, for
  lack of optimised integer kernels, so the paper reports the float one);
* large-batch throughput plateau ~49 inf/s (the 12.4x claim against
  Neural Cache's 604 inf/s);
* average power 105.56 W, measured with RAPL (Table III), which with the
  86 ms latency reproduces the published 9.137 J per inference.

The resulting sustained GEMM efficiency (~48% of AVX2 FMA peak in the
steady state) and the ~0.6 ms per-op dispatch overhead are both plausible
for TensorFlow-era CPU inference on a 109-op graph.
"""

from __future__ import annotations

from repro.baselines.base import CalibratedBaseline
from repro.baselines.roofline import DeviceSpec

#: Peak fp32: 14 cores x 2.6 GHz x (2 AVX2 FMA ports x 8 lanes x 2 flops).
_PEAK_FLOPS = 14 * 2.6e9 * 32

XEON_E5_2697_V3 = DeviceSpec(
    name="Intel Xeon E5-2697 v3",
    frequency_ghz=2.6,
    parallel_units=14,
    process_nm=22,
    tdp_watts=145.0,
    cache_description=("32 kB i-L1 + 32 kB d-L1 per core, 256 kB L2 per "
                       "core, 35 MB shared L3"),
    memory_description="64 GB DDR4 DRAM",
    peak_flops=_PEAK_FLOPS,
    memory_bandwidth=68e9,
)


class CpuBaseline(CalibratedBaseline):
    """TensorFlow Inception-class inference on the dual-socket Xeon node."""

    spec = XEON_E5_2697_V3
    #: Sustained fraction of peak for blocked fp32 GEMM in steady state.
    compute_efficiency = 0.48
    #: Sustained fraction of DRAM bandwidth for layer tensors.
    memory_efficiency = 0.60
    #: Framework dispatch per layer op (batch-amortised).
    per_op_overhead_s = 0.605e-3
    #: RAPL-measured average power (Table III).
    measured_power_w = 105.56
