"""The packed plane store is bit-exact and cycle-exact vs the reference.

The acceptance contract of the packed-store change: for any geometry —
including ragged ``cols % 64 != 0`` fleets, where the tail uint64 word is
only partially populated — every :class:`FleetBitSerialUnit` sequence
must leave a :class:`PackedArrayFleet` holding exactly the bits an
:class:`ArrayFleet` holds, with exactly the same lockstep cycle counters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bits import (
    pack_bit_plane,
    packed_words,
    unpack_bit_plane,
)
from repro.common.errors import ArrayStateError, SimulationError
from repro.engine import (
    ArrayFleet,
    FleetBitSerialUnit,
    Operand,
    PackedArrayFleet,
    PackedFleetPeriphery,
    make_fleet,
)

RNG = np.random.default_rng(23)

#: Geometries exercising whole-word, multi-word and ragged tail cases.
GEOMETRIES = [
    pytest.param(2, 64, id="one-word"),
    pytest.param(3, 256, id="four-words"),
    pytest.param(2, 100, id="ragged-100"),
    pytest.param(1, 37, id="ragged-37"),
]


def make_pair(n_arrays, cols, rows=256):
    return (FleetBitSerialUnit(ArrayFleet(n_arrays, rows, cols)),
            FleetBitSerialUnit(PackedArrayFleet(n_arrays, rows, cols)))


def assert_stores_agree(ref, packed):
    """Full-state, counter and periphery-latch equality."""
    rows = ref.fleet.rows
    assert np.array_equal(ref.fleet.dump_bits(0, rows),
                          packed.fleet.dump_bits(0, rows))
    assert ref.cycles == packed.cycles
    assert ref.fleet.compute_cycles == packed.fleet.compute_cycles
    assert ref.fleet.access_cycles == packed.fleet.access_cycles
    cols = ref.fleet.cols
    assert np.array_equal(ref.periphery.tag,
                          unpack_bit_plane(packed.periphery.tag, cols))
    assert np.array_equal(ref.periphery.carry,
                          unpack_bit_plane(packed.periphery.carry, cols))


class TestPackHelpers:
    @pytest.mark.parametrize("cols", [1, 8, 63, 64, 65, 100, 256])
    def test_roundtrip(self, cols):
        bits = RNG.integers(0, 2, (3, 5, cols)).astype(np.uint8)
        words = pack_bit_plane(bits)
        assert words.shape == (3, 5, packed_words(cols))
        assert words.dtype == np.uint64
        assert np.array_equal(unpack_bit_plane(words, cols), bits)

    def test_lsb_first_within_word(self):
        bits = np.zeros(64, dtype=np.uint8)
        bits[0] = bits[5] = 1
        assert pack_bit_plane(bits)[0] == (1 << 0) | (1 << 5)

    def test_ragged_tail_is_zero(self):
        bits = np.ones((1, 70), dtype=np.uint8)
        words = pack_bit_plane(bits)
        assert words.shape == (1, 2)
        assert words[0, 1] == np.uint64((1 << 6) - 1)

    def test_word_count_validated(self):
        with pytest.raises(ValueError):
            pack_bit_plane(np.ones(129, dtype=np.uint8), n_words=2)
        with pytest.raises(ValueError):
            unpack_bit_plane(np.zeros(1, dtype=np.uint64), cols=65)
        with pytest.raises(ValueError):
            packed_words(0)


class TestPackedFleetPrimitives:
    @pytest.mark.parametrize("n_arrays,cols", GEOMETRIES)
    def test_sense_rails_match_reference(self, n_arrays, cols):
        ref = ArrayFleet(n_arrays, 8, cols)
        packed = PackedArrayFleet(n_arrays, 8, cols)
        a = RNG.integers(0, 2, (n_arrays, 1, cols)).astype(np.uint8)
        b = RNG.integers(0, 2, (n_arrays, 1, cols)).astype(np.uint8)
        for fleet in (ref, packed):
            fleet.load_bits(0, a)
            fleet.load_bits(1, b)
        bl_u, blb_u = ref.sense(0, 1)
        bl_p, blb_p = packed.sense(0, 1)
        assert np.array_equal(bl_u, unpack_bit_plane(bl_p, cols))
        assert np.array_equal(blb_u, unpack_bit_plane(blb_p, cols))
        assert packed.compute_cycles == ref.compute_cycles == 1

    def test_write_row_mask_and_read_row_speak_host_bits(self):
        packed = PackedArrayFleet(2, rows=4, cols=100)
        bits = RNG.integers(0, 2, (2, 100)).astype(np.uint8)
        mask = RNG.integers(0, 2, (2, 100)).astype(np.uint8)
        packed.write_row(1, bits)
        packed.write_row(1, 1 - bits, mask=mask)
        assert packed.access_cycles == 2
        assert np.array_equal(packed.read_row(1),
                              np.where(mask, 1 - bits, bits))
        assert packed.access_cycles == 3  # the read counts too

    def test_load_dump_sub_word_column_ranges(self):
        # Column ranges that straddle a word boundary exercise the
        # read-modify-write path of the packed store.
        packed = PackedArrayFleet(1, rows=4, cols=130)
        ref = ArrayFleet(1, rows=4, cols=130)
        patch = RNG.integers(0, 2, (1, 2, 9)).astype(np.uint8)
        for fleet in (ref, packed):
            fleet.load_bits(1, patch, col_offset=60)
        assert np.array_equal(packed.dump_bits(0, 4), ref.dump_bits(0, 4))
        assert np.array_equal(packed.dump_bits(1, 2, col_offset=60, n_cols=9),
                              patch)

    def test_tail_word_invariant_rejected_on_dirty_planes(self):
        packed = PackedArrayFleet(1, rows=4, cols=100)
        dirty = np.full((1, packed.n_words), ~np.uint64(0), dtype=np.uint64)
        with pytest.raises(ArrayStateError, match="beyond the last column"):
            packed.write_back(0, dirty)
        with pytest.raises(ArrayStateError, match="uint64"):
            packed.write_back(0, np.ones((1, 100), dtype=np.uint8))

    def test_host_path_validation_shared_with_reference(self):
        # The boundary bugfix sweep applies to both stores: the checks
        # live once in the PlaneStore base.
        packed = PackedArrayFleet(1, rows=4, cols=100)
        with pytest.raises(ArrayStateError, match="columns"):
            packed.dump_bits(0, 1, col_offset=-2, n_cols=2)
        with pytest.raises(ArrayStateError, match="columns"):
            packed.dump_bits(0, 1, col_offset=99, n_cols=2)
        with pytest.raises(ArrayStateError, match="0 or 1"):
            packed.load_bits(0, np.full((1, 1, 100), 2, dtype=np.uint8))

    def test_packed_periphery_rejects_dirty_latch_planes(self):
        periphery = PackedFleetPeriphery(1, 100)
        dirty = np.full((1, periphery.n_words), ~np.uint64(0),
                        dtype=np.uint64)
        with pytest.raises(ArrayStateError, match="beyond the last column"):
            periphery.load_tag(dirty)
        with pytest.raises(ArrayStateError, match="uint64"):
            periphery.load_carry(np.ones((1, 100), dtype=np.uint8))

    def test_resident_memory_is_8x_smaller_on_word_multiples(self):
        ref = ArrayFleet(16, 256, 256)
        packed = PackedArrayFleet(16, 256, 256)
        assert packed.nbytes * 8 == ref.nbytes

    def test_make_fleet_selects_store(self, monkeypatch):
        # Pin the sanitizer env gate off: under NEURALCACHE_SANITIZE=1
        # the store arrives wrapped, which TestOptIn covers elsewhere.
        monkeypatch.delenv("NEURALCACHE_SANITIZE", raising=False)
        assert isinstance(make_fleet(2, 8, 64), ArrayFleet)
        assert isinstance(make_fleet(2, 8, 64, packed=True), PackedArrayFleet)


class TestSequenceEquivalence:
    """Every FleetBitSerialUnit sequence, packed vs unpacked."""

    @pytest.mark.parametrize("n_arrays,cols", GEOMETRIES)
    def test_arithmetic_sequences(self, n_arrays, cols):
        ref, packed = make_pair(n_arrays, cols)
        av = RNG.integers(0, 256, (n_arrays, cols)).astype(np.int64)
        bv = RNG.integers(1, 256, (n_arrays, cols)).astype(np.int64)
        a, b = Operand(0, 8), Operand(8, 8)
        for unit in (ref, packed):
            unit.write_values(a, av)
            unit.write_values(b, bv)
            unit.add(a, b, Operand(16, 9))
            unit.sub(a, b, Operand(25, 9), Operand(34, 8))
            unit.multiply(a, b, Operand(42, 16))
            unit.mac(a, b, Operand(58, 16), Operand(74, 20))
            unit.divide(a, b, Operand(94, 8), Operand(102, 28))
        assert np.array_equal(packed.read_values(Operand(16, 9)), av + bv)
        assert np.array_equal(packed.read_values(Operand(42, 16)), av * bv)
        assert np.array_equal(packed.read_values(Operand(94, 8)), av // bv)
        assert_stores_agree(ref, packed)

    @pytest.mark.parametrize("n_arrays,cols", GEOMETRIES)
    def test_compare_minmax_relu_sequences(self, n_arrays, cols):
        ref, packed = make_pair(n_arrays, cols)
        av = RNG.integers(0, 64, (n_arrays, cols)).astype(np.int64)
        bv = RNG.integers(0, 64, (n_arrays, cols)).astype(np.int64)
        a, b = Operand(0, 6), Operand(6, 6)
        for unit in (ref, packed):
            unit.write_values(a, av)
            unit.write_values(b, bv)
            unit.compare_ge(a, b, Operand(12, 1), Operand(13, 13))
            unit.max_update(a, b, Operand(26, 13))
            unit.min_update(Operand(6, 6), Operand(0, 6), Operand(39, 13))
            unit.relu(a, sign_row=a.bit(5))
            unit.equality_compare(a, b, 52)
            unit.search(b, int(bv[0, 0]), 53)
        assert np.array_equal(packed.read_values(Operand(12, 1)),
                              (av >= bv).astype(int))
        assert_stores_agree(ref, packed)

    @pytest.mark.parametrize("n_arrays,cols", GEOMETRIES)
    def test_copy_logical_and_reduce_sequences(self, n_arrays, cols):
        ref, packed = make_pair(n_arrays, cols)
        av = RNG.integers(0, 256, (n_arrays, cols)).astype(np.int64)
        bv = RNG.integers(0, 256, (n_arrays, cols)).astype(np.int64)
        a, b = Operand(0, 8), Operand(8, 8)
        shift = min(3, cols - 1)
        for unit in (ref, packed):
            unit.write_values(a, av)
            unit.write_values(b, bv)
            unit.copy(a, Operand(16, 8))
            unit.complement_copy(a, Operand(24, 8))
            unit.shift_copy(a, Operand(32, 8), shift)
            unit.selective_copy(a, Operand(40, 8), tag_row=b.bit(0))
            unit.logical_and(a, b, Operand(48, 8))
            unit.logical_or(a, b, Operand(56, 8))
            unit.logical_nor(a, b, Operand(64, 8))
            unit.logical_xor(a, b, Operand(72, 8))
            unit.write_scalar(Operand(80, 8), 77)
            unit.zero(Operand(88, 8))
            unit.reduce_tree(Operand(100, 12), Operand(116, 12),
                             elements=4, width=8)
        assert np.array_equal(packed.read_values(Operand(48, 8)), av & bv)
        assert np.array_equal(packed.read_values(Operand(72, 8)), av ^ bv)
        expected_shift = np.zeros_like(av)
        expected_shift[:, :-shift] = av[:, shift:]
        assert np.array_equal(packed.read_values(Operand(32, 8)),
                              expected_shift)
        assert_stores_agree(ref, packed)

    def test_multi_word_column_shift(self):
        # Shifts larger than one 64-bit word cross word boundaries in the
        # packed store's funnel shifter.
        ref, packed = make_pair(1, 256)
        av = RNG.integers(0, 256, (1, 256)).astype(np.int64)
        for shift in (1, 63, 64, 65, 130, 255):
            for unit in (ref, packed):
                unit.write_values(Operand(0, 8), av)
                unit.shift_copy(Operand(0, 8), Operand(8, 8), shift)
            assert_stores_agree(ref, packed)

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_random_add_multiply(self, data):
        n_arrays, cols = 2, data.draw(
            st.sampled_from([64, 100, 37]), label="cols")
        nbits = data.draw(st.integers(min_value=1, max_value=8))
        hi = (1 << nbits) - 1
        draw_vals = st.lists(st.integers(0, hi),
                             min_size=n_arrays * cols,
                             max_size=n_arrays * cols)
        av = np.array(data.draw(draw_vals)).reshape(n_arrays, cols)
        bv = np.array(data.draw(draw_vals)).reshape(n_arrays, cols)
        ref, packed = make_pair(n_arrays, cols)
        a, b = Operand(0, nbits), Operand(nbits, nbits)
        for unit in (ref, packed):
            unit.write_values(a, av)
            unit.write_values(b, bv)
            unit.add(a, b, Operand(2 * nbits, nbits + 1))
            unit.multiply(a, b, Operand(4 * nbits, 2 * nbits))
        assert np.array_equal(
            packed.read_values(Operand(4 * nbits, 2 * nbits)), av * bv)
        assert_stores_agree(ref, packed)

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_random_masked_write_back_sequences(self, data):
        """Random tag-gated write-back programs leave both stores
        identical — the tail-word masking of the packed store under
        arbitrary masks at ragged widths."""
        cols = data.draw(st.sampled_from([64, 100, 37, 130]), label="cols")
        n_arrays, rows = 2, 8
        ref = ArrayFleet(n_arrays, rows, cols)
        packed = PackedArrayFleet(n_arrays, rows, cols)
        n_ops = data.draw(st.integers(1, 6), label="n_ops")
        plane = st.lists(st.integers(0, 1), min_size=n_arrays * cols,
                         max_size=n_arrays * cols)
        for _ in range(n_ops):
            row = data.draw(st.integers(0, rows - 1))
            bits = np.array(data.draw(plane),
                            dtype=np.uint8).reshape(n_arrays, cols)
            masked = data.draw(st.booleans())
            mask = (np.array(data.draw(plane),
                             dtype=np.uint8).reshape(n_arrays, cols)
                    if masked else None)
            ref.write_back(row, bits, mask=mask)
            packed.write_back(
                row, pack_bit_plane(bits, packed.n_words),
                mask=None if mask is None
                else pack_bit_plane(mask, packed.n_words))
        assert np.array_equal(ref.dump_bits(0, rows),
                              packed.dump_bits(0, rows))
        assert ref.compute_cycles == packed.compute_cycles == 0


class TestFunctionalPacked:
    """The quantized layer sequences (conv incl. quantize stage, pools)
    on the packed store match the unpacked store bit for bit."""

    def _conv_case(self):
        from repro.nn import (
            Conv2D,
            Network,
            QuantizedTensor,
            initialise_weights,
        )
        conv = Conv2D(8, (3, 3), padding="same")
        shape = (6, 6, 8)
        net = Network(name="packed-check")
        x = net.add_input("in", shape)
        net.add("c", conv, x)
        weights = initialise_weights(net, seed=9)
        image = QuantizedTensor.from_real(RNG.uniform(0, 6, shape),
                                          weights.input_params)
        return conv, shape, weights, image

    def test_conv_and_quantize_stage_match(self):
        from repro.core.functional import FunctionalConv

        conv, shape, weights, image = self._conv_case()

        def run(packed):
            engine = FunctionalConv(conv, shape, weights.for_node("c"),
                                    output_params=weights.activation_params,
                                    packed=packed)
            return engine.run(image), engine.report

        out_u, report_u = run(False)
        out_p, report_p = run(True)
        assert np.array_equal(out_u.data, out_p.data)
        assert report_u == report_p

    def test_packed_requires_vectorized_path(self):
        from repro.core.functional import FunctionalConv

        conv, shape, weights, _ = self._conv_case()
        with pytest.raises(SimulationError, match="vectorized"):
            FunctionalConv(conv, shape, weights.for_node("c"),
                           vectorized=False, packed=True)


class TestPackedSRAMArrayView:
    def test_single_array_view_over_packed_store(self):
        from repro.sram import BitSerialUnit, SRAMArray

        array = SRAMArray(fleet=PackedArrayFleet(1, 64, 100))
        unit = BitSerialUnit(array)
        ref = BitSerialUnit(SRAMArray(rows=64, cols=100))
        values = RNG.integers(0, 16, 100).astype(np.int64)
        a, b = Operand(0, 4), Operand(4, 4)
        for u in (unit, ref):
            u.write_values(a, values)
            u.write_values(b, 3)
            u.multiply(a, b, Operand(8, 8))
        assert np.array_equal(unit.read_values(Operand(8, 8)), values * 3)
        assert unit.cycles == ref.cycles
        assert array.compute_cycles == ref.array.compute_cycles

    def test_packed_view_has_no_byte_per_bit_tensor(self):
        from repro.sram import SRAMArray

        array = SRAMArray(fleet=PackedArrayFleet(1, 8, 64))
        with pytest.raises(ArrayStateError, match="byte-per-bit"):
            array._bits
