"""Tests anchoring the Inception v3 graph to the paper's Table I."""

import pytest

from repro.nn import build_inception_v3, group_stats, table1

# (Conv count, filter MB, input MB) as published in Table I. The rows where
# our faithful graph intentionally differs (Mixed_6a filter size, Mixed_6e)
# are tested separately below; see EXPERIMENTS.md for the analysis.
PAPER_TABLE1 = {
    "Conv2d_1a_3x3": (710432, 0.001, 0.256),
    "Conv2d_2a_3x3": (691488, 0.009, 0.678),
    "Conv2d_2b_3x3": (1382976, 0.018, 0.659),
    "MaxPool_3a_3x3": (0, 0.000, 1.319),
    "Conv2d_3b_1x1": (426320, 0.005, 0.325),
    "Conv2d_4a_3x3": (967872, 0.132, 0.407),
    "MaxPool_5a_3x3": (0, 0.000, 0.923),
    "Mixed_5b": (568400, 0.243, 0.897),
    "Mixed_5c": (607600, 0.264, 1.196),
    "Mixed_5d": (607600, 0.271, 1.346),
    "Mixed_6a": (334720, 0.255, 1.009),
    "Mixed_6b": (443904, 1.234, 0.847),
    "Mixed_6c": (499392, 1.609, 0.847),
    "Mixed_6d": (499392, 1.609, 0.847),
    "Mixed_6e": (499392, 1.898, 0.847),
    "Mixed_7a": (254720, 1.617, 0.635),
    "Mixed_7b": (208896, 4.805, 0.313),
    "Mixed_7c": (208896, 5.789, 0.500),
    "AvgPool": (0, 0.000, 0.125),
    "FullyConnected": (1001, 1.955, 0.002),
}

EXACT_ROWS = [g for g in PAPER_TABLE1 if g not in ("Mixed_6a", "Mixed_6e")]


@pytest.fixture(scope="module")
def net():
    return build_inception_v3()


@pytest.fixture(scope="module")
def rows(net):
    return {row.group: row for row in table1(net)}


class TestStructure:
    def test_twenty_groups_in_table_order(self, net):
        assert net.groups() == list(PAPER_TABLE1)

    def test_conv_sublayer_count(self, net):
        # Paper: "94 convolutional sub-layers"; the faithful graph has 95
        # (the FC-as-conv layer accounts for the difference).
        assert len(net.conv_nodes()) == 95

    def test_input_and_output_shapes(self, net):
        assert net.input_shape == (299, 299, 3)
        assert net.node(net.output_name).output_shape == (1, 1, 1001)

    def test_spatial_chain(self, net):
        assert net.node("Conv2d_1a_3x3").output_shape == (149, 149, 32)
        assert net.node("MaxPool_3a_3x3").output_shape == (73, 73, 64)
        assert net.node("MaxPool_5a_3x3").output_shape == (35, 35, 192)
        assert net.node("Mixed_5b/concat").output_shape == (35, 35, 256)
        assert net.node("Mixed_5d/concat").output_shape == (35, 35, 288)
        assert net.node("Mixed_6a/concat").output_shape == (17, 17, 768)
        assert net.node("Mixed_7a/concat").output_shape == (8, 8, 1280)
        assert net.node("Mixed_7c/concat").output_shape == (8, 8, 2048)
        assert net.node("AvgPool").output_shape == (1, 1, 2048)

    def test_average_convolutions_per_layer(self, net):
        # Sec. IV: "Inception v3 has ~0.5 million convolutions in each
        # layer on average" (20 groups).
        average = net.total_convolutions() / 20
        assert 0.3e6 < average < 0.7e6


class TestTable1ExactRows:
    @pytest.mark.parametrize("group", EXACT_ROWS)
    def test_conv_count_matches_paper(self, rows, group):
        assert rows[group].convolutions == PAPER_TABLE1[group][0]

    @pytest.mark.parametrize("group", EXACT_ROWS)
    def test_filter_mb_matches_paper(self, rows, group):
        assert rows[group].filter_mb == pytest.approx(
            PAPER_TABLE1[group][1], abs=0.0015)

    @pytest.mark.parametrize("group", list(PAPER_TABLE1))
    def test_input_mb_matches_paper(self, rows, group):
        assert rows[group].input_mb == pytest.approx(
            PAPER_TABLE1[group][2], abs=0.0015)


class TestTable1KnownDiscrepancies:
    def test_mixed_6a_conv_count_matches_but_filters_differ(self, rows):
        """The paper's 0.255 MB corresponds to reading TF-slim's
        'Conv2d_1a_1x1' scope name as a 1x1 filter; the real op is a 3x3
        stride-2 conv, giving ~1.10 MB. Conv counts agree either way."""
        row = rows["Mixed_6a"]
        assert row.convolutions == PAPER_TABLE1["Mixed_6a"][0]
        assert row.filter_mb == pytest.approx(1.099, abs=0.002)
        # Published value reconstructed with a 1x1 branch-0 filter:
        one_by_one = row.filter_bytes - (9 - 1) * 288 * 384
        assert one_by_one / 2**20 == pytest.approx(0.255, abs=0.001)

    def test_mixed_6e_follows_standard_192_channel_module(self, rows):
        """The paper's Mixed_6e row repeats 6c/6d although its C-range
        column (192-768) implies the standard 192-channel module."""
        row = rows["Mixed_6e"]
        assert row.channels[0] == 192
        assert row.convolutions == 554880
        assert row.filter_mb == pytest.approx(2.039, abs=0.002)


class TestTable1Metadata:
    def test_heights(self, rows):
        assert rows["Conv2d_1a_3x3"].input_height == 299
        assert rows["Conv2d_1a_3x3"].output_height == 149
        assert rows["Mixed_5b"].input_height == 35
        assert rows["Mixed_7c"].output_height == 8
        assert rows["FullyConnected"].output_height == 1

    def test_kernel_ranges(self, rows):
        assert rows["Conv2d_2b_3x3"].kernel_label() == "9"
        assert rows["Mixed_5b"].kernel_label() == "1-25"
        assert rows["Conv2d_3b_1x1"].kernel_label() == "1"

    def test_channel_ranges(self, rows):
        assert rows["Mixed_5b"].channel_label() == "48-192"
        assert rows["Mixed_6c"].channel_label() == "160-768"
        assert rows["FullyConnected"].channel_label() == "2048"

    def test_pool_rows_have_zero_convs_and_filters(self, rows):
        for group in ("MaxPool_3a_3x3", "MaxPool_5a_3x3", "AvgPool"):
            assert rows[group].convolutions == 0
            assert rows[group].filter_bytes == 0
            assert rows[group].channels == (0, 0)


class TestTotals:
    def test_total_weights_near_23mb(self, net):
        assert 22.0 < net.total_weight_bytes() / 2**20 < 24.5

    def test_total_macs_near_5_7_billion(self, net):
        # Inception v3 is ~5.7 GMACs (~11.4 GFLOPs) per inference.
        assert 5.5e9 < net.total_macs() < 6.0e9

    def test_group_stats_single_group(self, net):
        row = group_stats(net, "Mixed_5b")
        assert row.group == "Mixed_5b"
        assert row.convolutions == 568400
