"""Ablations over the mapping/scheduling design choices of Sec. IV-A.

Each benchmark toggles one mechanism the paper motivates and verifies the
direction of the effect:

* filter packing (1x1 filters, 16 channels/bitline) cuts reduction time;
* input reuse between serial passes cuts streaming time;
* the paper cycle preset vs our derived preset (the headline results
  survive either);
* batching amortises filter loading until outputs spill to DRAM.
"""

from repro.config import NeuralCacheConfig
from repro.core.executor import NeuralCacheSimulator
from repro.core.mapping import map_conv
from repro.core.schedule import reduction_cycles_per_pass
from repro.nn import Conv2D, build_inception_v3
from repro.sram.cost import CycleCosts


def test_ablation_filter_packing(benchmark, record):
    """Packing trades MAC cycles for far fewer reduction lanes."""
    conv = Conv2D(64, (1, 1))
    shape = (17, 17, 768)

    def run():
        packed_cfg = NeuralCacheConfig(costs=CycleCosts.derived())
        unpacked_cfg = NeuralCacheConfig(costs=CycleCosts.derived(),
                                         pack_limit=1)
        packed = map_conv(packed_cfg, "packed", conv, shape)
        unpacked = map_conv(unpacked_cfg, "unpacked", conv, shape)
        return (packed, reduction_cycles_per_pass(packed_cfg, packed),
                unpacked, reduction_cycles_per_pass(unpacked_cfg, unpacked))

    packed, packed_red, unpacked, unpacked_red = benchmark(run)
    assert packed.pack_factor == 16
    assert unpacked.pack_factor == 1
    # "By packing the filters, the number of reductions is decreased."
    assert packed.channels_padded < unpacked.channels_padded
    assert packed_red < unpacked_red
    # And packing keeps every conv within one array here; unpacked spans
    # several (cross-array moves).
    assert packed.arrays_per_conv == 1
    assert unpacked.arrays_per_conv > 1
    record(f"Ablation: filter packing (1x1, C=768): reduction "
           f"{packed_red} cycles packed vs {unpacked_red} unpacked; "
           f"arrays/conv {packed.arrays_per_conv} vs "
           f"{unpacked.arrays_per_conv}")


def test_ablation_input_reuse(benchmark, record):
    """Window overlap between serial passes reduces input streaming."""
    network = build_inception_v3()

    def run():
        with_reuse = NeuralCacheSimulator(network, NeuralCacheConfig())
        no_reuse = NeuralCacheSimulator(
            network, NeuralCacheConfig(input_reuse_floor=1.0))
        return (with_reuse.run().breakdown().input_stream,
                no_reuse.run().breakdown().input_stream)

    reuse_t, no_reuse_t = benchmark(run)
    assert reuse_t < no_reuse_t
    record(f"Ablation: input reuse: streaming {reuse_t * 1e3:.3f} ms with "
           f"reuse vs {no_reuse_t * 1e3:.3f} ms without")


def test_ablation_cost_preset(benchmark, record):
    """The headline speedup holds under both cycle-cost presets."""
    network = build_inception_v3()

    def run():
        paper_t = NeuralCacheSimulator(
            network, NeuralCacheConfig(costs=CycleCosts.paper())).latency()
        derived_t = NeuralCacheSimulator(
            network, NeuralCacheConfig(costs=CycleCosts.derived())).latency()
        return paper_t, derived_t

    paper_t, derived_t = benchmark(run)
    # The derived preset is cheaper per MAC (119 vs 236 cycles), so it can
    # only speed things up; both stay far below the 36 ms GPU baseline.
    assert derived_t < paper_t
    assert paper_t < 10e-3
    record(f"Ablation: cycle preset: {paper_t * 1e3:.2f} ms (paper costs) "
           f"vs {derived_t * 1e3:.2f} ms (derived costs)")


def test_ablation_batching_spills(benchmark, record):
    """A larger output buffer defers the DRAM dumps of Sec. IV-E."""
    network = build_inception_v3()

    def run():
        small = NeuralCacheSimulator(
            network, NeuralCacheConfig(output_buffer_fraction=0.25))
        large = NeuralCacheSimulator(
            network, NeuralCacheConfig(output_buffer_fraction=1.0))
        return small.run(16).spill_time, large.run(16).spill_time

    small_spill, large_spill = benchmark(run)
    assert large_spill < small_spill
    record(f"Ablation: output buffer at batch 16: spill "
           f"{small_spill * 1e3:.2f} ms (quarter way) vs "
           f"{large_spill * 1e3:.2f} ms (full way)")


def test_ablation_filter_splitting_threshold(benchmark, record):
    """Splitting above 9 bytes is forced by the word-line budget; an
    11-byte threshold still fits but leaves no input-reuse headroom."""
    conv = Conv2D(64, (5, 5), padding="same")
    shape = (35, 35, 48)

    def run():
        default = map_conv(NeuralCacheConfig(), "d", conv, shape)
        wide = map_conv(NeuralCacheConfig(split_threshold_bytes=13), "w",
                        conv, shape)
        return default, wide

    default, wide = benchmark(run)
    assert default.split_factor == 3      # ceil(25 / 9)
    assert wide.split_factor == 3         # clamped to the 11-byte budget
    assert default.filter_bytes_per_bitline <= 9
    record(f"Ablation: split threshold: 5x5 filters split "
           f"{default.split_factor}x at the default threshold; the "
           f"word-line budget clamps wider settings to "
           f"{wide.filter_bytes_per_bitline} bytes/bitline")
