"""Map *your own* CNN onto Neural Cache and verify it end to end.

Defines a miniature Inception-style network (branches, packing-friendly
1x1s, a 5x5 that needs filter splitting, pooling, an FC head), then:

1. shows how every layer maps onto the cache (packing / splitting /
   parallelism / utilization — the Sec. IV-A machinery);
2. runs the whole network bit-serially and checks it against the golden
   quantized executor;
3. reports the analytic latency/energy of the same network at full scale.

Run:  python examples/custom_network.py
"""

import numpy as np

from repro import (
    NeuralCacheConfig,
    NeuralCacheSimulator,
    Network,
    QuantizedTensor,
    ReferenceExecutor,
    initialise_weights,
)
from repro.core.functional import FunctionalExecutor
from repro.nn import AvgPool, Concat, Conv2D, FullyConnected, MaxPool


def build_network() -> Network:
    net = Network(name="mini-inception")
    x = net.add_input("image", (16, 16, 3))
    x = net.add("stem", Conv2D(16, (3, 3), stride=2, padding="valid"), x)
    b0 = net.add("mix/1x1", Conv2D(8, (1, 1)), x)
    b1 = net.add("mix/5x5_reduce", Conv2D(4, (1, 1)), x)
    b1 = net.add("mix/5x5", Conv2D(8, (5, 5), padding="same"), b1)
    b2 = net.add("mix/pool", AvgPool((3, 3), stride=1, padding="same"), x)
    b2 = net.add("mix/pool_proj", Conv2D(8, (1, 1)), b2)
    x = net.add("mix/concat", Concat(), (b0, b1, b2))
    x = net.add("maxpool", MaxPool((3, 3), stride=2, padding="valid"), x)
    x = net.add("gap", AvgPool((3, 3), padding="valid"), x)
    net.add("classifier", FullyConnected(10), x)
    return net


def main() -> None:
    net = build_network()
    config = NeuralCacheConfig()
    sim = NeuralCacheSimulator(net, config)

    print("Layer mapping on the 35 MB Xeon LLC")
    print("-" * 76)
    print(f"{'layer':20s} {'kind':8s} {'pack':>4s} {'split':>5s} "
          f"{'C pad':>5s} {'parallel':>9s} {'passes':>6s} {'util':>7s}")
    for mapping in sim.mappings:
        print(f"{mapping.layer_name:20s} {mapping.kind:8s} "
              f"{mapping.pack_factor:4d} {mapping.split_factor:5d} "
              f"{mapping.channels_padded:5d} "
              f"{mapping.parallel_outputs:9d} {mapping.serial_passes:6d} "
              f"{mapping.utilization * 100:6.2f}%")

    # -- functional verification -----------------------------------------
    weights = initialise_weights(net, seed=3)
    rng = np.random.default_rng(1)
    image = QuantizedTensor.from_real(rng.uniform(0, 6, (16, 16, 3)),
                                      weights.input_params)
    golden = ReferenceExecutor(net, weights).run(image)
    in_cache = FunctionalExecutor(net, weights).run(image)
    for node in net.layer_nodes():
        assert np.array_equal(in_cache[node.name].data,
                              golden[node.name].data), node.name
    logits = in_cache["classifier"].data.ravel()
    print(f"\nbit-exact in-cache execution ✓ "
          f"(class scores: {logits.tolist()})")

    # -- analytic cost at full scale ----------------------------------------
    result = sim.run()
    print(f"\nanalytic model: {result.total_time * 1e6:.1f} us per "
          f"inference, {result.total_energy * 1e6:.1f} uJ, "
          f"{1 / result.total_time:.0f} inferences/s/socket")


if __name__ == "__main__":
    main()
