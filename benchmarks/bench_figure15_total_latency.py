"""Figure 15: total Inception v3 latency and the headline speedups
(paper: 18.3x over the Xeon E5, 7.7x over the Titan Xp)."""

from repro.analysis import figure15
from repro.baselines import CpuBaseline, GpuBaseline
from repro.core.executor import NeuralCacheSimulator
from repro.nn import build_inception_v3


def regenerate_totals():
    network = build_inception_v3()
    nc = NeuralCacheSimulator(network).latency()
    cpu = CpuBaseline(network).latency()
    gpu = GpuBaseline(network).latency()
    return nc, cpu, gpu


def test_figure15_total_latency(benchmark, record):
    nc, cpu, gpu = benchmark(regenerate_totals)
    assert nc < gpu < cpu
    assert 14 < cpu / nc < 26    # paper 18.3x
    assert 6 < gpu / nc < 11     # paper 7.7x
    record(figure15())
