"""Tests for the ISA text parser and CLI entry point."""

import numpy as np
import pytest

from repro.common.errors import IsaError
from repro.core.isa import (
    ControlFSM,
    Instruction,
    Opcode,
    parse_instruction,
    parse_program,
)
from repro.sram import BitSerialUnit, Operand, SRAMArray


class TestParseInstruction:
    def test_simple(self):
        instr = parse_instruction("cadd r0:8, r8:8, r16:9")
        assert instr.opcode is Opcode.CADD
        assert instr.operands == (Operand(0, 8), Operand(8, 8),
                                  Operand(16, 9))
        assert instr.immediate is None

    def test_immediate(self):
        instr = parse_instruction("cimm r4:16, #1234")
        assert instr.immediate == 1234

    def test_hex_immediate(self):
        assert parse_instruction("cimm r0:16, #0xff").immediate == 255

    def test_round_trip_via_str(self):
        original = Instruction(Opcode.CMULT,
                               (Operand(0, 8), Operand(8, 8),
                                Operand(16, 16)))
        assert parse_instruction(str(original)) == original

    def test_round_trip_with_immediate(self):
        original = Instruction(Opcode.CRELU, (Operand(0, 32),), immediate=31)
        assert parse_instruction(str(original)) == original

    def test_case_insensitive_opcode(self):
        assert parse_instruction("CZERO r0:8").opcode is Opcode.CZERO

    @pytest.mark.parametrize("bad", [
        "", "bogus r0:8", "cadd r0:8", "cadd r0:8, r8:8, r16:9, #3",
        "cimm r0:8", "cadd r0:x, r8:8, r16:9", "cimm r0:8, #zz",
        "cadd banana", "cimm r0:8, #1, #2",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(IsaError):
            parse_instruction(bad)


class TestParseProgram:
    def test_program_with_comments(self):
        program = parse_program("""
            # zero the accumulator
            czero r32:24
            cmac r0:8, r8:8, r16:16, r32:24
        """)
        assert [i.opcode for i in program] == [Opcode.CZERO, Opcode.CMAC]

    def test_parsed_program_executes(self):
        fsm = ControlFSM(units=[BitSerialUnit(SRAMArray(rows=64, cols=16))])
        unit = fsm.units[0]
        unit.write_values(Operand(0, 8), np.full(16, 6, dtype=np.int64))
        unit.write_values(Operand(8, 8), np.full(16, 7, dtype=np.int64))
        program = parse_program("""
            czero r32:24
            cmac r0:8, r8:8, r16:16, r32:24
        """)
        fsm.execute(program)
        assert np.all(unit.read_values(Operand(32, 24)) == 42)

    def test_empty_program(self):
        assert parse_program("\n# nothing\n") == []


class TestCli:
    def test_list(self, capsys):
        from repro.__main__ import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "figure14" in out
        assert "table1" in out

    def test_single_experiment(self, capsys):
        from repro.__main__ import main
        assert main(["figure14"]) == 0
        out = capsys.readouterr().out
        assert "Figure 14" in out
        assert "filter_load" in out

    def test_unknown_experiment_errors(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["nonsense"])
