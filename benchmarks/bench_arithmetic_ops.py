"""Sec. III: bit-serial arithmetic on the functional SRAM arrays.

Benchmarks the wall-clock speed of the functional simulator's vector ops
(256 elements per array, all bitlines at once) and checks the cycle
counts against both cost presets.
"""

import numpy as np
import pytest

from repro.analysis import arithmetic_latencies
from repro.sram import BitSerialUnit, CycleCosts, Operand, SRAMArray

RNG = np.random.default_rng(7)
DERIVED = CycleCosts.derived()


def _unit_with_operands(n):
    unit = BitSerialUnit(SRAMArray(rows=256, cols=256))
    a, b = Operand(0, n), Operand(n, n)
    unit.write_values(a, RNG.integers(0, 1 << n, 256))
    unit.write_values(b, RNG.integers(0, 1 << n, 256))
    return unit, a, b


@pytest.mark.parametrize("n", [8, 16])
def test_bitserial_addition(benchmark, n):
    unit, a, b = _unit_with_operands(n)
    dst = Operand(2 * n, n + 1)

    def run():
        before = unit.cycles
        unit.add(a, b, dst)
        return unit.cycles - before

    cycles = benchmark(run)
    assert cycles == DERIVED.add(n)


def test_bitserial_multiplication(benchmark):
    unit, a, b = _unit_with_operands(8)
    product = Operand(16, 16)

    def run():
        before = unit.cycles
        unit.multiply(a, b, product)
        return unit.cycles - before

    cycles = benchmark(run)
    assert cycles == DERIVED.multiply(8)


def test_bitserial_mac(benchmark):
    unit, a, b = _unit_with_operands(8)
    scratch, acc = Operand(16, 16), Operand(32, 24)

    def run():
        unit.zero(acc)
        before = unit.cycles
        unit.mac(a, b, scratch, acc)
        return unit.cycles - before

    cycles = benchmark(run)
    assert cycles == DERIVED.mac(8, 24)


def test_bitserial_division(benchmark):
    unit = BitSerialUnit(SRAMArray(rows=256, cols=256))
    a, b = Operand(0, 8), Operand(8, 8)
    unit.write_values(a, RNG.integers(0, 256, 256))
    unit.write_values(b, RNG.integers(1, 256, 256))
    q, work = Operand(16, 8), Operand(32, 28)

    def run():
        before = unit.cycles
        unit.divide(a, b, q, work)
        return unit.cycles - before

    cycles = benchmark(run)
    assert cycles == DERIVED.divide(8)


def test_bitserial_reduction(benchmark):
    unit = BitSerialUnit(SRAMArray(rows=256, cols=256))
    base, segment = Operand(0, 32), Operand(32, 32)
    unit.write_values(Operand(0, 24), RNG.integers(0, 1 << 24, 256))

    def run():
        before = unit.cycles
        unit.reduce_tree(base, segment, 128, 24)
        return unit.cycles - before

    cycles = benchmark(run)
    assert cycles == DERIVED.reduction(128, 24)


def test_op_latency_table(benchmark, record):
    result = benchmark(arithmetic_latencies)
    assert len(result.rows) == 9
    record(result)
