"""ShadowPlaneStore behaviour over every store flavour and entry point."""

import numpy as np
import pytest

from repro.common.errors import VerifyError
from repro.engine.bitserial import FleetBitSerialUnit, Operand
from repro.engine.packed import PackedArrayFleet, make_fleet
from repro.sram import BitSerialUnit, SRAMArray
from repro.verify import ShadowPlaneStore

ROWS, COLS = 64, 16

STORES = ["unpacked", "packed"]


def fleet_for(kind, sanitize=True):
    return make_fleet(1, ROWS, COLS, packed=(kind == "packed"),
                      sanitize=sanitize)


@pytest.mark.parametrize("kind", STORES)
class TestOverBothStores:
    def test_legal_program_runs_clean(self, kind):
        unit = FleetBitSerialUnit(fleet_for(kind))
        a, b, dst = Operand(0, 4), Operand(4, 4), Operand(8, 5)
        unit.write_values(a, 5)
        unit.write_values(b, 9)
        unit.add(a, b, dst)
        assert int(unit.read_values(dst)[0, 0]) == 14

    def test_uninit_compute_read_raises(self, kind):
        unit = FleetBitSerialUnit(fleet_for(kind))
        with pytest.raises(VerifyError) as excinfo:
            unit.copy(Operand(32, 4), Operand(0, 4))
        err = excinfo.value
        assert err.check == "uninit-read"
        assert err.row == 32

    def test_uninit_host_read_raises(self, kind):
        unit = FleetBitSerialUnit(fleet_for(kind))
        with pytest.raises(VerifyError, match="wordline 16"):
            unit.read_values(Operand(16, 4))

    def test_predicated_write_requires_initialized_dst(self, kind):
        # A tag-masked write is a read-modify-write of the destination.
        unit = FleetBitSerialUnit(fleet_for(kind))
        unit.write_values(Operand(0, 4), 5)
        unit.write_values(Operand(8, 1), 1)
        unit.load_tag(8)
        with pytest.raises(VerifyError) as excinfo:
            unit.copy(Operand(0, 4), Operand(16, 4), predicated=True)
        assert excinfo.value.check == "uninit-read"
        assert excinfo.value.row == 16

    def test_error_points_at_the_offending_row(self, kind):
        # Rows 0..3 written; the read of r2:4 trips exactly at row 4.
        unit = FleetBitSerialUnit(fleet_for(kind))
        unit.write_values(Operand(0, 4), 5)
        with pytest.raises(VerifyError) as excinfo:
            unit.read_values(Operand(2, 4))
        assert excinfo.value.row == 4

    def test_single_array_unit_is_covered(self, kind):
        # The SRAMArray/BitSerialUnit path writes through the same store
        # seam, so the ControlFSM side inherits the sanitizer too.
        unit = BitSerialUnit(SRAMArray(ROWS, COLS, fleet=fleet_for(kind)))
        unit.write_values(Operand(0, 4), 5)
        unit.zero(Operand(4, 4))
        unit.copy(Operand(0, 4), Operand(8, 4))
        assert int(unit.read_values(Operand(8, 4))[0]) == 5
        with pytest.raises(VerifyError):
            unit.copy(Operand(32, 4), Operand(4, 4))


class TestShadowState:
    def test_mark_and_reset(self):
        store = fleet_for("unpacked")
        assert not store.shadow_written.any()
        store.mark_initialized(10, 4)
        assert store.shadow_written[10:14].all()
        assert store.shadow_written.sum() == 4
        store.reset_shadow()
        assert not store.shadow_written.any()

    def test_writes_mark_rows(self):
        unit = FleetBitSerialUnit(fleet_for("unpacked"))
        unit.write_values(Operand(0, 4), 5)   # host load_bits path
        unit.zero(Operand(8, 2))              # compute write path
        written = np.flatnonzero(unit.fleet.shadow_written)
        assert written.tolist() == [0, 1, 2, 3, 8, 9]

    def test_mark_initialized_allows_preloaded_reads(self):
        unit = FleetBitSerialUnit(fleet_for("unpacked"))
        unit.fleet.mark_initialized(0, 4)
        unit.copy(Operand(0, 4), Operand(8, 4))  # no raise

    def test_counters_are_shared_with_the_inner_store(self):
        store = fleet_for("unpacked")
        unit = FleetBitSerialUnit(store)
        unit.write_values(Operand(0, 4), 5)
        unit.zero(Operand(8, 4))
        assert store.compute_cycles == store._store.compute_cycles == 4
        store.reset_counters()
        assert store.compute_cycles == 0

    def test_plane_ops_pass_through(self):
        store = fleet_for("unpacked")
        assert store.rows == ROWS and store.cols == COLS
        plane = store.new_plane()
        assert store.unpack_plane(plane).shape == (1, COLS)


class TestSparsityProbe:
    """The zero-plane probe is a sensed read: init-checked, and its
    "all zero" answer is cross-checked against the raw plane."""

    @pytest.mark.parametrize("kind", STORES)
    def test_uninitialized_probe_raises(self, kind):
        store = fleet_for(kind)
        with pytest.raises(VerifyError) as excinfo:
            store.plane_any(5)
        assert excinfo.value.check == "uninit-read"
        assert excinfo.value.row == 5

    @pytest.mark.parametrize("kind", STORES)
    def test_honest_probe_passes_through(self, kind):
        unit = FleetBitSerialUnit(fleet_for(kind))
        unit.write_values(Operand(0, 2), 2)  # row 0 zero, row 1 set
        assert unit.fleet.plane_any(0) is False
        assert unit.fleet.plane_any(1) is True

    @pytest.mark.parametrize("kind", STORES)
    def test_lying_probe_raises_at_the_skip_decision(self, kind):
        """A store whose zero flag drifts from its contents must trip
        the sanitizer before the elided work could corrupt state."""
        unit = FleetBitSerialUnit(fleet_for(kind))
        unit.write_values(Operand(0, 1), 1)  # row 0 holds set bits
        shadow = unit.fleet
        inner = shadow._store
        original = inner.plane_any
        inner.plane_any = lambda row: False
        try:
            with pytest.raises(VerifyError) as excinfo:
                shadow.plane_any(0)
        finally:
            inner.plane_any = original
        assert excinfo.value.check == "sparse-skip"
        assert excinfo.value.row == 0
        assert "all-zero" in str(excinfo.value)


class TestOptIn:
    def test_make_fleet_sanitize_flag(self, monkeypatch):
        monkeypatch.delenv("NEURALCACHE_SANITIZE", raising=False)
        assert isinstance(make_fleet(1, ROWS, COLS, sanitize=True),
                          ShadowPlaneStore)
        assert not isinstance(make_fleet(1, ROWS, COLS),
                              ShadowPlaneStore)

    def test_env_gate(self, monkeypatch):
        monkeypatch.setenv("NEURALCACHE_SANITIZE", "1")
        assert isinstance(make_fleet(1, ROWS, COLS), ShadowPlaneStore)
        monkeypatch.setenv("NEURALCACHE_SANITIZE", "0")
        assert not isinstance(make_fleet(1, ROWS, COLS), ShadowPlaneStore)

    def test_explicit_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("NEURALCACHE_SANITIZE", "1")
        assert not isinstance(make_fleet(1, ROWS, COLS, sanitize=False),
                              ShadowPlaneStore)

    def test_wraps_the_requested_store_kind(self):
        store = make_fleet(1, ROWS, COLS, packed=True, sanitize=True)
        assert isinstance(store, ShadowPlaneStore)
        assert isinstance(store._store, PackedArrayFleet)
