"""Functional-simulator speed: a full bit-exact in-cache convolution.

This measures the reproduction's own simulation throughput (every MAC is
executed bit by bit), and re-verifies the result against the golden
executor inside the benchmarked body — the equivalence must hold on every
round.
"""

import numpy as np

from repro.core.functional import FunctionalConv, FunctionalMaxPool
from repro.nn import (
    Conv2D,
    MaxPool,
    Network,
    QuantizedTensor,
    ReferenceExecutor,
    initialise_weights,
)
from repro.nn.reference import maxpool_quantized

RNG = np.random.default_rng(123)


def _conv_case():
    conv = Conv2D(8, (3, 3), padding="same")
    shape = (8, 8, 8)
    net = Network(name="bench")
    x = net.add_input("in", shape)
    net.add("c", conv, x)
    weights = initialise_weights(net, seed=1)
    image = QuantizedTensor.from_real(RNG.uniform(0, 6, shape),
                                      weights.input_params)
    reference = ReferenceExecutor(net, weights).run_output(image)
    return conv, shape, weights, image, reference


def test_functional_conv_bit_exact(benchmark, record):
    conv, shape, weights, image, reference = _conv_case()

    def run():
        engine = FunctionalConv(conv, shape, weights.for_node("c"),
                                output_params=weights.activation_params)
        out = engine.run(image)
        assert np.array_equal(out.data, reference.data)
        return engine.report

    report = benchmark(run)
    macs = 3 * 3 * 8 * 8 * 8 * 8
    record(f"Functional conv benchmark: {macs} true 8-bit MACs executed "
           f"bit-serially per round ({report.mac} array compute cycles, "
           f"{report.passes} passes), output bit-exact vs golden executor")


def test_functional_maxpool_bit_exact(benchmark):
    pool = MaxPool(kernel=(3, 3), stride=2, padding="valid")
    shape = (9, 9, 4)
    data = RNG.integers(0, 256, shape).astype(np.uint8)
    from repro.nn import QuantParams
    x = QuantizedTensor(data, QuantParams(0.02, 0))
    expected = maxpool_quantized(data, (3, 3), 2, "valid")

    def run():
        engine = FunctionalMaxPool(pool, shape)
        out = engine.run(x)
        assert np.array_equal(out.data, expected)
        return out

    benchmark(run)
