"""Figure 14: Neural Cache inference-latency breakdown.

Benchmarks a fresh batch-1 simulation and checks the phase shares against
the published breakdown (filter 46%, input 15%, MAC 20%, reduction 10%,
quantization 5%, output 4%, pooling 0.04%).
"""

from repro.analysis import figure14, paper
from repro.core.executor import NeuralCacheSimulator
from repro.nn import build_inception_v3


def regenerate_breakdown():
    result = NeuralCacheSimulator(build_inception_v3()).run()
    return result.breakdown()


def test_figure14_breakdown(benchmark, record):
    breakdown = benchmark(regenerate_breakdown)
    fractions = breakdown.fractions()
    for phase, published in paper.BREAKDOWN_FRACTIONS.items():
        assert abs(fractions[phase] - published) < 0.10, phase
    assert max(fractions, key=fractions.get) == "filter_load"
    record(figure14())
