"""One entry point per table and figure of the paper's evaluation.

Each function returns an :class:`~repro.analysis.report.ExperimentResult`
whose rows mirror the published presentation and whose ``data`` payload
carries the raw numbers (used by benchmarks and EXPERIMENTS.md). The
heavyweight objects (the Inception v3 graph, the Neural Cache simulator,
the baselines) are built once and cached module-wide.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.analysis import paper
from repro.analysis.report import ExperimentResult, pct, ratio_cell
from repro.baselines import CpuBaseline, GpuBaseline, TITAN_XP, XEON_E5_2697_V3
from repro.cache.geometry import capacity_sweep
from repro.config import NeuralCacheConfig
from repro.core.schedule import mac_cycles_per_pass, reduction_cycles_per_pass
from repro.engine.backend import AnalyticBackend, Backend, get_backend
from repro.nn import build_inception_v3, table1 as build_table1
from repro.sram.cost import CycleCosts

DEFAULT_BATCHES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@lru_cache(maxsize=1)
def _network():
    return build_inception_v3()


@lru_cache(maxsize=1)
def _backend() -> Backend:
    """The analytic engine, held behind the unified Backend protocol."""
    return get_backend("analytic")


def _simulator():
    """Engine-specific surface (layer mappings) of the analytic backend."""
    return _backend().simulator(_network())


@lru_cache(maxsize=1)
def _cpu() -> CpuBaseline:
    return CpuBaseline(_network())


@lru_cache(maxsize=1)
def _gpu() -> GpuBaseline:
    return GpuBaseline(_network())


@lru_cache(maxsize=4)
def _result(batch_size: int = 1):
    return _backend().run(_network(), batch_size).inference


# ---------------------------------------------------------------------------
# Table I: Inception v3 layer parameters
# ---------------------------------------------------------------------------
def table1() -> ExperimentResult:
    """Regenerate Table I from the faithful Inception v3 graph."""
    rows = []
    data = {}
    for stats in build_table1(_network()):
        published = paper.TABLE1[stats.group]
        flag = ("*" if stats.group in paper.TABLE1_KNOWN_DISCREPANCIES
                else "")
        rows.append((
            stats.group + flag,
            str(stats.input_height),
            stats.kernel_label(),
            str(stats.output_height),
            stats.channel_label(),
            str(stats.convolutions),
            f"{stats.filter_mb:.3f}",
            f"{stats.input_mb:.3f}",
            str(published[0]),
        ))
        data[stats.group] = stats
    return ExperimentResult(
        name="Table I: Parameters of the Layers of Inception v3",
        headers=("Layer", "H", "RxS", "E", "C", "Conv", "Filter/MB",
                 "Input/MB", "paper Conv"),
        rows=tuple(rows),
        data=data,
        notes=("* Mixed_6a filter size: the published 0.255 MB reads "
               "TF-slim's 'Conv2d_1a_1x1' scope name as a 1x1 filter; the "
               "real op is 3x3 stride 2 (1.10 MB here).",
               "* Mixed_6e: the published row repeats 6c/6d although its "
               "C-range column implies the standard 192-channel module "
               "built here."))


# ---------------------------------------------------------------------------
# Table II: baseline configuration
# ---------------------------------------------------------------------------
def table2() -> ExperimentResult:
    """Baseline CPU & GPU configuration (spec constants)."""
    rows = []
    for spec in (XEON_E5_2697_V3, TITAN_XP):
        rows.append((spec.name, f"{spec.frequency_ghz} GHz",
                     str(spec.parallel_units), f"{spec.process_nm} nm",
                     f"{spec.tdp_watts:.0f} W", spec.cache_description))
    return ExperimentResult(
        name="Table II: Baseline CPU & GPU Configuration",
        headers=("Device", "Frequency", "Cores/CUDA", "Process", "TDP",
                 "Cache"),
        rows=tuple(rows),
        data={"cpu": XEON_E5_2697_V3, "gpu": TITAN_XP})


# ---------------------------------------------------------------------------
# Figure 13: per-layer latency
# ---------------------------------------------------------------------------
def figure13() -> ExperimentResult:
    """Inference latency by layer for CPU, GPU and Neural Cache."""
    nc_groups = _result().group_latency()
    cpu_groups = _cpu().group_latency()
    gpu_groups = _gpu().group_latency()
    rows = []
    for group in _network().groups():
        rows.append((group,
                     f"{cpu_groups[group] * 1e3:.3f}",
                     f"{gpu_groups[group] * 1e3:.3f}",
                     f"{nc_groups[group] * 1e3:.3f}"))
    data = {"cpu": cpu_groups, "gpu": gpu_groups, "neural_cache": nc_groups}
    return ExperimentResult(
        name="Figure 13: Inference Latency by Layer of Inception v3 (ms)",
        headers=("Layer", "CPU Xeon E5", "GPU Titan Xp", "Neural Cache"),
        rows=tuple(rows),
        data=data,
        notes=("Neural Cache is fastest on every layer; the mixed modules "
               "dominate all three devices, as in the paper.",))


# ---------------------------------------------------------------------------
# Figure 14: Neural Cache latency breakdown
# ---------------------------------------------------------------------------
def figure14() -> ExperimentResult:
    """Execution-time breakdown of a batch-1 inference."""
    breakdown = _result().breakdown()
    fractions = breakdown.fractions()
    rows = []
    for phase, published in paper.BREAKDOWN_FRACTIONS.items():
        rows.append((phase, f"{getattr(breakdown, phase) * 1e3:.3f}",
                     pct(fractions[phase]), pct(published)))
    return ExperimentResult(
        name="Figure 14: Neural Cache Inference Latency Breakdown",
        headers=("Phase", "Time/ms", "Share", "Paper share"),
        rows=tuple(rows),
        data={"breakdown": breakdown, "fractions": fractions})


# ---------------------------------------------------------------------------
# Figure 15: total latency
# ---------------------------------------------------------------------------
def figure15() -> ExperimentResult:
    """Total batch-1 latency and the headline speedups."""
    nc = _result().total_time
    cpu = _cpu().latency()
    gpu = _gpu().latency()
    rows = (
        ("CPU - Xeon E5", ratio_cell(cpu * 1e3, paper.CPU_LATENCY_MS), "1.0x"),
        ("GPU - Titan Xp", ratio_cell(gpu * 1e3, paper.GPU_LATENCY_MS),
         f"{cpu / gpu:.1f}x"),
        ("Neural Cache", ratio_cell(nc * 1e3, paper.NC_LATENCY_MS),
         f"{cpu / nc:.1f}x"),
    )
    data = {"cpu_s": cpu, "gpu_s": gpu, "nc_s": nc,
            "cpu_speedup": cpu / nc, "gpu_speedup": gpu / nc}
    return ExperimentResult(
        name="Figure 15: Total Latency on Inception v3 Inference",
        headers=("Device", "Latency/ms (vs paper)", "Speedup vs CPU"),
        rows=rows,
        data=data,
        notes=(f"Paper speedups: {paper.CPU_SPEEDUP}x over CPU, "
               f"{paper.GPU_SPEEDUP}x over GPU; measured "
               f"{data['cpu_speedup']:.1f}x and {data['gpu_speedup']:.1f}x.",))


# ---------------------------------------------------------------------------
# Figure 16: throughput vs batch size
# ---------------------------------------------------------------------------
def figure16(batches: tuple[int, ...] = DEFAULT_BATCHES) -> ExperimentResult:
    """Throughput (inferences/s) as the batch size sweeps."""
    backend = _backend()
    rows = []
    series = {"batch": [], "cpu": [], "gpu": [], "neural_cache": []}
    for batch in batches:
        cpu_t = _cpu().throughput(batch)
        gpu_t = _gpu().throughput(batch)
        nc_t = backend.throughput(_network(), batch)
        series["batch"].append(batch)
        series["cpu"].append(cpu_t)
        series["gpu"].append(gpu_t)
        series["neural_cache"].append(nc_t)
        rows.append((str(batch), f"{cpu_t:.1f}", f"{gpu_t:.1f}",
                     f"{nc_t:.1f}"))
    peak = max(series["neural_cache"])
    data = dict(series)
    data["nc_peak"] = peak
    data["vs_gpu"] = peak / max(series["gpu"])
    data["vs_cpu"] = peak / max(series["cpu"])
    return ExperimentResult(
        name="Figure 16: Throughput with Varying Batch Sizes (inf/s)",
        headers=("Batch", "CPU", "GPU", "Neural Cache"),
        rows=tuple(rows),
        data=data,
        notes=(f"Peak Neural Cache throughput {peak:.0f} inf/s "
               f"(paper {paper.NC_MAX_THROUGHPUT:.0f}); "
               f"{data['vs_gpu']:.1f}x GPU (paper {paper.THROUGHPUT_VS_GPU}x), "
               f"{data['vs_cpu']:.1f}x CPU (paper {paper.THROUGHPUT_VS_CPU}x).",))


# ---------------------------------------------------------------------------
# Table III: energy and power
# ---------------------------------------------------------------------------
def table3() -> ExperimentResult:
    """Energy per inference and average power for all three devices."""
    result = _result()
    devices = (
        ("CPU", _cpu().energy(), _cpu().average_power),
        ("GPU", _gpu().energy(), _gpu().average_power),
        ("Neural Cache", result.total_energy, result.average_power),
    )
    keys = ("cpu", "gpu", "neural_cache")
    rows = []
    data = {}
    for (name, energy, power), key in zip(devices, keys):
        rows.append((name,
                     ratio_cell(energy, paper.ENERGY_J[key], precision=3),
                     ratio_cell(power, paper.POWER_W[key])))
        data[key] = {"energy_j": energy, "power_w": power}
    nc = data["neural_cache"]["energy_j"]
    data["efficiency_vs_cpu"] = data["cpu"]["energy_j"] / nc
    data["efficiency_vs_gpu"] = data["gpu"]["energy_j"] / nc
    return ExperimentResult(
        name="Table III: Energy Consumption and Average Power",
        headers=("Device", "Total Energy/J (vs paper)",
                 "Average Power/W (vs paper)"),
        rows=tuple(rows),
        data=data,
        notes=(f"Energy efficiency vs CPU {data['efficiency_vs_cpu']:.1f}x "
               f"(paper 37.1x), vs GPU {data['efficiency_vs_gpu']:.1f}x "
               f"(paper 16.6x).",))


# ---------------------------------------------------------------------------
# Table IV: scaling with cache capacity
# ---------------------------------------------------------------------------
def table4() -> ExperimentResult:
    """Batch-1 latency at 35 / 45 / 60 MB."""
    rows = []
    data = {}
    for geometry in capacity_sweep():
        capacity_mb = geometry.total_bytes // (1024 * 1024)
        config = NeuralCacheConfig().with_geometry(geometry)
        latency = AnalyticBackend(config).run(_network()).latency_s
        published = paper.CAPACITY_LATENCY_MS[capacity_mb]
        rows.append((f"{capacity_mb} MB ({geometry.slices} slices)",
                     ratio_cell(latency * 1e3, published)))
        data[capacity_mb] = latency
    return ExperimentResult(
        name="Table IV: Scaling with Cache Capacity (Batch Size = 1)",
        headers=("Cache Capacity", "Inference Latency/ms (vs paper)"),
        rows=tuple(rows),
        data=data)


# ---------------------------------------------------------------------------
# Sec. VI-A worked example
# ---------------------------------------------------------------------------
def section6a_example() -> ExperimentResult:
    """The Conv2d_2b_3x3 walk-through of Sec. VI-A."""
    sim = _simulator()
    mapping = sim.mapping_for("Conv2d_2b_3x3")
    config = sim.config
    mac = mac_cycles_per_pass(config, mapping)
    reduce_c = reduction_cycles_per_pass(config, mapping)
    per_conv = mac + reduce_c
    layer_cycles = mapping.serial_passes * per_conv
    conv_ms = layer_cycles / config.frequency_hz * 1e3
    rows = (
        ("parallel convolutions", str(mapping.parallel_outputs), "~32000"),
        ("serial passes", str(mapping.serial_passes),
         str(paper.EXAMPLE_SERIAL_CONVS)),
        ("utilization", pct(mapping.utilization),
         pct(paper.EXAMPLE_UTILIZATION)),
        ("cycles per MAC", str(config.costs.mac(8, 24)),
         str(paper.EXAMPLE_CYCLES_PER_MAC)),
        ("reduction cycles", str(reduce_c),
         str(paper.EXAMPLE_REDUCTION_CYCLES)),
        ("cycles per convolution", str(per_conv),
         str(paper.EXAMPLE_CYCLES_PER_CONV)),
        ("layer cycles", str(layer_cycles),
         str(paper.EXAMPLE_LAYER_CYCLES)),
        ("convolution time (ms)", f"{conv_ms:.4f}",
         f"{paper.EXAMPLE_CONV_TIME_MS:.4f}"),
    )
    data = {"mapping": mapping, "per_conv": per_conv,
            "layer_cycles": layer_cycles, "conv_ms": conv_ms}
    return ExperimentResult(
        name="Sec. VI-A worked example: Conv2d_2b_3x3",
        headers=("Quantity", "Measured", "Paper"),
        rows=rows,
        data=data)


# ---------------------------------------------------------------------------
# Sec. III: arithmetic op latencies
# ---------------------------------------------------------------------------
def arithmetic_latencies(bit_widths: tuple[int, ...] = (4, 8, 16)
                         ) -> ExperimentResult:
    """Bit-serial op cycle counts: functional model vs both presets."""
    from repro.sram import BitSerialUnit, Operand, SRAMArray

    derived = CycleCosts.derived()
    published = CycleCosts.paper()
    rows = []
    data = {}
    for n in bit_widths:
        unit = BitSerialUnit(SRAMArray(rows=256, cols=32))
        values = np.arange(32, dtype=np.int64) % (1 << n)
        a, b = Operand(0, n), Operand(n, n)
        unit.write_values(a, values)
        unit.write_values(b, values[::-1].copy())
        unit.add(a, b, Operand(2 * n, n + 1))
        add_measured = unit.cycles

        unit2 = BitSerialUnit(SRAMArray(rows=256, cols=32))
        unit2.write_values(a, values)
        unit2.write_values(b, values[::-1].copy())
        unit2.multiply(a, b, Operand(2 * n, 2 * n))
        mult_measured = unit2.cycles

        rows.append((f"add n={n}", str(add_measured), str(derived.add(n)),
                     str(published.add(n))))
        rows.append((f"multiply n={n}", str(mult_measured),
                     str(derived.multiply(n)), str(published.multiply(n))))
        rows.append((f"divide n={n}", "-", str(derived.divide(n)),
                     str(published.divide(n))))
        data[n] = {"add": add_measured, "multiply": mult_measured}
    return ExperimentResult(
        name="Sec. III: bit-serial op latencies (cycles)",
        headers=("Operation", "Functional", "Derived model", "Paper model"),
        rows=tuple(rows),
        data=data,
        notes=("Paper formulas: add n+1, multiply n^2+5n-2, divide "
               "1.5n^2+5.5n. The derived column matches the functional "
               "simulator exactly; gaps to the paper's multiply are the "
               "linear bookkeeping term discussed in DESIGN.md.",))


# ---------------------------------------------------------------------------
# Peak throughput and area
# ---------------------------------------------------------------------------
def peak_throughput() -> ExperimentResult:
    """The 28 TOP/s (8-bit) headline claim at 35 MB."""
    config = NeuralCacheConfig()
    peak = config.peak_ops_per_second()
    rows = (
        ("bit-serial ALU slots", str(config.geometry.alu_slots),
         str(paper.ALU_SLOTS_35MB)),
        ("compute frequency", f"{config.frequency_hz / 1e9:.1f} GHz",
         "2.5 GHz"),
        ("8-bit multiply cycles", str(config.costs.multiply(8)), "102"),
        ("peak 8-bit TOP/s", f"{peak / 1e12:.1f}",
         f"{paper.PEAK_TOPS / 1e12:.0f}"),
    )
    return ExperimentResult(
        name="Peak throughput (Sec. VII comparison with BrainWave)",
        headers=("Quantity", "Measured", "Paper"),
        rows=rows,
        data={"peak_ops": peak})


def area_report() -> ExperimentResult:
    """Area overhead accounting (Fig. 12, Sec. IV-F)."""
    from repro.core.isa import fsm_total_area_mm2
    from repro.sram import ArrayAreaModel

    model = ArrayAreaModel()
    config = NeuralCacheConfig()
    banks = config.geometry.slices * config.geometry.banks_per_slice
    rows = (
        ("array area overhead", pct(model.overhead_fraction),
         pct(paper.ARRAY_AREA_OVERHEAD)),
        ("processor die overhead", pct(model.die_overhead_fraction()),
         f"< {pct(paper.DIE_AREA_OVERHEAD_MAX)}"),
        ("control FSM total", f"{fsm_total_area_mm2(banks):.2f} mm^2",
         f"{paper.FSM_TOTAL_AREA_MM2:.2f} mm^2"),
    )
    return ExperimentResult(
        name="Area overheads (Fig. 12 / Sec. IV-F)",
        headers=("Quantity", "Measured", "Paper"),
        rows=rows,
        data={"banks": banks})


def robustness_report() -> ExperimentResult:
    """Multi-row activation stability (Sec. II-B / Sec. V anchors)."""
    from repro.sram.robustness import (
        CHOSEN_RWL_VOLTAGE,
        ReadStabilityModel,
        choose_rwl_voltage,
    )

    model = ReadStabilityModel()
    rows = (
        ("RWL voltage meeting 6 sigma", f"{choose_rwl_voltage():.2f} V",
         f"{CHOSEN_RWL_VOLTAGE:.2f} V"),
        ("margin at 0.66 V, 2 rows",
         f"{model.margin_sigma(CHOSEN_RWL_VOLTAGE):.1f} sigma",
         ">= 6 sigma"),
        ("margin at 0.66 V, 64 rows",
         f"{model.margin_sigma(CHOSEN_RWL_VOLTAGE, 64):.1f} sigma",
         "no corruption on 20 chips"),
        ("expected disturbs, 20 x 8KB chips, 64 rows",
         f"{model.expected_failures(CHOSEN_RWL_VOLTAGE, 20 * 8192 * 8, 64):.3f}",
         "0 observed"),
        ("compute delay at 0.66 V",
         f"{model.compute_delay_ps(CHOSEN_RWL_VOLTAGE):.0f} ps", "1022 ps"),
        ("delay vs normal read", f"{model.delay_ratio():.2f}x", "~1.6x"),
    )
    return ExperimentResult(
        name="Multi-row activation robustness (Sec. II-B / V)",
        headers=("Quantity", "Model", "Paper"),
        rows=rows,
        data={"voltage": choose_rwl_voltage()})


def fleet_verification(batch_size: int = 2) -> ExperimentResult:
    """Bit-exact functional execution through the fleet Backend.

    Exercises the same :class:`~repro.engine.backend.Backend` protocol the
    analytic experiments use, but with the vectorized functional engine:
    every layer runs as one lockstep bit-serial sequence across an
    :class:`~repro.engine.fleet.ArrayFleet` and the outputs are checked
    bit-for-bit against the golden NumPy executor.
    """
    from repro.engine.backend import tiny_verification_network

    backend = get_backend("fleet")
    net = tiny_verification_network()
    res = backend.run(net, batch_size=batch_size)
    r = res.report
    rows = (
        ("network", net.name),
        ("images verified bit-exact", f"{res.verified_images}/{batch_size}"),
        ("array passes", str(r.passes)),
        ("MAC cycles", str(r.mac)),
        ("reduction cycles", str(r.reduction)),
        ("quantization cycles", str(r.quantization)),
        ("pooling cycles", str(r.pooling)),
        ("total compute cycles", str(r.total)),
    )
    return ExperimentResult(
        name="Fleet backend: bit-exact functional verification",
        headers=("Quantity", "Measured"),
        rows=rows,
        data={"result": res},
        notes=("Every layer executes as one lockstep bit-serial sequence "
               "across the array fleet; outputs match the golden NumPy "
               "executor exactly.",))


def sparsity(caps: tuple[int, ...] = (255, 63, 15, 3, 0)
             ) -> ExperimentResult:
    """Cycles vs activation sparsity under bit-plane skipping.

    The sparsity engine elides a multiply/add step when an operand's
    whole bit plane is zero across the fleet — the lockstep analogue of
    BitWave-style bit-column skipping. Activations with small magnitudes
    leave their high bit planes all-zero, so the actual cycle count
    falls as activations get sparser/narrower while outputs stay
    bit-exact (verified against the golden executor at every point) and
    the dense-equivalent count (``CycleReport.dense_cycles``) stays at
    the input-independent paper accounting.
    """
    from repro.engine.backend import (
        BackendOptions,
        get_backend,
        tiny_verification_network,
    )
    from repro.nn import QuantizedTensor

    net = tiny_verification_network()
    backend = get_backend("fleet-packed",
                          options=BackendOptions(sparsity=True))
    weights = backend.weights_for(net)
    golden = backend.golden_for(net, weights)
    rng = np.random.default_rng(0)
    rows = []
    points = []
    dense_cycles = None
    for cap in caps:
        if cap:
            raw = rng.integers(0, cap + 1, size=net.input_shape,
                               dtype=np.uint8)
        else:
            raw = np.zeros(net.input_shape, dtype=np.uint8)
        image = QuantizedTensor(data=raw, params=weights.input_params)
        outcome = backend.run_requests(net, [image], weights, golden)
        r = outcome.report
        if dense_cycles is None:
            dense_cycles = r.dense_cycles
        elif r.dense_cycles != dense_cycles:
            raise AssertionError(
                f"dense-equivalent cycles moved with the input: "
                f"{r.dense_cycles} != {dense_cycles}")
        zero_frac = float((raw == 0).mean())
        speedup = r.dense_cycles / r.total if r.total else float("inf")
        rows.append((f"<= {cap}", pct(zero_frac), str(r.total),
                     str(r.skipped), f"{speedup:.2f}x"))
        points.append({"cap": cap, "zero_fraction": zero_frac,
                       "cycles": r.total, "skipped": r.skipped,
                       "speedup": speedup, "verified": outcome.verified})
    return ExperimentResult(
        name="Bit-plane sparsity: cycles vs activation sparsity",
        headers=("Activations", "Zero frac", "Cycles", "Skipped",
                 "Speedup"),
        rows=tuple(rows),
        data={"dense_cycles": dense_cycles, "points": points},
        notes=("All-zero operand bit planes are detected at the plane "
               "store and their multiply/add steps skipped fleet-wide; "
               "every point's outputs are verified bit-exact against "
               "the golden executor, and the dense-equivalent cycle "
               "count is identical at every point — sparsity changes "
               "what runs, never what is computed or how the paper's "
               "cycle model accounts it.",))


@lru_cache(maxsize=2)
def sharding(batch_size: int = 4, socket_counts: tuple[int, ...] = (1, 2, 4)
             ) -> ExperimentResult:
    """Multi-socket sharding: the linear scaling claim of Sec. VI-B.

    Two halves of the same story. Analytically, "Neural Cache throughput
    scales linearly with the number of host CPUs": the model's
    inferences/s at each socket count must be exactly ``sockets x`` the
    single-socket figure. Functionally, the
    :class:`~repro.engine.sharding.ShardedBackend` splits a batch
    round-robin across socket shards (one packed fleet each) and its
    aggregate must be *identical* — outputs bit-exact, cycle report
    equal — to the unsharded ``fleet-packed`` run, so the socket-scaling
    numbers rest on sharding that provably loses nothing.
    """
    import dataclasses

    from repro.engine.backend import tiny_verification_network
    from repro.engine.sharding import ShardedBackend

    rows = []
    data: dict = {"throughput": {}, "batch_size": batch_size}

    # -- analytic: throughput vs socket count at a fixed batch --
    reference = None
    for sockets in socket_counts:
        config = dataclasses.replace(NeuralCacheConfig(), sockets=sockets)
        t = AnalyticBackend(config).throughput(_network(), batch_size)
        if reference is None:
            reference = t
        data["throughput"][sockets] = t
        base = socket_counts[0]
        rows.append((f"analytic throughput, {sockets} socket(s)",
                     f"{t:.1f} inf/s",
                     f"{t / reference:.2f}x vs {base} socket(s) "
                     f"(linear: {sockets / base:.2f}x)"))

    # -- functional: sharded aggregate vs the unsharded packed fleet --
    net = tiny_verification_network()
    unsharded = get_backend("fleet-packed").run(net, batch_size=batch_size)
    shards = NeuralCacheConfig().sockets
    sharded = ShardedBackend(shards=shards).run(net, batch_size=batch_size)
    for s in sharded.shard_reports:
        rows.append((f"functional shard {s.shard} ({net.name})",
                     f"{s.report.total} cycles / {s.images} image(s)",
                     "round-robin slice"))
    identical = (sharded.report == unsharded.report
                 and np.array_equal(
                     sharded.outputs[net.output_name].data,
                     unsharded.outputs[net.output_name].data))
    rows.append(("sharded vs unsharded aggregate",
                 "identical" if identical else "MISMATCH",
                 f"{sharded.report.total} vs {unsharded.report.total} "
                 f"cycles, outputs "
                 f"{'bit-exact' if identical else 'DIVERGED'}"))
    rows.append(("images verified bit-exact",
                 f"{sharded.verified_images}/{batch_size}",
                 "vs golden executor"))
    data["sharded"] = sharded
    data["unsharded"] = unsharded
    data["identical"] = identical
    return ExperimentResult(
        name="Multi-socket sharding: linear throughput scaling (Sec. VI-B)",
        headers=("Quantity", "Measured", "Check"),
        rows=tuple(rows),
        data=data,
        notes=(f"The analytic model runs {shards} independent caches per "
               f"node (Fig. 16's dual socket); the ShardedBackend is the "
               f"functional counterpart — per-shard packed fleets whose "
               f"aggregate is bit- and cycle-identical to one fleet.",))


@lru_cache(maxsize=2)
def serving(n_requests: int = 24,
            socket_counts: tuple[int, ...] = (1, 2)) -> ExperimentResult:
    """Async batched serving: tail latency against the Fig. 16 curve.

    Fig. 16's throughput is a *serving* claim — a continuous request
    stream batched onto the node's sockets. This experiment runs the
    functional serving stack (:mod:`repro.serving`: an asyncio queue
    coalescing arrivals into batched fleet passes over a pool of
    :class:`~repro.engine.sharding.ShardedBackend` nodes on the thread
    shard driver) at each socket count and reports measured p50/p95/p99
    tail latency and throughput, next to the analytic model's Fig. 16
    socket-scaling curve at the same socket counts. The correctness
    column is the serving gate: every response delivered exactly once
    and bit-exact against the direct ``run_requests`` path.
    """
    import dataclasses

    from repro.serving import run_serving_benchmark

    rows = []
    data: dict = {"serving": {}, "analytic_throughput": {},
                  "n_requests": n_requests}
    for sockets in socket_counts:
        stats = run_serving_benchmark(
            n_requests=n_requests, sockets=sockets, pool_size=2,
            max_batch=6, max_wait_ms=2.0, driver="thread")
        data["serving"][sockets] = stats
        config = dataclasses.replace(NeuralCacheConfig(), sockets=sockets)
        analytic = AnalyticBackend(config).throughput(_network(),
                                                      stats["max_batch"])
        data["analytic_throughput"][sockets] = analytic
        rows.append((f"{sockets} socket(s): measured serving",
                     f"{stats['throughput_rps']:.1f} req/s, p50 "
                     f"{stats['p50_ms']:.1f} / p95 {stats['p95_ms']:.1f} "
                     f"/ p99 {stats['p99_ms']:.1f} ms",
                     f"{stats['batches']} batches, mean "
                     f"{stats['mean_batch']:.1f}"))
        rows.append((f"{sockets} socket(s): analytic Fig. 16 curve",
                     f"{analytic:.1f} inf/s at batch "
                     f"{stats['max_batch']}",
                     f"{analytic / data['analytic_throughput'][socket_counts[0]]:.2f}x "
                     f"vs {socket_counts[0]} socket(s)"))
        rows.append((f"{sockets} socket(s): serving gate",
                     "exact" if stats["ok"] else "FAILED",
                     f"lost={stats['lost']} dup={stats['duplicates']} "
                     f"bit-exact={stats['bit_exact']}"))
    data["ok"] = all(s["ok"] for s in data["serving"].values())
    return ExperimentResult(
        name="Async batched serving: tail latency vs the Fig. 16 "
             "socket-scaling curve",
        headers=("Quantity", "Measured", "Check"),
        rows=tuple(rows),
        data=data,
        notes=("The functional serving stack batches a live request "
               "queue into fleet passes (max_batch 6, max_wait 2 ms) "
               "over per-socket shards; the analytic column is the "
               "model's linear socket scaling at the same batch size "
               "(Sec. VI-B). Wall-clock throughput is host-bound — the "
               "claim checked here is that serving loses nothing: every "
               "response exact, tails bounded by the batching window.",))


def all_experiments() -> list[ExperimentResult]:
    """Every regenerated table/figure, in paper order."""
    return [table1(), table2(), figure13(), figure14(), figure15(),
            figure16(), table3(), table4(), section6a_example(),
            arithmetic_latencies(), peak_throughput(), area_report(),
            robustness_report(), fleet_verification(), sparsity(),
            sharding(), serving()]
