"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs bdist_wheel; this offline
environment lacks it, so `python setup.py develop` provides the editable
install path. Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
