"""Process-global fault context: how a model reaches every fleet.

An executor builds its fleets deep inside the layer engines — callers
never see the :func:`~repro.engine.packed.make_fleet` calls, so an
explicit ``faults=`` argument cannot reach them. This module is the
ambient channel instead: :func:`hardware_faults` (or
:func:`set_hardware_faults`) installs an active
:class:`~repro.faults.hardware.HardwareFaultModel`, and ``make_fleet``
asks :func:`wrap_fleet` to wrap each new store while one is active.

Each wrapped fleet gets a ``fault_index`` counted per geometry in
creation order. Executor fleet creation is deterministic for a fixed
(network, config), so index ``k`` names the same logical fleet on every
run — which is what keeps the seeded defect field reproducible, and the
per-geometry counter keeps an index meaning "the k-th fleet of *this
shape*" even when layers of different shapes interleave. Installing a
model (or clearing it) resets the counters, so every run under
:func:`hardware_faults` starts the count at zero.

This module stays import-light on purpose: ``make_fleet`` imports it on
every call, and the heavy half of the package
(:mod:`repro.faults.hardware`) is only pulled in once a model is
actually active.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.hardware import HardwareFaultModel

__all__ = ["active_hardware_faults", "hardware_faults",
           "set_hardware_faults", "wrap_fleet"]

_model = None
#: (n_arrays, rows, cols) -> fleets of that geometry wrapped so far.
_counts: dict[tuple, int] = {}


def set_hardware_faults(model) -> "HardwareFaultModel | None":
    """Install ``model`` as the ambient fault model; returns the old one.

    ``None`` clears. Fleet-creation counters restart either way.
    """
    global _model
    previous = _model
    _model = model
    _counts.clear()
    return previous


def active_hardware_faults() -> "HardwareFaultModel | None":
    """The currently installed ambient model, if any."""
    return _model


@contextmanager
def hardware_faults(model):
    """Scope an ambient fault model::

        with hardware_faults(HardwareFaultModel(stuck_rate=1e-3)):
            outcome = FleetExecutor(verify=False).run_requests(net, imgs)
    """
    previous = set_hardware_faults(model)
    try:
        yield model
    finally:
        set_hardware_faults(previous)


def wrap_fleet(store, model=None):
    """Wrap a fresh plane store if a fault model is given or active.

    ``make_fleet`` calls this on every store it builds. An explicit
    ``model`` always wraps (with ``fault_index=0``); otherwise the
    ambient model wraps with the next per-geometry index, and no active
    model means the store passes through untouched.
    """
    explicit = model is not None
    if not explicit:
        model = _model
    if model is None:
        return store
    index = 0
    if not explicit:
        key = (store.n_arrays, store.rows, store.cols)
        index = _counts.get(key, 0)
        _counts[key] = index + 1
    from repro.faults.hardware import FaultyPlaneStore
    return FaultyPlaneStore(store, model, fault_index=index)
