"""Static passes vs the shadow-state sanitizer on random programs.

Random ISA programs are generated over slot-disjoint operands (so the
only possible violation class is init discipline), then checked two
ways: lifted and run through the static passes, and executed on a
sanitized single-array unit under the ControlFSM. The static
``uninit-read`` verdict and the sanitizer's runtime raise must always
agree — that is the contract that makes the sanitizer the ground truth
the static pass is tested against.

A second family mutates known-good-by-construction programs (drop an
init, swap copy operands, shrink the geometry) and asserts the matching
pass catches every mutation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import IsaError, VerifyError
from repro.core.isa import ControlFSM, Instruction, Opcode
from repro.engine.packed import make_fleet
from repro.sram import BitSerialUnit, Operand, SRAMArray
from repro.verify import lift_isa_program, verify_program

ROWS, COLS = 48, 8
N_SLOTS = 6  # 8-row slots at 0, 8, ..., 40

SLOT_IDX = st.integers(min_value=0, max_value=N_SLOTS - 1)


def slot(i, nbits=4):
    return Operand(8 * i, nbits)


@st.composite
def random_instruction(draw):
    """One in-bounds instruction over slot-disjoint operands."""
    kind = draw(st.sampled_from(
        ["czero", "cimm", "ccopy", "cadd", "cmult", "csub", "crelu"]))
    if kind == "czero":
        return Instruction(Opcode.CZERO, (slot(draw(SLOT_IDX)),))
    if kind == "cimm":
        return Instruction(Opcode.CIMM, (slot(draw(SLOT_IDX)),),
                           immediate=draw(st.integers(0, 15)))
    if kind == "crelu":
        s = draw(SLOT_IDX)
        return Instruction(Opcode.CRELU, (slot(s),), immediate=8 * s + 3)
    n_ops = {"ccopy": 2, "cadd": 3, "cmult": 3, "csub": 4}[kind]
    slots = draw(st.permutations(range(N_SLOTS)).map(lambda p: p[:n_ops]))
    if kind == "ccopy":
        return Instruction(Opcode.CCOPY, (slot(slots[0]), slot(slots[1])))
    if kind == "cadd":
        return Instruction(Opcode.CADD, (slot(slots[0]), slot(slots[1]),
                                         slot(slots[2], 5)))
    if kind == "cmult":
        return Instruction(Opcode.CMULT, (slot(slots[0]), slot(slots[1]),
                                          slot(slots[2], 8)))
    return Instruction(Opcode.CSUB, (slot(slots[0]), slot(slots[1]),
                                     slot(slots[2], 5), slot(slots[3])))


def sanitized_fsm():
    fleet = make_fleet(1, ROWS, COLS, sanitize=True)
    return ControlFSM([BitSerialUnit(SRAMArray(ROWS, COLS, fleet=fleet))])


@settings(max_examples=60, deadline=None)
@given(st.lists(random_instruction(), min_size=1, max_size=8))
def test_static_uninit_verdict_matches_the_sanitizer(program):
    facts = lift_isa_program(program, ROWS, COLS)
    all_findings = verify_program(facts)
    # Slot-disjoint operands leave only two reachable classes: init
    # discipline (which the sanitizer mirrors) and dead writes (a pure
    # efficiency lint with no runtime signal to compare against).
    assert {f.check for f in all_findings} <= {"uninit-read", "dead-write"}
    findings = [f for f in all_findings if f.check == "uninit-read"]

    raised = False
    try:
        sanitized_fsm().execute(program)
    except VerifyError as err:
        assert err.check == "uninit-read"
        raised = True
    assert raised == bool(findings), (
        "static verdict and sanitizer disagree on:\n"
        + "\n".join(str(i) for i in program))


@st.composite
def known_good_program(draw):
    """A program that is clean by construction: every slot is initialised
    before anything reads it, destinations never alias sources."""
    program = [Instruction(Opcode.CIMM, (slot(0),),
                           immediate=draw(st.integers(0, 15)))]
    initialized = [0]
    free = list(range(1, N_SLOTS))
    for _ in range(draw(st.integers(1, 4))):
        if not free or (len(initialized) >= 2 and draw(st.booleans())):
            a = draw(st.sampled_from(initialized))
            b = draw(st.sampled_from([s for s in initialized if s != a]))
            dst = draw(st.sampled_from(free)) if free else None
            if dst is None:
                continue
            free.remove(dst)
            initialized.append(dst)
            program.append(Instruction(
                Opcode.CADD, (slot(a), slot(b), slot(dst, 5))))
        else:
            new = draw(st.sampled_from(free))
            free.remove(new)
            initialized.append(new)
            program.append(Instruction(Opcode.CIMM, (slot(new),),
                                       immediate=draw(st.integers(0, 15))))
    return program


@settings(max_examples=40, deadline=None)
@given(known_good_program(), st.data())
def test_dropping_a_needed_init_is_always_caught(program, data):
    assert verify_program(lift_isa_program(program, ROWS, COLS)) == []

    read_rows = set()
    for facts in lift_isa_program(program, ROWS, COLS).ops:
        for region in facts.reads:
            read_rows.update(range(region.row, region.end))
    needed = [i for i, instr in enumerate(program)
              if instr.opcode is Opcode.CIMM
              and instr.operands[0].row in read_rows]
    if not needed:
        return  # nothing in this example feeds a later read
    mutant = list(program)
    del mutant[data.draw(st.sampled_from(needed), label="dropped init")]

    findings = verify_program(lift_isa_program(mutant, ROWS, COLS))
    assert any(f.check == "uninit-read" for f in findings)
    with pytest.raises(VerifyError) as excinfo:
        sanitized_fsm().execute(mutant)
    assert excinfo.value.check == "uninit-read"


@settings(max_examples=40, deadline=None)
@given(known_good_program(), st.data())
def test_shrunken_geometry_is_always_caught(program, data):
    top = max(r.end for facts in lift_isa_program(program, ROWS, COLS).ops
              for r in facts.all_regions())
    rows = data.draw(st.integers(max(top - 8, 1), top - 1),
                     label="shrunken rows")

    findings = verify_program(lift_isa_program(program, rows, COLS))
    assert any(f.check == "bounds" for f in findings)
    fleet = make_fleet(1, rows, COLS)
    fsm = ControlFSM([BitSerialUnit(SRAMArray(rows, COLS, fleet=fleet))])
    with pytest.raises(IsaError):
        fsm.execute(program)
    assert fsm.instructions_executed == 0


@settings(max_examples=40, deadline=None)
@given(known_good_program(), st.data())
def test_swapping_copy_operands_reads_the_uninit_side(program, data):
    free = sorted({8 * i for i in range(N_SLOTS)}
                  - {instr.operands[-1].row for instr in program}
                  - {program[0].operands[0].row})
    if not free:
        return
    dst_row = data.draw(st.sampled_from(free), label="copy dst slot")
    src = program[0].operands[0]
    good = program + [Instruction(
        Opcode.CCOPY, (src, Operand(dst_row, src.nbits)))]
    assert verify_program(lift_isa_program(good, ROWS, COLS)) == []

    swapped = good[:-1] + [Instruction(
        Opcode.CCOPY, (Operand(dst_row, src.nbits), src))]
    findings = verify_program(lift_isa_program(swapped, ROWS, COLS))
    assert any(f.check == "uninit-read" for f in findings)
    with pytest.raises(VerifyError) as excinfo:
        sanitized_fsm().execute(swapped)
    assert excinfo.value.check == "uninit-read"
