"""Tests for unit conversions and report-table formatting."""

import pytest

from repro.common import format_ratio, format_si, format_table
from repro.common.units import (
    GB,
    MB,
    bytes_per_second_to_gbps,
    bytes_to_mb,
    cycles_to_seconds,
    gbps_to_bytes_per_second,
    joules_to_pj,
    mb_to_bytes,
    ms_to_seconds,
    pj_to_joules,
    seconds_to_cycles,
    seconds_to_ms,
    seconds_to_us,
)


class TestUnits:
    def test_cycles_seconds_round_trip(self):
        seconds = cycles_to_seconds(2.5e9, 2.5e9)
        assert seconds == pytest.approx(1.0)
        assert seconds_to_cycles(seconds, 2.5e9) == pytest.approx(2.5e9)

    def test_cycles_to_seconds_validates_frequency(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(100, 0)

    def test_time_conversions(self):
        assert seconds_to_ms(0.00472) == pytest.approx(4.72)
        assert ms_to_seconds(4.72) == pytest.approx(0.00472)
        assert seconds_to_us(1e-6) == pytest.approx(1.0)

    def test_energy_conversions(self):
        assert joules_to_pj(15.4e-12) == pytest.approx(15.4)
        assert pj_to_joules(15.4) == pytest.approx(15.4e-12)

    def test_byte_conversions(self):
        assert bytes_to_mb(35 * MB) == pytest.approx(35.0)
        assert mb_to_bytes(2.5) == pytest.approx(2.5 * MB)
        assert bytes_per_second_to_gbps(2 * GB) == pytest.approx(2.0)
        assert gbps_to_bytes_per_second(11.0) == pytest.approx(11.0 * GB)


class TestTables:
    def test_basic_table(self):
        text = format_table(["layer", "ms"], [["conv1", "1.5"], ["fc", "0.1"]])
        lines = text.splitlines()
        assert lines[0].split() == ["layer", "ms"]
        assert "conv1" in lines[2]

    def test_title(self):
        text = format_table(["a"], [["1"]], title="Table I")
        assert text.startswith("Table I\n=======")

    def test_alignment(self):
        text = format_table(["name", "v"], [["x", "1"], ["longer", "2"]])
        lines = text.splitlines()
        # Both value columns start at the same offset.
        assert lines[2].index("1") == lines[3].index("2")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_ratio(self):
        out = format_ratio(9.0, 3.0)
        assert "3.00x" in out

    def test_format_ratio_zero_reference(self):
        assert "(ref 0)" in format_ratio(1.0, 0.0)

    def test_format_si(self):
        assert format_si(4.72e-3, "s") == "4.72 ms"
        assert format_si(28e12, "OP/s") == "28 TOP/s"
        assert format_si(0, "s") == "0 s"
        assert format_si(15.4e-12, "J") == "15.4 pJ"
