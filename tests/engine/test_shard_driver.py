"""Concurrent shard drivers: thread/process runs must be exactly serial.

The wall-clock lever of PR 5 — running shard passes concurrently — is
only admissible because results cannot depend on the driver. These
tests pin that for every driver: bit-exact outputs, identical aggregate
and per-shard cycle reports, arrival-order responses, picklable process
work units, and end-to-end CLI propagation of ``--shard-driver``.
"""

import pickle

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.engine.backend import (
    BackendOptions,
    FleetExecutor,
    deterministic_images,
    get_backend,
    tiny_verification_network,
)
from repro.engine.sharding import (
    SHARD_DRIVERS,
    ShardedBackend,
    ShardWork,
    execute_shard,
)

CONCURRENT = [d for d in SHARD_DRIVERS if d != "serial"]


@pytest.fixture(scope="module")
def tiny_net():
    return tiny_verification_network()


@pytest.fixture(scope="module")
def serial_results(tiny_net):
    """Serial-driver reference results, keyed by (shards, batch)."""
    cases = [(2, 4), (2, 5), (3, 5), (3, 1)]
    return {(shards, batch): ShardedBackend(shards=shards,
                                            driver="serial").run(
                tiny_net, batch_size=batch)
            for shards, batch in cases}


def assert_driver_equivalent(result, reference, tiny_net):
    """The whole result surface must be indistinguishable from serial."""
    assert result.report == reference.report
    assert result.shard_reports == reference.shard_reports
    assert result.verified_images == reference.verified_images
    got = result.outputs[tiny_net.output_name]
    want = reference.outputs[tiny_net.output_name]
    assert np.array_equal(got.data, want.data)


class TestDriverEquivalence:
    @pytest.mark.parametrize("driver", CONCURRENT)
    @pytest.mark.parametrize("shards,batch", [(2, 4), (2, 5), (3, 5)])
    def test_bit_exact_and_report_identical(self, tiny_net, serial_results,
                                            driver, shards, batch):
        result = ShardedBackend(shards=shards, driver=driver).run(
            tiny_net, batch_size=batch)
        assert_driver_equivalent(result, serial_results[(shards, batch)],
                                 tiny_net)

    @pytest.mark.parametrize("driver", CONCURRENT)
    def test_more_shards_than_images(self, tiny_net, serial_results,
                                     driver):
        """Idle shards must not confuse a concurrent pool."""
        result = ShardedBackend(shards=3, driver=driver).run(tiny_net,
                                                             batch_size=1)
        assert_driver_equivalent(result, serial_results[(3, 1)], tiny_net)
        assert [s.images for s in result.shard_reports] == [1, 0, 0]

    @pytest.mark.parametrize("driver", CONCURRENT)
    def test_unbatched_shards_match_too(self, tiny_net, driver):
        serial = ShardedBackend(shards=2, batched=False).run(tiny_net,
                                                             batch_size=4)
        result = ShardedBackend(shards=2, batched=False,
                                driver=driver).run(tiny_net, batch_size=4)
        assert_driver_equivalent(result, serial, tiny_net)


class TestRunRequests:
    """The serving entry point: explicit images, arrival-order responses."""

    @pytest.fixture(scope="class")
    def stream(self, tiny_net):
        executor = FleetExecutor(packed=True)
        weights = executor.weights_for(tiny_net)
        images = deterministic_images(tiny_net, weights, 0, 7)
        direct = executor.run_requests(tiny_net, images, weights)
        return images, direct

    @pytest.mark.parametrize("driver", SHARD_DRIVERS)
    @pytest.mark.parametrize("shards", [2, 3])
    def test_responses_in_arrival_order(self, tiny_net, stream, driver,
                                        shards):
        images, direct = stream
        outcome = ShardedBackend(shards=shards,
                                 driver=driver).run_requests(tiny_net,
                                                             images)
        assert len(outcome.responses) == len(images)
        for got, want in zip(outcome.responses, direct.responses):
            assert np.array_equal(got.data, want.data)
        assert outcome.report == direct.report
        assert outcome.verified == len(images)

    def test_empty_stream(self, tiny_net):
        outcome = ShardedBackend(shards=2).run_requests(tiny_net, [])
        assert outcome.responses == ()
        assert outcome.verified == 0
        assert outcome.report.total == 0

    def test_fleet_executor_responses_match_outputs(self, tiny_net,
                                                    stream):
        images, direct = stream
        assert len(direct.responses) == len(images)
        # The last response is the last image's output-node tensor.
        assert np.array_equal(
            direct.responses[-1].data,
            direct.outputs[tiny_net.output_name].data)


class TestShardWorkUnits:
    def test_work_units_are_picklable(self, tiny_net):
        """The process driver's contract: works round-trip pickle and
        execute identically afterwards."""
        backend = ShardedBackend(shards=2)
        weights = backend._template.weights_for(tiny_net)
        images = deterministic_images(tiny_net, weights, 0, 4)
        for work in backend.shard_works(tiny_net, images, weights):
            clone = pickle.loads(pickle.dumps(work))
            assert isinstance(clone, ShardWork)
            original = execute_shard(work)
            again = execute_shard(clone)
            assert again.outcome.report == original.outcome.report
            for got, want in zip(again.outcome.responses,
                                 original.outcome.responses):
                assert np.array_equal(got.data, want.data)

    def test_round_robin_assignment(self, tiny_net):
        backend = ShardedBackend(shards=3)
        weights = backend._template.weights_for(tiny_net)
        images = deterministic_images(tiny_net, weights, 0, 5)
        works = backend.shard_works(tiny_net, images, weights)
        assert [len(w.images) for w in works] == [2, 2, 1]
        assert works[1].images[0] is images[1]
        assert works[1].images[1] is images[4]

    def test_empty_shard_executes_to_idle_outcome(self, tiny_net):
        backend = ShardedBackend(shards=2)
        weights = backend._template.weights_for(tiny_net)
        work = backend.shard_works(tiny_net, [], weights)[1]
        outcome = execute_shard(work)
        assert outcome.images == 0
        assert outcome.outcome.report.total == 0
        assert outcome.outcome.responses == ()


class TestDriverSelection:
    def test_default_is_serial(self):
        assert ShardedBackend(shards=2).driver == "serial"

    def test_unknown_driver_rejected(self):
        with pytest.raises(SimulationError, match="shard driver"):
            ShardedBackend(shards=2, driver="gpu")

    @pytest.mark.parametrize("driver", SHARD_DRIVERS)
    def test_registry_plumbs_driver(self, driver):
        options = BackendOptions(driver=driver)
        backend = get_backend("sharded", options=options)
        assert isinstance(backend, ShardedBackend)
        assert backend.driver == driver
        unpacked = get_backend("sharded-unpacked", options=options)
        assert unpacked.driver == driver
        assert not unpacked.packed

    def test_registry_default_driver_is_serial(self):
        assert get_backend("sharded").driver == "serial"

    @pytest.mark.parametrize("name", ["analytic", "fleet", "fleet-packed"])
    def test_registry_rejects_driver_for_unsharded(self, name):
        with pytest.raises(SimulationError, match="shard driver"):
            get_backend(name, options=BackendOptions(driver="thread"))

    def test_driver_composes_with_config_and_batched(self):
        config = NeuralCacheConfig()
        backend = get_backend("sharded", config,
                              BackendOptions(batched=False,
                                             driver="thread"))
        assert backend.config is config
        assert backend.batched is False
        assert backend.driver == "thread"


class TestCliPropagation:
    """The CLI layer must hand every knob to the constructed backend."""

    def _captured_backend(self, monkeypatch, argv):
        from repro.__main__ import main
        from repro.engine.backend import BackendResult

        seen = []

        def fake_run(backend_self, network, batch_size=1):
            seen.append(backend_self)
            return BackendResult(backend=backend_self.name,
                                 network=network.name,
                                 batch_size=batch_size)

        monkeypatch.setattr(ShardedBackend, "run", fake_run)
        assert main(argv) == 0
        assert len(seen) == 1
        return seen[0]

    def test_all_sharded_knobs_reach_the_backend(self, monkeypatch):
        backend = self._captured_backend(
            monkeypatch,
            ["--backend", "sharded", "--shards", "3", "--no-batched",
             "--shard-driver", "thread", "--batch", "2"])
        assert backend.shards == 3
        assert backend.batched is False
        assert backend.driver == "thread"
        assert backend.packed

    def test_driver_survives_shards_rebuild(self, monkeypatch):
        backend = self._captured_backend(
            monkeypatch,
            ["--backend", "sharded-unpacked", "--shards", "2",
             "--shard-driver", "process"])
        assert backend.driver == "process"
        assert not backend.packed

    def test_defaults_without_flags(self, monkeypatch):
        backend = self._captured_backend(monkeypatch,
                                         ["--backend", "sharded"])
        assert backend.driver == "serial"
        assert backend.batched is True

    def test_cli_runs_thread_driver_end_to_end(self, capsys):
        from repro.__main__ import main

        assert main(["--backend", "sharded", "--batch", "3",
                     "--shards", "3", "--shard-driver", "thread"]) == 0
        out = capsys.readouterr().out
        assert "backend=sharded" in out
        assert "3/3" in out

    def test_cli_runs_pool_driver_end_to_end(self, capsys):
        from repro.__main__ import main

        assert main(["--backend", "sharded", "--batch", "3",
                     "--shards", "3", "--shard-driver", "pool"]) == 0
        out = capsys.readouterr().out
        assert "backend=sharded" in out
        assert "3/3" in out

    def test_cli_rejects_driver_for_unsharded_backend(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["--backend", "fleet", "--shard-driver", "thread"])
        assert "shard driver" in capsys.readouterr().err

    def test_cli_rejects_driver_without_backend_mode(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["table3", "--shard-driver", "thread"])
        assert "--shard-driver only applies" in capsys.readouterr().err
