"""The Neural Cache data-layout engine (Sec. IV-A / IV-B, Figs. 9-11).

Maps one DNN layer onto the cache's compute arrays:

* **Filter splitting** — filters taller than 9 bytes per bitline (e.g. the
  5x5s in Mixed_5b) split across several bitlines, multiplying the
  effective channel count;
* **Filter packing** — 1x1 filters pack up to 16 channels into one bitline,
  dividing the effective channel count (fewer reduction steps, and all
  channels of even the 2048-wide layers fit near one array);
* **Channel rounding** — the effective channel count rounds up to a power
  of two (zero padding) so the reduction tree stays regular;
* **Parallelisation** — each group of ``channels_padded`` bitlines computes
  one convolution (one output element); arrays hold several groups;
  different filter batches (M) share arrays (Fig. 9), and output pixels
  partition across slices (Fig. 11). Whatever exceeds the cache's parallel
  capacity runs as serial passes.

Pooling layers map with the same machinery: the window plays the filter's
role, there is no cross-channel reduction, and windows larger than the
word-line budget split across bitlines like filters do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bits import ceil_div, next_power_of_two
from repro.common.errors import MappingError
from repro.config import NeuralCacheConfig
from repro.nn.graph import Network, Node
from repro.nn.layers import (
    Add,
    AvgPool,
    Conv2D,
    FullyConnected,
    MaxPool,
    QuantizedBatchNorm,
)
from repro.sram.cost import CycleCosts
from repro.sram.layout import (
    OUTPUT_BITS,
    PARTIAL_SUM_BITS,
    SCRATCHPAD_BITS,
    max_conv_filter_bytes,
)


@dataclass(frozen=True)
class ReductionHop:
    """One cross-array tree level and the interconnect link it rides.

    ``kind`` names the physical hop by its reach (Sec. IV-C): arrays of a
    sub-array exchange through the shared sense amps (``"pair"``), arrays
    within a slice over a 64-bit quadrant bus (``"bus"``), and anything
    wider over the inter-slice ring (``"ring"``). ``bits_per_cycle`` is
    that link's width from :class:`~repro.cache.interconnect
    .InterconnectModel` — provenance for the hop, not a separate cycle
    charge: in compute mode every level moves one wordline per cycle
    through the TMU gateway, so the level costs ``move(width) +
    add(width)`` regardless of link width.
    """

    level: int
    kind: str                      # "pair" | "bus" | "ring"
    span: int                      # arrays the hop reaches across
    bits_per_cycle: int            # link width (InterconnectModel)


@dataclass(frozen=True)
class ReductionPlan:
    """The cross-array half of a layer's reduction schedule.

    ``group_size`` arrays hold one output's partial sums; ``hops`` lists
    the ``log2(group_size)`` tree levels in execution order. The plan is
    built once by the mapper and consumed by both the analytic schedule
    (:func:`repro.core.schedule.reduction_cycles_per_pass`) and the
    functional executor's ``reduce_across_arrays``, so the two cannot
    drift apart.
    """

    group_size: int
    hops: tuple[ReductionHop, ...]

    def __post_init__(self) -> None:
        if self.group_size < 1 or self.group_size & (self.group_size - 1):
            raise MappingError(
                f"reduction group size must be a power of two, got "
                f"{self.group_size}")
        if len(self.hops) != self.group_size.bit_length() - 1:
            raise MappingError(
                f"a group of {self.group_size} arrays needs "
                f"{self.group_size.bit_length() - 1} hops, got "
                f"{len(self.hops)}")

    @property
    def levels(self) -> int:
        """Tree levels crossing array boundaries (= ``len(hops)``)."""
        return len(self.hops)

    def cross_array_cycles(self, costs: CycleCosts, width: int) -> int:
        """Compute cycles of the cross-array tree at ``width`` bits.

        Every level is one full-width inter-array move plus one add, the
        exact accounting ``core/schedule.py`` used before plans existed —
        and the exact cycles ``FleetBitSerialUnit.reduce_across_arrays``
        executes under the derived cost preset.
        """
        return sum(costs.move(width) + costs.add(width) for _ in self.hops)


def _reduction_plan(config: NeuralCacheConfig, name: str,
                    arrays_per_conv: int) -> ReductionPlan:
    """Classify each cross-array tree level by the link it must cross."""
    if arrays_per_conv < 1:
        raise MappingError(
            f"layer {name!r}: arrays per output must be >= 1, got "
            f"{arrays_per_conv}")
    if arrays_per_conv & (arrays_per_conv - 1):
        raise MappingError(
            f"layer {name!r} spans {arrays_per_conv} arrays per output; "
            f"cross-array reduction needs a power-of-two span (pad the "
            f"channel count or change the geometry's array_cols)")
    geometry = config.geometry
    interconnect = config.interconnect
    hops = []
    for level in range(arrays_per_conv.bit_length() - 1):
        reach = 2 << level
        if reach <= geometry.arrays_per_subarray:
            kind = "pair"
            bits = interconnect.bank_bits_per_cycle
        elif reach <= geometry.arrays_per_slice:
            kind = "bus"
            bits = interconnect.quadrant_bus_bytes_per_cycle * 8
        else:
            kind = "ring"
            bits = interconnect.ring_bytes_per_cycle * 8
        hops.append(ReductionHop(level=level, kind=kind, span=reach,
                                 bits_per_cycle=bits))
    return ReductionPlan(group_size=arrays_per_conv, hops=tuple(hops))


@dataclass(frozen=True)
class LayerMapping:
    """How one layer occupies the cache for one inference."""

    layer_name: str
    kind: str                      # "conv" | "maxpool" | "avgpool"
    # original dimensions
    window_bytes: int              # R*S (conv) or pooling window
    channels: int                  # C (conv reduction width; pools: 1)
    out_channels: int              # M (conv) or C (pools)
    total_outputs: int             # E*F*M outputs = single convolutions
    stride: int
    kernel: tuple[int, int]
    # mapping decisions
    split_factor: int              # filter splitting
    pack_factor: int               # filter packing (1x1 only)
    filter_bytes_per_bitline: int  # R'.S'
    effective_channels: int        # C' after packing/splitting
    channels_padded: int           # C'' = next power of two
    # derived occupancy
    arrays_per_conv: int           # arrays one output element spans (>= 1)
    convs_per_array: int           # output elements per array (0 if spanning)
    parallel_outputs: int          # outputs computed simultaneously
    serial_passes: int
    # movement footprints (bytes)
    filter_load_bytes: int         # unique weights fetched from DRAM
    input_bytes_per_output: int    # window footprint of one output
    output_bytes: int              # layer output volume
    # cross-array reduction schedule (single-array layers: empty plan)
    reduction_plan: ReductionPlan = ReductionPlan(1, ())
    #: Serial element width this layer computes at. Storage stays
    #: byte-aligned (Sec. III-A); narrowing only shortens the bit-serial
    #: sequences, which is what the schedule and the functional executor
    #: charge. Defaults to the config's global ``element_bits``.
    element_bits: int = 8

    @property
    def utilization(self) -> float:
        """Average fraction of issued conv slots doing useful work —
        the paper's 99.7% for Conv2d_2b (42.88 useful passes of 43)."""
        issued = self.parallel_outputs * self.serial_passes
        return self.total_outputs / issued if issued else 0.0

    @property
    def outputs_last_pass(self) -> int:
        """Outputs computed in the final (possibly partial) pass."""
        remainder = self.total_outputs % self.parallel_outputs
        return remainder if remainder else self.parallel_outputs

    @property
    def reduction_elements(self) -> int:
        """Bitlines whose partial sums reduce into one output."""
        return self.channels_padded

    @property
    def needs_cross_array_reduction(self) -> bool:
        return self.arrays_per_conv > 1

    @property
    def cross_array_steps(self) -> int:
        """Reduction steps that cross array boundaries (sense-amp pairs
        first, then bus/ring moves)."""
        return self.reduction_plan.levels


def _pack_budget(config: NeuralCacheConfig, rows: int) -> int:
    """Largest pack factor the word lines allow for 1x1 filters.

    Fig. 10(a) with a one-byte input region: the packed filter column plus
    one streamed input byte, the scratchpad (2B), partial sum (3B) and
    output (4B) must fit the 256 word lines — 22 bytes of filter at most.
    """
    fixed = SCRATCHPAD_BITS + PARTIAL_SUM_BITS + OUTPUT_BITS
    free_bits = rows - fixed - config.element_bits
    return max(1, free_bits // config.element_bits)


def _mapping_for_window(config: NeuralCacheConfig, *, name: str, kind: str,
                        window_bytes: int, channels: int, out_channels: int,
                        total_outputs: int, stride: int,
                        kernel: tuple[int, int], filter_load_bytes: int,
                        input_bytes_per_output: int,
                        output_bytes: int,
                        element_bits: int | None = None) -> LayerMapping:
    """Shared packing/splitting/rounding/partitioning logic."""
    if element_bits is None:
        element_bits = config.element_bits
    if window_bytes <= 0 or channels <= 0 or total_outputs <= 0:
        raise MappingError(
            f"layer {name!r} has empty work: window={window_bytes}, "
            f"channels={channels}, outputs={total_outputs}")
    geometry = config.geometry
    budget = max_conv_filter_bytes(geometry.array_rows)
    if budget < 1:
        raise MappingError(
            f"arrays of {geometry.array_rows} rows leave no word lines "
            f"for filter data (Fig. 10 needs {2 * 8} bytes of fixed "
            f"regions plus the filter/input columns)")
    threshold = min(config.split_threshold_bytes, budget)

    pack_factor = 1
    split_factor = 1
    if window_bytes == 1 and channels > 1:
        # Filter packing: several channels of a 1x1 filter per bitline.
        # Packed 1x1s have no input reuse and stream one input byte at a
        # time (Sec. IV-A), so only the filter column counts against the
        # word-line budget — 16 bytes fit comfortably.
        pack_budget = _pack_budget(config, geometry.array_rows)
        pack_factor = min(config.pack_limit, channels, pack_budget)
        per_bitline = pack_factor
        effective_channels = ceil_div(channels, pack_factor)
    elif window_bytes > threshold:
        # Filter splitting: tall filters across multiple bitlines.
        split_factor = ceil_div(window_bytes, threshold)
        per_bitline = ceil_div(window_bytes, split_factor)
        effective_channels = channels * split_factor
    else:
        per_bitline = window_bytes
        effective_channels = channels

    if pack_factor == 1 and per_bitline > budget:
        raise MappingError(
            f"layer {name!r}: {per_bitline} filter bytes per bitline exceed "
            f"the {budget}-byte word-line budget even after splitting")

    channels_padded = next_power_of_two(effective_channels)
    cols = geometry.array_cols
    if channels_padded <= cols:
        arrays_per_conv = 1
        convs_per_array = cols // channels_padded
        parallel_outputs = geometry.compute_arrays * convs_per_array
    else:
        arrays_per_conv = ceil_div(channels_padded, cols)
        convs_per_array = 0
        parallel_outputs = geometry.compute_arrays // arrays_per_conv
    if parallel_outputs <= 0:
        raise MappingError(
            f"layer {name!r} needs {arrays_per_conv} arrays per output but "
            f"only {geometry.compute_arrays} compute arrays exist")
    parallel_outputs = min(parallel_outputs, total_outputs)
    serial_passes = ceil_div(total_outputs, parallel_outputs)
    reduction_plan = _reduction_plan(config, name, arrays_per_conv)

    return LayerMapping(
        layer_name=name, kind=kind, window_bytes=window_bytes,
        channels=channels, out_channels=out_channels,
        total_outputs=total_outputs, stride=stride, kernel=kernel,
        split_factor=split_factor, pack_factor=pack_factor,
        filter_bytes_per_bitline=per_bitline,
        effective_channels=effective_channels,
        channels_padded=channels_padded,
        arrays_per_conv=arrays_per_conv, convs_per_array=convs_per_array,
        parallel_outputs=parallel_outputs, serial_passes=serial_passes,
        filter_load_bytes=filter_load_bytes,
        input_bytes_per_output=input_bytes_per_output,
        output_bytes=output_bytes,
        reduction_plan=reduction_plan,
        element_bits=element_bits)


def map_conv(config: NeuralCacheConfig, name: str, conv: Conv2D,
             input_shape: tuple[int, int, int],
             element_bits: int | None = None) -> LayerMapping:
    """Map a convolution (or FC-as-conv) layer.

    ``element_bits`` narrows this layer's serial element width (a
    :class:`~repro.core.precision.LayerPrecision` entry); ``None`` keeps
    the config's global width. Validated here — map time is where every
    consumer (schedule, functional executor) picks the width up.
    """
    if element_bits is None:
        element_bits = config.element_bits
    if not 1 <= element_bits <= 16:
        raise MappingError(
            f"layer {name!r}: element precision must be 1..16 bits, got "
            f"{element_bits}")
    r, s, c, m = conv.filter_shape(input_shape)
    e, f, _ = conv.output_shape(input_shape)
    return _mapping_for_window(
        config, name=name, kind="conv", window_bytes=r * s, channels=c,
        out_channels=m, total_outputs=e * f * m, stride=conv.stride,
        kernel=conv.kernel,
        filter_load_bytes=conv.weight_bytes(input_shape),
        input_bytes_per_output=r * s * c,
        output_bytes=e * f * m,
        element_bits=element_bits)


def map_pool(config: NeuralCacheConfig, name: str, pool: MaxPool | AvgPool,
             input_shape: tuple[int, int, int]) -> LayerMapping:
    """Map a pooling layer: per-channel windows, no channel reduction."""
    e, f, c = pool.output_shape(input_shape)
    kind = "avgpool" if isinstance(pool, AvgPool) else "maxpool"
    return _mapping_for_window(
        config, name=name, kind=kind, window_bytes=pool.window, channels=1,
        out_channels=c, total_outputs=e * f * c, stride=pool.stride,
        kernel=pool.kernel, filter_load_bytes=0,
        input_bytes_per_output=pool.window,
        output_bytes=e * f * c)


def map_add(config: NeuralCacheConfig, name: str,
            input_shape: tuple[int, int, int]) -> LayerMapping:
    """Map an element-wise addition: one output per bitline, two operand
    bytes streamed per output, no filters and no reduction."""
    h, w, c = input_shape
    total = h * w * c
    return _mapping_for_window(
        config, name=name, kind="add", window_bytes=1, channels=1,
        out_channels=c, total_outputs=total, stride=1, kernel=(1, 1),
        filter_load_bytes=0, input_bytes_per_output=2, output_bytes=total)


def map_batchnorm(config: NeuralCacheConfig, name: str,
                  input_shape: tuple[int, int, int]) -> LayerMapping:
    """Map an explicit batch-norm: one output per bitline; the per-channel
    multiplier (2B) and bias (4B) integers load once, like filters."""
    h, w, c = input_shape
    total = h * w * c
    return _mapping_for_window(
        config, name=name, kind="batchnorm", window_bytes=1, channels=1,
        out_channels=c, total_outputs=total, stride=1, kernel=(1, 1),
        filter_load_bytes=c * 6, input_bytes_per_output=1,
        output_bytes=total)


def map_node(config: NeuralCacheConfig, network: Network,
             node: Node, precision=None) -> LayerMapping | None:
    """Map any network node; concat and folded BN map to nothing (None).

    ``precision`` is a :class:`~repro.core.precision.LayerPrecision`
    table narrowing conv layers; ``None`` falls back to the network's
    attached table (``network.precision``) and then the config width.
    """
    if precision is None:
        precision = getattr(network, "precision", None)
        if precision is not None:
            # Resolved implicitly (per-node entry point, e.g. the
            # analytic simulator): validate here; explicit callers
            # (map_network) validate the table once up front.
            precision.validate(network)
    input_shape = network.input_shape_of(node.name)
    layer = node.layer
    if isinstance(layer, (MaxPool, AvgPool)):
        return map_pool(config, node.name, layer, input_shape)
    if isinstance(layer, (Conv2D, FullyConnected)):
        bits = precision.bits_for(node.name) if precision is not None \
            else None
        return map_conv(config, node.name, network.conv_of(node),
                        input_shape, element_bits=bits)
    if isinstance(layer, Add):
        return map_add(config, node.name, input_shape)
    if isinstance(layer, QuantizedBatchNorm):
        return map_batchnorm(config, node.name, input_shape)
    return None


def map_network(config: NeuralCacheConfig, network: Network,
                precision=None) -> list[LayerMapping]:
    """Mappings for every compute layer of the network, in order.

    The per-layer precision table (argument, else ``network.precision``)
    is validated here — map time — so stale layer names fail before any
    schedule or functional run consumes the mappings.
    """
    if precision is None:
        precision = getattr(network, "precision", None)
    if precision is not None:
        precision.validate(network)
    mappings = []
    for node in network.layer_nodes():
        mapping = map_node(config, network, node, precision=precision)
        if mapping is not None:
            mappings.append(mapping)
    return mappings
