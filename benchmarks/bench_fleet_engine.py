"""Array-fleet engine benchmarks: fleet vs legacy, packed vs unpacked,
sharded vs single-socket, batched vs per-image, shard drivers, serving,
bit-plane sparsity.

Nine comparisons, all bit-identical by construction:

* the vectorized fleet path vs the legacy one-array-at-a-time path (the
  PR-1 refactor; acceptance target >= 10x on the functional conv);
* the packed uint64 plane store vs the unpacked byte-per-bit reference on
  the lockstep primitives themselves (acceptance target: >= 4x faster
  multiply/add sequences at serving-scale fleets, 8x smaller resident
  planes);
* the sharded backend (one packed fleet per socket, batch split
  round-robin) vs the unsharded ``fleet-packed`` run — gated on the
  aggregation being lossless (outputs bit-exact, cycle reports
  identical, every image verified), with single-process wall time and
  the modeled per-socket throughput recorded;
* batch-in-fleet execution vs the per-image loop on the conv functional
  path (acceptance target: >= 4x wall-clock at batch >= 8 on the packed
  store, outputs bit-exact, cycle reports identical — batching changes
  wall-clock, not modeled cycles), plus the block tap-plane load vs the
  per-plane host-pack loop it replaced;
* the concurrent shard drivers (thread / process / persistent pool) vs
  the serial driver — gated on every driver being bit-exact and
  cycle-report-identical to serial, with the process driver's
  wall-clock speedup over serial recorded, and gated >= 1.05x at 2
  shards in full mode on hosts with >= 2 CPUs (a 1-CPU host cannot run
  shards in parallel, so there the number is recorded, not gated);
* the per-batch driver overhead — serial / thread / process / pool on
  the same warm batch, isolating what each driver pays per dispatch:
  thread and process spin a fresh futures pool and (for process)
  re-pickle the whole image payload every batch, while the persistent
  pool forks once and ships O(1) work units over shared-memory arenas.
  The steady-state pool-vs-process speedup is recorded, and gated
  >= 1.2x at batch 8 in full mode on hosts with >= 2 CPUs;
* the spanning-layer cross-array reduction path — the
  ``inception-span`` zoo model (four arrays per output) end-to-end on
  the packed fleet with golden verification on, gated on the functional
  engine's reduction cycles equalling exactly ``2 x`` the analytic
  ``reduction_cycles_per_pass`` under the derived cost preset;
* the bit-plane sparsity engine — dense vs sparse fleet runs over a
  sweep of input magnitudes, gated on bit-exact sparse outputs, the
  dense (data-independent) cycle model staying pinned, and a best
  modeled-cycle reduction >= 1.2x in full mode;
* the async batched serving stack (``repro.serving``) — a request
  stream coalesced into batched fleet passes over a pool of sharded
  backends. Gated on the serving invariants: no lost responses, no
  duplicated responses, every response bit-exact vs the direct
  ``run_requests`` path; p50/p95/p99 tail latency and throughput are
  recorded. This is the CI serving smoke gate.

Also runnable as a script so CI can smoke everything per PR::

    python benchmarks/bench_fleet_engine.py --quick [--json PATH]

which runs the primitive comparison at a smaller fleet size with relaxed
speedup gates (CI machines are noisy) plus the sharded-aggregation,
shard-driver, serving and batched-correctness checks, and exits non-zero
when the packed store, the sharded aggregation, a concurrent shard
driver, the serving stack or the batched path regresses in speedup or
exactness. ``--json`` additionally emits every section's measurements as
one JSON document for the bench trajectory, and ``--trajectory``
appends a compact per-driver wall-clock entry to an accumulating JSON
history (``benchmarks/BENCH_TRAJECTORY.json`` in-repo) so regressions
show up as a trend, not just a point.
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.core.functional import FunctionalConv
from repro.engine import (
    ArrayFleet,
    FleetBitSerialUnit,
    Operand,
    PackedArrayFleet,
)
from repro.engine.backend import FleetExecutor, tiny_verification_network
from repro.engine.sharding import ShardedBackend
from repro.nn import (
    Conv2D,
    Network,
    QuantizedTensor,
    ReferenceExecutor,
    initialise_weights,
)

RNG = np.random.default_rng(321)

#: Fleet sizes for the packed-store primitive comparison. The full size
#: models a serving-scale slice (8192 arrays x 256 bitlines = 2M lanes);
#: the quick size keeps the CI smoke step under a few seconds.
PRIMITIVE_ARRAYS = 8192
QUICK_ARRAYS = 1024


def _conv_case():
    conv = Conv2D(8, (3, 3), padding="same")
    shape = (8, 8, 8)
    net = Network(name="fleet-bench")
    x = net.add_input("in", shape)
    net.add("c", conv, x)
    weights = initialise_weights(net, seed=5)
    image = QuantizedTensor.from_real(RNG.uniform(0, 6, shape),
                                      weights.input_params)
    reference = ReferenceExecutor(net, weights).run_output(image)
    return conv, shape, weights, image, reference, net


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_fleet_vs_legacy_conv(benchmark, record):
    conv, shape, weights, image, reference, _ = _conv_case()

    def run(vectorized: bool) -> FunctionalConv:
        engine = FunctionalConv(conv, shape, weights.for_node("c"),
                                output_params=weights.activation_params,
                                vectorized=vectorized)
        out = engine.run(image)
        assert np.array_equal(out.data, reference.data)
        return engine

    legacy_s = _best_of(lambda: run(False), rounds=2)
    fleet_s = _best_of(lambda: run(True), rounds=3)
    speedup = legacy_s / fleet_s

    fleet_engine = benchmark(lambda: run(True))
    legacy_engine = run(False)
    # Same physics on both paths: identical aggregate cycle accounting.
    assert fleet_engine.report == legacy_engine.report

    record(f"Fleet engine benchmark: vectorized fleet "
           f"{fleet_s * 1e3:.1f} ms vs legacy per-array "
           f"{legacy_s * 1e3:.1f} ms on a 3x3x8->8 conv "
           f"({fleet_engine.report.passes} array passes) -> "
           f"{speedup:.1f}x speedup, outputs and cycle reports identical")
    # Soft gate: typically 15-25x; only flags a wholesale regression to
    # per-array behaviour, not wall-clock noise on a loaded machine.
    assert speedup >= 2.0


# ----------------------------------------------------------------------
# Packed plane store vs unpacked reference on the lockstep primitives
# ----------------------------------------------------------------------
def _time_primitives(fleet_cls, n_arrays: int, rounds: int):
    """Best-of wall time for a multiply+add sequence on one store.

    Returns ``(seconds, product_values, resident_bytes, cycles)`` so the
    caller can cross-check bit-exactness and cycle-exactness between
    stores, not just speed.
    """
    unit = FleetBitSerialUnit(fleet_cls(n_arrays, rows=256, cols=256))
    rng = np.random.default_rng(7)
    a, b = Operand(0, 8), Operand(8, 8)
    product, total = Operand(16, 16), Operand(40, 9)
    unit.write_values(a, rng.integers(0, 256, (n_arrays, 256)).astype(np.int64))
    unit.write_values(b, rng.integers(0, 256, (n_arrays, 256)).astype(np.int64))
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        unit.multiply(a, b, product)
        unit.add(a, b, total)
        best = min(best, time.perf_counter() - start)
    return best, unit.read_values(product), unit.fleet.nbytes, unit.cycles


def compare_plane_stores(n_arrays: int, rounds: int = 3) -> dict:
    """Measure packed vs unpacked lockstep primitives at one fleet size."""
    ref_s, ref_vals, ref_bytes, ref_cycles = _time_primitives(
        ArrayFleet, n_arrays, rounds)
    packed_s, packed_vals, packed_bytes, packed_cycles = _time_primitives(
        PackedArrayFleet, n_arrays, rounds)
    return {
        "n_arrays": n_arrays,
        "unpacked_s": ref_s,
        "packed_s": packed_s,
        "speedup": ref_s / packed_s,
        "memory_ratio": ref_bytes / packed_bytes,
        "unpacked_bytes": ref_bytes,
        "packed_bytes": packed_bytes,
        "bit_exact": bool(np.array_equal(ref_vals, packed_vals)),
        "cycle_exact": ref_cycles == packed_cycles,
    }


def render_plane_store_report(stats: dict) -> str:
    return (f"Packed plane store benchmark: {stats['n_arrays']} arrays x "
            f"256 bitlines, 8-bit multiply+add sequence -> packed "
            f"{stats['packed_s'] * 1e3:.1f} ms vs unpacked "
            f"{stats['unpacked_s'] * 1e3:.1f} ms "
            f"({stats['speedup']:.1f}x faster), resident planes "
            f"{stats['packed_bytes'] / 2**20:.1f} MiB vs "
            f"{stats['unpacked_bytes'] / 2**20:.1f} MiB "
            f"({stats['memory_ratio']:.0f}x smaller), "
            f"bit-exact={stats['bit_exact']} "
            f"cycle-exact={stats['cycle_exact']}")


def test_packed_vs_unpacked_primitives(record):
    stats = compare_plane_stores(PRIMITIVE_ARRAYS)
    record(render_plane_store_report(stats))
    assert stats["bit_exact"] and stats["cycle_exact"]
    # cols=256 is a whole number of uint64 words, so exactly 8x.
    assert stats["memory_ratio"] == 8.0
    # Soft gate below the measured 4.3-4.6x (the recorded line carries
    # the real number): only flags a wholesale regression to unpacked
    # behaviour, not wall-clock noise on a loaded machine.
    assert stats["speedup"] >= 3.0


# ----------------------------------------------------------------------
# Sharded backend vs the single unsharded packed fleet
# ----------------------------------------------------------------------
def compare_sharded(batch_size: int = 8, shards: int = 2,
                    rounds: int = 2) -> dict:
    """Sharded vs unsharded run of the same batch, equality cross-checked.

    In-process the shards execute sequentially, so wall time measures the
    sharding overhead — since batch-in-fleet execution, that overhead is
    real (splitting a batch across shards also splits one big batched
    fleet pass into several smaller ones); on actual multi-socket
    hardware the shards run concurrently. The throughput story is the
    modeled one — ``shards`` independent sockets each retiring its slice
    — which only holds if aggregation is lossless, and that is what the
    gates check.
    """
    net = tiny_verification_network()
    single = FleetExecutor(packed=True)
    sharded = ShardedBackend(shards=shards)

    single_s = _best_of(lambda: single.run(net, batch_size), rounds)
    sharded_s = _best_of(lambda: sharded.run(net, batch_size), rounds)
    single_res = single.run(net, batch_size)
    sharded_res = sharded.run(net, batch_size)

    out = net.output_name
    per_shard = [s.report for s in sharded_res.shard_reports]
    return {
        "batch_size": batch_size,
        "shards": shards,
        "single_s": single_s,
        "sharded_s": sharded_s,
        "overhead": sharded_s / single_s - 1.0,
        "bit_exact": bool(np.array_equal(
            sharded_res.outputs[out].data, single_res.outputs[out].data)),
        "report_identical": sharded_res.report == single_res.report,
        "shards_cover_batch": sum(
            s.images for s in sharded_res.shard_reports) == batch_size,
        "per_shard_cycles": [r.total for r in per_shard],
        "verified": sharded_res.verified_images,
    }


def render_sharded_report(stats: dict) -> str:
    return (f"Sharded backend benchmark: batch {stats['batch_size']} over "
            f"{stats['shards']} socket shards -> sharded "
            f"{stats['sharded_s'] * 1e3:.1f} ms vs single fleet "
            f"{stats['single_s'] * 1e3:.1f} ms "
            f"({stats['overhead'] * 100:+.1f}% in-process overhead), "
            f"per-shard cycles {stats['per_shard_cycles']}, "
            f"bit-exact={stats['bit_exact']} "
            f"report-identical={stats['report_identical']} "
            f"verified={stats['verified']}/{stats['batch_size']}")


def _sharded_gates_pass(stats: dict) -> bool:
    return (stats["bit_exact"] and stats["report_identical"]
            and stats["shards_cover_batch"]
            and stats["verified"] == stats["batch_size"])


def test_sharded_vs_single_fleet(record):
    # An odd batch over 2 shards: the shard count does not divide it.
    stats = compare_sharded(batch_size=5, shards=2)
    record(render_sharded_report(stats))
    assert _sharded_gates_pass(stats)


# ----------------------------------------------------------------------
# Concurrent shard drivers vs the serial driver
# ----------------------------------------------------------------------
def compare_shard_drivers(batch_size: int = 16, shards: int = 2,
                          rounds: int = 2,
                          drivers: tuple = ("thread", "process",
                                            "pool")) -> dict:
    """Concurrent shard drivers vs the serial reference driver.

    Thread and process drivers execute the same picklable ShardWork
    units through the same module-level ``execute_shard``; the pool
    driver runs persistent forked workers fed O(1) work units over
    shared-memory arenas. Results must be identical either way —
    outputs bit-exact, aggregate and per-shard cycle reports equal. The
    process driver is the wall-clock lever on cold dispatch; the pool
    driver amortises fork and program broadcast across batches, so it
    is warmed (fork + broadcast paid) before timing — its number is the
    steady-state per-batch cost.
    """
    import os

    net = tiny_verification_network()
    serial = ShardedBackend(shards=shards, driver="serial")
    serial_s = _best_of(lambda: serial.run(net, batch_size), rounds)
    serial_res = serial.run(net, batch_size)
    out = net.output_name

    stats: dict = {
        "batch_size": batch_size,
        "shards": shards,
        "cpus": os.cpu_count() or 1,
        "serial_s": serial_s,
        "drivers": {},
    }
    for driver in drivers:
        backend = ShardedBackend(shards=shards, driver=driver)
        try:
            if driver == "pool":
                backend.run(net, batch_size)    # fork + program broadcast
            driver_s = _best_of(lambda: backend.run(net, batch_size),
                                rounds)
            res = backend.run(net, batch_size)
        finally:
            backend.close()
        stats["drivers"][driver] = {
            "seconds": driver_s,
            "speedup": serial_s / driver_s,
            "bit_exact": bool(np.array_equal(res.outputs[out].data,
                                             serial_res.outputs[out].data)),
            "report_identical": res.report == serial_res.report,
            "shard_reports_identical":
                res.shard_reports == serial_res.shard_reports,
            "verified": res.verified_images,
        }
    return stats


def render_shard_driver_report(stats: dict) -> str:
    parts = []
    for driver, d in stats["drivers"].items():
        parts.append(f"{driver} {d['seconds'] * 1e3:.1f} ms "
                     f"({d['speedup']:.2f}x vs serial)")
    return (f"Shard driver benchmark: batch {stats['batch_size']} over "
            f"{stats['shards']} shards on {stats['cpus']} CPU(s) -> "
            f"serial {stats['serial_s'] * 1e3:.1f} ms, "
            + ", ".join(parts)
            + "; all drivers bit-exact and report-identical="
            + str(_shard_drivers_exact(stats)))


def _shard_drivers_exact(stats: dict) -> bool:
    return all(d["bit_exact"] and d["report_identical"]
               and d["shard_reports_identical"]
               for d in stats["drivers"].values())


def test_shard_drivers_match_serial(record):
    stats = compare_shard_drivers(batch_size=8, rounds=1)
    record(render_shard_driver_report(stats))
    assert _shard_drivers_exact(stats)


# ----------------------------------------------------------------------
# Per-batch driver overhead: what each dispatch pays on a warm backend
# ----------------------------------------------------------------------
def compare_driver_overhead(batch_sizes: tuple = (8, 32), shards: int = 2,
                            rounds: int = 2) -> dict:
    """Steady-state per-batch cost of every shard driver, cross-checked.

    Every backend gets one warmup run before timing, so what is
    measured is the recurring dispatch cost, not one-time setup: thread
    and process still spin a fresh futures pool per batch (process
    additionally re-pickles the whole image payload both ways), while
    the persistent pool already paid fork + program broadcast in the
    warmup and each timed batch only ships O(1) work units over warm
    workers and shared-memory arenas. The pool-vs-process ratio is the
    zero-copy dividend this section exists to track.
    """
    import os

    net = tiny_verification_network()
    stats: dict = {"shards": shards, "cpus": os.cpu_count() or 1,
                   "batches": {}}
    out = net.output_name
    for batch in batch_sizes:
        drivers: dict = {}
        reference = None
        for driver in ("serial", "thread", "process", "pool"):
            backend = ShardedBackend(shards=shards, driver=driver)
            try:
                backend.run(net, batch)         # warmup, every driver
                driver_s = _best_of(lambda: backend.run(net, batch),
                                    rounds)
                res = backend.run(net, batch)
            finally:
                backend.close()
            if reference is None:
                reference = res
            drivers[driver] = {
                "seconds": driver_s,
                "per_image_ms": driver_s * 1e3 / batch,
                "bit_exact": bool(np.array_equal(
                    res.outputs[out].data, reference.outputs[out].data)),
                "report_identical": res.report == reference.report,
            }
        stats["batches"][str(batch)] = {
            "drivers": drivers,
            "pool_vs_process_speedup":
                drivers["process"]["seconds"] / drivers["pool"]["seconds"],
        }
    return stats


def render_driver_overhead_report(stats: dict) -> str:
    lines = []
    for batch, per in stats["batches"].items():
        costs = ", ".join(
            f"{driver} {d['seconds'] * 1e3:.1f} ms"
            for driver, d in per["drivers"].items())
        lines.append(f"batch {batch}: {costs} -> pool "
                     f"{per['pool_vs_process_speedup']:.2f}x vs process")
    return (f"Driver overhead benchmark ({stats['shards']} shards on "
            f"{stats['cpus']} CPU(s), warm backends): "
            + "; ".join(lines))


def _driver_overhead_exact(stats: dict) -> bool:
    return all(d["bit_exact"] and d["report_identical"]
               for per in stats["batches"].values()
               for d in per["drivers"].values())


def test_driver_overhead_section(record):
    stats = compare_driver_overhead(batch_sizes=(8,), rounds=1)
    record(render_driver_overhead_report(stats))
    assert _driver_overhead_exact(stats)


# ----------------------------------------------------------------------
# Async batched serving smoke (the CI serving gate)
# ----------------------------------------------------------------------
def compare_serving(n_requests: int = 24, sockets: int = 2,
                    pool_size: int = 2, max_batch: int = 6,
                    driver: str = "thread") -> dict:
    """One served request stream, with the gate verdict in the stats.

    The serving stack must lose nothing relative to the direct
    ``run_requests`` path: every request answered exactly once,
    bit-exact, however arrivals were coalesced into batches and
    whichever pool node ran them. Tail latency and throughput are the
    recorded serving numbers (host wall-clock, so recorded — the gates
    are the correctness invariants, which never relax).
    """
    from repro.serving import run_serving_benchmark

    return run_serving_benchmark(n_requests=n_requests, sockets=sockets,
                                 pool_size=pool_size, max_batch=max_batch,
                                 max_wait_ms=2.0, driver=driver)


def _serving_gates_pass(stats: dict) -> bool:
    return (stats["lost"] == 0 and stats["duplicates"] == 0
            and stats["bit_exact"]
            and stats["responded"] == stats["n_requests"])


def test_serving_smoke(record):
    from repro.serving import render_serving_report

    stats = compare_serving(n_requests=12, max_batch=4)
    record(render_serving_report(stats))
    assert _serving_gates_pass(stats)


# ----------------------------------------------------------------------
# Batch-in-fleet execution vs the per-image loop
# ----------------------------------------------------------------------
def compare_batched_conv(batch_size: int = 8, packed: bool = True,
                         rounds: int = 3) -> dict:
    """Batched vs per-image conv execution of the same image stream.

    The batch folds into the fleet's array axis, so every bit-serial
    sequence runs once per batch instead of once per image — the
    wall-clock lever — while outputs stay bit-exact (also against the
    golden executor) and the cycle report identical: the arrays are
    parallel hardware, so batching must not change modeled cycles.
    """
    conv, shape, weights, image, reference, net = _conv_case()
    rng = np.random.default_rng(99)
    images = [QuantizedTensor.from_real(rng.uniform(0, 6, shape),
                                        weights.input_params)
              for _ in range(batch_size)]

    def make() -> FunctionalConv:
        return FunctionalConv(conv, shape, weights.for_node("c"),
                              output_params=weights.activation_params,
                              packed=packed)

    batched_s = _best_of(lambda: make().run_batch(images), rounds)

    def loop():
        engine = make()
        return [engine.run(im) for im in images]

    loop_s = _best_of(loop, rounds)

    batched_engine = make()
    batched_out = batched_engine.run_batch(images)
    loop_engine = make()
    loop_out = [loop_engine.run(im) for im in images]
    golden = ReferenceExecutor(net, weights)
    bit_exact = all(
        np.array_equal(got.data, want.data)
        and np.array_equal(got.data, golden.run_output(im).data)
        for got, want, im in zip(batched_out, loop_out, images))
    return {
        "batch_size": batch_size,
        "packed": packed,
        "batched_s": batched_s,
        "per_image_s": loop_s,
        "speedup": loop_s / batched_s,
        "bit_exact": bit_exact,
        "report_identical": batched_engine.report == loop_engine.report,
    }


def compare_block_load(n_arrays: int = 512, taps: int = 9,
                       rounds: int = 3) -> dict:
    """The batched host pack at the ``load_bits`` boundary: one
    ``write_value_block`` call for all of a layer's tap planes vs the
    per-plane ``write_values`` loop it replaced (the 'before')."""
    rng = np.random.default_rng(11)
    values = rng.integers(0, 256, (n_arrays, taps, 256)).astype(np.uint8)
    values64 = values.astype(np.int64)   # what the per-plane loop carried
    unit = FleetBitSerialUnit(PackedArrayFleet(n_arrays, rows=256, cols=256))
    block = Operand(0, taps * 8)

    per_plane_s = _best_of(
        lambda: [unit.write_values(Operand(block.row + 8 * t, 8),
                                   values64[:, t])
                 for t in range(taps)], rounds)
    loop_state = unit.fleet.dump_bits(block.row, taps * 8)
    block_s = _best_of(
        lambda: unit.write_value_block(block, values, 8), rounds)
    block_state = unit.fleet.dump_bits(block.row, taps * 8)
    return {
        "n_arrays": n_arrays,
        "taps": taps,
        "per_plane_s": per_plane_s,
        "block_s": block_s,
        "speedup": per_plane_s / block_s,
        "bit_exact": bool(np.array_equal(loop_state, block_state)),
    }


def render_batched_report(stats: dict) -> str:
    store = "packed" if stats["packed"] else "unpacked"
    return (f"Batch-in-fleet benchmark ({store} store): batch "
            f"{stats['batch_size']} conv -> one fleet pass "
            f"{stats['batched_s'] * 1e3:.1f} ms vs per-image loop "
            f"{stats['per_image_s'] * 1e3:.1f} ms "
            f"({stats['speedup']:.1f}x faster), "
            f"bit-exact={stats['bit_exact']} "
            f"report-identical={stats['report_identical']}")


def render_block_load_report(stats: dict) -> str:
    return (f"Block tap-plane load benchmark: {stats['taps']} planes x "
            f"{stats['n_arrays']} arrays in one write_value_block "
            f"{stats['block_s'] * 1e3:.2f} ms vs per-plane loop "
            f"{stats['per_plane_s'] * 1e3:.2f} ms "
            f"({stats['speedup']:.1f}x faster), "
            f"bit-exact={stats['bit_exact']}")


def _batched_gates_pass(stats: dict, min_speedup: float) -> bool:
    return (stats["bit_exact"] and stats["report_identical"]
            and stats["speedup"] >= min_speedup)


def test_batched_vs_per_image_conv(record):
    # Full target: >= 4x at batch >= 8 on the packed (production) store.
    stats = compare_batched_conv(batch_size=16, packed=True)
    record(render_batched_report(stats))
    # Soft gate below the measured 4.2-5.4x (the recorded line carries
    # the real number): only flags a wholesale regression to per-image
    # behaviour, not wall-clock noise on a loaded machine.
    assert _batched_gates_pass(stats, min_speedup=2.0)


def test_batched_unpacked_store_also_wins(record):
    stats = compare_batched_conv(batch_size=8, packed=False)
    record(render_batched_report(stats))
    # The unpacked store does real byte-per-bit work per image, so its
    # batched win is smaller (~3x measured); gate only on correctness
    # plus not being slower than the loop.
    assert _batched_gates_pass(stats, min_speedup=1.2)


def test_block_tap_plane_load(record):
    stats = compare_block_load()
    record(render_block_load_report(stats))
    assert stats["bit_exact"]
    # One vectorized pack for the whole block must never lose to the
    # per-plane loop it replaced.
    assert stats["speedup"] >= 1.0


def compare_spanning_conv(batch_size: int = 2) -> dict:
    """Spanning-layer fleet vs analytic: the cross-array reduction path.

    Runs the zoo's ``inception-span`` model (each Mixed_5c/Branch_0
    output spans four arrays under the 16-column geometry) end-to-end on
    the packed fleet with golden verification on, then checks the
    functional engine's reduction cycles against the analytic
    ``reduction_cycles_per_pass`` under the derived cost preset. The
    functional engine runs two reduction trees per pass (MAC partials
    plus the input-sum correction), so the exact relation is
    ``functional == 2 x analytic``.
    """
    import dataclasses

    from repro.core.functional import FunctionalExecutor
    from repro.core.mapping import map_conv
    from repro.core.schedule import reduction_cycles_per_pass
    from repro.engine.backend import deterministic_images
    from repro.nn.models import build_inception_span, spanning_config
    from repro.sram.cost import CycleCosts

    net = build_inception_span()
    config = spanning_config()
    start = time.perf_counter()
    result = FleetExecutor(config=config, packed=True, verify=True).run(
        net, batch_size=batch_size)
    wall = time.perf_counter() - start

    derived = dataclasses.replace(config, costs=CycleCosts.derived())
    backend = FleetExecutor(config=derived, packed=True, verify=False)
    weights = backend.weights_for(net)
    image = deterministic_images(net, weights, backend.seed, 1)[0]
    executor = FunctionalExecutor(net, weights, config=derived, packed=True)
    executor.run(image)
    span_layer = "Mixed_5c/Branch_0/Conv2d_0a_1x1"
    report = executor.reports[span_layer]
    node = net.node(span_layer)
    mapping = map_conv(derived, node.name, net.conv_of(node),
                       net.input_shape_of(node.name))
    analytic = reduction_cycles_per_pass(derived, mapping)
    functional = report.reduction / report.passes
    return {
        "batch_size": batch_size,
        "span": mapping.arrays_per_conv,
        "hops": [h.kind for h in mapping.reduction_plan.hops],
        "bit_exact": result.verified_images == batch_size,
        "analytic_reduction_per_pass": analytic,
        "functional_reduction_per_pass": functional,
        "cycle_consistent": functional == 2 * analytic,
        "seconds": wall,
    }


def render_spanning_report(stats: dict) -> str:
    hops = " -> ".join(stats["hops"])
    verdict = "verified" if stats["bit_exact"] else "DIVERGED"
    agree = "consistent" if stats["cycle_consistent"] else "MISMATCH"
    return (f"Spanning conv benchmark (inception-span, {stats['span']} "
            f"arrays/output, hops {hops}): fleet-packed batch "
            f"{stats['batch_size']} {verdict} in {stats['seconds']:.2f} s; "
            f"reduction cycles/pass functional "
            f"{stats['functional_reduction_per_pass']:.0f} vs analytic "
            f"2 x {stats['analytic_reduction_per_pass']} ({agree})")


def test_spanning_conv_fleet_vs_analytic(record):
    stats = compare_spanning_conv()
    record(render_spanning_report(stats))
    assert stats["bit_exact"]
    assert stats["cycle_consistent"]


def compare_sparsity(caps=(255, 63, 15, 0)) -> dict:
    """Bit-plane sparsity on the tiny verification network: dense vs
    sparse fleet runs over inputs of decreasing magnitude.

    Capping the activation magnitude leaves the high bit planes all-zero
    fleet-wide, which is exactly what the skip detector elides, so the
    modeled-cycle reduction (``dense_cycles / cycles``) should grow as
    the cap shrinks while outputs stay bit-exact and ``dense_cycles``
    stays pinned to the data-independent dense model.
    """
    net = tiny_verification_network()
    weights = FleetExecutor(packed=True).weights_for(net)
    rng = np.random.default_rng(97)
    points = []
    bit_exact = True
    dense_pinned = True
    start = time.perf_counter()
    for cap in caps:
        data = rng.integers(0, cap + 1, size=net.input_shape,
                            dtype=np.uint8)
        image = QuantizedTensor(data, weights.input_params)
        dense = FleetExecutor(packed=True).run_requests(net, [image],
                                                        weights)
        sparse = FleetExecutor(packed=True, sparsity=True).run_requests(
            net, [image], weights)
        exact = all(np.array_equal(g.data, w.data)
                    for g, w in zip(sparse.responses, dense.responses))
        bit_exact = bit_exact and exact
        dense_pinned = dense_pinned and (
            sparse.report.dense_cycles == dense.report.total
            and dense.report.skipped == 0)
        points.append({
            "cap": cap,
            "zero_fraction": float(np.mean(data == 0)),
            "cycles": sparse.report.total,
            "skipped": sparse.report.skipped,
            "dense_cycles": sparse.report.dense_cycles,
            "cycle_reduction": sparse.report.dense_cycles
            / sparse.report.total,
        })
    return {
        "points": points,
        "bit_exact": bit_exact,
        "dense_pinned": dense_pinned,
        "best_reduction": max(p["cycle_reduction"] for p in points),
        "seconds": time.perf_counter() - start,
    }


def render_sparsity_report(stats: dict) -> str:
    verdict = "bit-exact" if stats["bit_exact"] else "DIVERGED"
    pinned = ("dense model pinned" if stats["dense_pinned"]
              else "DENSE CYCLES DRIFTED")
    rows = "; ".join(
        f"cap {p['cap']}: {p['cycle_reduction']:.2f}x "
        f"({p['skipped']} of {p['dense_cycles']} cycles skipped)"
        for p in stats["points"])
    return (f"Sparsity benchmark (tiny net, {verdict}, {pinned}, "
            f"{stats['seconds']:.2f} s): {rows}")


def _sparsity_gates_pass(stats: dict, min_reduction: float) -> bool:
    return (stats["bit_exact"] and stats["dense_pinned"]
            and stats["best_reduction"] >= min_reduction)


def test_sparsity_skip_reduction(record):
    stats = compare_sparsity()
    record(render_sparsity_report(stats))
    assert _sparsity_gates_pass(stats, 1.2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fleet engine smoke benchmarks: packed vs unpacked "
                    "plane store, sharded-vs-single aggregation gates, "
                    "shard-driver equivalence + process speedup gates, "
                    "warm per-batch driver overhead + pool-vs-process "
                    "gates, serving smoke gates, batched-vs-per-image "
                    "execution gates")
    parser.add_argument("--quick", action="store_true",
                        help="smaller fleet/batches and relaxed speedup "
                             "gates (CI smoke mode)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write every section's measurements to "
                             "PATH as one JSON document (bench "
                             "trajectory)")
    parser.add_argument("--trajectory", metavar="PATH", default=None,
                        help="append a compact per-driver wall-clock "
                             "entry to the accumulating JSON history at "
                             "PATH (created when missing)")
    args = parser.parse_args(argv)
    results: dict = {"mode": "quick" if args.quick else "full"}

    def finish(code: int) -> int:
        return _finish(results, args.json, args.trajectory, code)
    n_arrays = QUICK_ARRAYS if args.quick else PRIMITIVE_ARRAYS
    min_speedup = 2.0 if args.quick else 4.0
    stats = compare_plane_stores(n_arrays)
    results["plane_store"] = stats
    print(render_plane_store_report(stats))
    ok = (stats["bit_exact"] and stats["cycle_exact"]
          and stats["memory_ratio"] == 8.0
          and stats["speedup"] >= min_speedup)
    if not ok:
        print(f"FAIL: packed store regressed (need bit/cycle exactness, "
              f"8x memory, >= {min_speedup:.1f}x speedup)", file=sys.stderr)
        return finish(1)

    # Sharded aggregation smoke: a shard count that divides the batch and
    # one that does not (quick mode keeps the batch CI-sized).
    batch = 4 if args.quick else 8
    results["sharded"] = []
    for shards in (2, 3):
        sharded_stats = compare_sharded(batch_size=batch, shards=shards,
                                        rounds=1 if args.quick else 2)
        results["sharded"].append(sharded_stats)
        print(render_sharded_report(sharded_stats))
        if not _sharded_gates_pass(sharded_stats):
            print("FAIL: sharded aggregation regressed (need bit-exact "
                  "outputs, identical cycle reports, full batch coverage "
                  "and verification)", file=sys.stderr)
            return finish(1)

    # Shard drivers: every driver must be indistinguishable from serial
    # in results; the process driver must additionally buy wall-clock at
    # >= 2 shards when the host actually has parallel CPUs (full mode —
    # CI runners and 1-CPU sandboxes record the number instead of
    # gating it; the correctness gates never relax).
    driver_stats = compare_shard_drivers(
        batch_size=8 if args.quick else 16,
        rounds=1 if args.quick else 2)
    results["shard_drivers"] = driver_stats
    print(render_shard_driver_report(driver_stats))
    if not _shard_drivers_exact(driver_stats):
        print("FAIL: a concurrent shard driver diverged from the serial "
              "driver (need bit-exact outputs and identical aggregate + "
              "per-shard cycle reports)", file=sys.stderr)
        return finish(1)
    process_speedup = driver_stats["drivers"]["process"]["speedup"]
    if (not args.quick and driver_stats["cpus"] >= 2
            and process_speedup < 1.05):
        print(f"FAIL: process shard driver shows no wall-clock speedup "
              f"over serial ({process_speedup:.2f}x at "
              f"{driver_stats['shards']} shards on "
              f"{driver_stats['cpus']} CPUs)", file=sys.stderr)
        return finish(1)

    # Per-batch driver overhead on warm backends: the persistent pool's
    # zero-copy dispatch must stay exact everywhere, and must beat the
    # fork-per-batch process driver by >= 1.2x at batch 8 in full mode
    # when the host has parallel CPUs (a 1-CPU sandbox records the
    # ratio instead of gating it; exactness gates never relax).
    overhead_stats = compare_driver_overhead(
        batch_sizes=(8,) if args.quick else (8, 32),
        rounds=1 if args.quick else 2)
    results["driver_overhead"] = overhead_stats
    print(render_driver_overhead_report(overhead_stats))
    if not _driver_overhead_exact(overhead_stats):
        print("FAIL: a warm shard driver diverged from the serial "
              "reference in the overhead section (need bit-exact "
              "outputs and identical cycle reports)", file=sys.stderr)
        return finish(1)
    pool_speedup = overhead_stats["batches"]["8"]["pool_vs_process_speedup"]
    if (not args.quick and overhead_stats["cpus"] >= 2
            and pool_speedup < 1.2):
        print(f"FAIL: persistent pool driver does not amortise dispatch "
              f"vs the process driver ({pool_speedup:.2f}x at batch 8, "
              f"{overhead_stats['shards']} shards on "
              f"{overhead_stats['cpus']} CPUs; need >= 1.2x)",
              file=sys.stderr)
        return finish(1)

    # Serving smoke (the CI serving gate): lost/duplicated responses or
    # bit-inexact results vs the direct run_requests path fail the run.
    serving_stats = compare_serving(
        n_requests=12 if args.quick else 32,
        max_batch=4 if args.quick else 6)
    results["serving"] = serving_stats
    from repro.serving import render_serving_report
    print(render_serving_report(serving_stats))
    if not _serving_gates_pass(serving_stats):
        print("FAIL: serving regressed (lost or duplicated responses, or "
              "responses not bit-exact vs the direct run_batch path)",
              file=sys.stderr)
        return finish(1)

    # Batch-in-fleet smoke: the conv functional path at batch >= 8 on
    # the packed store. Full mode holds the >= 4x acceptance line; quick
    # mode relaxes to 2x (a > 2x slowdown vs the ~4-5x expectation —
    # i.e. a wholesale regression toward per-image behaviour — still
    # fails CI, wall-clock noise does not). Correctness gates (bit-exact
    # outputs, identical cycle reports) are never relaxed.
    batched_batch = 8 if args.quick else 16
    batched_min = 2.0 if args.quick else 4.0
    batched_stats = compare_batched_conv(
        batch_size=batched_batch, packed=True,
        rounds=1 if args.quick else 3)
    results["batched"] = batched_stats
    print(render_batched_report(batched_stats))
    if not _batched_gates_pass(batched_stats, batched_min):
        print(f"FAIL: batch-in-fleet regressed (need bit-exact outputs, "
              f"identical cycle reports and >= {batched_min:.1f}x speedup "
              f"at batch {batched_batch})", file=sys.stderr)
        return finish(1)
    if not args.quick:
        unpacked_stats = compare_batched_conv(batch_size=8, packed=False)
        results["batched_unpacked"] = unpacked_stats
        print(render_batched_report(unpacked_stats))
        if not _batched_gates_pass(unpacked_stats, 1.2):
            print("FAIL: batch-in-fleet regressed on the unpacked store",
                  file=sys.stderr)
            return finish(1)

    block_stats = compare_block_load(
        n_arrays=128 if args.quick else 512,
        rounds=1 if args.quick else 3)
    results["block_load"] = block_stats
    print(render_block_load_report(block_stats))
    if not block_stats["bit_exact"]:
        print("FAIL: block tap-plane load diverged from the per-plane "
              "loop", file=sys.stderr)
        return finish(1)

    # Spanning-layer gate: cross-array reduction on a real Inception
    # layer must stay bit-exact on the fleet and cycle-consistent with
    # the analytic schedule (functional == 2 x analytic per pass).
    spanning_stats = compare_spanning_conv(batch_size=2)
    results["spanning"] = spanning_stats
    print(render_spanning_report(spanning_stats))
    if not (spanning_stats["bit_exact"]
            and spanning_stats["cycle_consistent"]):
        print("FAIL: spanning-layer cross-array reduction regressed "
              "(need bit-exact fleet outputs and functional reduction "
              "cycles == 2 x analytic reduction_cycles_per_pass)",
              file=sys.stderr)
        return finish(1)

    # Bit-plane sparsity gate: sparse runs must stay bit-exact with the
    # dense accounting pinned, and the best modeled-cycle reduction over
    # the magnitude sweep must clear 1.2x in full mode (quick mode only
    # requires some skipping — correctness gates never relax).
    sparsity_min = 1.01 if args.quick else 1.2
    sparsity_stats = compare_sparsity(
        caps=(255, 15) if args.quick else (255, 63, 15, 0))
    results["sparsity"] = sparsity_stats
    print(render_sparsity_report(sparsity_stats))
    if not _sparsity_gates_pass(sparsity_stats, sparsity_min):
        print(f"FAIL: bit-plane sparsity regressed (need bit-exact "
              f"sparse outputs, dense_cycles pinned to the dense model "
              f"and >= {sparsity_min:.2f}x best modeled-cycle "
              f"reduction)", file=sys.stderr)
        return finish(1)

    print(f"OK (gates: bit/cycle exact, 8x memory, "
          f">= {min_speedup:.1f}x packed speedup; sharded aggregation "
          f"lossless at shard counts 2 and 3; shard drivers identical to "
          f"serial, warm-driver overhead exact; serving exact — nothing "
          f"lost, duplicated or "
          f"bit-inexact; batch-in-fleet bit-exact, report-identical and "
          f">= {batched_min:.1f}x at batch {batched_batch}; block load "
          f"bit-exact; spanning layer bit-exact and cycle-consistent "
          f"with the analytic schedule; sparsity bit-exact, dense model "
          f"pinned, best reduction >= {sparsity_min:.2f}x)")
    return finish(0)


def _trajectory_entry(results: dict) -> dict:
    """Reduce one run to the numbers worth tracking across commits."""
    entry: dict = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": results["mode"],
        "ok": results["ok"],
    }
    plane = results.get("plane_store")
    if plane:
        entry["packed_speedup"] = plane["speedup"]
    drivers = results.get("shard_drivers")
    if drivers:
        entry["driver_wall_s"] = {"serial": drivers["serial_s"]}
        entry["driver_wall_s"].update(
            {name: d["seconds"] for name, d in drivers["drivers"].items()})
    overhead = results.get("driver_overhead")
    if overhead:
        entry["warm_driver_wall_s"] = {
            batch: {name: d["seconds"]
                    for name, d in per["drivers"].items()}
            for batch, per in overhead["batches"].items()}
        entry["pool_vs_process"] = {
            batch: per["pool_vs_process_speedup"]
            for batch, per in overhead["batches"].items()}
    serving = results.get("serving")
    if serving:
        entry["serving_rps"] = serving["throughput_rps"]
        entry["serving_p99_ms"] = serving["p99_ms"]
    batched = results.get("batched")
    if batched:
        entry["batched_speedup"] = batched["speedup"]
    spanning = results.get("spanning")
    if spanning:
        entry["spanning"] = {
            "bit_exact": spanning["bit_exact"],
            "cycle_consistent": spanning["cycle_consistent"],
            "reduction_cycles_per_pass":
                spanning["analytic_reduction_per_pass"],
            "wall_s": spanning["seconds"],
        }
    sparsity = results.get("sparsity")
    if sparsity:
        entry["sparsity"] = {
            "bit_exact": sparsity["bit_exact"],
            "dense_pinned": sparsity["dense_pinned"],
            "best_cycle_reduction": sparsity["best_reduction"],
            "wall_s": sparsity["seconds"],
        }
    return entry


def _finish(results: dict, json_path: str | None,
            trajectory_path: str | None, code: int) -> int:
    """Write the JSON documents (always, even on failure)."""
    results["ok"] = code == 0
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
        print(f"wrote {json_path}")
    if trajectory_path:
        try:
            with open(trajectory_path) as fh:
                history = json.load(fh)
            if not isinstance(history, list):
                history = []
        except (OSError, ValueError):
            history = []
        history.append(_trajectory_entry(results))
        with open(trajectory_path, "w") as fh:
            json.dump(history, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"appended run {len(history)} to {trajectory_path}")
    return code


if __name__ == "__main__":
    sys.exit(main())
