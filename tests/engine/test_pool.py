"""The persistent pool driver: zero-copy payloads, owned lifecycles.

Three contracts beyond the driver-equivalence suite (which the pool
driver already passes alongside thread/process in
``test_shard_driver.py``):

* **O(1) work units** — a staged :class:`PoolShardWork` pickles to a
  size independent of batch size and image resolution, because image
  payloads travel through the shared arenas, never through the pipes;
* **persistence** — worker PIDs are stable across consecutive
  ``run_requests`` batches (the pool never re-forks), and resolved
  weights keep a stable identity so the program broadcast happens once;
* **lifecycle** — after normal close, ``Server.close`` with
  ``close_backends``, a worker crash, or a double close, nothing the
  pool ever created remains in ``/dev/shm`` (asserted by scope scan and
  by segment re-attach failure).
"""

import asyncio
import os
import pickle
import signal

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.engine.backend import (
    deterministic_images,
    tiny_verification_network,
)
from repro.engine.pool import PoolShardWork
from repro.engine.shared import (
    SHM_DIR,
    SharedSegment,
    release_pooled_segments,
    shared_segment_stats,
)
from repro.engine.sharding import ShardedBackend


@pytest.fixture(scope="module")
def tiny_net():
    return tiny_verification_network()


def scope_segments(scope: str) -> list[str]:
    """Segments under a pool's scope still linked in /dev/shm."""
    return [entry for entry in os.listdir(SHM_DIR)
            if entry.startswith(scope)]


def assert_no_segment_leaks():
    """Every close path must leave the global segment ledger clean: no
    open mappings, nothing pooled once the recycler is drained, and no
    orphaned files under this process's token in /dev/shm."""
    release_pooled_segments()
    assert shared_segment_stats().check() == []


def staged_works(backend, network, batch: int) -> list[PoolShardWork]:
    weights = backend._weights_for(network)
    images = deterministic_images(network, weights, 0, batch)
    return backend._pool.stage(network, images, weights)


class TestZeroCopyPayloads:
    def test_pickle_size_independent_of_batch(self, tiny_net):
        with ShardedBackend(shards=2, driver="pool") as backend:
            sizes = {batch: max(len(pickle.dumps(work))
                                for work in
                                staged_works(backend, tiny_net, batch))
                     for batch in (2, 8, 32)}
        assert max(sizes.values()) < 2048
        assert max(sizes.values()) - min(sizes.values()) <= 16

    def test_pickle_size_independent_of_resolution(self):
        small = tiny_verification_network(size=8)
        large = tiny_verification_network(size=16)
        with ShardedBackend(shards=2, driver="pool") as backend:
            small_size = max(len(pickle.dumps(work)) for work in
                             staged_works(backend, small, 4))
            large_size = max(len(pickle.dumps(work)) for work in
                             staged_works(backend, large, 4))
        # A 4x larger image payload must not show up in the work unit.
        assert abs(large_size - small_size) <= 16

    def test_process_driver_works_do_scale_for_contrast(self, tiny_net):
        """The baseline the arenas remove: ShardWork embeds its images."""
        backend = ShardedBackend(shards=2, driver="serial")
        weights = backend._weights_for(tiny_net)

        def work_bytes(batch):
            images = deterministic_images(tiny_net, weights, 0, batch)
            works = backend.shard_works(tiny_net, images, weights)
            return max(len(pickle.dumps(work)) for work in works)

        assert work_bytes(32) > work_bytes(2) + 4096

    def test_work_lane_arithmetic(self):
        work = PoolShardWork(shard=1, batch=5, stride=3,
                             input_segment="a", output_segment="b",
                             input_shape=(2,), output_shape=(2,),
                             want_outputs=False)
        assert work.count == 2      # slots 1 and 4 of 0..4


class TestPersistence:
    def test_pool_survives_batches_without_reforking(self, tiny_net):
        with ShardedBackend(shards=2, driver="pool") as backend:
            pids = backend.worker_pids()
            assert len(pids) == 2
            weights = backend._weights_for(tiny_net)
            images = deterministic_images(tiny_net, weights, 0, 5)
            for _ in range(3):
                outcome = backend.run_requests(tiny_net, images)
                assert len(outcome.responses) == 5
                assert backend.worker_pids() == pids

    def test_weights_identity_is_stable_across_batches(self, tiny_net):
        backend = ShardedBackend(shards=2)
        first = backend._weights_for(tiny_net)
        assert backend._weights_for(tiny_net) is first

    def test_shards_decoupled_from_config_sockets(self, tiny_net):
        config = NeuralCacheConfig()
        assert config.sockets == 2
        with ShardedBackend(config, shards=4, driver="pool") as backend:
            assert backend.shards == 4
            assert len(backend.worker_pids()) == 4
            result = backend.run(tiny_net, batch_size=5)
        reference = ShardedBackend(config, shards=4,
                                   driver="serial").run(tiny_net,
                                                        batch_size=5)
        assert result.report == reference.report
        assert result.shard_reports == reference.shard_reports

    def test_non_pool_drivers_expose_empty_lifecycle(self):
        backend = ShardedBackend(shards=2, driver="thread")
        assert backend.worker_pids() == ()
        backend.close()     # no-op, must not raise


class TestEmptyShardSkip:
    def test_futures_pool_never_sees_empty_works(self, tiny_net,
                                                 monkeypatch):
        """shards > batch: idle works are synthesized, not submitted."""
        from repro.engine import sharding

        submitted = []
        real_pool = sharding.futures.ThreadPoolExecutor

        class SpyPool(real_pool):
            def map(self, fn, iterable):
                works = list(iterable)
                submitted.extend(works)
                return super().map(fn, works)

        monkeypatch.setattr(sharding.futures, "ThreadPoolExecutor",
                            SpyPool)
        backend = ShardedBackend(shards=3, driver="thread")
        result = backend.run(tiny_net, batch_size=1)
        assert [work.shard for work in submitted] == [0]
        assert [s.images for s in result.shard_reports] == [1, 0, 0]
        reference = ShardedBackend(shards=3, driver="serial").run(
            tiny_net, batch_size=1)
        assert result.report == reference.report
        assert result.shard_reports == reference.shard_reports

    def test_pool_driver_idle_shards_match_serial(self, tiny_net):
        with ShardedBackend(shards=3, driver="pool") as backend:
            result = backend.run(tiny_net, batch_size=1)
        reference = ShardedBackend(shards=3, driver="serial").run(
            tiny_net, batch_size=1)
        assert result.report == reference.report
        assert result.shard_reports == reference.shard_reports
        assert [s.images for s in result.shard_reports] == [1, 0, 0]


class TestLifecycle:
    def test_normal_close_sweeps_every_segment(self, tiny_net):
        backend = ShardedBackend(shards=2, driver="pool")
        backend.run(tiny_net, batch_size=4)
        scope = backend._pool.scope
        arena = backend._pool._input.name
        assert scope_segments(scope)        # arenas exist while open
        backend.close()
        assert scope_segments(scope) == []
        assert_no_segment_leaks()
        with pytest.raises(Exception, match="does not exist"):
            SharedSegment.attach(arena)

    def test_double_close_and_closed_use(self, tiny_net):
        backend = ShardedBackend(shards=2, driver="pool")
        scope = backend._pool.scope
        backend.close()
        backend.close()
        assert scope_segments(scope) == []
        assert_no_segment_leaks()
        with pytest.raises(SimulationError, match="closed"):
            backend.run(tiny_net, batch_size=2)
        with pytest.raises(SimulationError, match="closed"):
            backend.worker_pids()

    def test_worker_crash_fails_loudly_and_sweeps(self, tiny_net):
        # supervise=False pins the original fail-fast contract; the
        # supervised default recovers instead (test_pool_supervision.py).
        backend = ShardedBackend(shards=2, driver="pool", supervise=False)
        backend.run(tiny_net, batch_size=4)     # warm, arenas staged
        scope = backend._pool.scope
        os.kill(backend.worker_pids()[1], signal.SIGKILL)
        with pytest.raises(SimulationError, match="died"):
            backend.run(tiny_net, batch_size=4)
        assert scope_segments(scope) == []
        backend.close()     # idempotent after the crash teardown
        assert_no_segment_leaks()

    def test_stage_rejects_mismatched_images(self, tiny_net):
        with ShardedBackend(shards=2, driver="pool") as backend:
            weights = backend._weights_for(tiny_net)
            other = tiny_verification_network(size=16)
            wrong = deterministic_images(
                other, ShardedBackend(shards=2)._weights_for(other), 0, 2)
            with pytest.raises(SimulationError, match="expected the "
                                                      "network input"):
                backend._pool.stage(tiny_net, wrong, weights)
            # The rejection happened before any dispatch: still serving.
            assert backend.run(tiny_net, batch_size=4).verified_images == 4

    def test_worker_error_reports_without_killing_the_pool(self, tiny_net):
        with ShardedBackend(shards=2, driver="pool") as backend:
            backend.run(tiny_net, batch_size=4)
            pids = backend.worker_pids()
            bogus = PoolShardWork(
                shard=0, batch=2, stride=2,
                input_segment="repro-no-such-segment",
                output_segment="repro-no-such-segment",
                input_shape=(8, 8, 8), output_shape=(4, 4, 8),
                want_outputs=False)
            with pytest.raises(SimulationError, match="failed"):
                backend._pool.dispatch([bogus])
            # The worker reported and kept serving: same PIDs, good runs.
            assert backend.worker_pids() == pids
            result = backend.run(tiny_net, batch_size=4)
            assert result.verified_images == 4

    def test_worker_error_drains_the_other_shards_replies(self, tiny_net):
        """One shard errors mid-dispatch while the others succeed.

        The successful shards' "done" replies are already in their
        pipes when the error raises; if they were not drained, the next
        dispatch would pair its fresh works with this batch's stale
        replies and read arena slots while workers are still writing —
        silently wrong results for every later batch. The post-error
        batches here *vary in size*, so a stale reply (whose per-shard
        image count belongs to the poisoned batch) cannot masquerade as
        the fresh one.
        """
        from dataclasses import replace

        reference = {n: ShardedBackend(shards=2, driver="serial").run(
                         tiny_net, batch_size=n) for n in (4, 6)}
        with ShardedBackend(shards=2, driver="pool") as backend:
            backend.run(tiny_net, batch_size=4)
            pids = backend.worker_pids()
            weights = backend._weights_for(tiny_net)
            images = deterministic_images(tiny_net, weights, 0, 4)
            works = backend._pool.stage(tiny_net, images, weights)
            broken = replace(works[0],
                             input_segment="repro-no-such-segment")
            with pytest.raises(SimulationError,
                               match="shard 0 failed"):
                backend._pool.dispatch([broken, works[1]])
            # Shard 1 ran its lane and replied; that reply must be gone
            # from the pipe, and the pool must still be bit-exact.
            assert backend.worker_pids() == pids
            for batch in (6, 4, 6):
                result = backend.run(tiny_net, batch_size=batch)
                assert result.report == reference[batch].report
                assert (result.shard_reports
                        == reference[batch].shard_reports)
                assert result.verified_images == batch

    def test_workers_do_not_unlink_parent_recycled_segments(self, tiny_net):
        """Fork inherits the parent's recycler; workers must not act on it.

        Before the worker-side reset, a worker's exit-time
        release_pooled_segments() unlinked recycled names the parent
        still owns and may hand out again via SharedSegment.create.
        """
        from repro.engine.shared import (
            SharedPlaneStore,
            release_pooled_segments,
        )

        store = SharedPlaneStore(1, rows=4, cols=64)
        name = store.segment_name
        store.close()       # owner + recyclable -> pooled, still linked
        try:
            with ShardedBackend(shards=2, driver="pool") as backend:
                backend.run(tiny_net, batch_size=2)
            # The workers exited; the parent's pooled segment survives.
            attached = SharedSegment.attach(name)
            attached.close()
        finally:
            release_pooled_segments()

    def test_pool_warns_when_forking_with_threads(self, tiny_net):
        import threading

        release = threading.Event()
        thread = threading.Thread(target=release.wait)
        thread.start()
        try:
            with pytest.warns(RuntimeWarning, match="thread"):
                backend = ShardedBackend(shards=1, driver="pool")
            backend.close()
        finally:
            release.set()
            thread.join()

    def test_server_close_backends_releases_the_pool(self, tiny_net):
        from repro.serving.server import Server

        backend = ShardedBackend(shards=2, verify=False, driver="pool")
        scope = backend._pool.scope
        weights = backend._weights_for(tiny_net)
        images = deterministic_images(tiny_net, weights, 0, 6)
        expected = ShardedBackend(shards=2, verify=False).run_requests(
            tiny_net, images).responses

        async def drive():
            server = Server([backend], tiny_net, max_batch=4,
                            close_backends=True)
            async with server:
                responses = await asyncio.gather(
                    *(server.submit(image) for image in images))
            return responses

        responses = asyncio.run(drive())
        for got, want in zip(responses, expected):
            assert np.array_equal(got.data, want.data)
        assert backend._pool._closed
        assert scope_segments(scope) == []
        assert_no_segment_leaks()

    def test_server_leaves_backends_open_by_default(self, tiny_net):
        from repro.serving.server import Server

        backend = ShardedBackend(shards=2, verify=False, driver="pool")
        weights = backend._weights_for(tiny_net)
        images = deterministic_images(tiny_net, weights, 0, 2)

        async def drive():
            async with Server([backend], tiny_net) as server:
                await asyncio.gather(
                    *(server.submit(image) for image in images))

        asyncio.run(drive())
        assert not backend._pool._closed
        backend.close()
