"""Tests for the in-cache ISA and bank control FSM (Sec. IV-F)."""

import numpy as np
import pytest

from repro.common.errors import IsaError
from repro.core.isa import (
    FSM_AREA_UM2,
    ControlFSM,
    Instruction,
    Opcode,
    fsm_total_area_mm2,
)
from repro.sram import BitSerialUnit, Operand, SRAMArray


def unit(cols=32):
    return BitSerialUnit(SRAMArray(rows=128, cols=cols))


class TestInstructionValidation:
    def test_operand_count_enforced(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.CADD, (Operand(0, 8),))
        with pytest.raises(IsaError):
            Instruction(Opcode.CZERO, (Operand(0, 8), Operand(8, 8)))

    def test_immediate_required(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.CIMM, (Operand(0, 8),))

    def test_immediate_forbidden(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.CADD,
                        (Operand(0, 8), Operand(8, 8), Operand(16, 9)),
                        immediate=3)

    def test_str_rendering(self):
        instr = Instruction(Opcode.CIMM, (Operand(4, 8),), immediate=42)
        assert str(instr) == "cimm r4:8, #42"


class TestProgramValidation:
    """Out-of-range operands are rejected at validate time, before the
    first cycle touches any array (regression: they used to surface as
    an ArrayStateError halfway through execution, with state mutated)."""

    def test_out_of_range_row_operand_rejected(self):
        fsm = ControlFSM([unit()])  # 128 rows
        program = [Instruction(Opcode.CZERO, (Operand(124, 8),))]
        with pytest.raises(IsaError, match="beyond the array's 128 rows"):
            fsm.execute(program)
        assert fsm.instructions_executed == 0
        assert fsm.cycles == 0

    def test_rejected_before_any_state_moves(self):
        # The bad operand is in the *last* instruction: with execute-time
        # checking the first two would already have run.
        fsm = ControlFSM([unit()])
        program = [
            Instruction(Opcode.CIMM, (Operand(0, 8),), immediate=7),
            Instruction(Opcode.CIMM, (Operand(8, 8),), immediate=3),
            Instruction(Opcode.CCOPY, (Operand(0, 8), Operand(126, 8))),
        ]
        with pytest.raises(IsaError, match="instruction 2"):
            fsm.execute(program)
        assert fsm.instructions_executed == 0
        assert fsm.cycles == 0

    def test_smallest_attached_geometry_governs(self):
        mixed = ControlFSM([BitSerialUnit(SRAMArray(rows=128, cols=32)),
                            BitSerialUnit(SRAMArray(rows=64, cols=32))])
        program = [Instruction(Opcode.CZERO, (Operand(60, 8),))]
        with pytest.raises(IsaError, match="64 rows"):
            mixed.execute(program)

    def test_row_immediates_validated(self):
        fsm = ControlFSM([unit()])
        with pytest.raises(IsaError, match="sign row"):
            fsm.execute([Instruction(Opcode.CRELU, (Operand(0, 8),),
                                     immediate=128)])
        with pytest.raises(IsaError, match="tag row"):
            fsm.execute([Instruction(
                Opcode.CSELCOPY, (Operand(0, 8), Operand(8, 8)),
                immediate=-1)])

    def test_column_shift_validated(self):
        fsm = ControlFSM([unit(cols=32)])
        with pytest.raises(IsaError, match="column shift"):
            fsm.execute([Instruction(
                Opcode.CMOVE, (Operand(0, 8), Operand(8, 8)),
                immediate=32)])

    def test_in_bounds_program_passes(self):
        fsm = ControlFSM([unit()])
        fsm.validate([Instruction(Opcode.CZERO, (Operand(120, 8),)),
                      Instruction(Opcode.CRELU, (Operand(0, 8),),
                                  immediate=127)])


class TestExecution:
    def test_program_matches_direct_calls(self):
        a, b, dst = Operand(0, 8), Operand(8, 8), Operand(16, 9)
        vals_a = np.arange(32, dtype=np.int64)
        vals_b = np.arange(32, dtype=np.int64)[::-1].copy()

        direct = unit()
        direct.write_values(a, vals_a)
        direct.write_values(b, vals_b)
        direct.add(a, b, dst)

        fsm = ControlFSM(units=[unit()])
        fsm.units[0].write_values(a, vals_a)
        fsm.units[0].write_values(b, vals_b)
        cycles = fsm.execute([Instruction(Opcode.CADD, (a, b, dst))])
        assert cycles == direct.cycles
        assert np.array_equal(fsm.units[0].read_values(dst),
                              direct.read_values(dst))

    def test_simd_broadcast_across_arrays(self):
        """One instruction stream drives many arrays in lockstep —
        the paper's execution model."""
        a, b, dst = Operand(0, 8), Operand(8, 8), Operand(16, 9)
        arrays = [unit(), unit(), unit()]
        for i, u in enumerate(arrays):
            u.write_values(a, np.full(32, i + 1, dtype=np.int64))
            u.write_values(b, np.full(32, 10, dtype=np.int64))
        fsm = ControlFSM(units=arrays)
        fsm.execute([Instruction(Opcode.CADD, (a, b, dst))])
        for i, u in enumerate(arrays):
            assert np.all(u.read_values(dst) == i + 11)

    def test_multi_instruction_program(self):
        """A MAC program composed from ISA instructions."""
        a, b = Operand(0, 8), Operand(8, 8)
        scratch, acc = Operand(16, 16), Operand(32, 24)
        fsm = ControlFSM(units=[unit()])
        fsm.units[0].write_values(a, np.full(32, 7, dtype=np.int64))
        fsm.units[0].write_values(b, np.full(32, 6, dtype=np.int64))
        program = [
            Instruction(Opcode.CZERO, (acc,)),
            Instruction(Opcode.CMAC, (a, b, scratch, acc)),
            Instruction(Opcode.CMAC, (a, b, scratch, acc)),
        ]
        fsm.execute(program)
        assert np.all(fsm.units[0].read_values(acc) == 84)
        assert fsm.instructions_executed == 3

    def test_immediate_instructions(self):
        dst = Operand(0, 16)
        fsm = ControlFSM(units=[unit()])
        fsm.execute([Instruction(Opcode.CIMM, (dst,), immediate=1234)])
        assert np.all(fsm.units[0].read_values(dst) == 1234)

    def test_reduce_instruction(self):
        base, seg = Operand(0, 32), Operand(32, 32)
        fsm = ControlFSM(units=[unit()])
        vals = np.arange(32, dtype=np.int64)
        fsm.units[0].write_values(Operand(0, 29), vals)
        fsm.execute([Instruction(Opcode.CREDUCE, (base, seg), immediate=8)])
        got = fsm.units[0].read_values(base)
        assert got[0] == vals[:8].sum()

    def test_relu_and_selective_copy(self):
        op = Operand(0, 8)
        flag = Operand(8, 1)
        src = Operand(16, 8)
        fsm = ControlFSM(units=[unit()])
        u = fsm.units[0]
        vals = np.concatenate([np.full(16, 200), np.full(16, 5)])
        u.write_values(op, vals)
        fsm.execute([Instruction(Opcode.CRELU, (op,), immediate=7)])
        assert np.all(u.read_values(op) == np.where(vals >= 128, 0, vals))
        u.write_values(src, np.full(32, 9, dtype=np.int64))
        u.write_values(flag, np.ones(32, dtype=np.int64))
        fsm.execute([Instruction(Opcode.CSELCOPY, (src, op), immediate=8)])
        assert np.all(u.read_values(op) == 9)

    def test_default_fsm_gets_one_unit(self):
        fsm = ControlFSM()
        assert len(fsm.units) == 1


class TestArea:
    def test_per_fsm_area(self):
        assert FSM_AREA_UM2 == 204.0

    def test_total_area_matches_paper(self):
        # Sec. IV-F: "across 14 slices which sums to 0.23 mm^2".
        banks = 14 * 80
        assert fsm_total_area_mm2(banks) == pytest.approx(0.23, abs=0.002)

    def test_negative_banks_rejected(self):
        with pytest.raises(IsaError):
            fsm_total_area_mm2(-1)
