"""Spanning layers end-to-end: outputs whose channels exceed one array.

``inception-span`` registers a real Inception layer
(Mixed_5c/Branch_0/Conv2d_0a_1x1) under a geometry that makes each output
span four arrays, so these tests exercise the full cross-array reduction
path — mapping plan, fleet execution, chunking, sharding — gated
bit-exact against the golden NumPy reference and cycle-consistent with
the analytic schedule.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import NeuralCacheConfig
from repro.core.functional import FunctionalConv, FunctionalExecutor
from repro.core.schedule import reduction_cycles_per_pass
from repro.engine.backend import FleetExecutor, deterministic_images
from repro.engine.sharding import ShardedBackend
from repro.nn import Conv2D, QuantizedTensor, ReferenceExecutor
from repro.nn.models import build_inception_span, spanning_config
from repro.sram.cost import CycleCosts

RNG = np.random.default_rng(55)

SPAN_LAYER = "Mixed_5c/Branch_0/Conv2d_0a_1x1"


@pytest.fixture(scope="module")
def net():
    return build_inception_span()


@pytest.fixture(scope="module")
def config():
    return spanning_config()


class TestSpanningMapping:
    def test_the_registered_layer_really_spans(self, net, config):
        from repro.core.mapping import map_conv
        node = net.node(SPAN_LAYER)
        mapping = map_conv(config, node.name, net.conv_of(node),
                           net.input_shape_of(node.name))
        assert mapping.arrays_per_conv == 4
        assert mapping.channels_padded == 64
        plan = mapping.reduction_plan
        assert plan.group_size == 4
        assert [h.kind for h in plan.hops] == ["pair", "bus"]


class TestBitExactOnTheFleet:
    def test_fleet_packed_verifies(self, net, config):
        result = FleetExecutor(config=config, packed=True,
                               verify=True).run(net, batch_size=2)
        assert result.verified_images == 2

    def test_fleet_unpacked_verifies(self, net, config):
        result = FleetExecutor(config=config, packed=False,
                               verify=True).run(net, batch_size=1)
        assert result.verified_images == 1

    @pytest.mark.parametrize("driver", ["serial", "thread", "pool"])
    def test_shard_drivers_never_split_a_group(self, net, config, driver):
        # Shards slice whole images, never arrays, so reduction groups
        # stay intact on every driver; results must match the unsharded
        # fleet bit for bit.
        reference = FleetExecutor(config=config, packed=True,
                                  verify=False).run(net, batch_size=3)
        sharded = ShardedBackend(config=config, shards=2,
                                 driver=driver).run(net, batch_size=3)
        got = sharded.outputs[net.output_name]
        want = reference.outputs[net.output_name]
        assert np.array_equal(got.data, want.data)


class TestGroupAlignedChunking:
    @pytest.mark.parametrize("max_arrays", [2, 4, 6, 7])
    def test_chunk_limits_keep_groups_whole(self, net, config, max_arrays):
        # max_fleet_arrays values below or not a multiple of the span
        # must round to whole reduction groups (and at least one): any
        # split group would mix garbage into the tree and fail the
        # bit-exactness gate.
        chunked = dataclasses.replace(config, max_fleet_arrays=max_arrays)
        result = FleetExecutor(config=chunked, packed=True,
                               verify=True).run(net, batch_size=2)
        assert result.verified_images == 2

    def test_chunked_outputs_match_unchunked(self, net, config):
        full = FleetExecutor(config=config, packed=True,
                             verify=False).run(net, batch_size=2)
        chunked_config = dataclasses.replace(config, max_fleet_arrays=4)
        chunked = FleetExecutor(config=chunked_config, packed=True,
                                verify=False).run(net, batch_size=2)
        got = chunked.outputs[net.output_name]
        want = full.outputs[net.output_name]
        assert np.array_equal(got.data, want.data)


class TestCycleConsistency:
    def test_functional_reduction_matches_analytic_schedule(self, config):
        # The functional engine executes two reduction trees per pass
        # (the MAC partials and the input-sum correction), each costed
        # exactly like the analytic reduction_cycles_per_pass under the
        # derived preset.
        derived = dataclasses.replace(config, costs=CycleCosts.derived())
        conv = Conv2D(64, (1, 1))
        shape = (4, 4, 256)
        from repro.nn import Network, initialise_weights
        net = Network(name="span-cycles")
        x = net.add_input("in", shape)
        net.add("c", conv, x)
        weights = initialise_weights(net, seed=3)
        image = QuantizedTensor.from_real(
            RNG.uniform(0, 6, shape), weights.input_params)
        engine = FunctionalConv(conv, shape, weights.for_node("c"),
                                config=derived,
                                output_params=weights.activation_params,
                                packed=True)
        assert engine.mapping.arrays_per_conv == 4
        got = engine.run(image)
        reference = ReferenceExecutor(net, weights).run_output(image)
        assert np.array_equal(got.data, reference.data)
        per_pass = reduction_cycles_per_pass(derived, engine.mapping)
        assert engine.report.reduction == engine.report.passes * 2 * per_pass


class TestExecutorIntegration:
    def test_functional_executor_runs_the_whole_model(self, net, config):
        backend = FleetExecutor(config=config, packed=True, verify=False)
        weights = backend.weights_for(net)
        image = deterministic_images(net, weights, backend.seed, 1)[0]
        executor = FunctionalExecutor(net, weights, config=config,
                                      packed=True)
        out = executor.run(image)[net.output_name]
        want = ReferenceExecutor(net, weights).run_output(image)
        assert np.array_equal(out.data, want.data)
        span_report = executor.reports[SPAN_LAYER]
        assert span_report.reduction > 0
