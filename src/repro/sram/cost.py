"""Analytic cycle-cost model for bit-serial in-cache operations.

Two presets exist (see DESIGN.md section 5):

* :meth:`CycleCosts.derived` — closed forms that exactly match the cycle
  counts of the algorithms implemented in
  :class:`repro.sram.bitserial.BitSerialUnit`. Tests assert functional
  execution and these formulas agree bit-for-bit.
* :meth:`CycleCosts.paper` — the formulas the paper states (Sec. III:
  addition ``n+1``, multiplication ``n^2+5n-2``, division ``1.5n^2+5.5n``)
  plus the two constants its Sec. VI-A worked example implies (236 cycles
  per 8-bit MAC, 660 cycles for a 128-way channel reduction). The analytic
  simulator defaults to this preset so reproduced figures use the paper's
  own deterministic model.

Cost conventions shared by both presets:

* Latch resets (carry/tag clear) happen during instruction issue and are
  free.
* A *move* relocates one wordline of an operand (optionally shifted across
  bitlines through the column mux / sense-amp cycling of Sec. III-D);
  ``move_cycles_per_bit`` charges 1 (derived) or 2 (paper) cycles per bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import SimulationError


@dataclass(frozen=True)
class CycleCosts:
    """Cycle costs of bit-serial primitives on one SRAM array.

    All methods return integer cycle counts for operating on *every bitline
    of the array simultaneously* — the whole point of the architecture is
    that these costs are independent of how many elements (up to 256 per
    array) participate.
    """

    #: Human-readable preset name ("derived" or "paper").
    mode: str = "derived"
    #: Cycles charged per wordline moved during reductions.
    move_cycles_per_bit: int = 1
    #: Fixed-cost overrides, e.g. the paper's 236-cycle 8-bit MAC.
    mac_overrides: dict[int, int] = field(default_factory=dict)
    #: Fixed-cost overrides for (elements, width) reductions.
    reduction_overrides: dict[tuple[int, int], int] = field(
        default_factory=dict)
    #: Use the paper's op formulas instead of the derived ones.
    use_paper_formulas: bool = False
    #: Reduce over the full array width regardless of the live channel
    #: count. The paper's Sec. VI-A example charges ~660 reduction cycles
    #: for both a 32-channel and a 128-channel case, which matches a fixed
    #: 8-step (256-bitline) tree at 2 cycles/bit moves (668 cycles) — the
    #: reduction instruction is array-wide; groups only select which
    #: column's result is meaningful.
    full_array_reduction: bool = False

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def derived(cls) -> "CycleCosts":
        """Costs that exactly match the functional simulator's algorithms."""
        return cls(mode="derived")

    @classmethod
    def paper(cls) -> "CycleCosts":
        """The paper's stated formulas and worked-example constants."""
        return cls(
            mode="paper",
            move_cycles_per_bit=2,
            mac_overrides={8: 236},
            reduction_overrides={(128, 24): 660},
            use_paper_formulas=True,
            full_array_reduction=True,
        )

    # ------------------------------------------------------------------
    # Primitive ops
    # ------------------------------------------------------------------
    def copy(self, nbits: int) -> int:
        """Copy an ``nbits`` operand to another wordline region: 1 cycle/bit."""
        self._check(nbits)
        return nbits

    def const_write(self, nbits: int) -> int:
        """Write a constant (e.g. bulk zero) into ``nbits`` wordlines."""
        self._check(nbits)
        return nbits

    def add(self, nbits: int) -> int:
        """Element-wise addition of two ``nbits`` operands: ``n + 1``.

        ``n`` full-adder cycles plus one final cycle that stores the carry
        (Sec. III-B).
        """
        self._check(nbits)
        return nbits + 1

    def add_into(self, acc_bits: int) -> int:
        """Accumulate a shorter operand into an ``acc_bits`` accumulator.

        The carry must ripple through the full accumulator width, so the
        cost is one cycle per accumulator bit, with no final carry store
        (the accumulator is sized to never overflow).
        """
        self._check(acc_bits)
        return acc_bits

    def complement_copy(self, nbits: int) -> int:
        """Copy the bitwise complement of an operand (free via the BLB rail)."""
        self._check(nbits)
        return nbits

    def sub(self, nbits: int) -> int:
        """Subtraction ``a - b`` with a stored *not-borrow* flag.

        The two sensed rails are symmetric in A and B, so ``A AND (NOT B)``
        cannot be formed in one activation; the derived algorithm first
        complement-copies ``b`` (``n`` cycles, using the BLB rail), then adds
        with carry-in 1 (``n``) and stores the not-borrow (``1``):
        ``2n + 1`` total. The paper preset assumes single-cycle inverted-
        operand sensing and charges ``n + 1`` like addition.
        """
        self._check(nbits)
        if self.use_paper_formulas:
            return nbits + 1
        return 2 * nbits + 1

    def multiply(self, nbits: int) -> int:
        """Predicated shift-add multiplication of two ``nbits`` operands.

        Paper formula: ``n^2 + 5n - 2``. Derived formula (the algorithm in
        :meth:`BitSerialUnit.multiply`): ``n^2 + 4n - 1`` — the product region
        is zeroed (``2n``), the first multiplier bit does a tag load plus
        predicated copy (``1 + n``), and each remaining bit does a tag load,
        an ``n``-bit predicated add and a predicated carry store
        (``(n-1)(n+2)``).
        """
        self._check(nbits)
        if self.use_paper_formulas:
            return nbits * nbits + 5 * nbits - 2
        return nbits * nbits + 4 * nbits - 1

    def divide(self, nbits: int) -> int:
        """Restoring bit-serial division.

        Paper formula: ``1.5 n^2 + 5.5 n`` (always an integer). Derived
        formula for the restoring algorithm we implement:
        ``3 n^2 + 8 n + 1`` (per quotient bit: remainder shift ``n``,
        insert dividend bit ``1``, subtract ``n + 2``, tag load ``1``,
        predicated restore ``n + 1`` and quotient-bit write ``1``; plus
        zeroing the remainder ``n + 1`` and one divisor complement-copy
        ``n``; see DESIGN.md section 5).
        """
        self._check(nbits)
        if self.use_paper_formulas:
            value = 1.5 * nbits * nbits + 5.5 * nbits
            return int(round(value))
        return 3 * nbits * nbits + 8 * nbits + 1

    def sub_into(self, nbits: int) -> int:
        """In-place two's complement subtraction ``acc -= b``.

        Complement-copy plus a full-width carry-in-1 add; no borrow store.
        """
        self._check(nbits)
        if self.use_paper_formulas:
            return nbits
        return 2 * nbits

    def tag_load(self) -> int:
        """Latch one wordline into the tag latches: 1 cycle."""
        return 1

    def carry_store(self) -> int:
        """Write the carry latches back into a wordline: 1 cycle."""
        return 1

    # ------------------------------------------------------------------
    # Compute Cache heritage ops (Sec. II-B)
    # ------------------------------------------------------------------
    def logical(self, nbits: int) -> int:
        """AND / NOR / XOR of two operands: one cycle per bit pair."""
        self._check(nbits)
        return nbits

    def logical_or(self, nbits: int) -> int:
        """OR = NOR + complement write-back: ``2n``."""
        self._check(nbits)
        return 2 * nbits

    def equality_compare(self, nbits: int) -> int:
        """Per-column equality flag: ``n`` XOR cycles + 1 tag store."""
        self._check(nbits)
        return nbits + 1

    def search(self, nbits: int) -> int:
        """Key search across all columns: ``n`` cycles + 1 tag store."""
        self._check(nbits)
        return nbits + 1

    # ------------------------------------------------------------------
    # Composite ops
    # ------------------------------------------------------------------
    def mac(self, nbits: int, acc_bits: int) -> int:
        """Multiply two ``nbits`` operands and accumulate into ``acc_bits``.

        The paper's Sec. VI-A example implies 236 cycles for the 8-bit MAC
        with a 3-byte partial sum; the paper preset pins that value. The
        derived cost is ``multiply(n) + add_into(acc)``.
        """
        self._check(nbits)
        self._check(acc_bits)
        override = self.mac_overrides.get(nbits)
        if override is not None:
            return override
        return self.multiply(nbits) + self.add_into(acc_bits)

    def move(self, nbits: int) -> int:
        """Move ``nbits`` wordlines (optionally shifted across bitlines)."""
        self._check(nbits)
        return nbits * self.move_cycles_per_bit

    def reduction(self, elements: int, width: int) -> int:
        """Tree-reduce ``elements`` partial sums of ``width`` bits.

        ``log2(elements)`` steps; step ``s`` moves the right half of each
        group under the left half (``width + s`` wordlines) and adds
        (``width + s + 1`` cycles). Matches Sec. III-D. ``elements`` must be
        a power of two (the mapper pads channels to powers of two).
        """
        if elements <= 0:
            raise SimulationError(
                f"reduction needs at least one element, got {elements}")
        self._check(width)
        if elements & (elements - 1):
            raise SimulationError(
                f"reduction expects a power-of-two element count, got "
                f"{elements}; the mapper pads channels before reducing")
        override = self.reduction_overrides.get((elements, width))
        if override is not None:
            return override
        steps = int(math.log2(elements))
        total = 0
        for step in range(steps):
            bits = width + step
            total += self.move(bits) + self.add(bits)
        return total

    def max_update(self, nbits: int) -> int:
        """Fold one candidate into a running maximum (Sec. IV-D).

        Subtract (cost per preset, including the stored not-borrow), load
        the tag from the not-borrow row (1), then predicated-copy the
        candidate over the maximum (``n``).
        """
        self._check(nbits)
        return self.sub(nbits) + 1 + nbits

    def min_update(self, nbits: int) -> int:
        """Same data path as :meth:`max_update` with the tag inverted."""
        return self.max_update(nbits)

    def relu(self, nbits: int) -> int:
        """ReLU: tag from the sign row, then predicated zero-fill: ``n + 1``."""
        self._check(nbits)
        return 1 + nbits

    def selective_copy(self, nbits: int) -> int:
        """Tag load plus predicated copy of ``nbits`` wordlines."""
        self._check(nbits)
        return 1 + nbits

    # ------------------------------------------------------------------
    def _check(self, nbits: int) -> None:
        if nbits <= 0:
            raise SimulationError(f"bit width must be positive, got {nbits}")
