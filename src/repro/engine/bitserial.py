"""Fleet-wide bit-serial arithmetic: one instruction, every array at once.

:class:`FleetBitSerialUnit` is the vectorized port of
:class:`repro.sram.bitserial.BitSerialUnit`: the same operation sequences
(copy, addition per Fig. 4, predicated multiplication per Fig. 6,
restoring division, subtraction/compare, max/min folding, ReLU, selective
copies, in-array tree reduction per Fig. 5) driven over any
:class:`~repro.engine.fleet.PlaneStore` — the unpacked
:class:`~repro.engine.fleet.ArrayFleet` reference or the packed
:class:`~repro.engine.packed.PackedArrayFleet` — so every cycle executes
on *all* ``n_arrays * cols`` bitlines simultaneously — the data
parallelism the paper's compute-cache slices actually have.

Cycle accounting is lockstep and bit-exact with the single-array unit:
``self.cycles`` after any operation equals the single-array value, because
the hardware broadcasts each instruction to the whole fleet. Property
tests compare the two implementations on random operands and assert both
results and cycle counts agree with :class:`repro.sram.cost.CycleCosts`
in its ``derived`` preset.

Operands use the same transposed layout as the single-array unit: an
:class:`Operand` names the wordline of its least-significant bit and its
width; element ``(array, column)`` of the fleet occupies bitline ``column``
of that array. :class:`Operand` is *defined* here and re-exported by
:mod:`repro.sram.bitserial` for backwards compatibility.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.common.bits import bitplanes_to_int, int_to_bitplanes
from repro.common.errors import ArrayStateError, LayoutError
from repro.engine.fleet import ArrayFleet, PlaneStore

#: Module-wide trace hook: when set (by repro.verify.recorder), every
#: *top-level* composite operation on any FleetBitSerialUnit is reported
#: as ``hook(unit, method_name, args, kwargs)`` before it executes.
#: Nested composite calls (mac -> multiply -> load_tag, ...) are
#: suppressed via a per-unit depth counter, so a recorded program is the
#: sequence of calls the *engine* made — the unit of transformation the
#: static verifier reasons about. ``None`` (the default) costs one global
#: read per composite call.
_TRACE_HOOK = None


def set_trace_hook(hook):
    """Install (or clear, with ``None``) the composite-call trace hook.

    Returns the previously installed hook so callers can restore it —
    :func:`repro.verify.recorder.record_programs` is the intended user.
    """
    global _TRACE_HOOK
    previous = _TRACE_HOOK
    _TRACE_HOOK = hook
    return previous


def _traced(fn):
    """Report top-level calls of ``fn`` to the trace hook, if installed."""
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        hook = _TRACE_HOOK
        if hook is None:
            return fn(self, *args, **kwargs)
        if not self._trace_depth:
            hook(self, name, args, kwargs)
        self._trace_depth += 1
        try:
            return fn(self, *args, **kwargs)
        finally:
            self._trace_depth -= 1

    return wrapper


@dataclass(frozen=True)
class Operand:
    """A vertical (transposed) operand: LSB at wordline ``row``, ``nbits`` tall."""

    row: int
    nbits: int

    def __post_init__(self) -> None:
        if self.row < 0:
            raise LayoutError(f"operand row must be >= 0, got {self.row}")
        if self.nbits <= 0:
            raise LayoutError(f"operand width must be positive, got {self.nbits}")

    def bit(self, b: int) -> int:
        """Wordline index of bit ``b`` (LSB-first)."""
        if not 0 <= b < self.nbits:
            raise LayoutError(f"bit {b} outside operand of {self.nbits} bits")
        return self.row + b

    @property
    def end(self) -> int:
        """One past the last wordline used by this operand."""
        return self.row + self.nbits

    def overlaps(self, other: "Operand") -> bool:
        """True when the two operands share any wordline."""
        return self.row < other.end and other.row < self.end


class FleetBitSerialUnit:
    """Drives a whole fleet of SRAM arrays through bit-serial sequences.

    ``fleet`` is any :class:`~repro.engine.fleet.PlaneStore` — the
    unpacked :class:`~repro.engine.fleet.ArrayFleet` reference or the
    packed :class:`~repro.engine.packed.PackedArrayFleet`. The sequences
    below only touch planes through the store's native ops (and a
    periphery the store itself supplies), so they run unmodified, with
    identical results and cycle counts, on either representation.
    """

    def __init__(self, fleet: PlaneStore | None = None,
                 sparsity: bool = False):
        self.fleet = fleet if fleet is not None else ArrayFleet()
        self.periphery = self.fleet.make_periphery()
        self.cycles = 0
        #: Cycles the dense sequence would have spent on steps the
        #: sparsity engine skipped. ``cycles + skipped_cycles`` is the
        #: paper's data-independent accounting (``dense_cycles``).
        self.skipped_cycles = 0
        #: Skip all-zero-plane multiply/add steps fleet-wide (BitWave-style
        #: bit-plane sparsity). Off by default: the dense reference path.
        self.sparsity = bool(sparsity)
        self._trace_depth = 0

    @property
    def n_arrays(self) -> int:
        """Arrays executing in lockstep."""
        return self.fleet.n_arrays

    @property
    def cols(self) -> int:
        """Bitlines per array (parallel element slots per array)."""
        return self.fleet.cols

    @property
    def rows(self) -> int:
        """Wordlines per array."""
        return self.fleet.rows

    # ==================================================================
    # Host-side data movement (no compute cycles; data enters via the
    # TMU / bus models, which charge their own time)
    # ==================================================================
    def write_values(self, op: Operand, values: np.ndarray | int) -> None:
        """Store one integer per (array, bitline) into ``op``.

        ``values`` is ``(n_arrays, cols)``; a scalar or a ``(cols,)``
        vector broadcasts to every array (host/TMU path).
        """
        if np.isscalar(values):
            values = np.full((self.n_arrays, self.cols), int(values),
                             dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if values.shape == (self.cols,):
            values = np.broadcast_to(values, (self.n_arrays, self.cols))
        if values.shape != (self.n_arrays, self.cols):
            raise ArrayStateError(
                f"expected ({self.n_arrays}, {self.cols}) values, got shape "
                f"{values.shape}")
        self.fleet.load_bits(op.row, int_to_bitplanes(values, op.nbits))

    def write_value_block(self, base: Operand, values: np.ndarray,
                          nbits: int) -> None:
        """Store a contiguous block of equal-width fields in one host load.

        ``values`` is ``(n_arrays, n_fields, cols)``; field ``t`` occupies
        ``nbits`` wordlines starting at ``base.row + t * nbits``. All the
        fields' bit planes are built and loaded in a *single*
        ``load_bits`` call — on the packed store that is one vectorized
        host pack for the whole block instead of ``n_fields`` separate
        packs, which is the conversion hot spot when a conv layer loads
        its tap planes (host/TMU path, no compute cycles either way).
        """
        values = np.asarray(values)
        if values.dtype != np.uint8:
            values = values.astype(np.int64, copy=False)
        if (values.ndim != 3 or values.shape[0] != self.n_arrays
                or values.shape[2] != self.cols):
            raise ArrayStateError(
                f"expected ({self.n_arrays}, n_fields, {self.cols}) "
                f"values, got shape {values.shape}")
        n_fields = values.shape[1]
        if base.nbits != n_fields * nbits:
            raise LayoutError(
                f"block of {n_fields} x {nbits}-bit fields needs "
                f"{n_fields * nbits} rows, operand has {base.nbits}")
        planes = int_to_bitplanes(values.reshape(-1, self.cols), nbits)
        self.fleet.load_bits(
            base.row,
            planes.reshape(self.n_arrays, n_fields * nbits, self.cols))

    def read_values(self, op: Operand) -> np.ndarray:
        """Read back ``(n_arrays, cols)`` integers from ``op``."""
        return bitplanes_to_int(self.fleet.dump_bits(op.row, op.nbits))

    # ==================================================================
    # Single-cycle primitives
    #
    # These are the hot inner loop of the whole reproduction: every
    # bit-serial op expands to thousands of calls. They therefore operate
    # on native row planes directly (the operands are internally generated
    # planes, so the public API's per-call value validation would only
    # re-check what the sequencer already guarantees), while still
    # advancing the fleet's lockstep compute counter and checking row
    # bounds so layout bugs surface as ArrayStateError. Planes are opaque:
    # only ``& | ^``, the store's plane ops and the periphery touch them,
    # which is what lets the packed store run these sequences unmodified.
    # ==================================================================
    def _write_plane(self, dst_row: int, plane: np.ndarray,
                     predicated: bool) -> None:
        """Write-back phase of one compute cycle (tag-gated drivers)."""
        self.fleet.store_plane(
            dst_row, plane, self.periphery.tag if predicated else None)

    def _cycle_copy_row(self, src_row: int, dst_row: int,
                        predicated: bool = False, invert: bool = False,
                        shift: int = 0) -> None:
        """One move cycle: sense ``src_row`` (BL rail, or BLB when
        ``invert``), optionally shift across bitlines through the column
        mux, and write ``dst_row`` — in every array at once."""
        fleet = self.fleet
        fleet._check_row(src_row)
        fleet._check_row(dst_row)
        fleet.compute_cycles += 1
        src = fleet.read_plane(src_row)
        plane = fleet.plane_not(src) if invert else src
        if shift:
            plane = fleet.shift_plane(plane, shift)
        self._write_plane(dst_row, plane, predicated)
        self.cycles += 1

    def _cycle_add_bit(self, row_a: int, row_b: int, dst_row: int,
                       predicated: bool = False) -> None:
        """One fleet-wide full-adder cycle (``dst_row`` may equal ``row_b``
        for in-place accumulation, as in Fig. 6). The two sensed rails
        give ``A AND B`` and ``A NOR B``; their NOR is ``A XOR B``
        (Figure 7), computed here directly as ``a ^ b``."""
        fleet = self.fleet
        fleet._check_row(row_a)
        fleet._check_row(row_b)
        fleet._check_row(dst_row)
        fleet.compute_cycles += 1
        a = fleet.read_plane(row_a)
        b = fleet.read_plane(row_b)
        total = self.periphery.add_step(a & b, a ^ b)
        self._write_plane(dst_row, total, predicated)
        self.cycles += 1

    def _cycle_half_add_bit(self, row_a: int, dst_row: int,
                            const_bit: int = 0,
                            predicated: bool = False) -> None:
        """One adder cycle with a constant second operand (0 or 1)."""
        fleet = self.fleet
        fleet._check_row(row_a)
        fleet._check_row(dst_row)
        fleet.compute_cycles += 1
        a = fleet.read_plane(row_a)
        if const_bit:
            # B=1: A&B=A, A^B=~A
            total = self.periphery.add_step(a, fleet.plane_not(a))
        else:
            total = self.periphery.add_step(fleet.const_plane(0), a)  # B=0
        self._write_plane(dst_row, total, predicated)
        self.cycles += 1

    def _cycle_write_const(self, row: int, bit: int,
                           predicated: bool = False) -> None:
        """One cycle writing a constant bit to a wordline of every array."""
        fleet = self.fleet
        fleet._check_row(row)
        fleet.compute_cycles += 1
        self._write_plane(row, fleet.const_plane(bit), predicated)
        self.cycles += 1

    def _cycle_store_carry(self, dst_row: int, predicated: bool = False) -> None:
        """One cycle writing the carry latches to a wordline."""
        self.fleet._check_row(dst_row)
        self.fleet.compute_cycles += 1
        self._write_plane(dst_row, self.periphery.carry, predicated)
        self.cycles += 1

    def _cycle_store_tag(self, dst_row: int) -> None:
        """One cycle writing the tag latches to a wordline."""
        self.fleet._check_row(dst_row)
        self.fleet.compute_cycles += 1
        self.fleet.store_plane(dst_row, self.periphery.tag)
        self.cycles += 1

    def load_tag(self, row: int, invert: bool = False) -> None:
        """Latch a wordline into the tag latches (1 cycle)."""
        fleet = self.fleet
        fleet._check_row(row)
        fleet.compute_cycles += 1
        a = fleet.read_plane(row)
        self.periphery.tag[...] = fleet.plane_not(a) if invert else a
        self.cycles += 1

    def set_tag_all(self) -> None:
        """Re-enable all write drivers (free: happens at instruction issue)."""
        self.periphery.set_tag_all()

    def _report_skip(self, kind: str, source: Operand, dest: Operand,
                     cycles: int) -> None:
        """Account one sparsity skip and surface it to the trace hook.

        ``source`` is the operand region whose planes were probed all-zero,
        ``dest`` the region the skipped step would have written (and
        provably leaves unchanged), ``cycles`` the dense cost not spent.
        The ``skip_step`` pseudo-op is reported through the trace hook
        *directly* — not via ``_traced`` — because skips fire inside
        composites (``mac`` -> ``multiply``) where the depth counter
        suppresses nested records; the verifier checks every skip's
        soundness regardless of nesting.
        """
        self.skipped_cycles += cycles
        hook = _TRACE_HOOK
        if hook is not None:
            hook(self, "skip_step", (kind, source, dest, cycles), {})

    # ==================================================================
    # Composite operations (costs mirror CycleCosts.derived)
    # ==================================================================
    def zero(self, op: Operand, predicated: bool = False) -> None:
        """Bulk-zero an operand region: ``nbits`` cycles."""
        for b in range(op.nbits):
            self._cycle_write_const(op.bit(b), 0, predicated)

    def write_scalar(self, op: Operand, value: int) -> None:
        """Broadcast an immediate to every bitline of every array:
        ``nbits`` cycles (the quantization scalars of Sec. IV-D)."""
        if value < 0:
            raise ArrayStateError(
                "broadcast immediates must be non-negative; use two's "
                "complement encoding for signed scalars")
        for b in range(op.nbits):
            self._cycle_write_const(op.bit(b), (value >> b) & 1)

    def copy(self, src: Operand, dst: Operand, predicated: bool = False) -> None:
        """Copy ``src`` to ``dst`` (``src.nbits`` cycles)."""
        self._check_width(src, dst)
        for b in range(src.nbits):
            self._cycle_copy_row(src.bit(b), dst.bit(b), predicated)

    def complement_copy(self, src: Operand, dst: Operand,
                        predicated: bool = False) -> None:
        """Copy the bitwise complement of ``src`` (via the BLB rail)."""
        self._check_width(src, dst)
        for b in range(src.nbits):
            self._cycle_copy_row(src.bit(b), dst.bit(b), predicated,
                                 invert=True)

    def shift_copy(self, src: Operand, dst: Operand, column_shift: int) -> None:
        """Copy ``src`` while moving every element ``column_shift`` bitlines
        left (the inter-bitline move used by reductions)."""
        self._check_width(src, dst)
        for b in range(src.nbits):
            self._cycle_copy_row(src.bit(b), dst.bit(b), shift=column_shift)

    def add(self, a: Operand, b: Operand, dst: Operand,
            predicated: bool = False) -> None:
        """``dst = a + b`` (Fig. 4): ``n`` adder cycles + 1 carry store."""
        if a.nbits != b.nbits:
            raise LayoutError(
                f"addition operands must match: {a.nbits} vs {b.nbits} bits")
        if dst.nbits != a.nbits + 1:
            raise LayoutError(
                f"addition destination must be {a.nbits + 1} bits, got "
                f"{dst.nbits}")
        self.periphery.clear_carry()
        for k in range(a.nbits):
            self._cycle_add_bit(a.bit(k), b.bit(k), dst.bit(k), predicated)
        self._cycle_store_carry(dst.bit(a.nbits), predicated)

    def add_into(self, src: Operand, acc: Operand,
                 predicated: bool = False) -> None:
        """``acc += src`` where ``acc`` is wider than ``src``: ``acc.nbits``
        cycles (full adds over ``src``, then carry ripple through the rest).

        Under ``sparsity``, an all-zero ``src`` (every plane zero in every
        array) skips the whole sequence: adding zero with a cleared carry
        leaves ``acc`` bit-identical, so the ``acc.nbits`` cycles are
        charged to ``skipped_cycles`` instead of ``cycles``.
        """
        if src.nbits > acc.nbits:
            raise LayoutError(
                f"accumulator ({acc.nbits} bits) narrower than source "
                f"({src.nbits} bits)")
        if self.sparsity and not any(self.fleet.plane_any(src.bit(k))
                                     for k in range(src.nbits)):
            self._report_skip("add-into", src, acc, acc.nbits)
            return
        self.periphery.clear_carry()
        for k in range(src.nbits):
            self._cycle_add_bit(src.bit(k), acc.bit(k), acc.bit(k), predicated)
        for k in range(src.nbits, acc.nbits):
            self._cycle_half_add_bit(acc.bit(k), acc.bit(k), 0, predicated)

    def sub(self, a: Operand, b: Operand, dst: Operand,
            scratch: Operand) -> None:
        """``dst[0:n] = a - b`` (mod ``2^n``), ``dst[n]`` = not-borrow:
        ``2n + 1`` cycles. A not-borrow of 1 means ``a >= b``."""
        if a.nbits != b.nbits:
            raise LayoutError(
                f"subtraction operands must match: {a.nbits} vs {b.nbits} bits")
        if dst.nbits != a.nbits + 1:
            raise LayoutError(
                f"subtraction destination must be {a.nbits + 1} bits "
                f"(difference + not-borrow), got {dst.nbits}")
        if scratch.nbits < b.nbits:
            raise LayoutError(
                f"subtraction scratch must hold {b.nbits} bits, got "
                f"{scratch.nbits}")
        self.complement_copy(b, Operand(scratch.row, b.nbits))
        self.periphery.set_carry()
        for k in range(a.nbits):
            self._cycle_add_bit(a.bit(k), scratch.row + k, dst.bit(k))
        self._cycle_store_carry(dst.bit(a.nbits))

    def sub_into(self, acc: Operand, b: Operand, scratch: Operand) -> None:
        """``acc -= b`` modulo ``2**acc.nbits`` (two's complement in place):
        ``2n`` cycles. No borrow flag — callers that need the comparison
        use :meth:`sub`."""
        if b.nbits != acc.nbits:
            raise LayoutError(
                f"sub_into operands must match: {acc.nbits} vs {b.nbits} "
                f"bits")
        if scratch.nbits < b.nbits:
            raise LayoutError(
                f"sub_into scratch must hold {b.nbits} bits, got "
                f"{scratch.nbits}")
        self.complement_copy(b, Operand(scratch.row, b.nbits))
        self.periphery.set_carry()
        for k in range(acc.nbits):
            self._cycle_add_bit(acc.bit(k), scratch.row + k, acc.bit(k))

    def multiply(self, a: Operand, b: Operand, product: Operand) -> None:
        """``product = a * b`` via predicated shift-adds (Fig. 6).

        Derived cost ``n^2 + 4n - 1``, identical to the single-array unit.

        Under ``sparsity``, a multiplier bit plane ``b.bit(j)`` that is
        all-zero fleet-wide skips iteration ``j``: the tag latch would be
        all-zero, so every predicated write of the iteration is a no-op
        (``product`` was just zeroed for ``j == 0``; each ``j > 0`` block
        starts with ``clear_carry``, so no carry state crosses
        iterations). The iteration's dense cost (``n + 1`` for ``j == 0``,
        ``n + 2`` beyond) lands in ``skipped_cycles``.
        """
        n = a.nbits
        if b.nbits != n:
            raise LayoutError(
                f"multiplication operands must match: {n} vs {b.nbits} bits")
        if product.nbits != 2 * n:
            raise LayoutError(
                f"product must be {2 * n} bits, got {product.nbits}")
        for operand in (a, b):
            if operand.overlaps(product):
                raise LayoutError("product region overlaps an input operand")
        self.zero(product)
        for j in range(n):
            if self.sparsity and not self.fleet.plane_any(b.bit(j)):
                if j == 0:
                    self._report_skip("multiply-plane", Operand(b.bit(j), 1),
                                      Operand(product.bit(0), n), n + 1)
                else:
                    self._report_skip("multiply-plane", Operand(b.bit(j), 1),
                                      Operand(product.bit(j), n + 1), n + 2)
                continue
            self.load_tag(b.bit(j))
            if j == 0:
                for k in range(n):
                    self._cycle_copy_row(a.bit(k), product.bit(k),
                                         predicated=True)
            else:
                self.periphery.clear_carry()
                for k in range(n):
                    self._cycle_add_bit(a.bit(k), product.bit(j + k),
                                        product.bit(j + k), predicated=True)
                self._cycle_store_carry(product.bit(j + n), predicated=True)
        self.set_tag_all()

    def mac(self, a: Operand, b: Operand, product_scratch: Operand,
            acc: Operand) -> None:
        """Multiply-accumulate: ``acc += a * b``.

        Derived cost ``multiply(n) + acc.nbits`` (Sec. IV-A: 2-byte
        scratchpad for the product, 3-byte partial sum).
        """
        self.multiply(a, b, product_scratch)
        self.add_into(product_scratch, acc)

    def divide(self, a: Operand, b: Operand, quotient: Operand,
               work: Operand) -> None:
        """Restoring division: ``quotient = a // b`` per bitline.

        Same layout contract as the single-array unit: ``work`` provides
        ``3n + 4`` contiguous scratch wordlines and afterwards holds
        ``a % b`` in its first ``n + 1`` rows. Derived cost
        ``3n^2 + 8n + 1``.
        """
        n = a.nbits
        if b.nbits != n:
            raise LayoutError(
                f"division operands must match: {n} vs {b.nbits} bits")
        if quotient.nbits != n:
            raise LayoutError(f"quotient must be {n} bits, got {quotient.nbits}")
        if work.nbits < 3 * n + 4:
            raise LayoutError(
                f"division scratch needs {3 * n + 4} rows, got {work.nbits}")
        remainder = Operand(work.row, n + 1)
        diff = Operand(remainder.end, n + 2)
        comp_b = Operand(diff.end, n)

        self.zero(remainder)
        self.complement_copy(b, comp_b)
        for i in range(n - 1, -1, -1):
            # Shift the remainder up one bit (top to bottom so rows survive).
            for k in range(n - 1, -1, -1):
                self._cycle_copy_row(remainder.bit(k), remainder.bit(k + 1))
            self._cycle_copy_row(a.bit(i), remainder.bit(0))
            # Trial subtraction: diff = remainder - b (divisor zero-extended).
            self.periphery.set_carry()
            for k in range(n):
                self._cycle_add_bit(remainder.bit(k), comp_b.bit(k),
                                    diff.bit(k))
            self._cycle_half_add_bit(remainder.bit(n), diff.bit(n),
                                     const_bit=1)
            self._cycle_store_carry(diff.bit(n + 1))
            # Commit the difference where it did not borrow.
            self.load_tag(diff.bit(n + 1))
            for k in range(n + 1):
                self._cycle_copy_row(diff.bit(k), remainder.bit(k),
                                     predicated=True)
            self._cycle_store_tag(quotient.bit(i))
        self.set_tag_all()

    def compare_ge(self, a: Operand, b: Operand, dst: Operand,
                   scratch: Operand) -> None:
        """Write ``a >= b`` (one bit per column) to ``dst``'s first row."""
        if dst.nbits < 1:
            raise LayoutError("comparison needs one destination row")
        diff = Operand(scratch.row, a.nbits + 1)
        tail = Operand(diff.end, scratch.nbits - (a.nbits + 1))
        self.sub(a, b, diff, tail)
        self._cycle_copy_row(diff.bit(a.nbits), dst.bit(0))

    def max_update(self, current: Operand, candidate: Operand,
                   scratch: Operand) -> None:
        """Fold ``candidate`` into a running ``current = max(current, candidate)``.

        ``scratch`` needs ``2n + 1`` rows. Derived cost ``sub(n) + 1 + n``.
        """
        n = current.nbits
        if candidate.nbits != n:
            raise LayoutError(
                f"max operands must match: {n} vs {candidate.nbits} bits")
        if scratch.nbits < 2 * n + 1:
            raise LayoutError(
                f"max scratch needs {2 * n + 1} rows, got {scratch.nbits}")
        diff = Operand(scratch.row, n + 1)
        comp = Operand(diff.end, n)
        self.sub(candidate, current, diff, comp)
        self.load_tag(diff.bit(n))            # tag = (candidate >= current)
        self.copy(candidate, current, predicated=True)
        self.set_tag_all()

    def min_update(self, current: Operand, candidate: Operand,
                   scratch: Operand) -> None:
        """Fold ``candidate`` into a running minimum (tag inverted)."""
        n = current.nbits
        if candidate.nbits != n:
            raise LayoutError(
                f"min operands must match: {n} vs {candidate.nbits} bits")
        if scratch.nbits < 2 * n + 1:
            raise LayoutError(
                f"min scratch needs {2 * n + 1} rows, got {scratch.nbits}")
        diff = Operand(scratch.row, n + 1)
        comp = Operand(diff.end, n)
        self.sub(candidate, current, diff, comp)
        self.load_tag(diff.bit(n), invert=True)  # tag = (candidate < current)
        self.copy(candidate, current, predicated=True)
        self.set_tag_all()

    def relu(self, op: Operand, sign_row: int) -> None:
        """Zero every element whose sign bit is set (Sec. IV-D ReLU):
        ``1 + n`` cycles."""
        self.load_tag(sign_row)
        self.zero(op, predicated=True)
        self.set_tag_all()

    def selective_copy(self, src: Operand, dst: Operand, tag_row: int,
                       invert: bool = False) -> None:
        """Copy ``src`` to ``dst`` only where ``tag_row`` enables it."""
        self.load_tag(tag_row, invert=invert)
        self.copy(src, dst, predicated=True)
        self.set_tag_all()

    # ==================================================================
    # Compute Cache heritage ops (Sec. II-B): bit-parallel logicals,
    # equality comparison and search.
    # ==================================================================
    def logical_and(self, a: Operand, b: Operand, dst: Operand) -> None:
        """``dst = a AND b`` straight off the BL rail: ``n`` cycles."""
        self._check_width(a, b)
        self._check_width(a, dst)
        for k in range(a.nbits):
            bl, _ = self.fleet.sense(a.bit(k), b.bit(k))
            self.fleet.write_back(dst.bit(k), bl)
            self.cycles += 1

    def logical_nor(self, a: Operand, b: Operand, dst: Operand) -> None:
        """``dst = a NOR b`` straight off the BLB rail: ``n`` cycles."""
        self._check_width(a, b)
        self._check_width(a, dst)
        for k in range(a.nbits):
            _, blb = self.fleet.sense(a.bit(k), b.bit(k))
            self.fleet.write_back(dst.bit(k), blb)
            self.cycles += 1

    def logical_or(self, a: Operand, b: Operand, dst: Operand) -> None:
        """``dst = a OR b`` (NOR then a complement write-back): ``2n``."""
        self.logical_nor(a, b, dst)
        self.complement_copy(dst, dst)

    def logical_xor(self, a: Operand, b: Operand, dst: Operand) -> None:
        """``dst = a XOR b`` via the two rails and the NOR gate of
        Fig. 7: ``n`` cycles."""
        self._check_width(a, b)
        self._check_width(a, dst)
        for k in range(a.nbits):
            bl, blb = self.fleet.sense(a.bit(k), b.bit(k))
            self.fleet.write_back(dst.bit(k),
                                  self.periphery.xor_from_rails(bl, blb))
            self.cycles += 1

    def equality_compare(self, a: Operand, b: Operand,
                         dst_row: int) -> None:
        """Per-column ``a == b`` flag into ``dst_row``: ``n + 1`` cycles."""
        self._check_width(a, b)
        neq = self.fleet.new_plane()
        for k in range(a.nbits):
            bl, blb = self.fleet.sense(a.bit(k), b.bit(k))
            neq |= self.periphery.xor_from_rails(bl, blb)
            self.cycles += 1
        self.periphery.load_tag(neq, invert=True)
        self._cycle_store_tag(dst_row)

    def search(self, haystack: Operand, key: int, dst_row: int) -> None:
        """Flag columns whose value equals ``key``: ``n + 1`` cycles."""
        if key < 0 or key >= (1 << haystack.nbits):
            raise ArrayStateError(
                f"search key {key} does not fit {haystack.nbits} bits")
        mismatch = self.fleet.new_plane()
        for k in range(haystack.nbits):
            bl, blb = self.fleet.sense_single(haystack.bit(k))
            want_one = (key >> k) & 1
            mismatch |= blb if want_one else bl
            self.cycles += 1
        self.periphery.load_tag(mismatch, invert=True)
        self._cycle_store_tag(dst_row)

    def reduce_tree(self, base: Operand, segment: Operand, elements: int,
                    width: int) -> None:
        """Sum groups of ``elements`` adjacent bitlines (Fig. 5), in every
        array of the fleet at once. After the call, each group's total sits
        on the group's first bitline; other bitlines hold garbage."""
        if elements <= 0 or elements & (elements - 1):
            raise LayoutError(
                f"reduction element count must be a power of two, got "
                f"{elements}")
        steps = elements.bit_length() - 1
        final_bits = width + steps
        if base.nbits < final_bits:
            raise LayoutError(
                f"reduction base needs {final_bits} rows, got {base.nbits}")
        if segment.nbits < final_bits:
            raise LayoutError(
                f"reduction segment needs {final_bits} rows, got "
                f"{segment.nbits}")
        for step in range(steps):
            bits = width + step
            stride = 1 << step
            self.shift_copy(Operand(base.row, bits),
                            Operand(segment.row, bits), stride)
            self.add(Operand(base.row, bits), Operand(segment.row, bits),
                     Operand(base.row, bits + 1))

    def _cycle_move_plane(self, src_row: int, dst_row: int, stride: int,
                          group: int) -> None:
        """One cross-array hop cycle: every array's ``dst_row`` receives
        ``src_row`` from the array ``stride`` ahead in its reduction group
        (wrapping), fleet-wide. One wordline per cycle, matching
        ``CycleCosts.move`` at 1 cycle/bit."""
        fleet = self.fleet
        fleet.compute_cycles += 1
        fleet.move_plane(src_row, dst_row, stride, group)
        self.cycles += 1

    def move_across(self, src: Operand, dst: Operand, stride: int,
                    group: int) -> None:
        """Copy ``src`` from the array ``stride`` positions ahead in each
        ``group``-array reduction group into this array's ``dst``:
        ``src.nbits`` cycles (one hop per wordline)."""
        self._check_width(src, dst)
        for b in range(src.nbits):
            self._cycle_move_plane(src.bit(b), dst.bit(b), stride, group)

    def reduce_across_arrays(self, base: Operand, segment: Operand,
                             group: int, width: int) -> None:
        """Tree-reduce ``width``-bit partials held by ``group`` consecutive
        arrays into the group's first array (Sec. III-D cross-array step).

        Level ``s`` moves ``base`` from the array ``2**s`` ahead into
        ``segment`` (sense-amp pair at stride 1, bus/ring hops beyond) and
        adds it back into ``base``. Every level works at the fixed
        reduction width, so each costs ``move(width) + add(width)`` — the
        exact terms the analytic schedule charges per
        ``ReductionPlan`` hop. After the call the group total sits in the
        group's first array at ``base``; other arrays hold garbage.
        """
        if group < 2 or group & (group - 1):
            raise LayoutError(
                f"cross-array group must be a power of two >= 2, got "
                f"{group}")
        if self.fleet.n_arrays % group:
            raise LayoutError(
                f"fleet of {self.fleet.n_arrays} arrays does not divide "
                f"into reduction groups of {group}")
        if base.nbits < width + 1:
            raise LayoutError(
                f"cross-array base needs {width + 1} rows, got {base.nbits}")
        if segment.nbits < width:
            raise LayoutError(
                f"cross-array segment needs {width} rows, got "
                f"{segment.nbits}")
        for step in range(group.bit_length() - 1):
            stride = 1 << step
            self.move_across(Operand(base.row, width),
                             Operand(segment.row, width), stride, group)
            self.add(Operand(base.row, width), Operand(segment.row, width),
                     Operand(base.row, width + 1))

    # ------------------------------------------------------------------
    def _check_width(self, src: Operand, dst: Operand) -> None:
        if src.nbits != dst.nbits:
            raise LayoutError(
                f"operand widths must match: {src.nbits} vs {dst.nbits} bits")


#: The public surface recorded by the trace hook: every composite/host op
#: plus the two standalone tag primitives. Applied after the class body so
#: the methods above stay readable (no decorator on every def) and the
#: list doubles as the authoritative "what is a program step" registry for
#: repro.verify.
_TRACED_METHODS = (
    "write_values", "write_value_block", "read_values",
    "load_tag", "set_tag_all",
    "zero", "write_scalar", "copy", "complement_copy", "shift_copy",
    "add", "add_into", "sub", "sub_into", "multiply", "mac", "divide",
    "compare_ge", "max_update", "min_update", "relu", "selective_copy",
    "logical_and", "logical_nor", "logical_or", "logical_xor",
    "equality_compare", "search", "reduce_tree",
    "move_across", "reduce_across_arrays",
)

for _name in _TRACED_METHODS:
    setattr(FleetBitSerialUnit, _name,
            _traced(getattr(FleetBitSerialUnit, _name)))
del _name
