"""Shared-memory plane stores: packed bit planes other processes can see.

The persistent shard workers of :mod:`repro.engine.pool` only pay off if
the data-movement glue between parent and workers is not the bottleneck:
re-pickling image slices and weights per batch (the ``process`` driver's
cost model) serializes exactly the bytes the fleets are about to compute
on. This module supplies the storage side of the zero-copy answer —
POSIX shared memory (:mod:`multiprocessing.shared_memory`) with an
*explicit* segment lifecycle, behind two small abstractions:

* :class:`SharedSegment` — one named segment with create / attach /
  close / unlink semantics. Created segments are *owned* (closing them
  releases the name system-wide); attached segments are mappings into
  someone else's allocation. A process-local recycler keeps a bounded
  free list of owned segments so hot paths that allocate fleets per
  chunk (the functional layer engines) reuse mappings instead of paying
  ``shm_open``/``mmap`` per chunk.
* :class:`SharedPlaneStore` — :class:`~repro.engine.packed.PackedArrayFleet`
  whose uint64 word planes live inside a :class:`SharedSegment` instead
  of a private allocation. Same lockstep primitives, same cycle
  accounting, bit-identical behaviour (the plane ops never see the
  difference); the only new surface is the lifecycle — ``segment_name``
  to publish, :meth:`SharedPlaneStore.attach` to map the same planes
  from another process, ``close()`` to drop them.

Segment names are scoped: every segment this module creates is named
``{scope}-{pid}-{token}-{seq}``, where the scope defaults to ``repro``
and worker processes set a pool-specific scope via
:func:`set_segment_scope`. The scope is what makes crash cleanup
deterministic — a pool that loses a worker cannot ask it which plane
segments it had created, but it can (and does) sweep ``/dev/shm`` for
the worker's scope prefix (:func:`unlink_scope`).

Accounting invariant, pinned by the lifecycle tests: after a pool shuts
down — normally, via ``Server.close()``, after a worker crash, or after
a double ``close()`` — no segment created under its scope remains
linked, and :func:`shared_segment_stats` reports zero active segments in
every surviving process.
"""

from __future__ import annotations

import itertools
import os
import secrets
from multiprocessing import shared_memory

import numpy as np

from repro.common.errors import ArrayStateError
from repro.engine.packed import PackedArrayFleet

__all__ = [
    "SegmentStats",
    "SharedPlaneStore",
    "SharedSegment",
    "release_pooled_segments",
    "reset_shared_state",
    "set_segment_scope",
    "shared_segment_stats",
    "unlink_scope",
]

#: Where Linux exposes POSIX shared memory as files (the sweep target of
#: :func:`unlink_scope`; other platforms fall back to name-by-name
#: unlinking of whatever lifecycle owners recorded).
SHM_DIR = "/dev/shm"

#: Most owned-and-closed segments the process-local recycler keeps alive
#: for reuse before further closes unlink immediately.
RECYCLER_CAP = 16

#: Scope prefix for segments created by this process (workers override
#: it with their pool's scope so the parent can sweep after a crash).
_scope = "repro"
#: Collision guard: pid reuse must not collide with a leaked segment of
#: a dead process that had the same pid.
_TOKEN = secrets.token_hex(4)
_seq = itertools.count()

#: Open-mapping counts per segment name in this process (an owner and a
#: local attachment to the same segment both count) — the "nothing
#: leaked" ledger.
_active: dict[str, int] = {}
#: Owned, closed, still-linked segments kept for reuse, keyed by the
#: exact payload size they were created for.
_recycler: dict[int, list[shared_memory.SharedMemory]] = {}


def set_segment_scope(scope: str) -> None:
    """Prefix every segment this process creates from now on.

    Pool workers call this at startup with a per-worker scope derived
    from the pool's, so the parent can unlink a crashed worker's
    segments by prefix without knowing their names.
    """
    global _scope
    if not scope or "/" in scope:
        raise ArrayStateError(f"invalid segment scope {scope!r}")
    _scope = scope


def _new_name(scope: str | None = None) -> str:
    return f"{scope or _scope}-{os.getpid()}-{_TOKEN}-{next(_seq)}"


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without registering it for cleanup.

    Python <= 3.12 registers *attached* segments with the resource
    tracker as if this process had created them, so every attaching
    process would later try to unlink (or warn about) segments whose
    lifecycle the owner already controls. Ownership here is explicit —
    only the creator's registration should exist — so attachment
    briefly suppresses the tracker hook. (``SharedMemory(track=False)``
    is 3.13+; this is the documented workaround for earlier runtimes.)
    """
    try:  # pragma: no cover - private API may move
        from multiprocessing import resource_tracker
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
    except Exception:
        return shared_memory.SharedMemory(name=name, create=False)
    try:
        return shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = original


class SharedSegment:
    """One shared-memory segment with explicit create/attach/close/unlink.

    Construct via :meth:`create` (owner: closing releases the name
    system-wide, or returns the segment to the process-local recycler)
    or :meth:`attach` (mapping only: closing just drops this process's
    view). ``view()`` exposes the payload as a NumPy array; views must
    be dropped before ``close()`` (closing with live exports raises).
    """

    __slots__ = ("_shm", "nbytes", "owner", "_recycle", "_closed", "_pid")

    def __init__(self, shm: shared_memory.SharedMemory, nbytes: int,
                 owner: bool, recycle: bool):
        self._shm = shm
        self.nbytes = nbytes
        self.owner = owner
        self._recycle = recycle
        self._closed = False
        # Ownership is per-process: a forked child inherits the owner
        # object but must never unlink (or recycle) the parent's name.
        self._pid = os.getpid()
        _active[shm.name] = _active.get(shm.name, 0) + 1

    @classmethod
    def create(cls, nbytes: int, recycle: bool = False,
               scope: str | None = None) -> "SharedSegment":
        """Allocate (or recycle) an owned zero-filled segment."""
        if nbytes <= 0:
            raise ArrayStateError(
                f"shared segment must hold at least one byte, got {nbytes}")
        # A recycled segment keeps the name (and scope prefix) it was
        # born with, so explicit-scope requests — pool arenas, which a
        # crash sweep must find by prefix — always allocate fresh.
        pooled = None if scope is not None else _recycler.get(nbytes)
        if pooled:
            shm = pooled.pop()
            wipe = np.frombuffer(shm.buf, dtype=np.uint8, count=nbytes)
            wipe[:] = 0
            del wipe
        else:
            shm = shared_memory.SharedMemory(name=_new_name(scope),
                                             create=True, size=nbytes)
        return cls(shm, nbytes, owner=True, recycle=recycle)

    @classmethod
    def attach(cls, name: str, nbytes: int | None = None) -> "SharedSegment":
        """Map an existing segment by name (non-owning)."""
        try:
            shm = _attach_untracked(name)
        except FileNotFoundError:
            raise ArrayStateError(
                f"shared segment {name!r} does not exist (already "
                f"unlinked?)") from None
        if nbytes is not None and shm.size < nbytes:
            size = shm.size
            shm.close()
            raise ArrayStateError(
                f"shared segment {name!r} holds {size} bytes, "
                f"need {nbytes}")
        return cls(shm, nbytes if nbytes is not None else shm.size,
                   owner=False, recycle=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def view(self, dtype, shape, offset: int = 0) -> np.ndarray:
        """A writable NumPy window into the payload."""
        if self._closed:
            raise ArrayStateError(
                f"shared segment {self.name!r} is closed")
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return np.frombuffer(self._shm.buf, dtype=dtype, count=count,
                             offset=offset).reshape(shape)

    def close(self, unlink: bool | None = None) -> None:
        """Drop this mapping; owners also release (or recycle) the name.

        Idempotent. ``unlink=True`` forces an owner to unlink even when
        the segment was created recyclable; ``unlink=False`` keeps the
        name linked (handing ownership to whoever re-attaches).
        """
        if self._closed:
            return
        self._closed = True
        count = _active.get(self.name, 1) - 1
        if count:
            _active[self.name] = count
        else:
            _active.pop(self.name, None)
        if self._pid != os.getpid():
            # Forked child closing an inherited owner handle: drop the
            # mapping only — the creating process still owns the name.
            self._shm.close()
            return
        if self.owner and unlink is not False:
            if self._recycle and unlink is not True and _recycler_room():
                _recycler.setdefault(self.nbytes, []).append(self._shm)
                return
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already swept
                pass
            return
        self._shm.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def _recycler_room() -> bool:
    return sum(len(v) for v in _recycler.values()) < RECYCLER_CAP


def release_pooled_segments() -> int:
    """Unlink every recycled segment; returns how many were released.

    Pool workers call this between shutdown and exit, and the parent
    pool calls it when closing, so a drained pool leaves nothing in
    ``/dev/shm``.
    """
    released = 0
    for pooled in _recycler.values():
        for shm in pooled:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already swept
                pass
            released += 1
    _recycler.clear()
    return released


def reset_shared_state() -> None:
    """Forget shared-memory state inherited across a fork.

    A forked worker inherits the parent's recycler and active ledger by
    value; if it released them at exit (:func:`release_pooled_segments`
    unlinks by name) it would destroy segments the parent still owns
    and may hand out again. Pool workers call this before serving:
    inherited recycled mappings are unmapped — never unlinked — and the
    ledger starts empty so the worker only accounts for its own
    segments.
    """
    for pooled in _recycler.values():
        for shm in pooled:
            try:
                shm.close()
            except Exception:  # pragma: no cover - unmap best-effort
                pass
    _recycler.clear()
    _active.clear()


class SegmentStats(dict):
    """Segment accounting with a leak check.

    A plain dict (``stats["active"]``, ``stats["pooled"]`` keep working)
    plus :meth:`check`, which turns the snapshot into an actionable leak
    report — the shared-memory analogue of the verify package's shadow
    trackers.
    """

    def check(self) -> list[str]:
        """Leak report; empty when every segment is accounted for.

        A clean teardown (every store closed, every pool drained,
        :func:`release_pooled_segments` run) must leave no open
        mappings, no pooled spares and no on-disk segment files bearing
        this process tree's token. Anything else is reported as a
        human-readable problem string — tests assert ``check() == []``
        after every close path.
        """
        problems = []
        if self["active"]:
            names = ", ".join(sorted(self.get("active_names", ())))
            problems.append(
                f"{self['active']} segment mapping(s) still open: {names}")
        if self["pooled"]:
            problems.append(
                f"{self['pooled']} recycled segment(s) not released "
                f"(call release_pooled_segments())")
        for name in self.get("unswept", ()):
            problems.append(
                f"segment file {name!r} is linked in {SHM_DIR} but "
                f"neither open nor pooled (leaked by a crashed or "
                f"unswept owner)")
        return problems


def _unswept_segments(accounted: set[str]) -> list[str]:
    """On-disk segment files of this process tree minus ``accounted``.

    Every segment this process — or a forked pool worker, which inherits
    the token — creates carries ``-{pid}-{_TOKEN}-`` in its name, so a
    token scan of :data:`SHM_DIR` finds exactly our leftovers, whatever
    scope prefixes were in use, without touching other processes'
    segments.
    """
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux hosts
        return []
    marker = f"-{_TOKEN}-"
    return sorted(entry for entry in os.listdir(SHM_DIR)
                  if marker in entry and entry not in accounted)


def shared_segment_stats() -> SegmentStats:
    """Accounting for the lifecycle tests: open vs recycled segments.

    The returned :class:`SegmentStats` snapshot also carries the open
    mapping names and any unswept on-disk segment files, and can audit
    itself via :meth:`SegmentStats.check`.
    """
    pooled_names = {shm.name for spares in _recycler.values()
                    for shm in spares}
    accounted = set(_active) | pooled_names
    return SegmentStats(
        active=len(_active),
        pooled=sum(len(v) for v in _recycler.values()),
        active_names=sorted(_active),
        unswept=_unswept_segments(accounted))


def unlink_scope(scope: str) -> int:
    """Unlink every linked segment whose name starts with ``scope``.

    The crash path: a terminated worker cannot release its own plane
    segments, but every segment it created carries its scope prefix, so
    the parent sweeps them here. Returns how many names were released.

    Each swept name is also dropped from the resource tracker: the dead
    worker registered its created segments there but never lived to
    unregister them, and a supervised pool respawning workers would
    otherwise accumulate stale registrations (and shutdown warnings)
    across incarnations.
    """
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux hosts
        return 0
    swept = 0
    for entry in os.listdir(SHM_DIR):
        if entry.startswith(scope):
            try:
                os.unlink(os.path.join(SHM_DIR, entry))
                swept += 1
            except OSError:  # pragma: no cover - raced another closer
                pass
            try:  # pragma: no cover - private API may move
                from multiprocessing import resource_tracker
                resource_tracker.unregister(f"/{entry}", "shared_memory")
            except Exception:
                pass
    return swept


class SharedPlaneStore(PackedArrayFleet):
    """Packed uint64 bit planes living in a shared-memory segment.

    Behaviourally identical to :class:`~repro.engine.packed.PackedArrayFleet`
    — every lockstep primitive, the cycle accounting and the tail-word
    invariant are inherited unchanged; only the backing allocation of
    ``_words`` moves into a :class:`SharedSegment`, so another process
    can map the very same planes with :meth:`attach` instead of
    receiving a pickled copy. This is the store the pool driver's
    workers run their warm fleets on.

    Lifecycle: a store constructed normally *owns* its segment (created
    recyclable: ``close()`` returns it to the process-local free list,
    :func:`release_pooled_segments` unlinks it for good); a store built
    via :meth:`attach` only maps the owner's planes and never unlinks.
    After ``close()`` every primitive raises — a closed store must fail
    loudly, not compute on unmapped memory.
    """

    def __init__(self, n_arrays: int = 1, rows: int = 256, cols: int = 256,
                 *, attach_to: str | None = None):
        self._segment: SharedSegment | None = None
        self._attach_to = attach_to
        super().__init__(n_arrays, rows, cols)

    def _alloc_words(self) -> np.ndarray:
        shape = (self.n_arrays, self.rows, self.n_words)
        nbytes = int(np.prod(shape, dtype=np.int64)) * 8
        if self._attach_to is None:
            self._segment = SharedSegment.create(nbytes, recycle=True)
        else:
            self._segment = SharedSegment.attach(self._attach_to, nbytes)
        return self._segment.view(np.uint64, shape)

    @classmethod
    def attach(cls, name: str, n_arrays: int, rows: int = 256,
               cols: int = 256) -> "SharedPlaneStore":
        """Map the planes of an existing store (same geometry) by name."""
        return cls(n_arrays, rows, cols, attach_to=name)

    @property
    def segment_name(self) -> str:
        """The shared-memory name another process attaches to."""
        if self._segment is None:
            raise ArrayStateError("plane store is closed")
        return self._segment.name

    @property
    def owner(self) -> bool:
        """Whether closing this store releases the segment itself."""
        return self._segment is not None and self._segment.owner

    def _check_open(self) -> None:
        if self._segment is None:
            raise ArrayStateError(
                "plane store is closed; its shared segment is gone")

    def row_plane(self, row: int) -> np.ndarray:
        self._check_open()
        return super().row_plane(row)

    def _read_region(self, top_row: int, n_rows: int, col_offset: int,
                     n_cols: int) -> np.ndarray:
        self._check_open()
        return super()._read_region(top_row, n_rows, col_offset, n_cols)

    def _write_region(self, top_row: int, n_rows: int, col_offset: int,
                      bits: np.ndarray) -> None:
        self._check_open()
        super()._write_region(top_row, n_rows, col_offset, bits)

    def close(self, unlink: bool | None = None) -> None:
        """Release the mapping (idempotent); owners recycle or unlink."""
        if self._segment is None:
            return
        segment, self._segment = self._segment, None
        self._words = None
        segment.close(unlink=unlink)

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    @property
    def nbytes(self) -> int:
        if self._segment is None:
            raise ArrayStateError("plane store is closed")
        return self._segment.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("closed" if self._segment is None
                 else f"segment={self._segment.name!r}")
        return (f"{type(self).__name__}(n_arrays={self.n_arrays}, "
                f"rows={self.rows}, cols={self.cols}, {state})")
