"""Functional model of an 8KB compute-capable SRAM array.

The paper's arrays (Figure 3d) have 256 wordlines by 256 bitlines. Activating
two wordlines simultaneously performs a wired operation on every bitline in
the analog domain (Figure 2b):

* sensing the bit-line (``BL``) yields ``A AND B``;
* sensing the bit-line complement (``BLB``) yields ``(NOT A) AND (NOT B)``,
  i.e. ``A NOR B``.

This module models that behaviour digitally and bit-exactly. Word-line
under-drive (the 0.66 V read voltage that protects cells during multi-row
activation) only affects delay and energy, which are captured by
:mod:`repro.sram.energy`; functionally reads are non-destructive.

The array also counts how many *access* cycles (plain reads/writes) and
*compute* cycles (two-row activations) it performed, so the energy model can
charge 8.6 pJ / 15.4 pJ per 256-bitline cycle (22 nm numbers from Sec. V).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ArrayStateError

#: Geometry of the 8KB array used throughout the paper.
DEFAULT_ROWS = 256
DEFAULT_COLS = 256


class SRAMArray:
    """A single compute-capable SRAM array.

    Parameters
    ----------
    rows:
        Number of wordlines (default 256).
    cols:
        Number of bitlines (default 256). Each bitline is one bit-serial
        ALU slot.
    """

    def __init__(self, rows: int = DEFAULT_ROWS, cols: int = DEFAULT_COLS):
        if rows <= 0 or cols <= 0:
            raise ArrayStateError(f"array must be non-empty, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self._bits = np.zeros((rows, cols), dtype=np.uint8)
        self.access_cycles = 0
        self.compute_cycles = 0

    # ------------------------------------------------------------------
    # Plain SRAM behaviour (single wordline)
    # ------------------------------------------------------------------
    def read_row(self, row: int) -> np.ndarray:
        """Read one wordline; returns a copy of its 0/1 bit vector."""
        self._check_row(row)
        self.access_cycles += 1
        return self._bits[row].copy()

    def write_row(self, row: int, bits: np.ndarray,
                  mask: np.ndarray | None = None) -> None:
        """Write one wordline.

        ``mask`` models the per-column bit-line drivers gated by the tag
        latch (Figure 7): columns where ``mask == 0`` keep their old value.
        """
        self._check_row(row)
        bits = self._coerce_bits(bits)
        self.access_cycles += 1
        if mask is None:
            self._bits[row] = bits
        else:
            mask = self._coerce_bits(mask)
            self._bits[row] = np.where(mask, bits, self._bits[row])

    # ------------------------------------------------------------------
    # Compute behaviour (two simultaneous wordlines)
    # ------------------------------------------------------------------
    def sense(self, row_a: int, row_b: int) -> tuple[np.ndarray, np.ndarray]:
        """Activate two wordlines and sense both bit-line rails.

        Returns ``(bl, blb)`` where ``bl[i] = A[i] AND B[i]`` and
        ``blb[i] = A[i] NOR B[i]`` for every bitline ``i``, exactly as in
        Figure 2b. Reads are non-destructive (the silicon guarantees this
        via word-line under-drive; 20 fabricated test chips tolerate 64
        simultaneous rows, the architecture only ever uses two).
        """
        self._check_row(row_a)
        self._check_row(row_b)
        if row_a == row_b:
            raise ArrayStateError(
                f"compute sensing requires two distinct wordlines, got {row_a}")
        self.compute_cycles += 1
        a = self._bits[row_a]
        b = self._bits[row_b]
        bl = a & b
        blb = (1 - a) & (1 - b)
        return bl.copy(), blb.copy()

    def sense_single(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """Activate one wordline in compute mode (the other operand reads
        as all-ones on BL sensing, i.e. ``bl = A`` and ``blb = NOT A``).

        Used for moves and tag loads, which only need one operand row.
        """
        self._check_row(row)
        self.compute_cycles += 1
        a = self._bits[row]
        return a.copy(), (1 - a).copy()

    def write_back(self, row: int, bits: np.ndarray,
                   mask: np.ndarray | None = None) -> None:
        """Phase-2 write of a compute cycle (WWL activation).

        Does *not* count an extra cycle: the paper's compute cycle has a
        sensing phase and a write-back phase inside one clock.
        """
        self._check_row(row)
        bits = self._coerce_bits(bits)
        if mask is None:
            self._bits[row] = bits
        else:
            mask = self._coerce_bits(mask)
            self._bits[row] = np.where(mask, bits, self._bits[row])

    # ------------------------------------------------------------------
    # Test/host-side helpers (no cycle accounting; data arrives via TMU)
    # ------------------------------------------------------------------
    def load_bits(self, top_row: int, bits: np.ndarray,
                  col_offset: int = 0) -> None:
        """Bulk-store a bit matrix with its row 0 at ``top_row``.

        This is the host/TMU path used to initialise array contents; cycle
        costs for getting data into the array are charged by the transfer
        models, not here.
        """
        bits = np.atleast_2d(np.asarray(bits, dtype=np.uint8))
        n_rows, n_cols = bits.shape
        if top_row < 0 or top_row + n_rows > self.rows:
            raise ArrayStateError(
                f"rows [{top_row}, {top_row + n_rows}) outside array of "
                f"{self.rows} rows")
        if col_offset < 0 or col_offset + n_cols > self.cols:
            raise ArrayStateError(
                f"columns [{col_offset}, {col_offset + n_cols}) outside array "
                f"of {self.cols} columns")
        self._bits[top_row:top_row + n_rows,
                   col_offset:col_offset + n_cols] = bits

    def dump_bits(self, top_row: int, n_rows: int,
                  col_offset: int = 0, n_cols: int | None = None) -> np.ndarray:
        """Bulk-read a bit matrix (host/TMU path, no cycle accounting)."""
        if n_cols is None:
            n_cols = self.cols - col_offset
        if top_row < 0 or top_row + n_rows > self.rows:
            raise ArrayStateError(
                f"rows [{top_row}, {top_row + n_rows}) outside array of "
                f"{self.rows} rows")
        return self._bits[top_row:top_row + n_rows,
                          col_offset:col_offset + n_cols].copy()

    def reset_counters(self) -> None:
        """Zero the access/compute cycle counters."""
        self.access_cycles = 0
        self.compute_cycles = 0

    # ------------------------------------------------------------------
    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ArrayStateError(
                f"row {row} outside array of {self.rows} rows")

    def _coerce_bits(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.cols,):
            raise ArrayStateError(
                f"expected a row of {self.cols} bits, got shape {bits.shape}")
        if np.any(bits > 1):
            raise ArrayStateError("bit values must be 0 or 1")
        return bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SRAMArray(rows={self.rows}, cols={self.cols}, "
                f"access={self.access_cycles}, compute={self.compute_cycles})")
