"""Multi-socket sharding of the array fleet behind the Backend protocol.

The paper's throughput story is multi-socket: "Neural Cache throughput
scales linearly with the number of host CPUs" (Sec. VI-B), and Fig. 16 is
measured on a dual-socket node — two independent caches, each running the
full network over its own slice of the batch. The reproduction's
:class:`~repro.config.NeuralCacheConfig` already models ``sockets=2``;
this module makes a functional backend actually shard work that way.

:class:`ShardedBackend` splits a batch across ``shards`` sockets (one
fleet executor pass per shard, each on its own packed
:class:`~repro.engine.packed.PackedArrayFleet` by default), assigns
images **round-robin** — image ``i`` goes to shard ``i % shards``, the
arrival-order policy a serving frontend would use — and aggregates the
per-shard cycle reports.

The shard pool runs on a pluggable **driver** (``driver=``):

* ``serial`` (default) — shards execute one after another in-process,
  the reference the concurrent drivers must match;
* ``thread`` — one :class:`concurrent.futures.ThreadPoolExecutor`
  worker per shard (NumPy releases the GIL inside the hot lockstep
  kernels, so shard passes overlap);
* ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor`, one
  OS process per shard: the modeled socket parallelism becomes real
  wall-clock parallelism. Process workers require picklable work, which
  is why a shard's slice -> ``run_batch`` call is factored into the
  module-level :func:`execute_shard` over a frozen :class:`ShardWork`;
* ``pool`` — a persistent :class:`~repro.engine.pool.ShardWorkerPool`:
  workers forked once per backend lifetime, each holding a warm
  executor on shared-memory plane stores, with image payloads moving
  through shared arenas instead of pickles. Same results, none of the
  per-batch fork/serialization cost the ``process`` driver pays.

The design invariant, shared with systolic-array partitioning in
SCALE-Sim and BrainWave's weight-stationary sharding across FPGAs: the
sharded result must be *exactly* the unsharded result, on every driver.
Four properties make that hold here, and the property tests in
``tests/engine/test_sharding.py`` / ``tests/engine/test_shard_driver.py``
pin all of them for shard counts that do and do not divide the batch:

* every shard sees the same deterministic image stream positions the
  unsharded run would (the stream depends only on ``(network, seed)``,
  never on the shard layout);
* per-image cycle reports depend only on ``(network, weights, image)``,
  and report aggregation is a commutative sum, so any partition of the
  batch merges back to the identical total;
* drivers differ only in *where* :func:`execute_shard` runs — every
  driver executes the same :class:`ShardWork` units and collects their
  outcomes in shard order, so completion order cannot leak into results;
* the result's ``outputs`` are the globally-last image's outputs, which
  round-robin places at the tail of shard ``(batch - 1) % shards``.
"""

from __future__ import annotations

from concurrent import futures
from dataclasses import dataclass

from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.core.functional import CycleReport
from repro.engine.backend import (
    BackendResult,
    BatchOutcome,
    FleetExecutor,
    ShardReport,
    check_batch_size,
    deterministic_images,
)
from repro.nn.graph import Network

#: Accepted shard drivers, in the order the CLI documents them.
SHARD_DRIVERS: tuple[str, ...] = ("serial", "thread", "process", "pool")


@dataclass(frozen=True)
class ShardWork:
    """One shard's slice of a batch, as a self-contained unit of work.

    Everything :func:`execute_shard` needs travels inside — network,
    weights, images and the executor knobs — so the unit is picklable
    and a process-pool worker can run it without any shared state. The
    weights are resolved *once* by the backend and shipped to every
    shard (weight-stationary replication, BrainWave-style), so all
    shards compute with bit-identical filters.
    """

    #: Shard index within the sharded backend (0-based).
    shard: int
    network: Network
    #: The shard's round-robin slice, in stream order.
    images: tuple
    weights: object
    config: NeuralCacheConfig
    packed: bool
    batched: bool
    verify: bool
    seed: int
    #: Bit-plane sparsity skipping inside the shard's fleet (a scalar,
    #: so the unit stays O(1) to pickle beyond its images).
    sparsity: bool = False
    #: Shadow-state sanitizer override (None = env default).
    sanitize: bool | None = None
    #: Per-layer precision table (small frozen value; picklable).
    precision: object | None = None


@dataclass(frozen=True)
class ShardOutcome:
    """What one shard's :func:`execute_shard` call produced."""

    shard: int
    #: Images the round-robin assignment handed this shard.
    images: int
    outcome: BatchOutcome


def execute_shard(work: ShardWork) -> ShardOutcome:
    """Run one shard's slice as one (batched) fleet pass.

    Module-level on purpose: the process driver pickles ``work`` to a
    worker and this function by reference, so the same code path serves
    every driver — serial and thread call it directly, process calls it
    in a child. A fresh :class:`~repro.engine.backend.FleetExecutor` is
    built per call (they are stateless between batches), and with
    ``verify`` each worker builds its own golden executor, so no state
    is shared across concurrently-running shards.
    """
    if not work.images:
        # More shards than images: this socket idles.
        return ShardOutcome(shard=work.shard, images=0,
                            outcome=BatchOutcome(report=CycleReport(),
                                                 responses=(),
                                                 outputs=None, verified=0))
    executor = FleetExecutor(work.config, weights=work.weights,
                             seed=work.seed, verify=work.verify,
                             packed=work.packed, batched=work.batched,
                             sparsity=work.sparsity,
                             sanitize=work.sanitize,
                             precision=work.precision)
    outcome = executor.run_requests(work.network, list(work.images),
                                    work.weights)
    return ShardOutcome(shard=work.shard, images=len(work.images),
                        outcome=outcome)


class ShardedBackend:
    """A batch sharded across sockets, bit-exact with the unsharded run.

    ``shards`` defaults to ``config.sockets`` (the paper's dual-socket
    node). Each shard executes its round-robin slice as one fleet pass
    on its own plane-store fleet — packed uint64 words by default
    (``packed=False`` selects the unpacked byte-per-bit reference,
    registered as ``sharded-unpacked``).

    ``driver`` selects how the shard pool executes — ``serial``,
    ``thread``, ``process`` or ``pool`` (:data:`SHARD_DRIVERS`). The
    first three run the same :class:`ShardWork` units through
    :func:`execute_shard`; ``pool`` runs the equivalent round-robin
    lanes on a persistent :class:`~repro.engine.pool.ShardWorkerPool`
    forked eagerly here in the constructor. Every driver aggregates
    outcomes in shard order, so results and cycle reports are identical
    by construction; only wall-clock differs.

    Sharding slices the batch into whole images — never arrays — so a
    spanning layer's cross-array reduction groups (its
    ``arrays_per_conv`` consecutive arrays per output) always land
    intact inside one shard's fleet; no shard boundary can split a
    reduction tree.

    ``shards`` is deliberately independent of ``config.sockets``: the
    default models the paper's node, but ``shards=8`` on a 2-socket
    config emulates a multi-node cluster tier behind the same Backend
    API — each shard is one more independent cache running the full
    network over its slice.

    Pool-driver backends own OS resources (worker processes, shared
    arenas); :meth:`close` releases them, and the backend is a context
    manager for scoped use. The other drivers hold nothing, so
    ``close`` is a no-op for them.

    The pool driver is also supervised by default: ``reply_timeout_s``,
    ``max_retries`` and ``supervise`` pass straight through to
    :class:`~repro.engine.pool.ShardWorkerPool`, whose self-healing
    (respawn + re-dispatch, degradation) this backend surfaces via
    :meth:`recovery_events` and ``ShardReport.recoveries``.
    ``fault_plan`` arms the chaos hooks in the pool workers; it is
    rejected on the other drivers, which have no injection points.

    ``run`` returns the same :class:`~repro.engine.backend.BackendResult`
    surface as the unsharded fleet backends, plus a ``shard_reports``
    breakdown so ``summary()`` shows per-socket cycle totals — the
    functional side of the analytic model's linear socket scaling.
    ``run_requests`` is the serving entry point: explicit images in,
    per-image responses out, arrival order preserved across shards.
    """

    def __init__(self, config: NeuralCacheConfig | None = None,
                 shards: int | None = None, packed: bool = True,
                 weights=None, seed: int = 0, verify: bool = True,
                 batched: bool = True, driver: str = "serial",
                 reply_timeout_s: float = 60.0, max_retries: int = 2,
                 supervise: bool = True, fault_plan=None,
                 sparsity: bool = False, sanitize: bool | None = None,
                 precision=None):
        self.config = config if config is not None else NeuralCacheConfig()
        if shards is None:
            shards = self.config.sockets
        if shards <= 0:
            raise SimulationError(
                f"shard count must be positive, got {shards}")
        if driver not in SHARD_DRIVERS:
            raise SimulationError(
                f"unknown shard driver {driver!r}; available: "
                f"{', '.join(SHARD_DRIVERS)}")
        if fault_plan is not None and driver != "pool":
            raise SimulationError(
                "fault_plan software faults hook the pool driver's "
                f"workers; driver {driver!r} has no injection points "
                "(use hardware_faults() for array-level faults)")
        self.shards = shards
        self.packed = packed
        self.weights = weights
        self.seed = seed
        self.verify = verify
        #: Batch-in-fleet execution inside each shard: a shard's whole
        #: round-robin slice runs as one fleet pass per layer (the
        #: per-image loop remains as ``batched=False``).
        self.batched = batched
        #: How the shard pool executes: serial / thread / process / pool.
        self.driver = driver
        #: Bit-plane sparsity skipping in every shard's fleet.
        self.sparsity = sparsity
        #: Shadow-state sanitizer override shipped to every shard.
        self.sanitize = sanitize
        #: Per-layer precision table shipped to every shard.
        self.precision = precision
        self.name = "sharded" if packed else "sharded-unpacked"
        #: Template executor: resolves weights/golden/default network
        #: exactly like each shard's worker will.
        self._template = FleetExecutor(self.config, weights=weights,
                                       seed=seed, verify=verify,
                                       packed=packed, batched=batched,
                                       sparsity=sparsity,
                                       sanitize=sanitize,
                                       precision=precision)
        #: Most-recently-used resolved weights per network (same bounded
        #: id()-keyed pattern as the analytic simulator cache). Stable
        #: weight identity across batches is what lets the persistent
        #: pool broadcast a program once and reuse it every batch.
        self._weights_cache: dict[int, tuple[Network, object]] = {}
        self._pool = None
        #: Recovery events the pool driver reported, in order. The
        #: latest batch's slice also lands on its ShardReports.
        self._recoveries: list = []
        if driver == "pool":
            # Eager fork, before any caller can have started threads
            # (the serving executor does): the pool lives as long as
            # the backend, which is the whole point of the driver.
            from repro.engine.pool import ShardWorkerPool
            self._pool = ShardWorkerPool(shards, self.config,
                                         packed=packed, batched=batched,
                                         verify=verify, seed=seed,
                                         reply_timeout_s=reply_timeout_s,
                                         max_retries=max_retries,
                                         supervise=supervise,
                                         fault_plan=fault_plan,
                                         sparsity=sparsity,
                                         sanitize=sanitize,
                                         precision=precision)

    WEIGHTS_CACHE_SIZE = 4

    def _weights_for(self, network: Network):
        """Resolved weights with stable identity across batches."""
        if self.weights is not None:
            return self.weights
        key = id(network)
        entry = self._weights_cache.pop(key, None)
        if entry is None or entry[0] is not network:
            entry = (network, self._template.weights_for(network))
        self._weights_cache[key] = entry    # re-insert = most recent
        while len(self._weights_cache) > self.WEIGHTS_CACHE_SIZE:
            self._weights_cache.pop(next(iter(self._weights_cache)))
        return entry[1]

    # -- work construction -------------------------------------------------
    def shard_works(self, network: Network, images,
                    weights=None) -> list[ShardWork]:
        """The picklable per-shard work units for an image stream.

        Image ``i`` goes to shard ``i % shards`` (round-robin). Exposed
        so tests and tools can inspect exactly what a driver would
        execute.
        """
        if weights is None:
            weights = self._weights_for(network)
        images = list(images)
        return [ShardWork(shard=k, network=network,
                          images=tuple(images[k::self.shards]),
                          weights=weights, config=self.config,
                          packed=self.packed, batched=self.batched,
                          verify=self.verify, seed=self.seed,
                          sparsity=self.sparsity, sanitize=self.sanitize,
                          precision=self.precision)
                for k in range(self.shards)]

    def _execute(self, works: list[ShardWork]) -> list[ShardOutcome]:
        """Run the shard pool on the configured driver, in shard order.

        Empty works (``shards > len(images)``) are never submitted to a
        concurrent pool — :func:`execute_shard` synthesizes their idle
        outcomes locally, so idle shards cost neither a worker slot nor
        a pickle round-trip.
        """
        if self.driver == "serial":
            return [execute_shard(work) for work in works]
        busy = [work for work in works if work.images]
        if not busy:
            return [execute_shard(work) for work in works]
        pool_cls = (futures.ThreadPoolExecutor if self.driver == "thread"
                    else futures.ProcessPoolExecutor)
        with pool_cls(max_workers=len(busy)) as pool:
            # Executor.map preserves submission (= shard) order, so the
            # aggregation below is independent of completion order.
            executed = list(pool.map(execute_shard, busy))
        done = iter(executed)
        return [next(done) if work.images else execute_shard(work)
                for work in works]

    def _run_shards(self, network: Network, images, weights
                    ) -> tuple[list[ShardOutcome], CycleReport, int,
                               dict | None, tuple]:
        """Execute the stream; merge outcomes in shard order.

        The one aggregation loop both surfaces share: merged cycle
        report, summed verification count, the globally-last image's
        outputs — which round-robin places at the tail of shard
        ``(len(images) - 1) % shards``, so they match the unsharded
        run's — and the recovery events the pool driver took while
        executing this batch (empty elsewhere).
        """
        events: tuple = ()
        if self._pool is not None:
            outcomes = self._pool.run(network, images, weights)
            events = self._pool.pop_recovery_events()
            self._recoveries.extend(events)
        else:
            outcomes = self._execute(self.shard_works(network, images,
                                                      weights))
        total = CycleReport()
        verified = 0
        outputs = None
        last_shard = (len(images) - 1) % self.shards
        for result in outcomes:
            total = total.merged(result.outcome.report)
            verified += result.outcome.verified
            if result.images and result.shard == last_shard:
                outputs = result.outcome.outputs
        return outcomes, total, verified, outputs, events

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release the driver's OS resources (idempotent).

        Only the pool driver holds any — its persistent workers and the
        shared arenas. The futures drivers build and drain their pools
        per batch, and serial holds nothing.
        """
        if self._pool is not None:
            self._pool.close()

    def worker_pids(self) -> tuple[int, ...]:
        """The pool driver's worker PIDs (empty for other drivers).

        Stable PIDs across consecutive batches are the observable proof
        that the pool never re-forks — the acceptance test reads them.
        """
        if self._pool is None:
            return ()
        return self._pool.worker_pids()

    def recovery_events(self) -> tuple:
        """Every self-healing action the pool driver has taken so far.

        :class:`~repro.engine.pool.RecoveryEvent` records, in order,
        across all batches of this backend's lifetime — the chaos tests'
        proof that a kill was actually survived (the per-batch slice
        also lands on :meth:`run`'s ``ShardReport.recoveries``). Empty
        on healthy runs and on every non-pool driver.
        """
        return tuple(self._recoveries)

    def __enter__(self) -> "ShardedBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- the Backend surface ----------------------------------------------
    def run(self, network: Network, batch_size: int = 1) -> BackendResult:
        check_batch_size(batch_size, self.name)
        weights = self._weights_for(network)
        images = deterministic_images(network, weights, self.seed,
                                      batch_size)
        outcomes, total, verified, outputs, events = self._run_shards(
            network, images, weights)
        shard_reports = tuple(
            ShardReport(shard=result.shard, images=result.images,
                        report=result.outcome.report,
                        recoveries=tuple(str(event) for event in events
                                         if event.shard == result.shard))
            for result in outcomes)
        return BackendResult(
            backend=self.name, network=network.name, batch_size=batch_size,
            report=total, outputs=outputs, verified_images=verified,
            verify=self.verify, shard_reports=shard_reports)

    def run_requests(self, network: Network, images) -> BatchOutcome:
        """Serving entry point: explicit images, responses in arrival
        order.

        The stream is sharded round-robin exactly like :meth:`run`'s
        deterministic batch, executed on the configured driver, and the
        per-shard responses are interleaved back so ``responses[i]`` is
        image ``i``'s network output — regardless of shard count, driver
        or completion order.
        """
        images = list(images)
        if not images:
            return BatchOutcome(report=CycleReport(), responses=(),
                                outputs=None, verified=0)
        weights = self._weights_for(network)
        outcomes, total, verified, outputs, _ = self._run_shards(
            network, images, weights)
        responses: list = [None] * len(images)
        for result in outcomes:
            # Inverse of the round-robin slice images[shard::shards].
            for j, response in enumerate(result.outcome.responses):
                responses[j * self.shards + result.shard] = response
        return BatchOutcome(report=total, responses=tuple(responses),
                            outputs=outputs, verified=verified)

    def default_network(self) -> Network:
        """Same verification-scale default as the unsharded fleet."""
        return self._template.default_network()
