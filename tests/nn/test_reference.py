"""Tests for the golden quantized executor.

The quantized conv accumulator is cross-validated against an independent
dense float convolution (scipy-free direct loop on dequantized values),
so the "golden" path is itself anchored to textbook convolution.
"""

import numpy as np
import pytest

from repro.common.errors import QuantizationError, ShapeError
from repro.nn import (
    AvgPool,
    Concat,
    Conv2D,
    FullyConnected,
    MaxPool,
    Network,
    QuantizedTensor,
    ReferenceExecutor,
    conv_accumulate,
    initialise_weights,
)
from repro.nn.reference import avgpool_quantized, maxpool_quantized, pad_input

RNG = np.random.default_rng(99)


def float_conv(x, w, stride, padding):
    """Naive direct convolution on real arrays (independent oracle)."""
    r, s, c, m = w.shape
    if padding == "same":
        from repro.nn.layers import same_padding_offsets
        top, bottom = same_padding_offsets(x.shape[0], r, stride)
        left, right = same_padding_offsets(x.shape[1], s, stride)
        x = np.pad(x, ((top, bottom), (left, right), (0, 0)))
    e = (x.shape[0] - r) // stride + 1
    f = (x.shape[1] - s) // stride + 1
    out = np.zeros((e, f, m))
    for i in range(e):
        for j in range(f):
            window = x[i * stride:i * stride + r, j * stride:j * stride + s, :]
            out[i, j, :] = np.tensordot(window, w, axes=([0, 1, 2], [0, 1, 2]))
    return out


class TestConvAccumulate:
    @pytest.mark.parametrize("stride,padding", [
        (1, "valid"), (1, "same"), (2, "valid"), (2, "same"),
    ])
    def test_matches_float_convolution(self, stride, padding):
        x_real = RNG.uniform(0, 6, (9, 9, 4))
        w_real = RNG.normal(0, 0.2, (3, 3, 4, 5))
        x = QuantizedTensor.from_real(x_real)
        w = QuantizedTensor.from_real(w_real)
        acc = conv_accumulate(x.data, x.params.zero_point, w.data,
                              w.params.zero_point, stride, padding)
        real_acc = acc * (x.params.scale * w.params.scale)
        oracle = float_conv(x.dequantize(), w.dequantize(), stride, padding)
        assert real_acc.shape == oracle.shape
        assert np.allclose(real_acc, oracle, atol=1e-9)

    def test_asymmetric_kernel(self):
        x = QuantizedTensor.from_real(RNG.uniform(0, 6, (7, 7, 3)))
        w = QuantizedTensor.from_real(RNG.normal(0, 0.2, (1, 7, 3, 2)))
        acc = conv_accumulate(x.data, x.params.zero_point, w.data,
                              w.params.zero_point, 1, "same")
        assert acc.shape == (7, 7, 2)

    def test_padding_contributes_zero(self):
        """A window fully in padding must accumulate exactly zero."""
        x = np.full((1, 1, 1), 77, dtype=np.uint8)  # zero point == 77
        w = np.full((3, 3, 1, 1), 5, dtype=np.uint8)
        acc = conv_accumulate(x, 77, w, 3, 1, "same")
        # The (x - zp) term is zero everywhere, so all accs are zero.
        assert np.all(acc == 0)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            conv_accumulate(np.zeros((4, 4, 3), dtype=np.uint8), 0,
                            np.zeros((3, 3, 2, 1), dtype=np.uint8), 0,
                            1, "valid")

    def test_bad_rank_rejected(self):
        with pytest.raises(ShapeError):
            conv_accumulate(np.zeros((4, 4), dtype=np.uint8), 0,
                            np.zeros((3, 3, 1, 1), dtype=np.uint8), 0,
                            1, "valid")


class TestPooling:
    def test_maxpool_matches_numpy(self):
        x = RNG.integers(0, 256, (8, 8, 3)).astype(np.uint8)
        out = maxpool_quantized(x, (2, 2), 2, "valid")
        expected = x.reshape(4, 2, 4, 2, 3).max(axis=(1, 3))
        assert np.array_equal(out, expected)

    def test_avgpool_floor_division(self):
        x = np.array([[[1], [2]], [[3], [5]]], dtype=np.uint8)
        out = avgpool_quantized(x, (2, 2), 1, "valid")
        assert out[0, 0, 0] == (1 + 2 + 3 + 5) // 4

    def test_avgpool_same_counts_valid_taps_only(self):
        x = np.full((3, 3, 1), 100, dtype=np.uint8)
        out = avgpool_quantized(x, (3, 3), 1, "same")
        # Every window averages only in-bounds 100s -> exactly 100.
        assert np.all(out == 100)

    def test_pad_input_valid_is_noop(self):
        x = RNG.integers(0, 256, (5, 5, 2)).astype(np.uint8)
        assert pad_input(x, (3, 3), 1, "valid", fill=0) is x


class TestNetworkExecution:
    def make_net(self):
        net = Network(name="t")
        x = net.add_input("in", (10, 10, 3))
        x = net.add("c1", Conv2D(8, (3, 3), padding="same"), x)
        a = net.add("b0", Conv2D(4, (1, 1)), x)
        b = net.add("b1", Conv2D(4, (3, 3)), x)
        x = net.add("cat", Concat(), (a, b))
        x = net.add("mp", MaxPool((2, 2), stride=2), x)
        x = net.add("ap", AvgPool((5, 5), padding="valid"), x)
        net.add("fc", FullyConnected(7), x)
        return net

    def test_runs_and_shapes(self):
        net = self.make_net()
        weights = initialise_weights(net, seed=1)
        image = QuantizedTensor.from_real(RNG.uniform(0, 6, (10, 10, 3)),
                                          weights.input_params)
        results = ReferenceExecutor(net, weights).run(image)
        assert results["cat"].shape == (10, 10, 8)
        assert results["fc"].shape == (1, 1, 7)

    def test_deterministic(self):
        net = self.make_net()
        weights = initialise_weights(net, seed=1)
        image = QuantizedTensor.from_real(RNG.uniform(0, 6, (10, 10, 3)),
                                          weights.input_params)
        a = ReferenceExecutor(net, weights).run_output(image)
        b = ReferenceExecutor(net, weights).run_output(image)
        assert np.array_equal(a.data, b.data)

    def test_relu_makes_outputs_at_least_zero_point(self):
        net = Network(name="r")
        x = net.add_input("in", (6, 6, 2))
        net.add("c", Conv2D(3, (3, 3), relu=True), x)
        weights = initialise_weights(net, seed=3)
        image = QuantizedTensor.from_real(RNG.uniform(0, 6, (6, 6, 2)),
                                          weights.input_params)
        out = ReferenceExecutor(net, weights).run_output(image)
        assert out.data.min() >= weights.activation_params.zero_point

    def test_input_shape_checked(self):
        net = self.make_net()
        weights = initialise_weights(net)
        bad = QuantizedTensor.from_real(RNG.uniform(0, 6, (4, 4, 3)),
                                        weights.input_params)
        with pytest.raises(ShapeError):
            ReferenceExecutor(net, weights).run(bad)

    def test_missing_weights_rejected(self):
        net = self.make_net()
        weights = initialise_weights(net)
        del weights.conv_weights["fc"]
        image = QuantizedTensor.from_real(RNG.uniform(0, 6, (10, 10, 3)),
                                          weights.input_params)
        with pytest.raises(QuantizationError):
            ReferenceExecutor(net, weights).run(image)


class TestInitialiseWeights:
    def test_covers_every_conv(self):
        net = self.tiny()
        weights = initialise_weights(net)
        assert set(weights.conv_weights) == {"c", "fc"}

    def test_seed_reproducibility(self):
        net = self.tiny()
        a = initialise_weights(net, seed=5)
        b = initialise_weights(net, seed=5)
        c = initialise_weights(net, seed=6)
        assert np.array_equal(a.conv_weights["c"].filters.data,
                              b.conv_weights["c"].filters.data)
        assert not np.array_equal(a.conv_weights["c"].filters.data,
                                  c.conv_weights["c"].filters.data)

    @staticmethod
    def tiny():
        net = Network(name="tiny")
        x = net.add_input("in", (4, 4, 2))
        x = net.add("c", Conv2D(2, (3, 3)), x)
        x = net.add("ap", AvgPool((4, 4), padding="valid"), x)
        net.add("fc", FullyConnected(3), x)
        return net
