"""Persistent shard workers: warm executors behind shared-memory arenas.

The ``process`` shard driver pays two costs per batch that have nothing
to do with computing: it re-forks a ``ProcessPoolExecutor`` (pool
spin-up), and it pickles every image slice and the full weight set
through :class:`~repro.engine.sharding.ShardWork` (serialization of the
very bytes the fleets are about to compute on). Both costs sit on the
serving path, where they recur per coalesced batch.

:class:`ShardWorkerPool` removes both. Workers are forked **once per
backend lifetime** and each holds warm program state — the network, the
resolved weights, the golden executor when verification is on, and a
:class:`~repro.engine.backend.FleetExecutor` whose packed uint64 bit
planes live in shared-memory segments
(:class:`~repro.engine.shared.SharedPlaneStore`). Per batch, the parent
writes the image payloads into a shared **input arena**, sends each
worker a :class:`PoolShardWork` that names the arena and the worker's
round-robin lane (``start``/``stride``/``batch`` arithmetic — no index
lists, no arrays), and reads the responses back out of a shared
**output arena**. The only bytes that cross the pipes are the O(1) work
descriptors, the per-shard cycle reports, and (for the one shard that
owns the globally-last image) the small per-node outputs dict.

Arena layout: one fixed-size slot per image, ``16-byte quantization
header + payload`` (`~repro.nn.tensor.QuantParams` as ``scale: f8,
zero: i8``), slots aligned to 16 bytes. Image ``i`` occupies slot ``i``
in both arenas, so shard ``k`` touches exactly the slots
``k, k+shards, ...`` — the same round-robin assignment every other
driver uses, which is what keeps the pool bit-exact and
shard-report-identical to the serial reference.

Lifecycle is explicit and owned by the pool: the parent owns both
arenas (created under the pool's segment scope, grown by powers of two,
unlinked on close); each worker scopes its plane segments under the
pool's scope too, so after a **crash** the parent can terminate the
remaining workers and sweep every segment the pool ever created by
prefix (:func:`~repro.engine.shared.unlink_scope`) without asking the
dead worker what it had allocated. Normal shutdown drains the workers
(they release their recycled plane segments themselves) and then sweeps
anyway; ``close()`` is idempotent.
"""

from __future__ import annotations

import os
import secrets
import threading
import warnings
from dataclasses import dataclass
from multiprocessing import get_context

import numpy as np

from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.engine.backend import BatchOutcome, FleetExecutor
from repro.engine.shared import (
    SharedSegment,
    release_pooled_segments,
    reset_shared_state,
    set_segment_scope,
    unlink_scope,
)
from repro.nn.graph import Network
from repro.nn.tensor import QuantParams, QuantizedTensor

__all__ = ["PoolShardWork", "ShardWorkerPool"]

#: Per-image arena header: the image's quantization parameters. 16 bytes,
#: so slots stay 16-byte aligned without padding games.
_PARAM_DTYPE = np.dtype([("scale", "<f8"), ("zero", "<i8")])

#: Slot alignment (and header size) in bytes.
_ALIGN = 16


def _slot_size(payload_nbytes: int) -> int:
    """One arena slot: header + payload, rounded up to the alignment."""
    raw = _ALIGN + payload_nbytes
    return (raw + _ALIGN - 1) // _ALIGN * _ALIGN


def _write_slot(buf: np.ndarray, slot: int, slot_size: int,
                tensor: QuantizedTensor) -> None:
    """Serialize one image into its arena slot (header + raw uint8)."""
    base = slot * slot_size
    header = buf[base:base + _ALIGN].view(_PARAM_DTYPE)
    header["scale"] = tensor.params.scale
    header["zero"] = tensor.params.zero_point
    payload = tensor.data.reshape(-1)
    buf[base + _ALIGN:base + _ALIGN + payload.size] = payload


def _read_slot(buf: np.ndarray, slot: int, slot_size: int,
               shape: tuple) -> QuantizedTensor:
    """Materialize one image from its arena slot (copies out)."""
    base = slot * slot_size
    header = buf[base:base + _ALIGN].view(_PARAM_DTYPE)
    params = QuantParams(scale=float(header["scale"][0]),
                         zero_point=int(header["zero"][0]))
    count = int(np.prod(shape, dtype=np.int64))
    data = buf[base + _ALIGN:base + _ALIGN + count].reshape(shape).copy()
    return QuantizedTensor(data=data, params=params)


@dataclass(frozen=True)
class PoolShardWork:
    """One shard's lane through the arenas — O(1) bytes, no arrays.

    The pool-driver counterpart of
    :class:`~repro.engine.sharding.ShardWork`: where that unit carries
    its image slice (and weights) by value, this one carries only the
    arena segment names and the round-robin arithmetic
    ``slots = range(shard, batch, stride)``. Its pickle size is
    therefore independent of batch size and image resolution — the
    regression test pins that, because any array sneaking in here
    silently reintroduces the per-batch serialization the pool exists
    to remove.
    """

    #: Shard index, which is also the first slot of the shard's lane.
    shard: int
    #: Total images in the staged batch (slots ``0..batch-1``).
    batch: int
    #: Slot stride of the lane (= the pool's shard count).
    stride: int
    #: Shared-memory segment names of the staged arenas.
    input_segment: str
    output_segment: str
    #: Per-image payload geometry (fixes the slot size on both sides).
    input_shape: tuple
    output_shape: tuple
    #: Whether this shard must ship the per-node outputs dict back over
    #: the pipe (true only for the shard owning the globally-last image).
    want_outputs: bool

    @property
    def count(self) -> int:
        """Images on this shard's lane."""
        return len(range(self.shard, self.batch, self.stride))


class _WorkerState:
    """Everything a pool worker keeps warm between batches."""

    def __init__(self):
        self.network = None
        self.weights = None
        self.executor = None
        self.golden = None
        #: Arena attachments cached by role, keyed by segment name —
        #: re-attach only when the parent grew (renamed) an arena.
        self.arenas: dict[str, SharedSegment] = {}

    def load_program(self, network, weights, config, packed, batched,
                     verify, seed) -> None:
        """(Re)build the warm executor for a broadcast program.

        ``packed=True`` becomes ``packed="shared"`` here: the worker's
        fleets allocate their word planes on
        :class:`~repro.engine.shared.SharedPlaneStore` segments (scoped
        to this worker, recycled across layer chunks), which is the
        zero-copy tentpole — plane state lives in mappable segments,
        not private heap.
        """
        self.network = network
        self.weights = weights
        self.executor = FleetExecutor(
            config, weights=weights, seed=seed, verify=verify,
            packed="shared" if packed else False, batched=batched)
        self.golden = self.executor.golden_for(network, weights)

    def _arena(self, role: str, name: str) -> SharedSegment:
        # Pop first, re-cache only on success: a failed attach must not
        # leave a closed (or stale) segment behind as the cache entry.
        cached = self.arenas.pop(role, None)
        if cached is not None:
            if cached.name == name:
                self.arenas[role] = cached
                return cached
            cached.close()
        segment = SharedSegment.attach(name)
        self.arenas[role] = segment
        return segment

    def run(self, work: PoolShardWork):
        """Execute one lane: arena in, warm executor, arena out."""
        if self.executor is None:
            raise SimulationError("pool worker has no program loaded")
        in_slot = _slot_size(int(np.prod(work.input_shape,
                                         dtype=np.int64)))
        out_slot = _slot_size(int(np.prod(work.output_shape,
                                          dtype=np.int64)))
        slots = range(work.shard, work.batch, work.stride)
        in_buf = self._arena("in", work.input_segment).view(
            np.uint8, (work.batch * in_slot,))
        images = [_read_slot(in_buf, slot, in_slot, work.input_shape)
                  for slot in slots]
        del in_buf
        outcome = self.executor.run_requests(self.network, images,
                                             self.weights, self.golden)
        out_buf = self._arena("out", work.output_segment).view(
            np.uint8, (work.batch * out_slot,))
        for slot, response in zip(slots, outcome.responses):
            _write_slot(out_buf, slot, out_slot, response)
        del out_buf
        outputs = outcome.outputs if work.want_outputs else None
        return len(images), outcome.report, outcome.verified, outputs

    def close(self) -> None:
        for segment in self.arenas.values():
            try:
                segment.close()
            except Exception:  # pragma: no cover - shutdown best-effort
                pass
        self.arenas.clear()


def _worker_main(conn, scope: str) -> None:
    """A pool worker's whole life: scope, serve messages, clean up."""
    set_segment_scope(scope)
    # The fork copied the parent's recycler/ledger; forget it, or this
    # worker's exit-time release would unlink names the parent owns.
    reset_shared_state()
    state = _WorkerState()
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:  # pragma: no cover - parent vanished
                break
            kind = message[0]
            if kind == "close":
                break
            try:
                if kind == "program":
                    state.load_program(*message[1:])
                    conn.send(("ok",))
                elif kind == "run":
                    conn.send(("done", *state.run(message[1])))
                else:
                    conn.send(("error", f"unknown message {kind!r}"))
            except Exception as exc:
                # Report-and-continue: a failed batch must not take the
                # warm worker (and its segments) down with it.
                try:
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
                except Exception:  # pragma: no cover - pipe gone too
                    break
    finally:
        state.close()
        release_pooled_segments()
        conn.close()


class ShardWorkerPool:
    """A long-lived pool of warm shard workers over shared arenas.

    Spawned eagerly at construction (one fork per shard, before any
    caller can have started threads), reused across every
    ``run``/``run_requests`` batch of its owning backend, and shut down
    exactly once — by :meth:`close`, which the backend's own ``close``
    (and the serving layer's ``Server.close(close_backends=True)``)
    calls.

    Crash containment: if a worker dies mid-batch, the parent
    terminates the remaining workers, unlinks both arenas, sweeps every
    segment under the pool's scope, and raises
    :class:`~repro.common.errors.SimulationError`. The pool is dead
    afterwards — a half-crashed pool must fail loudly, not limp. A
    worker-*reported* error is gentler: the replies of every other
    shard in the round are drained first (keeping the pipes level), the
    error raises, and the pool keeps serving.

    Platform: workers are forked (they inherit the program objects and
    the arena handles by address), so the pool driver needs the ``fork``
    start method — POSIX only, and unsafe to construct after the owner
    process has started threads. Construction raises on platforms
    without fork and warns if extra threads are already running.
    """

    def __init__(self, shards: int, config: NeuralCacheConfig,
                 packed: bool = True, batched: bool = True,
                 verify: bool = True, seed: int = 0):
        if shards <= 0:
            raise SimulationError(
                f"shard count must be positive, got {shards}")
        self.shards = shards
        self.config = config
        self.packed = packed
        self.batched = batched
        self.verify = verify
        self.seed = seed
        #: Every segment this pool's parent or workers create carries
        #: this prefix — the crash-sweep handle.
        self.scope = f"repro-pool-{os.getpid()}-{secrets.token_hex(4)}"
        self._program: tuple | None = None
        self._input: SharedSegment | None = None
        self._output: SharedSegment | None = None
        self._closed = False
        # Fork eagerly: workers must exist before the owner's process
        # ever starts threads (the serving executor does), and eager
        # spawn is what "no re-fork per batch" means. Fork is required
        # — workers inherit the program objects and arena handles — so
        # the pool driver is POSIX-only (Linux/macOS).
        try:
            context = get_context("fork")
        except ValueError:
            raise SimulationError(
                "the pool shard driver needs the fork start method, "
                "which this platform does not support; use "
                "driver='process' instead") from None
        if threading.active_count() > 1:
            warnings.warn(
                "ShardWorkerPool forks while this process already runs "
                f"{threading.active_count() - 1} extra thread(s); "
                "construct pool-driver backends before starting any "
                "threads (forking a multithreaded process is unsafe)",
                RuntimeWarning, stacklevel=3)
        self._conns = []
        self._workers = []
        for k in range(shards):
            parent_conn, child_conn = context.Pipe()
            worker = context.Process(
                target=_worker_main,
                args=(child_conn, f"{self.scope}-w{k}"),
                name=f"repro-shard-worker-{k}", daemon=True)
            worker.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._workers.append(worker)

    # -- plumbing ----------------------------------------------------------
    def _check_alive(self) -> None:
        if self._closed:
            raise SimulationError("shard worker pool is closed")

    def _send(self, shard: int, message: tuple) -> None:
        try:
            self._conns[shard].send(message)
        except (BrokenPipeError, OSError):
            self._fail(shard)

    def _recv(self, shard: int) -> tuple:
        """One raw reply from a shard; a dead pipe tears the pool down."""
        try:
            return self._conns[shard].recv()
        except (EOFError, OSError):
            self._fail(shard)

    def _drain(self, shards) -> dict[int, tuple]:
        """One reply per shard, drained fully even when some are errors.

        Every shard that was sent a message in this round answers
        exactly once, so its reply must be consumed *before* any error
        raises — otherwise the surviving workers' queued "done" replies
        would pair with the next round's messages, desyncing the
        protocol and silently corrupting every later batch. Raises
        after the drain if any shard reported an error; the workers
        (and the pool) stay serviceable.
        """
        replies: dict[int, tuple] = {}
        errors = []
        for shard in shards:
            reply = self._recv(shard)
            if reply[0] == "error":
                errors.append((shard, reply[1]))
            else:
                replies[shard] = reply
        if errors:
            raise SimulationError("pool " + "; ".join(
                f"shard {shard} failed: {msg}" for shard, msg in errors))
        return replies

    def _fail(self, shard: int) -> None:
        """A worker died: tear the whole pool down, then raise."""
        self.close(drain=False)
        raise SimulationError(
            f"pool shard worker {shard} died; pool shut down and its "
            f"segments were swept")

    def _broadcast_program(self, network: Network, weights) -> None:
        """Ship the program once per (network, weights) identity.

        Strong references to the broadcast pair are kept, so the
        ``id()``-keyed cache can never alias a collected object (the
        same guard the analytic backend's simulator cache uses).
        """
        key = (id(network), id(weights))
        if self._program is not None and self._program[0] == key:
            return
        message = ("program", network, weights, self.config, self.packed,
                   self.batched, self.verify, self.seed)
        for shard in range(self.shards):
            self._send(shard, message)
        # A partial failure leaves _program unset, so the next stage()
        # re-broadcasts to every worker and they converge again.
        self._drain(range(self.shards))
        self._program = (key, network, weights)

    def _ensure_arena(self, current: SharedSegment | None,
                      nbytes: int) -> SharedSegment:
        """An owned arena of at least ``nbytes`` (power-of-two growth)."""
        if current is not None and current.nbytes >= nbytes:
            return current
        if current is not None:
            current.close(unlink=True)
        capacity = 1 << max(0, int(nbytes - 1).bit_length())
        return SharedSegment.create(capacity, scope=self.scope)

    # -- the batch surface -------------------------------------------------
    def stage(self, network: Network, images, weights) -> list[PoolShardWork]:
        """Write a batch into the input arena; return the O(1) works.

        Split from :meth:`dispatch` so the pickle-payload regression
        test can stage real batches and measure exactly the bytes a
        dispatch would push through the pipes.
        """
        self._check_alive()
        self._broadcast_program(network, weights)
        images = list(images)
        batch = len(images)
        input_shape = tuple(network.input_shape)
        output_shape = tuple(network.node(network.output_name).output_shape)
        in_slot = _slot_size(int(np.prod(input_shape, dtype=np.int64)))
        out_slot = _slot_size(int(np.prod(output_shape, dtype=np.int64)))
        self._input = self._ensure_arena(self._input,
                                         max(1, batch * in_slot))
        self._output = self._ensure_arena(self._output,
                                          max(1, batch * out_slot))
        in_buf = self._input.view(np.uint8, (self._input.nbytes,))
        try:
            for slot, image in enumerate(images):
                if tuple(image.data.shape) != input_shape:
                    raise SimulationError(
                        f"image {slot} has shape {image.data.shape}, "
                        f"expected the network input {input_shape}")
                _write_slot(in_buf, slot, in_slot, image)
        finally:
            del in_buf
        last_shard = (batch - 1) % self.shards
        return [PoolShardWork(shard=k, batch=batch, stride=self.shards,
                              input_segment=self._input.name,
                              output_segment=self._output.name,
                              input_shape=input_shape,
                              output_shape=output_shape,
                              want_outputs=(batch > 0 and k == last_shard))
                for k in range(self.shards)]

    def dispatch(self, works: list[PoolShardWork]) -> list:
        """Run staged works on the warm workers; outcomes in shard order.

        Empty lanes (``shards > batch``) are never sent — their idle
        outcomes are synthesized here, so idle workers cost nothing.
        """
        from repro.core.functional import CycleReport
        from repro.engine.sharding import ShardOutcome

        self._check_alive()
        for work in works:
            if work.count:
                self._send(work.shard, ("run", work))
        # Drain every dispatched shard before touching the output arena:
        # errors raise only after the pipes are level again, and slots
        # are read only once their writer has answered "done". All
        # replies are in hand, so no _recv (and thus no crash teardown)
        # can fire while an arena view below is live.
        replies = self._drain(
            [work.shard for work in works if work.count])
        outcomes = []
        for work in works:
            if not work.count:
                outcomes.append(ShardOutcome(
                    shard=work.shard, images=0,
                    outcome=BatchOutcome(report=CycleReport(),
                                         responses=(), outputs=None,
                                         verified=0)))
                continue
            _, count, report, verified, outputs = replies[work.shard]
            out_buf = self._output.view(np.uint8, (self._output.nbytes,))
            out_slot = _slot_size(int(np.prod(work.output_shape,
                                              dtype=np.int64)))
            responses = tuple(
                _read_slot(out_buf, slot, out_slot, work.output_shape)
                for slot in range(work.shard, work.batch, work.stride))
            del out_buf
            outcomes.append(ShardOutcome(
                shard=work.shard, images=count,
                outcome=BatchOutcome(report=report, responses=responses,
                                     outputs=outputs, verified=verified)))
        return outcomes

    def run(self, network: Network, images, weights) -> list:
        """Stage + dispatch one batch."""
        return self.dispatch(self.stage(network, images, weights))

    # -- lifecycle ---------------------------------------------------------
    def worker_pids(self) -> tuple[int, ...]:
        """The live workers' PIDs — how tests pin "no re-fork"."""
        self._check_alive()
        return tuple(worker.pid for worker in self._workers)

    def close(self, drain: bool = True) -> None:
        """Shut the pool down; idempotent.

        ``drain`` asks workers to exit cleanly (releasing their own
        recycled plane segments); the crash path passes ``False`` and
        terminates. Either way both arenas are unlinked and the pool's
        whole segment scope is swept, so nothing the pool ever created
        outlives it.
        """
        if self._closed:
            return
        self._closed = True
        for conn, worker in zip(self._conns, self._workers):
            if drain:
                try:
                    conn.send(("close",))
                except (BrokenPipeError, OSError):
                    pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            worker.join(timeout=5 if drain else 0.5)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=5)
        for arena in (self._input, self._output):
            if arena is not None:
                try:
                    arena.close(unlink=True)
                except Exception:  # pragma: no cover - live views on a
                    pass           # crash path; the sweep below catches it
        self._input = self._output = None
        unlink_scope(self.scope)

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
