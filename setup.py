"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs bdist_wheel; this offline
environment lacks it, so `python setup.py develop` provides the editable
install path. All configuration — package metadata, the dependency
extras ([test], [bench], [lint]) that CI and local installs share, and
the ruff/coverage tool config — lives in pyproject.toml.
"""

from setuptools import setup

setup()
