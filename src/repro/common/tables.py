"""Plain-text table rendering for experiment reports.

Every benchmark prints rows that mirror the paper's tables and figures; this
module keeps the formatting in one place so reports look uniform.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Cells are converted with ``str``; floats should be pre-formatted by the
    caller so each experiment controls its own precision.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(sep)
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def format_ratio(measured: float, reference: float) -> str:
    """Format ``measured`` against a paper ``reference`` as 'x.xx (ref y.yy)'."""
    if reference == 0:
        return f"{measured:.3g} (ref 0)"
    return f"{measured:.3g} (ref {reference:.3g}, {measured / reference:.2f}x)"


def format_si(value: float, unit: str, precision: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(4.7e-3, 's')``."""
    prefixes = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"),
                (1.0, ""), (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p")]
    magnitude = abs(value)
    if magnitude == 0:
        return f"0 {unit}"
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.{precision}g} {prefix}{unit}"
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{precision}g} {prefix}{unit}"
