"""Tests for the array energy/delay/area model (Sec. V, Figure 12)."""

import pytest

from repro.sram import ArrayAreaModel, ArrayEnergyModel
from repro.sram.energy import (
    ACCESS_DELAY_PS,
    ACCESS_ENERGY_PJ_22NM,
    COMPUTE_DELAY_PS,
    COMPUTE_ENERGY_PJ_22NM,
    COMPUTE_FREQUENCY_HZ,
)


class TestEnergyModel:
    def test_default_is_22nm(self):
        model = ArrayEnergyModel()
        assert model.compute_pj == COMPUTE_ENERGY_PJ_22NM == 15.4
        assert model.access_pj == ACCESS_ENERGY_PJ_22NM == 8.6

    def test_28nm_preset(self):
        model = ArrayEnergyModel.at_28nm()
        assert model.compute_pj == 25.7
        assert model.access_pj == 13.9

    def test_compute_energy_scaling(self):
        model = ArrayEnergyModel()
        one = model.compute_energy(cycles=1)
        assert one == pytest.approx(15.4e-12)
        assert model.compute_energy(cycles=10, arrays=4480) == pytest.approx(
            one * 10 * 4480)

    def test_access_energy_scaling(self):
        model = ArrayEnergyModel()
        assert model.access_energy(cycles=2) == pytest.approx(2 * 8.6e-12)

    def test_negative_inputs_rejected(self):
        model = ArrayEnergyModel()
        with pytest.raises(ValueError):
            model.compute_energy(-1)
        with pytest.raises(ValueError):
            model.access_energy(1, arrays=-2)

    def test_compute_slower_than_access(self):
        # The 1022 ps compute cycle is ~1.6x a 654 ps read (Sec. V).
        assert COMPUTE_DELAY_PS / ACCESS_DELAY_PS == pytest.approx(1.56, abs=0.01)

    def test_compute_frequency_conservative(self):
        assert COMPUTE_FREQUENCY_HZ == 2.5e9


class TestAreaModel:
    def test_overhead_is_published_7_5_percent(self):
        assert ArrayAreaModel().overhead_fraction == 0.075

    def test_die_overhead_below_two_percent(self):
        model = ArrayAreaModel()
        assert model.die_overhead_fraction() < 0.02

    def test_die_overhead_scales_with_cache_fraction(self):
        model = ArrayAreaModel()
        assert (model.die_overhead_fraction(0.5)
                == pytest.approx(2 * model.die_overhead_fraction(0.25)))

    def test_die_fraction_validated(self):
        model = ArrayAreaModel()
        with pytest.raises(ValueError):
            model.die_overhead_fraction(0.0)
        with pytest.raises(ValueError):
            model.die_overhead_fraction(1.5)

    def test_total_area_positive(self):
        assert ArrayAreaModel().total_area_mm2 > 0
