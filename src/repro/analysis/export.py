"""CSV export of the regenerated figures' data series.

The offline environment has no plotting stack; these writers emit the
exact series behind Figures 13-16 (and the capacity table) so downstream
users can plot them with whatever they have. All writers return the path
they wrote.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.analysis import experiments
from repro.common.errors import SimulationError


def _write(path: Path, header: list[str], rows: list[list]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_figure13(path: str | Path) -> Path:
    """Per-layer latency series (seconds) for the three devices."""
    data = experiments.figure13().data
    groups = list(data["neural_cache"])
    rows = [[group, data["cpu"][group], data["gpu"][group],
             data["neural_cache"][group]] for group in groups]
    return _write(Path(path), ["layer", "cpu_s", "gpu_s", "neural_cache_s"],
                  rows)


def export_figure14(path: str | Path) -> Path:
    """Breakdown phases: absolute seconds and share of total."""
    data = experiments.figure14().data
    breakdown = data["breakdown"]
    fractions = data["fractions"]
    rows = [[phase, getattr(breakdown, phase), fractions[phase]]
            for phase in fractions]
    return _write(Path(path), ["phase", "seconds", "fraction"], rows)


def export_figure16(path: str | Path) -> Path:
    """Throughput-vs-batch series for the three devices."""
    data = experiments.figure16().data
    rows = [[batch, cpu, gpu, nc]
            for batch, cpu, gpu, nc in zip(data["batch"], data["cpu"],
                                           data["gpu"],
                                           data["neural_cache"])]
    return _write(Path(path),
                  ["batch", "cpu_inf_s", "gpu_inf_s", "neural_cache_inf_s"],
                  rows)


def export_table4(path: str | Path) -> Path:
    """Capacity-scaling series (capacity MB -> latency seconds)."""
    data = experiments.table4().data
    rows = [[capacity, data[capacity]] for capacity in sorted(data)]
    return _write(Path(path), ["capacity_mb", "latency_s"], rows)


def export_all(directory: str | Path) -> list[Path]:
    """Write every exportable series under ``directory``."""
    directory = Path(directory)
    if directory.exists() and not directory.is_dir():
        raise SimulationError(f"{directory} exists and is not a directory")
    return [
        export_figure13(directory / "figure13_layer_latency.csv"),
        export_figure14(directory / "figure14_breakdown.csv"),
        export_figure16(directory / "figure16_throughput.csv"),
        export_table4(directory / "table4_capacity.csv"),
    ]
