"""Vectorized model of a fleet of compute-capable SRAM arrays.

The paper's parallelism story (Sec. III-IV) is that *thousands* of 256x256
arrays execute the same bit-serial instruction in lockstep: one compute
cycle activates the same two wordlines in every array of a slice.
:class:`ArrayFleet` models exactly that — ``n_arrays`` arrays stored as one
``(n_arrays, rows, cols)`` uint8 tensor, with every primitive (two-row
sensing, masked write-back, plain reads/writes) operating on *all arrays
per call* as NumPy bit-plane operations.

Cycle accounting is lockstep: one :meth:`ArrayFleet.sense` call is one
compute cycle *of the whole fleet*, because the hardware broadcasts one
instruction to every array. A fleet of one array therefore behaves exactly
like the original scalar :class:`repro.sram.array.SRAMArray`, which is now
a thin ``n_arrays=1`` view over this class.

This module must stay dependency-light (NumPy + error types only): the
single-array classes in :mod:`repro.sram` import it, so importing anything
from :mod:`repro.core` here would create a cycle.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ArrayStateError

#: Geometry of the 8KB array used throughout the paper.
DEFAULT_ROWS = 256
DEFAULT_COLS = 256


class ArrayFleet:
    """``n_arrays`` compute SRAM arrays executing in lockstep.

    Parameters
    ----------
    n_arrays:
        Number of arrays in the fleet (>= 1). All arrays receive the same
        instruction each cycle; data differs per array.
    rows:
        Wordlines per array (default 256).
    cols:
        Bitlines per array (default 256). Each bitline of each array is one
        bit-serial ALU slot, so the fleet exposes ``n_arrays * cols`` lanes.
    """

    def __init__(self, n_arrays: int = 1, rows: int = DEFAULT_ROWS,
                 cols: int = DEFAULT_COLS):
        if n_arrays <= 0:
            raise ArrayStateError(
                f"fleet must contain at least one array, got {n_arrays}")
        if rows <= 0 or cols <= 0:
            raise ArrayStateError(f"array must be non-empty, got {rows}x{cols}")
        self.n_arrays = n_arrays
        self.rows = rows
        self.cols = cols
        self._bits = np.zeros((n_arrays, rows, cols), dtype=np.uint8)
        self.access_cycles = 0
        self.compute_cycles = 0

    # ------------------------------------------------------------------
    # Plain SRAM behaviour (single wordline, all arrays)
    # ------------------------------------------------------------------
    def read_row(self, row: int) -> np.ndarray:
        """Read one wordline of every array; returns ``(n_arrays, cols)``."""
        self._check_row(row)
        self.access_cycles += 1
        return self._bits[:, row].copy()

    def write_row(self, row: int, bits: np.ndarray,
                  mask: np.ndarray | None = None) -> None:
        """Write one wordline of every array.

        ``mask`` models the per-column bit-line drivers gated by the tag
        latch (Figure 7): positions where ``mask == 0`` keep their value.
        """
        self._check_row(row)
        bits = self._coerce_bits(bits)
        self.access_cycles += 1
        if mask is None:
            self._bits[:, row] = bits
        else:
            mask = self._coerce_bits(mask)
            self._bits[:, row] = np.where(mask, bits, self._bits[:, row])

    # ------------------------------------------------------------------
    # Compute behaviour (two simultaneous wordlines, all arrays)
    # ------------------------------------------------------------------
    def sense(self, row_a: int, row_b: int) -> tuple[np.ndarray, np.ndarray]:
        """Activate two wordlines fleet-wide and sense both rails.

        Returns ``(bl, blb)``, each ``(n_arrays, cols)``, where
        ``bl = A AND B`` and ``blb = A NOR B`` per bitline (Figure 2b).
        One lockstep compute cycle for the whole fleet.
        """
        self._check_row(row_a)
        self._check_row(row_b)
        if row_a == row_b:
            raise ArrayStateError(
                f"compute sensing requires two distinct wordlines, got {row_a}")
        self.compute_cycles += 1
        a = self._bits[:, row_a]
        b = self._bits[:, row_b]
        return a & b, (1 - a) & (1 - b)

    def sense_single(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """Activate one wordline in compute mode fleet-wide.

        The missing operand reads as all-ones on BL sensing, so
        ``bl = A`` and ``blb = NOT A``. Used for moves and tag loads.
        """
        self._check_row(row)
        self.compute_cycles += 1
        a = self._bits[:, row]
        return a.copy(), 1 - a

    def write_back(self, row: int, bits: np.ndarray,
                   mask: np.ndarray | None = None) -> None:
        """Phase-2 write of a compute cycle (WWL activation), all arrays.

        Does *not* count an extra cycle: the paper's compute cycle has a
        sensing phase and a write-back phase inside one clock.
        """
        self._check_row(row)
        bits = self._coerce_bits(bits)
        if mask is None:
            self._bits[:, row] = bits
        else:
            mask = self._coerce_bits(mask)
            self._bits[:, row] = np.where(mask, bits, self._bits[:, row])

    # ------------------------------------------------------------------
    # Test/host-side helpers (no cycle accounting; data arrives via TMU)
    # ------------------------------------------------------------------
    def load_bits(self, top_row: int, bits: np.ndarray,
                  col_offset: int = 0) -> None:
        """Bulk-store a bit tensor with its row 0 at ``top_row``.

        ``bits`` is ``(n_arrays, n_rows, n_cols)``, or ``(n_rows, n_cols)``
        to broadcast the same plane into every array. This is the host/TMU
        initialisation path; transfer costs are charged by the transfer
        models, not here.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim == 2:
            bits = np.broadcast_to(bits, (self.n_arrays, *bits.shape))
        if bits.ndim != 3 or bits.shape[0] != self.n_arrays:
            raise ArrayStateError(
                f"expected a ({self.n_arrays}, rows, cols) bit tensor, got "
                f"shape {bits.shape}")
        _, n_rows, n_cols = bits.shape
        if top_row < 0 or top_row + n_rows > self.rows:
            raise ArrayStateError(
                f"rows [{top_row}, {top_row + n_rows}) outside array of "
                f"{self.rows} rows")
        if col_offset < 0 or col_offset + n_cols > self.cols:
            raise ArrayStateError(
                f"columns [{col_offset}, {col_offset + n_cols}) outside array "
                f"of {self.cols} columns")
        self._bits[:, top_row:top_row + n_rows,
                   col_offset:col_offset + n_cols] = bits

    def dump_bits(self, top_row: int, n_rows: int, col_offset: int = 0,
                  n_cols: int | None = None) -> np.ndarray:
        """Bulk-read ``(n_arrays, n_rows, n_cols)`` (host/TMU path)."""
        if n_cols is None:
            n_cols = self.cols - col_offset
        if top_row < 0 or top_row + n_rows > self.rows:
            raise ArrayStateError(
                f"rows [{top_row}, {top_row + n_rows}) outside array of "
                f"{self.rows} rows")
        return self._bits[:, top_row:top_row + n_rows,
                          col_offset:col_offset + n_cols].copy()

    def reset_counters(self) -> None:
        """Zero the lockstep access/compute cycle counters."""
        self.access_cycles = 0
        self.compute_cycles = 0

    # ------------------------------------------------------------------
    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ArrayStateError(
                f"row {row} outside array of {self.rows} rows")

    def _coerce_bits(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape == (self.cols,):
            bits = np.broadcast_to(bits, (self.n_arrays, self.cols))
        if bits.shape != (self.n_arrays, self.cols):
            raise ArrayStateError(
                f"expected ({self.n_arrays}, {self.cols}) bits, got shape "
                f"{bits.shape}")
        if np.any(bits > 1):
            raise ArrayStateError("bit values must be 0 or 1")
        return bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ArrayFleet(n_arrays={self.n_arrays}, rows={self.rows}, "
                f"cols={self.cols}, access={self.access_cycles}, "
                f"compute={self.compute_cycles})")


class FleetPeriphery:
    """Column peripherals (Figure 7) for every array of a fleet at once.

    The carry and tag latches are ``(n_arrays, cols)`` planes; the
    combinational full-adder/XOR logic evaluates on whole planes. Mirrors
    :class:`repro.sram.peripheral.ColumnPeriphery`, which is the
    ``n_arrays=1`` reference implementation.
    """

    def __init__(self, n_arrays: int, cols: int):
        if n_arrays <= 0 or cols <= 0:
            raise ArrayStateError(
                f"periphery needs positive dimensions, got "
                f"{n_arrays}x{cols}")
        self.n_arrays = n_arrays
        self.cols = cols
        self.carry = np.zeros((n_arrays, cols), dtype=np.uint8)
        self.tag = np.ones((n_arrays, cols), dtype=np.uint8)

    # -- latch management (resets happen during instruction issue and cost
    # -- no array cycles)
    def clear_carry(self) -> None:
        self.carry[:] = 0

    def set_carry(self) -> None:
        self.carry[:] = 1

    def set_tag_all(self) -> None:
        self.tag[:] = 1

    def load_tag(self, bits: np.ndarray, invert: bool = False) -> None:
        """Latch a sensed plane into the tag latches (optionally inverted
        for free via the BLB sense amp)."""
        bits = self._coerce(bits)
        self.tag[:] = (1 - bits) if invert else bits

    def load_carry(self, bits: np.ndarray) -> None:
        self.carry[:] = self._coerce(bits)

    # -- combinational logic -------------------------------------------
    @staticmethod
    def xor_from_rails(bl_and: np.ndarray, blb_nor: np.ndarray) -> np.ndarray:
        """``A XOR B`` from the two sensed rails: ``NOR(A&B, A NOR B)``."""
        return ((1 - bl_and) & (1 - blb_nor)).astype(np.uint8)

    def add_step(self, a_and_b: np.ndarray,
                 a_xor_b: np.ndarray) -> np.ndarray:
        """The sum/carry latch update from pre-decoded AND/XOR planes.

        This is the single implementation of the adder logic: the
        validated rail-based :meth:`full_add` and the hot per-cycle path
        of :class:`~repro.engine.bitserial.FleetBitSerialUnit` both land
        here, so the carry semantics cannot drift between them. The carry
        latch supplies carry-in and is overwritten with the carry-out;
        returns the sum plane.
        """
        carry = self.carry
        total = a_xor_b ^ carry
        carry[...] = a_and_b | (a_xor_b & carry)
        return total

    def full_add(self, bl_and: np.ndarray,
                 blb_nor: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One full-adder evaluation for every column of every array.

        Takes the two sensed rails (``A AND B``, ``A NOR B``), validated;
        returns ``(sum, carry_out)``.
        """
        a_and_b = self._coerce(bl_and)
        a_xor_b = self.xor_from_rails(a_and_b, self._coerce(blb_nor))
        total = self.add_step(a_and_b, a_xor_b)
        return total, self.carry.copy()

    def write_mask(self, predicated: bool) -> np.ndarray | None:
        """Per-column write-driver enables: tag when predicated, else all."""
        return self.tag.copy() if predicated else None

    # ------------------------------------------------------------------
    def _coerce(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.n_arrays, self.cols):
            raise ArrayStateError(
                f"expected ({self.n_arrays}, {self.cols}) column bits, got "
                f"shape {bits.shape}")
        return bits
