"""Headline hardware claims: 1,146,880 ALU slots, 28 TOP/s, area budget.

Benchmarks the geometry/area derivations and records the peak-throughput
and area tables (Sec. VII's BrainWave comparison and Fig. 12).
"""

from repro.analysis import area_report, peak_throughput
from repro.cache.geometry import capacity_sweep, xeon_e5_2697_v3
from repro.config import NeuralCacheConfig


def derive_hardware_claims():
    geometry = xeon_e5_2697_v3()
    config = NeuralCacheConfig()
    return {
        "arrays": geometry.total_arrays,
        "slots": geometry.alu_slots,
        "peak_ops": config.peak_ops_per_second(),
        "sweep_slots": [g.alu_slots for g in capacity_sweep()],
    }


def test_peak_throughput_and_area(benchmark, record):
    data = benchmark(derive_hardware_claims)
    assert data["arrays"] == 4480
    assert data["slots"] == 1_146_880
    assert abs(data["peak_ops"] - 28e12) / 28e12 < 0.01
    assert data["sweep_slots"] == sorted(data["sweep_slots"])
    record(peak_throughput())
    record(area_report())
