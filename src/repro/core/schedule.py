"""Per-layer execution schedule: phase times and energies (Sec. IV-C/VI).

For every mapped layer the schedule produces the seven phases of the
paper's Figure 14 breakdown:

* ``filter_load``   — unique weights streamed from DRAM (broadcast
  replication over ring/bus is free, Sec. IV-C);
* ``input_stream``  — windows delivered from the reserved way over the
  intra-slice buses, with input reuse between serial passes and the
  bank-latch optimisation;
* ``mac``           — bit-serial multiply-accumulates, all parallel
  convolutions at once;
* ``reduction``     — in-array (and, when a convolution spans two arrays,
  cross-array) channel-reduction trees;
* ``quantization``  — layer-wide min/max plus applying the CPU's
  requantization scalars in cache;
* ``pooling``       — compare/selective-copy folds (max) or sum+divide
  (average);
* ``output_move``   — quantized outputs back to the reserved way, plus the
  neighbour halo exchange over the ring.

Energy follows the same phases: compute cycles are charged per active
array at 15.4 pJ, data movement at the interconnect/DRAM models' rates,
and array row writes at the 8.6 pJ access energy.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.common.bits import ceil_div
from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.core.mapping import LayerMapping

#: Phase names in Figure 14 order.
PHASES = ("filter_load", "input_stream", "mac", "reduction",
          "quantization", "pooling", "output_move")


@dataclass(frozen=True)
class PhaseBreakdown:
    """Seconds (or joules) attributed to each execution phase."""

    filter_load: float = 0.0
    input_stream: float = 0.0
    mac: float = 0.0
    reduction: float = 0.0
    quantization: float = 0.0
    pooling: float = 0.0
    output_move: float = 0.0

    @property
    def total(self) -> float:
        return sum(getattr(self, name) for name in PHASES)

    def as_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in PHASES}

    def fractions(self) -> dict[str, float]:
        """Each phase's share of the total (Figure 14)."""
        total = self.total
        if total <= 0:
            return {name: 0.0 for name in PHASES}
        return {name: getattr(self, name) / total for name in PHASES}

    def __add__(self, other: "PhaseBreakdown") -> "PhaseBreakdown":
        return PhaseBreakdown(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)})

    def scaled(self, factor: float) -> "PhaseBreakdown":
        """All phases multiplied by ``factor`` (used for batching)."""
        return PhaseBreakdown(**{
            f.name: getattr(self, f.name) * factor for f in fields(self)})


@dataclass(frozen=True)
class LayerSchedule:
    """One layer's mapping plus its phase times and energies."""

    mapping: LayerMapping
    time: PhaseBreakdown      # seconds
    energy: PhaseBreakdown    # joules
    compute_cycles_per_pass: int

    @property
    def latency(self) -> float:
        return self.time.total

    @property
    def total_energy(self) -> float:
        return self.energy.total


# ---------------------------------------------------------------------------
# Cycle counts per pass
# ---------------------------------------------------------------------------
def mac_cycles_per_pass(config: NeuralCacheConfig,
                        mapping: LayerMapping) -> int:
    """Bit-serial arithmetic cycles for one serial pass.

    Convolutions run one fused MAC per filter tap; element-wise additions
    (residual connections) run a single add plus the zero-point and
    clamping epilogue.
    """
    costs = config.costs
    n = config.element_bits
    if mapping.kind == "add":
        return (costs.add(n) + costs.const_write(n + 1) + costs.sub(n + 1)
                + 2 * costs.selective_copy(n + 1) + costs.const_write(n))
    if mapping.kind == "batchnorm":
        w = 34
        return (costs.multiply(2 * n) + costs.add_into(w) + costs.relu(w)
                + costs.const_write(w) + costs.add(9)
                + 2 * costs.selective_copy(n))
    if mapping.kind != "conv":
        return 0
    # Conv MACs run at the mapping's (possibly narrowed) element width —
    # the dynamic-precision knob; storage and partial sums stay at the
    # config's byte-aligned widths.
    taps = mapping.filter_bytes_per_bitline
    return taps * costs.mac(mapping.element_bits, config.partial_sum_bits)


def reduction_cycles_per_pass(config: NeuralCacheConfig,
                              mapping: LayerMapping) -> int:
    """Channel-reduction cycles for one pass (Sec. III-D / IV-A)."""
    if mapping.kind != "conv":
        return 0
    costs = config.costs
    in_array = min(mapping.channels_padded, config.geometry.array_cols)
    if costs.full_array_reduction and in_array > 1:
        # The array-wide reduction instruction always runs the full tree;
        # the group size only selects which columns carry valid sums.
        in_array = config.geometry.array_cols
    cycles = 0
    if in_array > 1:
        cycles += costs.reduction(in_array, config.partial_sum_bits)
    # Cross-array levels ride the links the mapper's ReductionPlan names
    # (sense-amp pair, quadrant bus, ring); each costs one full-width
    # move plus an add, exactly what the fleet's reduce_across_arrays
    # executes.
    cycles += mapping.reduction_plan.cross_array_cycles(
        costs, config.reduction_bits)
    return cycles


def pooling_cycles_per_pass(config: NeuralCacheConfig,
                            mapping: LayerMapping) -> int:
    """Max/average folding cycles for one pooling pass (Sec. IV-D)."""
    costs = config.costs
    n = config.element_bits
    window = ceil_div(mapping.window_bytes, mapping.split_factor)
    if mapping.kind == "maxpool":
        # Seed the running maximum, then fold the remaining elements.
        cycles = costs.copy(n) + (window - 1) * costs.max_update(n)
    elif mapping.kind == "avgpool":
        acc_bits = 2 * n
        cycles = window * costs.add_into(acc_bits) + costs.divide(acc_bits)
    else:
        return 0
    if mapping.split_factor > 1:
        # Partial windows on separate bitlines reduce like channels.
        if mapping.kind == "maxpool":
            steps = mapping.channels_padded.bit_length() - 1
            cycles += steps * costs.max_update(n)
        else:
            cycles += costs.reduction(mapping.channels_padded, 2 * n)
    return cycles


def quantization_cycles(config: NeuralCacheConfig,
                        mapping: LayerMapping) -> int:
    """In-cache quantization compute for the whole layer (Sec. IV-D).

    Running min/max folds happen every serial pass as outputs are
    produced; the CPU's two integers are then applied — a 32-bit multiply,
    an add and a shift with ReLU's selective zero-write folded in — on the
    outputs staged in the reserved I/O way, one pass per I/O-way batch.
    """
    if mapping.kind != "conv":
        return 0
    costs = config.costs
    w = config.reduction_bits
    minmax = mapping.serial_passes * 2 * costs.max_update(w)
    apply_passes = ceil_div(mapping.total_outputs, config.io_way_slots)
    apply_cost = (costs.multiply(w) + costs.add_into(w + 8)
                  + costs.copy(config.element_bits)
                  + costs.relu(w))
    return minmax + apply_passes * apply_cost


# ---------------------------------------------------------------------------
# Phase times
# ---------------------------------------------------------------------------
def _fresh_input_fraction(config: NeuralCacheConfig,
                          mapping: LayerMapping) -> float:
    """Fraction of a window that is new data in steady state.

    Sliding a (R, S) window by stride U reuses (S - U) of S columns
    (Sec. IV-A: "in a 3x3 convolution with a stride of 1, 6 of the 9 bytes
    are reused"); the reuse only materialises when spare word lines buffer
    the neighbouring bytes, hence the configured floor. 1x1 windows have
    no reuse.
    """
    _, s = mapping.kernel
    return min(1.0, max(mapping.stride / s, config.input_reuse_floor))


def _pixels_per_pass(mapping: LayerMapping) -> int:
    """Distinct output pixels whose windows must be streamed in one pass.

    Different output channels (M) of the same pixel share input data,
    which broadcasts over the intra-slice bus (Sec. IV-C).
    """
    m_parallel = min(mapping.out_channels, mapping.parallel_outputs)
    return ceil_div(mapping.parallel_outputs, m_parallel)


def input_stream_time(config: NeuralCacheConfig,
                      mapping: LayerMapping) -> float:
    """Seconds streaming inputs for all serial passes of the layer.

    Unique bytes per pass are the distinct pixels' windows (channel
    broadcast and the bank latch are modelled by the interconnect); the
    I/O-way calibration factor absorbs the transposed-gather overhead of
    reading scattered windows out of way-19 (see NeuralCacheConfig).
    """
    interconnect = config.interconnect
    pixels = _pixels_per_pass(mapping)
    window_bytes = mapping.input_bytes_per_output
    per_slice_full = (pixels * window_bytes / config.geometry.slices
                      * config.input_gather_calibration)
    first = interconnect.intra_slice_time(per_slice_full,
                                          use_bank_latch=True)
    if mapping.serial_passes == 1:
        return first
    fresh = _fresh_input_fraction(config, mapping)
    steady = interconnect.intra_slice_time(per_slice_full * fresh,
                                           use_bank_latch=True)
    return first + (mapping.serial_passes - 1) * steady


def output_move_time(config: NeuralCacheConfig,
                     mapping: LayerMapping) -> float:
    """Quantized outputs to the reserved way + neighbour halo exchange."""
    interconnect = config.interconnect
    per_slice = (mapping.output_bytes / config.geometry.slices
                 * config.output_gather_calibration)
    move = interconnect.intra_slice_time(per_slice)
    # Contiguous pixels per slice keep the halo to at most R rows of
    # neighbour pixels (Sec. IV-C); charge one kernel-height row of the
    # per-slice output as ring traffic.
    rows = max(mapping.kernel)
    halo_bytes = min(per_slice, rows * mapping.out_channels)
    return move + interconnect.inter_slice_time(halo_bytes)


def minmax_bus_time(config: NeuralCacheConfig,
                    mapping: LayerMapping) -> float:
    """The once-per-layer series of bus transfers reducing per-array
    min/max values to one pair for the CPU (Sec. IV-D)."""
    if mapping.kind != "conv":
        return 0.0
    word = config.reduction_bits // 8
    per_slice = (config.geometry.compute_arrays_per_slice * 2 * word)
    intra = config.interconnect.intra_slice_time(per_slice)
    ring = config.interconnect.inter_slice_time(
        config.geometry.slices * 2 * word)
    return intra + ring


def schedule_layer(config: NeuralCacheConfig, mapping: LayerMapping,
                   input_from_dram: bool = False) -> LayerSchedule:
    """Build the full schedule for one mapped layer."""
    freq = config.frequency_hz
    passes = mapping.serial_passes

    mac_c = mac_cycles_per_pass(config, mapping)
    red_c = reduction_cycles_per_pass(config, mapping)
    pool_c = pooling_cycles_per_pass(config, mapping)
    quant_c = quantization_cycles(config, mapping)

    filter_time = config.dram.transfer_time(mapping.filter_load_bytes)
    input_time = input_stream_time(config, mapping)
    if input_from_dram:
        # The first layer's image comes from DRAM through the TMUs.
        total_input = (mapping.total_outputs // max(mapping.out_channels, 1)
                       * mapping.input_bytes_per_output
                       * _fresh_input_fraction(config, mapping))
        input_time = max(input_time, config.dram.transfer_time(total_input))

    time = PhaseBreakdown(
        filter_load=filter_time,
        input_stream=input_time,
        mac=passes * mac_c / freq,
        reduction=passes * red_c / freq,
        quantization=quant_c / freq + minmax_bus_time(config, mapping),
        pooling=passes * pool_c / freq,
        output_move=output_move_time(config, mapping),
    )
    energy = _energy_breakdown(config, mapping, time)
    compute_per_pass = mac_c + red_c + pool_c
    return LayerSchedule(mapping=mapping, time=time, energy=energy,
                         compute_cycles_per_pass=compute_per_pass)


# ---------------------------------------------------------------------------
# Energy
# ---------------------------------------------------------------------------
def _array_write_energy(config: NeuralCacheConfig, nbytes: float) -> float:
    """Energy of writing ``nbytes`` into arrays as 256-bit row updates."""
    rows = nbytes * 8 / config.geometry.array_cols
    return config.energy.access_energy(rows)


def _energy_breakdown(config: NeuralCacheConfig, mapping: LayerMapping,
                      time: PhaseBreakdown) -> PhaseBreakdown:
    if mapping.serial_passes <= 0:
        raise SimulationError("schedule requires at least one pass")
    interconnect = config.interconnect
    freq = config.frequency_hz
    active_arrays = config.geometry.compute_arrays * mapping.utilization

    def compute_energy(seconds: float) -> float:
        return config.energy.compute_energy(seconds * freq, active_arrays)

    filter_bytes = mapping.filter_load_bytes
    # Broadcast writes land in every active array's filter region.
    replicated = (active_arrays * mapping.filter_bytes_per_bitline
                  * config.geometry.array_cols)
    # Energy follows the physical (gather-inflated) traffic volumes.
    input_bytes = (_pixels_per_pass(mapping) * mapping.input_bytes_per_output
                   * mapping.serial_passes * config.input_gather_calibration)
    output_bytes = mapping.output_bytes * config.output_gather_calibration

    return PhaseBreakdown(
        filter_load=(config.dram.transfer_energy(filter_bytes)
                     + interconnect.ring_energy(filter_bytes)
                     + _array_write_energy(config, replicated)),
        input_stream=(interconnect.bus_energy(input_bytes)
                      + _array_write_energy(config, input_bytes)),
        mac=compute_energy(time.mac),
        reduction=compute_energy(time.reduction),
        quantization=compute_energy(time.quantization),
        pooling=compute_energy(time.pooling),
        output_move=(interconnect.bus_energy(output_bytes)
                     + _array_write_energy(config, output_bytes)),
    )
