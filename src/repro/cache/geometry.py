"""Cache geometry of the modelled Xeon-class LLC (Sec. II-C, Figure 3).

The hierarchy, top to bottom:

* an LLC is distributed over ``slices`` (14 x 2.5 MB for the Xeon E5-2697
  v3) connected by a bidirectional ring;
* a slice has 20 ways; each way spans 4 x 32KB banks (so a slice holds 80
  banks);
* a bank contains two 16KB sub-arrays; a sub-array contains two 8KB SRAM
  arrays, and the two arrays of a sub-array share sense amplifiers (which
  matters for cross-array reduction);
* an 8KB array is 256 wordlines x 256 bitlines — the compute unit.

Neural Cache reserves the last way (way 20) for normal CPU traffic and the
penultimate way (way 19) for layer inputs/outputs; ways 1-18 store filters
and compute (Sec. IV).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import GeometryError
from repro.common.units import KB, MB


@dataclass(frozen=True)
class CacheGeometry:
    """Static description of one LLC configuration."""

    name: str
    slices: int = 14
    ways_per_slice: int = 20
    banks_per_way: int = 4
    subarrays_per_bank: int = 2
    arrays_per_subarray: int = 2
    array_rows: int = 256
    array_cols: int = 256
    #: Ways reserved for CPU traffic (way 20) and layer I/O (way 19).
    reserved_cpu_ways: int = 1
    reserved_io_ways: int = 1

    def __post_init__(self) -> None:
        for field_name in ("slices", "ways_per_slice", "banks_per_way",
                           "subarrays_per_bank", "arrays_per_subarray",
                           "array_rows", "array_cols"):
            if getattr(self, field_name) <= 0:
                raise GeometryError(f"{field_name} must be positive")
        if self.reserved_cpu_ways < 0 or self.reserved_io_ways < 0:
            raise GeometryError("reserved way counts must be non-negative")
        if self.reserved_ways >= self.ways_per_slice:
            raise GeometryError(
                f"{self.reserved_ways} reserved ways leave no compute ways "
                f"out of {self.ways_per_slice}")
        if self.array_cols % 8:
            raise GeometryError("array columns must be a multiple of 8 "
                                "(byte-aligned bitline groups)")

    # -- per-array ----------------------------------------------------------
    @property
    def array_bytes(self) -> int:
        """Capacity of one SRAM array (8 KB in the paper)."""
        return self.array_rows * self.array_cols // 8

    # -- per-bank / way / slice ----------------------------------------------
    @property
    def arrays_per_bank(self) -> int:
        return self.subarrays_per_bank * self.arrays_per_subarray

    @property
    def bank_bytes(self) -> int:
        return self.arrays_per_bank * self.array_bytes

    @property
    def arrays_per_way(self) -> int:
        return self.banks_per_way * self.arrays_per_bank

    @property
    def way_bytes(self) -> int:
        return self.arrays_per_way * self.array_bytes

    @property
    def banks_per_slice(self) -> int:
        return self.ways_per_slice * self.banks_per_way

    @property
    def arrays_per_slice(self) -> int:
        return self.ways_per_slice * self.arrays_per_way

    @property
    def slice_bytes(self) -> int:
        return self.arrays_per_slice * self.array_bytes

    # -- whole cache ----------------------------------------------------------
    @property
    def total_arrays(self) -> int:
        return self.slices * self.arrays_per_slice

    @property
    def total_bytes(self) -> int:
        return self.slices * self.slice_bytes

    @property
    def alu_slots(self) -> int:
        """Bit-serial ALU slots if every array computes (1,146,880 for 35MB)."""
        return self.total_arrays * self.array_cols

    # -- Neural Cache reservations ---------------------------------------------
    @property
    def reserved_ways(self) -> int:
        return self.reserved_cpu_ways + self.reserved_io_ways

    @property
    def compute_ways(self) -> int:
        """Ways that hold filters and compute (18 of 20 in the paper)."""
        return self.ways_per_slice - self.reserved_ways

    @property
    def compute_arrays_per_slice(self) -> int:
        return self.compute_ways * self.arrays_per_way

    @property
    def compute_arrays(self) -> int:
        return self.slices * self.compute_arrays_per_slice

    @property
    def compute_slots(self) -> int:
        """Bit-serial ALU slots available to Neural Cache."""
        return self.compute_arrays * self.array_cols

    @property
    def io_way_bytes_per_slice(self) -> int:
        """Capacity of the reserved input/output way per slice (128 KB)."""
        return self.reserved_io_ways * self.way_bytes

    def scaled_to_slices(self, slices: int, name: str | None = None) -> "CacheGeometry":
        """The same slice design replicated ``slices`` times (Table IV)."""
        return CacheGeometry(
            name=name or f"{self.name}-{slices}slices",
            slices=slices,
            ways_per_slice=self.ways_per_slice,
            banks_per_way=self.banks_per_way,
            subarrays_per_bank=self.subarrays_per_bank,
            arrays_per_subarray=self.arrays_per_subarray,
            array_rows=self.array_rows,
            array_cols=self.array_cols,
            reserved_cpu_ways=self.reserved_cpu_ways,
            reserved_io_ways=self.reserved_io_ways,
        )


def xeon_e5_2697_v3() -> CacheGeometry:
    """The paper's primary configuration: 35 MB, 14 slices (Table II)."""
    return CacheGeometry(name="xeon-e5-2697v3-35mb", slices=14)


def xeon_45mb() -> CacheGeometry:
    """Table IV scaling point: 45 MB (18 slices)."""
    return xeon_e5_2697_v3().scaled_to_slices(18, name="xeon-45mb")


def xeon_60mb() -> CacheGeometry:
    """Table IV scaling point: 60 MB (24 slices)."""
    return xeon_e5_2697_v3().scaled_to_slices(24, name="xeon-60mb")


def capacity_sweep() -> list[CacheGeometry]:
    """The three capacities of Table IV, in order."""
    return [xeon_e5_2697_v3(), xeon_45mb(), xeon_60mb()]


def _self_check() -> None:
    """Internal consistency with the numbers printed in the paper."""
    geometry = xeon_e5_2697_v3()
    assert geometry.array_bytes == 8 * KB
    assert geometry.bank_bytes == 32 * KB
    assert geometry.slice_bytes == 2.5 * MB
    assert geometry.arrays_per_slice == 320
    assert geometry.total_arrays == 4480
    assert geometry.total_bytes == 35 * MB
    assert geometry.alu_slots == 1_146_880


_self_check()
