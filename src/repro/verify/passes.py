"""Verification passes over :class:`~repro.verify.facts.ProgramFacts`.

Each pass is a generic linear interpreter over the facts records — no
per-op knowledge here (that lives in :mod:`repro.verify.lift`):

- ``check_bounds``: every region inside ``[0, rows)``, shifts inside the
  column count.
- ``check_def_before_use``: no wordline is sensed (or tag-loaded, or
  read-modify-written by a predicated write) before something defined it.
- ``check_overlap``: the per-op operand constraints (disjoint /
  aligned-or-disjoint) hold.
- ``check_tag_carry``: predicated ops see a live tag, composite ops do
  not clobber a live tag, the tag is not left live at program end, and
  carry ripples follow init -> cycles -> store.
- ``check_dead_writes``: no wordline is written twice with no read in
  between (wasted modeled cycles); live-out writes are not flagged.
- ``check_skips``: sparsity skips are sound — a SKIPPED step declares no
  architectural writes, and the destination it elided is covered by the
  write set of the enclosing executed composite (so skipping it is
  zero-preserving).

Findings are data, not exceptions: a transformation pipeline wants the
full list. :func:`assert_clean` converts the first finding into a
structured :class:`~repro.common.errors.VerifyError` for callers that
just want a gate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import VerifyError
from repro.verify.facts import (
    CARRY_CYCLE,
    CARRY_INIT,
    CARRY_STORE,
    SKIPPED,
    OpFacts,
    ProgramFacts,
    Region,
    TAG_CLEAR,
    TAG_REQUIRE,
    TAG_SELF,
    TAG_SET,
)

__all__ = [
    "Finding",
    "assert_clean",
    "check_bounds",
    "check_dead_writes",
    "check_def_before_use",
    "check_overlap",
    "check_skips",
    "check_tag_carry",
    "verify_program",
]


@dataclass(frozen=True)
class Finding:
    """One verification failure, anchored to a program step."""

    check: str
    index: int
    op: str
    detail: str
    row: int | None = None

    def __str__(self) -> str:
        where = f" (row {self.row})" if self.row is not None else ""
        return f"[{self.check}] op {self.index} `{self.op}`: " \
               f"{self.detail}{where}"


def check_bounds(facts: ProgramFacts) -> list[Finding]:
    """Regions within the wordline count, shifts within the bitlines."""
    findings = []
    for op in facts.ops:
        for region in op.all_regions():
            if region.nbits < 1:
                findings.append(Finding(
                    "bounds", op.index, op.name,
                    f"empty region {region}", row=region.row))
            elif region.row < 0 or region.end > facts.rows:
                findings.append(Finding(
                    "bounds", op.index, op.name,
                    f"region {region} outside the array's "
                    f"{facts.rows} wordlines", row=region.row))
        if op.col_shift is not None and not 0 < op.col_shift < facts.cols:
            findings.append(Finding(
                "bounds", op.index, op.name,
                f"column shift {op.col_shift} outside the array's "
                f"{facts.cols} bitlines"))
    return findings


def _clip(region: Region, rows: int) -> range:
    return range(max(region.row, 0), min(region.end, rows))


def check_def_before_use(facts: ProgramFacts) -> list[Finding]:
    """No wordline is read before it was initialized."""
    defined = [False] * facts.rows
    for region in facts.preloaded:
        for row in _clip(region, facts.rows):
            defined[row] = True
    findings = []
    for op in facts.ops:
        # Predicated writes are read-modify-writes: unselected columns
        # keep the destination's value, so the destination must already
        # hold one.
        for region in op.reads + op.tag_source + op.pred_writes:
            for row in _clip(region, facts.rows):
                if not defined[row]:
                    findings.append(Finding(
                        "uninit-read", op.index, op.name,
                        f"reads wordline {row} before anything wrote it",
                        row=row))
                    break  # one finding per region keeps reports readable
        for region in (op.writes + op.pred_writes + op.scratch_writes
                       + op.inits):
            for row in _clip(region, facts.rows):
                defined[row] = True
    return findings


def check_overlap(facts: ProgramFacts) -> list[Finding]:
    """The per-op operand aliasing constraints hold."""
    findings = []
    for op in facts.ops:
        for con in op.constraints:
            if con.violated():
                findings.append(Finding(
                    "overlap", op.index, op.name,
                    f"{con.a} vs {con.b} must be {con.kind}: {con.reason}",
                    row=max(con.a.row, con.b.row)))
    return findings


def check_tag_carry(facts: ProgramFacts) -> list[Finding]:
    """Tag and carry latch discipline across the program."""
    findings = []
    tag_live = False
    tag_set_at: OpFacts | None = None
    carry_active = False
    for op in facts.ops:
        if op.tag == TAG_REQUIRE and not tag_live:
            findings.append(Finding(
                "tag", op.index, op.name,
                "predicated op with all write drivers enabled (no "
                "load_tag in effect): the predication is a no-op"))
        elif op.tag == TAG_SELF and tag_live:
            findings.append(Finding(
                "tag", op.index, op.name,
                f"clobbers the live tag loaded by op "
                f"{tag_set_at.index if tag_set_at else '?'} "
                f"before any predicated op consumed it"))
        if op.tag == TAG_SET:
            tag_live = True
            tag_set_at = op
        elif op.tag in (TAG_CLEAR, TAG_SELF):
            tag_live = False
            tag_set_at = None
        for step in op.carry:
            if step == CARRY_INIT:
                carry_active = True
            elif step == CARRY_CYCLE and not carry_active:
                findings.append(Finding(
                    "carry", op.index, op.name,
                    "adder cycles ripple a carry latch that was never "
                    "initialised"))
            elif step == CARRY_STORE:
                if not carry_active:
                    findings.append(Finding(
                        "carry", op.index, op.name,
                        "stores a carry-out, but the latch was already "
                        "consumed (or never generated)"))
                carry_active = False
    if tag_live:
        findings.append(Finding(
            "tag", tag_set_at.index if tag_set_at else len(facts.ops) - 1,
            tag_set_at.name if tag_set_at else "<end>",
            "program ends with the tag latch live: a later program on "
            "this fleet would start half-predicated"))
    return findings


def check_dead_writes(facts: ProgramFacts) -> list[Finding]:
    """No wordline is overwritten before anything read it."""
    pending: list[OpFacts | None] = [None] * facts.rows
    findings = []
    reported: set[tuple[int, int]] = set()
    for op in facts.ops:
        for region in op.reads + op.tag_source + op.pred_writes:
            for row in _clip(region, facts.rows):
                pending[row] = None
        for region in op.writes + op.pred_writes + op.inits:
            for row in _clip(region, facts.rows):
                earlier = pending[row]
                if earlier is not None:
                    key = (earlier.index, op.index)
                    if key not in reported:
                        reported.add(key)
                        findings.append(Finding(
                            "dead-write", earlier.index, earlier.name,
                            f"write to wordline {row} is overwritten by "
                            f"op {op.index} `{op.name}` with no read in "
                            f"between (wasted cycles)", row=row))
                pending[row] = op
        # Scratch is written and consumed inside the op: it kills earlier
        # unread writes like any write, but its own value is dead on exit
        # by design, so reusing the scratch next op is not a finding.
        for region in op.scratch_writes:
            for row in _clip(region, facts.rows):
                earlier = pending[row]
                if earlier is not None:
                    key = (earlier.index, op.index)
                    if key not in reported:
                        reported.add(key)
                        findings.append(Finding(
                            "dead-write", earlier.index, earlier.name,
                            f"write to wordline {row} is overwritten by "
                            f"op {op.index} `{op.name}` (scratch) with no "
                            f"read in between (wasted cycles)", row=row))
                pending[row] = None
    return findings


def check_skips(facts: ProgramFacts) -> list[Finding]:
    """Sparsity skips elide only provably zero-preserving work.

    A SKIPPED record is emitted *inside* an executed composite (the trace
    hook fires on the composite before its body runs, so the enclosing
    op's record precedes its skip records). Soundness means two things:
    the skip itself writes nothing, and the destination region it elided
    is inside the write set the enclosing composite already declares —
    i.e. the skipped sub-sequence could only have rewritten state the
    composite owns, and eliding it (the operand plane being all zero)
    leaves that state's value unchanged.
    """
    findings = []
    last_executed: OpFacts | None = None
    for op in facts.ops:
        if op.disposition != SKIPPED:
            last_executed = op
            if op.skip_dest is not None:
                findings.append(Finding(
                    "skip", op.index, op.name,
                    "executed op carries a skip destination",
                    row=op.skip_dest.row))
            continue
        if op.writes or op.pred_writes or op.scratch_writes or op.inits:
            findings.append(Finding(
                "skip", op.index, op.name,
                "skipped step declares architectural writes; a skip must "
                "elide work, not perform it"))
        if op.skip_dest is None:
            findings.append(Finding(
                "skip", op.index, op.name,
                "skipped step declares no destination region"))
            continue
        dest = op.skip_dest
        owned: tuple[Region, ...] = ()
        if last_executed is not None:
            owned = (last_executed.writes + last_executed.pred_writes
                     + last_executed.scratch_writes + last_executed.inits)
        if not any(r.row <= dest.row and dest.end <= r.end for r in owned):
            encloser = (f"op {last_executed.index} "
                        f"`{last_executed.name}`"
                        if last_executed is not None
                        else "<none precedes it>")
            findings.append(Finding(
                "skip", op.index, op.name,
                f"skip destination {dest} is not covered by the write set "
                f"of the enclosing {encloser}: eliding it is not provably "
                f"zero-preserving", row=dest.row))
    return findings


def verify_program(facts: ProgramFacts) -> list[Finding]:
    """All passes, in severity order."""
    findings = check_bounds(facts)
    findings += check_def_before_use(facts)
    findings += check_overlap(facts)
    findings += check_tag_carry(facts)
    findings += check_dead_writes(facts)
    findings += check_skips(facts)
    return findings


def assert_clean(facts: ProgramFacts) -> None:
    """Raise a structured ``VerifyError`` on the first finding."""
    findings = verify_program(facts)
    if findings:
        first = findings[0]
        raise VerifyError(
            f"{facts.label}: {len(findings)} finding(s); first: {first}",
            check=first.check, op=first.op, row=first.row)
