"""Tests for the data-layout engine, anchored to Sec. IV and Sec. VI-A."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bits import is_power_of_two
from repro.common.errors import MappingError
from repro.config import NeuralCacheConfig
from repro.core.mapping import (
    ReductionPlan,
    _reduction_plan,
    map_conv,
    map_network,
    map_node,
    map_pool,
)
from repro.nn import AvgPool, Conv2D, MaxPool, build_inception_v3
from repro.sram.layout import max_conv_filter_bytes

CFG = NeuralCacheConfig()


def conv_mapping(kernel, channels, out_channels=8, size=16, stride=1,
                 padding="same"):
    conv = Conv2D(out_channels=out_channels, kernel=kernel, stride=stride,
                  padding=padding)
    return map_conv(CFG, "layer", conv, (size, size, channels))


class TestWorkedExample:
    """Sec. VI-A: Conv2d_2b_3x3 of Inception v3."""

    @pytest.fixture(scope="class")
    def mapping(self):
        net = build_inception_v3()
        node = net.node("Conv2d_2b_3x3")
        return map_conv(CFG, node.name, net.conv_of(node),
                        net.input_shape_of(node.name))

    def test_parallel_convolutions_about_32k(self, mapping):
        assert mapping.parallel_outputs == 32256  # "~32 thousand"

    def test_43_serial_passes(self, mapping):
        assert mapping.serial_passes == 43

    def test_utilization_99_7_percent(self, mapping):
        assert mapping.utilization == pytest.approx(0.997, abs=0.001)

    def test_channels_not_padded(self, mapping):
        assert mapping.channels_padded == 32
        assert mapping.convs_per_array == 8


class TestFilterPacking:
    def test_1x1_packs_16_channels(self):
        mapping = conv_mapping((1, 1), channels=768)
        assert mapping.pack_factor == 16
        assert mapping.filter_bytes_per_bitline == 16
        assert mapping.effective_channels == 48
        assert mapping.channels_padded == 64

    def test_small_channel_1x1_packs_fully(self):
        mapping = conv_mapping((1, 1), channels=3)
        assert mapping.pack_factor == 3
        assert mapping.channels_padded == 1

    def test_packing_keeps_all_channels_within_two_arrays(self):
        # Sec. IV-A: "by packing all channels in the network it is
        # guaranteed to fit within 2 arrays that share sense amps".
        for channels in (64, 192, 768, 1280, 2048):
            mapping = conv_mapping((1, 1), channels=channels)
            assert mapping.arrays_per_conv <= 2

    def test_no_packing_for_multibyte_windows(self):
        assert conv_mapping((3, 3), channels=64).pack_factor == 1


class TestFilterSplitting:
    def test_5x5_splits_in_three(self):
        mapping = conv_mapping((5, 5), channels=48)
        assert mapping.split_factor == 3
        assert mapping.filter_bytes_per_bitline == 9
        assert mapping.effective_channels == 144

    def test_split_threshold_is_9_bytes(self):
        assert conv_mapping((3, 3), channels=8).split_factor == 1
        assert conv_mapping((2, 5), channels=8).split_factor == 2

    def test_split_respects_wordline_budget(self):
        budget = max_conv_filter_bytes(CFG.geometry.array_rows)
        for kernel in ((5, 5), (7, 7), (3, 9), (11, 11)):
            mapping = conv_mapping(kernel, channels=4)
            assert mapping.filter_bytes_per_bitline <= budget


class TestChannelRounding:
    @pytest.mark.parametrize("channels", [3, 17, 48, 100, 192, 300])
    def test_padded_channels_are_powers_of_two(self, channels):
        mapping = conv_mapping((3, 3), channels=channels)
        assert is_power_of_two(mapping.channels_padded)
        assert mapping.channels_padded >= mapping.effective_channels

    def test_large_channels_span_two_arrays(self):
        mapping = conv_mapping((3, 3), channels=448)
        assert mapping.channels_padded == 512
        assert mapping.arrays_per_conv == 2
        assert mapping.convs_per_array == 0
        assert mapping.cross_array_steps == 1


class TestParallelisation:
    def test_parallel_never_exceeds_work(self):
        mapping = conv_mapping((3, 3), channels=4, out_channels=2, size=4)
        assert mapping.parallel_outputs <= mapping.total_outputs
        assert mapping.serial_passes == 1

    def test_utilization_bounds(self):
        mapping = conv_mapping((3, 3), channels=32, size=64)
        assert 0 < mapping.utilization <= 1

    def test_outputs_last_pass(self):
        mapping = conv_mapping((3, 3), channels=32, out_channels=64,
                               size=147)
        expected = (mapping.total_outputs
                    - (mapping.serial_passes - 1) * mapping.parallel_outputs)
        assert mapping.outputs_last_pass == expected


class TestPoolMapping:
    def test_maxpool_has_no_filters_or_reduction(self):
        pool = MaxPool(kernel=(3, 3), stride=2, padding="valid")
        mapping = map_pool(CFG, "pool", pool, (147, 147, 64))
        assert mapping.kind == "maxpool"
        assert mapping.filter_load_bytes == 0
        assert mapping.channels_padded == 1
        assert mapping.convs_per_array == CFG.geometry.array_cols

    def test_large_avgpool_window_splits(self):
        pool = AvgPool(kernel=(8, 8), stride=1, padding="valid")
        mapping = map_pool(CFG, "pool", pool, (8, 8, 2048))
        assert mapping.kind == "avgpool"
        assert mapping.split_factor > 1
        assert mapping.filter_bytes_per_bitline <= 9


class TestNetworkMapping:
    def test_inception_maps_completely(self):
        net = build_inception_v3()
        mappings = map_network(CFG, net)
        # 95 convs + 4 max pools + 10 average pools.
        assert len(mappings) == 109
        assert all(m.arrays_per_conv <= 2 for m in mappings)
        assert all(m.serial_passes >= 1 for m in mappings)

    def test_concat_maps_to_none(self):
        net = build_inception_v3()
        node = net.node("Mixed_5b/concat")
        assert map_node(CFG, net, node) is None

    def test_degenerate_1x1x1_still_maps(self):
        mapping = map_conv(CFG, "tiny", Conv2D(1, (1, 1)), (1, 1, 1))
        assert mapping.total_outputs == 1
        assert mapping.serial_passes == 1

    def test_array_too_small_for_any_filter_rejected(self):
        # An 80-row array leaves no word lines for filters at all.
        from repro.cache.geometry import CacheGeometry
        tiny = CacheGeometry(name="tiny", array_rows=80)
        config = NeuralCacheConfig().with_geometry(tiny)
        with pytest.raises(MappingError):
            map_conv(config, "bad", Conv2D(1, (3, 3), padding="same"),
                     (8, 8, 2))


@given(st.integers(min_value=1, max_value=11),
       st.integers(min_value=1, max_value=11),
       st.integers(min_value=1, max_value=512),
       st.integers(min_value=1, max_value=64))
@settings(max_examples=60, deadline=None)
def test_mapping_invariants_property(r, s, channels, out_channels):
    conv = Conv2D(out_channels=out_channels, kernel=(r, s), padding="same")
    mapping = map_conv(CFG, "prop", conv, (16, 16, channels))
    budget = max_conv_filter_bytes(CFG.geometry.array_rows)
    # Word-line budget holds (packed 1x1s stream inputs a byte at a time).
    if mapping.pack_factor == 1:
        assert mapping.filter_bytes_per_bitline <= budget
    assert is_power_of_two(mapping.channels_padded)
    assert mapping.parallel_outputs <= mapping.total_outputs
    assert 0 < mapping.utilization <= 1
    assert (mapping.serial_passes - 1) * mapping.parallel_outputs \
        < mapping.total_outputs
    assert (mapping.serial_passes * mapping.parallel_outputs
            >= mapping.total_outputs)


class TestReductionPlan:
    """Cross-array reduction plans: group structure and hop classes."""

    def test_single_array_layers_have_an_empty_plan(self):
        mapping = conv_mapping((3, 3), channels=32)
        assert mapping.arrays_per_conv == 1
        assert mapping.reduction_plan.group_size == 1
        assert mapping.reduction_plan.hops == ()
        assert mapping.cross_array_steps == 0

    def test_two_array_span_is_one_sense_amp_hop(self):
        mapping = conv_mapping((3, 3), channels=448)
        plan = mapping.reduction_plan
        assert plan.group_size == 2
        assert [h.kind for h in plan.hops] == ["pair"]
        assert plan.hops[0].span == 2
        assert (plan.hops[0].bits_per_cycle
                == CFG.interconnect.bank_bits_per_cycle)

    def test_hop_kinds_follow_the_interconnect_reach(self):
        # pair while the hop stays inside a sub-array (2 arrays), bus up
        # to a slice (320 arrays), ring beyond — widths straight from
        # InterconnectModel.
        plan = _reduction_plan(CFG, "wide", 1024)
        kinds = [h.kind for h in plan.hops]
        spans = [h.span for h in plan.hops]
        assert spans == [2 << level for level in range(10)]
        assert kinds == (["pair"] + ["bus"] * 7 + ["ring"] * 2)
        widths = {h.kind: h.bits_per_cycle for h in plan.hops}
        assert widths["pair"] == CFG.interconnect.bank_bits_per_cycle
        assert widths["bus"] == CFG.interconnect.quadrant_bus_bytes_per_cycle * 8
        assert widths["ring"] == CFG.interconnect.ring_bytes_per_cycle * 8

    def test_non_power_of_two_span_rejected_at_map_time(self):
        # 24-column arrays make a padded channel count of 64 span three
        # arrays — unreachable by the reduction tree.
        from repro.cache.geometry import CacheGeometry
        config = NeuralCacheConfig(pack_limit=1).with_geometry(
            CacheGeometry(name="cols24", array_cols=24))
        with pytest.raises(MappingError, match="power-of-two"):
            map_conv(config, "bad", Conv2D(8, (1, 1)), (8, 8, 64))

    def test_plan_validates_its_own_shape(self):
        from repro.core.mapping import ReductionHop
        with pytest.raises(MappingError):
            ReductionPlan(group_size=3, hops=())
        with pytest.raises(MappingError):
            ReductionPlan(group_size=4, hops=(
                ReductionHop(level=0, kind="pair", span=2,
                             bits_per_cycle=32),))

    def test_cross_array_cycles_match_the_legacy_formula(self):
        # The plan-based charge must be cycle-identical to the old
        # ``steps * (move(w) + add(w))`` accounting under both presets.
        from repro.sram.cost import CycleCosts
        width = CFG.reduction_bits
        for span in (2, 4, 16):
            plan = _reduction_plan(CFG, "span", span)
            for costs in (CycleCosts.derived(), CycleCosts.paper()):
                legacy = plan.levels * (costs.move(width) + costs.add(width))
                assert plan.cross_array_cycles(costs, width) == legacy
