"""The unified Backend protocol: analytic and functional engines behind
one run(network, batch_size) interface."""

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.engine.backend import (
    AnalyticBackend,
    Backend,
    BackendOptions,
    BackendResult,
    FleetExecutor,
    available_backends,
    get_backend,
    tiny_verification_network,
)


@pytest.fixture(scope="module")
def tiny_net():
    return tiny_verification_network()


class TestRegistry:
    def test_all_engines_registered(self):
        assert set(available_backends()) == {"analytic", "fleet",
                                             "fleet-packed", "sharded",
                                             "sharded-unpacked"}

    def test_get_backend_resolves(self):
        assert isinstance(get_backend("analytic"), AnalyticBackend)
        assert isinstance(get_backend("fleet"), FleetExecutor)
        packed = get_backend("fleet-packed")
        assert isinstance(packed, FleetExecutor)
        assert packed.packed and packed.name == "fleet-packed"
        assert not get_backend("fleet").packed

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown backend"):
            get_backend("quantum")

    def test_engines_satisfy_protocol(self):
        for name in available_backends():
            assert isinstance(get_backend(name), Backend)

    @pytest.mark.parametrize("name", available_backends())
    def test_explicit_config_propagates(self, name):
        """Every registered factory must accept the config positionally
        and hand it to the engine it builds."""
        from repro.config import NeuralCacheConfig

        config = NeuralCacheConfig()
        backend = get_backend(name, config)
        assert backend.config is config

    @pytest.mark.parametrize("name", available_backends())
    def test_options_batched_propagates(self, name):
        """Every registered factory takes one ``BackendOptions`` value
        and hands its knobs to the engine it builds (the analytic model,
        which has no functional loop to fold, accepts and ignores
        ``batched`` for registry uniformity)."""
        backend = get_backend(name, options=BackendOptions(batched=False))
        if hasattr(backend, "batched"):
            assert backend.batched is False
        default = get_backend(name)
        if hasattr(default, "batched"):
            assert default.batched is True
        # The flag must reach every shard work unit of a sharded backend.
        if hasattr(backend, "shard_works"):
            for work in backend.shard_works(tiny_verification_network(),
                                            []):
                assert work.batched is False

    @pytest.mark.parametrize("name", ["fleet", "fleet-packed", "sharded",
                                      "sharded-unpacked"])
    def test_options_sparsity_propagates(self, name):
        backend = get_backend(name, options=BackendOptions(sparsity=True))
        assert backend.sparsity is True
        assert get_backend(name).sparsity is False
        if hasattr(backend, "shard_works"):
            for work in backend.shard_works(tiny_verification_network(),
                                            []):
                assert work.sparsity is True

    @pytest.mark.parametrize("name", ["fleet", "fleet-packed", "sharded",
                                      "sharded-unpacked"])
    def test_options_precision_propagates(self, name):
        from repro.core.precision import LayerPrecision

        table = LayerPrecision(default_bits=6)
        backend = get_backend(name,
                              options=BackendOptions(precision=table))
        assert backend.precision is table
        if hasattr(backend, "shard_works"):
            for work in backend.shard_works(tiny_verification_network(),
                                            []):
                assert work.precision is table

    def test_options_shards_propagates(self):
        backend = get_backend("sharded", options=BackendOptions(shards=3))
        assert backend.shards == 3

    @pytest.mark.parametrize("name,options", [
        ("analytic", BackendOptions(sparsity=True)),
        ("analytic", BackendOptions(sanitize=True)),
        ("fleet", BackendOptions(driver="pool")),
        ("fleet", BackendOptions(shards=2)),
        ("fleet-packed", BackendOptions(shards=2)),
        ("analytic", BackendOptions(shards=2)),
    ])
    def test_inapplicable_options_rejected(self, name, options):
        """A misplaced knob fails loudly instead of silently no-opping."""
        with pytest.raises(SimulationError, match="does not take"):
            get_backend(name, options=options)

    def test_analytic_precision_points_at_network(self):
        from repro.core.precision import LayerPrecision

        with pytest.raises(SimulationError, match="network.precision"):
            get_backend("analytic", options=BackendOptions(
                precision=LayerPrecision(default_bits=4)))

    def test_legacy_kwargs_deprecated_but_work(self):
        """The pre-BackendOptions keywords still work for one release,
        warning on every use."""
        with pytest.warns(DeprecationWarning, match="BackendOptions"):
            backend = get_backend("fleet", batched=False)
        assert backend.batched is False
        with pytest.warns(DeprecationWarning, match="BackendOptions"):
            sharded = get_backend("sharded", driver="thread")
        assert sharded.driver == "thread"

    def test_legacy_kwargs_cannot_override_options(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SimulationError, match="conflicting"):
                get_backend("fleet", options=BackendOptions(batched=True),
                            batched=False)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SimulationError, match="conflicting"):
                get_backend("sharded",
                            options=BackendOptions(driver="serial"),
                            driver="thread")

    def test_legacy_kwargs_fold_into_options(self):
        """A legacy keyword composes with an options object that left
        that knob unset."""
        with pytest.warns(DeprecationWarning):
            backend = get_backend("sharded",
                                  options=BackendOptions(shards=3),
                                  driver="thread")
        assert backend.shards == 3 and backend.driver == "thread"

    def test_options_are_frozen(self):
        options = BackendOptions()
        with pytest.raises(Exception):
            options.sparsity = True


class TestAnalyticBackend:
    def test_run_matches_concrete_simulator(self):
        from repro.core.executor import NeuralCacheSimulator
        from repro.nn import build_inception_v3

        net = build_inception_v3()
        backend = AnalyticBackend()
        result = backend.run(net, batch_size=2)
        direct = NeuralCacheSimulator(net).run(2)
        assert result.backend == "analytic"
        assert result.batch_size == 2
        assert result.latency_s == direct.total_time
        assert result.energy_j == direct.total_energy
        assert result.inference.batch_size == 2

    def test_simulator_cached_per_network(self):
        from repro.nn import build_inception_v3

        net = build_inception_v3()
        backend = AnalyticBackend()
        assert backend.simulator(net) is backend.simulator(net)

    def test_simulator_cache_is_bounded(self):
        backend = AnalyticBackend()
        networks = [tiny_verification_network()
                    for _ in range(AnalyticBackend.CACHE_SIZE + 3)]
        for net in networks:
            backend.simulator(net)
        assert len(backend._simulators) == AnalyticBackend.CACHE_SIZE
        # The most recent network is still cached.
        assert backend.simulator(networks[-1]) is backend.simulator(
            networks[-1])

    def test_summary_renders_latency(self):
        from repro.nn import build_inception_v3

        backend = AnalyticBackend()
        text = backend.run(build_inception_v3()).summary()
        assert "latency" in text and "analytic" in text

    @pytest.mark.parametrize("batch_size", [0, -1])
    def test_bad_batch_rejected(self, tiny_net, batch_size):
        """Regression: the analytic engine used to accept batch <= 0 and
        return nonsense latency/throughput when called programmatically."""
        backend = AnalyticBackend()
        with pytest.raises(SimulationError, match="batch size"):
            backend.run(tiny_net, batch_size=batch_size)
        with pytest.raises(SimulationError, match="batch size"):
            backend.throughput(tiny_net, batch_size=batch_size)


class TestFleetExecutor:
    def test_run_verifies_bit_exact(self, tiny_net):
        backend = FleetExecutor()
        result = backend.run(tiny_net, batch_size=2)
        assert result.backend == "fleet"
        assert result.verified_images == 2
        assert result.report.mac > 0
        assert result.outputs is not None
        assert tiny_net.output_name in result.outputs

    def test_outputs_match_golden_executor(self, tiny_net):
        from repro.nn import QuantizedTensor, ReferenceExecutor
        from repro.nn.reference import initialise_weights

        backend = FleetExecutor(seed=3)
        result = backend.run(tiny_net, batch_size=1)
        # Rebuild the deterministic image stream and check independently.
        weights = initialise_weights(tiny_net, seed=3)
        rng = np.random.default_rng(3)
        image = QuantizedTensor.from_real(
            rng.uniform(0, 6, tiny_net.input_shape), weights.input_params)
        expected = ReferenceExecutor(tiny_net, weights).run_output(image)
        got = result.outputs[tiny_net.output_name]
        assert np.array_equal(got.data, expected.data)

    def test_packed_store_matches_unpacked(self, tiny_net):
        unpacked = FleetExecutor().run(tiny_net, batch_size=1)
        packed = FleetExecutor(packed=True).run(tiny_net, batch_size=1)
        assert packed.backend == "fleet-packed"
        assert packed.verified_images == 1
        assert packed.report == unpacked.report
        got = packed.outputs[tiny_net.output_name]
        want = unpacked.outputs[tiny_net.output_name]
        assert np.array_equal(got.data, want.data)

    @pytest.mark.parametrize("batch_size", [0, -3])
    def test_bad_batch_rejected(self, tiny_net, batch_size):
        with pytest.raises(SimulationError, match="batch size"):
            FleetExecutor().run(tiny_net, batch_size=batch_size)

    def test_default_network_is_functional_scale(self):
        backend = FleetExecutor()
        net = backend.default_network()
        result = backend.run(net)
        assert result.verified_images == 1

    def test_summary_renders_cycles(self, tiny_net):
        text = FleetExecutor().run(tiny_net).summary()
        assert "compute cycles" in text and "bit-exact" in text

    def test_summary_counts_verified_over_batch(self, tiny_net):
        text = FleetExecutor().run(tiny_net, batch_size=2).summary()
        assert "2/2" in text

    def test_verify_off_summary_omits_verification(self, tiny_net):
        result = FleetExecutor(verify=False).run(tiny_net, batch_size=2)
        assert result.verified_images == 0
        assert not result.verify
        assert "verified" not in result.summary()

    @pytest.mark.parametrize("packed", [False, True])
    @pytest.mark.parametrize("batch_size", [1, 3, 8])
    def test_batched_matches_per_image_loop(self, tiny_net, packed,
                                            batch_size):
        """The tentpole property: folding the batch into the fleet axis
        changes wall-clock only — outputs, cycle reports and verification
        counts are identical to the per-image loop."""
        batched = FleetExecutor(packed=packed).run(tiny_net, batch_size)
        loop = FleetExecutor(packed=packed, batched=False).run(tiny_net,
                                                               batch_size)
        assert batched.report == loop.report
        assert batched.verified_images == loop.verified_images == batch_size
        for name in loop.outputs:
            assert np.array_equal(batched.outputs[name].data,
                                  loop.outputs[name].data), name

    def test_batched_report_is_per_image_scaled(self, tiny_net):
        """Regression: a batched pass must not double-count per-image
        cycles — its report is exactly the single-image report scaled."""
        single = FleetExecutor().run(tiny_net, batch_size=1)
        batched = FleetExecutor().run(tiny_net, batch_size=6)
        assert batched.report == single.report.scaled(6)

    def test_plans_each_layer_once_per_batch(self, tiny_net, monkeypatch):
        """Regression: run() used to rebuild the FunctionalExecutor (and
        re-plan every layer's mapping) for every image of the batch."""
        from repro.core.functional import FunctionalExecutor

        built = []

        class CountingExecutor(FunctionalExecutor):
            def __init__(self, *args, **kwargs):
                built.append(self)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr("repro.engine.backend.FunctionalExecutor",
                            CountingExecutor)
        result = FleetExecutor().run(tiny_net, batch_size=4)
        assert result.verified_images == 4
        assert len(built) == 1


class TestBackendResult:
    def test_is_frozen(self):
        result = BackendResult(backend="x", network="n", batch_size=1)
        with pytest.raises(AttributeError):
            result.backend = "y"

    def test_requested_verification_is_explicit_even_at_zero(self):
        """Regression: a verify-on run that verified nothing used to be
        indistinguishable from a verify-off run in the summary."""
        requested = BackendResult(backend="x", network="n", batch_size=2,
                                  verify=True, verified_images=0)
        assert "0/2" in requested.summary()
        off = BackendResult(backend="x", network="n", batch_size=2)
        assert "verified" not in off.summary()


class TestConsumers:
    def test_experiments_use_the_protocol(self):
        from repro.analysis import experiments

        backend = experiments._backend()
        assert isinstance(backend, Backend)

    def test_cli_backend_mode(self, capsys):
        from repro.__main__ import main

        assert main(["--backend", "fleet"]) == 0
        out = capsys.readouterr().out
        assert "backend=fleet" in out
        assert "bit-exact" in out

    def test_cli_rejects_backend_with_experiment_names(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["table3", "--backend", "fleet"])
        assert "takes no experiment names" in capsys.readouterr().err

    def test_cli_rejects_bad_batch(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["--backend", "fleet", "--batch", "0"])
        assert "--batch must be positive" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--batched", "--no-batched"])
    def test_cli_batched_flag(self, capsys, flag):
        from repro.__main__ import main

        assert main(["--backend", "fleet", "--batch", "2", flag]) == 0
        out = capsys.readouterr().out
        assert "backend=fleet" in out and "2/2" in out

    def test_cli_rejects_batched_for_analytic(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["--backend", "analytic", "--no-batched"])
        assert ("--batched/--no-batched only applies"
                in capsys.readouterr().err)

    def test_cli_rejects_batched_without_backend_mode(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["table3", "--no-batched"])
        assert ("--batched/--no-batched only applies"
                in capsys.readouterr().err)

    def test_cli_reports_engine_failure_without_usage_text(self, capsys,
                                                           monkeypatch):
        from repro import __main__ as cli
        from repro.common.errors import SimulationError

        class BrokenBackend:
            name = "fleet"

            def default_network(self):
                from repro.engine.backend import tiny_verification_network
                return tiny_verification_network()

            def run(self, network, batch_size=1):
                raise SimulationError("functional output diverged")

        monkeypatch.setattr(cli, "get_backend",
                            lambda name, **kwargs: BrokenBackend())
        assert cli.main(["--backend", "fleet"]) == 1
        err = capsys.readouterr().err
        assert "failed: functional output diverged" in err
        assert "usage:" not in err
