"""Quickstart: run one quantized convolution *inside the cache*.

Builds a small Conv2D layer, executes it bit-serially on a compute SRAM
array (every multiply happens on the bitlines, Fig. 6), verifies the
result against the golden NumPy executor, and then asks the analytic
simulator what the same layer costs on the full 35 MB Xeon LLC.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Conv2D,
    Network,
    NeuralCacheConfig,
    QuantizedTensor,
    ReferenceExecutor,
    initialise_weights,
)
from repro.core.functional import FunctionalConv
from repro.core.mapping import map_conv
from repro.core.schedule import schedule_layer


def main() -> None:
    # -- 1. a small quantized conv layer ---------------------------------
    input_shape = (8, 8, 8)
    conv = Conv2D(out_channels=16, kernel=(3, 3), padding="same")
    net = Network(name="quickstart")
    x = net.add_input("image", input_shape)
    net.add("conv", conv, x)
    weights = initialise_weights(net, seed=42)

    rng = np.random.default_rng(0)
    image = QuantizedTensor.from_real(rng.uniform(0, 6, input_shape),
                                      weights.input_params)

    # -- 2. run it bit-serially in the cache model ------------------------
    engine = FunctionalConv(conv, input_shape, weights.for_node("conv"),
                            output_params=weights.activation_params)
    in_cache = engine.run(image)
    print(f"mapped with C''={engine.mapping.channels_padded} bitlines per "
          f"output, {engine.mapping.filter_bytes_per_bitline} filter bytes "
          f"per bitline")
    print(f"executed {engine.report.passes} array passes: "
          f"{engine.report.mac} MAC cycles, {engine.report.reduction} "
          f"reduction cycles, {engine.report.quantization} quantization "
          f"cycles")

    # -- 3. verify against the golden executor ----------------------------
    golden = ReferenceExecutor(net, weights).run_output(image)
    assert np.array_equal(in_cache.data, golden.data)
    print("bit-exact match against the golden quantized executor ✓")

    # -- 4. what would this layer cost on the real 35 MB LLC? --------------
    config = NeuralCacheConfig()
    mapping = map_conv(config, "conv", conv, input_shape)
    schedule = schedule_layer(config, mapping)
    print(f"\non the Xeon E5 LLC: {mapping.parallel_outputs} outputs in "
          f"parallel, {mapping.serial_passes} serial pass(es)")
    for phase, seconds in schedule.time.as_dict().items():
        if seconds:
            print(f"  {phase:13s} {seconds * 1e9:10.1f} ns")
    print(f"  total          {schedule.latency * 1e9:10.1f} ns, "
          f"{schedule.total_energy * 1e6:.3f} uJ")


if __name__ == "__main__":
    main()
