"""Top-level configuration bundle for the Neural Cache simulator.

Collects every model the analytic executor needs: cache geometry, the
cycle-cost preset, interconnect/DRAM models, array energy, the compute
clock and system-level knobs (socket count for throughput, I/O-way budget
for batching spills). Defaults reproduce the paper's primary configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.dram import DramModel
from repro.cache.geometry import CacheGeometry, xeon_e5_2697_v3
from repro.cache.interconnect import InterconnectModel
from repro.common.errors import SimulationError
from repro.sram.cost import CycleCosts
from repro.sram.energy import COMPUTE_FREQUENCY_HZ, ArrayEnergyModel


@dataclass(frozen=True)
class NeuralCacheConfig:
    """Everything the analytic simulator needs, with paper defaults."""

    geometry: CacheGeometry = field(default_factory=xeon_e5_2697_v3)
    #: Cycle-cost preset; the paper's own deterministic model by default so
    #: reproduced figures line up with the published breakdown.
    costs: CycleCosts = field(default_factory=CycleCosts.paper)
    dram: DramModel = field(default_factory=DramModel)
    energy: ArrayEnergyModel = field(default_factory=ArrayEnergyModel)
    #: Compute-mode clock (2.5 GHz, conservative vs the 4 GHz access clock).
    frequency_hz: float = COMPUTE_FREQUENCY_HZ
    #: Sockets in the node; Neural Cache throughput scales linearly with
    #: host CPUs (Sec. VI-B), and the paper's Fig. 16 uses a dual socket.
    sockets: int = 2
    #: Fraction of the reserved I/O way usable for buffering outputs when
    #: batching (the rest buffers inputs).
    output_buffer_fraction: float = 0.5
    #: Cap on arrays per lockstep chunk of a functional fleet pass, so
    #: batched fleets (batch x arrays-per-image) stay memory-bounded.
    #: ``None`` selects the module default
    #: (:data:`repro.core.functional.MAX_FLEET_ARRAYS`).
    max_fleet_arrays: int | None = None
    #: Filter-splitting threshold in bytes per bitline (Sec. IV-A).
    split_threshold_bytes: int = 9
    #: Channels a 1x1 filter packs per bitline (Sec. IV-A).
    pack_limit: int = 16
    #: Element precision in bits (the paper assumes 8-bit quantization).
    element_bits: int = 8
    #: Effective slowdown of reserved-way (way-19) transfers relative to
    #: raw bus bandwidth. Streaming windows into bit-serial arrays is a
    #: transposed gather: every input byte lands on 8 separate wordlines
    #: of its target column group, each pixel's R.S.C window is scattered
    #: across way-19's row layout, and the window must be re-delivered to
    #: each (way, bank) placement the broadcast cannot cover. The paper
    #: measured this path with a micro-benchmark rather than deriving it;
    #: these constants are calibrated so input streaming and output
    #: transfer match the published Fig. 14 shares (15% and 4% at batch
    #: 1). Outputs are cheaper: one dense byte per output, written
    #: sequentially.
    input_gather_calibration: float = 30.0
    output_gather_calibration: float = 15.0
    #: Floor on the fresh-input fraction between serial passes: window
    #: overlap is only exploitable when spare word lines buffer the
    #: neighbouring bytes (Sec. IV-A), which the common layouts only
    #: partially have.
    input_reuse_floor: float = 0.5
    #: Partial-sum width (3 bytes) and reduction width (4 bytes), Fig. 10.
    partial_sum_bits: int = 24
    reduction_bits: int = 32

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise SimulationError("frequency must be positive")
        if self.sockets <= 0:
            raise SimulationError("socket count must be positive")
        if not 0 < self.output_buffer_fraction <= 1:
            raise SimulationError(
                "output buffer fraction must be in (0, 1]")
        if self.max_fleet_arrays is not None and self.max_fleet_arrays <= 0:
            raise SimulationError(
                "max fleet arrays must be positive (or None for the "
                "module default)")
        if self.split_threshold_bytes <= 0 or self.pack_limit <= 0:
            raise SimulationError("mapping thresholds must be positive")
        if self.element_bits <= 0:
            raise SimulationError("element bits must be positive")
        if self.input_gather_calibration < 1 or self.output_gather_calibration < 1:
            raise SimulationError(
                "I/O-way calibrations must be >= 1 (slowdown factors)")
        if not 0 < self.input_reuse_floor <= 1:
            raise SimulationError("input reuse floor must be in (0, 1]")

    @property
    def interconnect(self) -> InterconnectModel:
        """Interconnect model bound to this geometry and clock."""
        return InterconnectModel(geometry=self.geometry,
                                 frequency_hz=self.frequency_hz)

    def with_geometry(self, geometry: CacheGeometry) -> "NeuralCacheConfig":
        """The same configuration on a different cache (Table IV sweeps)."""
        return NeuralCacheConfig(
            geometry=geometry, costs=self.costs, dram=self.dram,
            energy=self.energy, frequency_hz=self.frequency_hz,
            sockets=self.sockets,
            output_buffer_fraction=self.output_buffer_fraction,
            max_fleet_arrays=self.max_fleet_arrays,
            split_threshold_bytes=self.split_threshold_bytes,
            pack_limit=self.pack_limit, element_bits=self.element_bits,
            input_gather_calibration=self.input_gather_calibration,
            output_gather_calibration=self.output_gather_calibration,
            input_reuse_floor=self.input_reuse_floor,
            partial_sum_bits=self.partial_sum_bits,
            reduction_bits=self.reduction_bits)

    @property
    def io_way_slots(self) -> int:
        """Bit-serial slots of the reserved I/O ways (quantization runs
        on outputs staged there, Sec. IV-D)."""
        geometry = self.geometry
        return (geometry.slices * geometry.reserved_io_ways
                * geometry.arrays_per_way * geometry.array_cols)

    @property
    def output_buffer_bytes(self) -> float:
        """Output-buffer capacity across the node's reserved ways."""
        return (self.geometry.slices * self.geometry.io_way_bytes_per_slice
                * self.output_buffer_fraction)

    def peak_ops_per_second(self, op_cycles: int | None = None) -> float:
        """Peak 8-bit op throughput of all ALU slots (the 28 TOP/s claim).

        One "op" is an 8-bit multiply; the paper's 28 TOP/s at 35 MB
        corresponds to every bitline retiring one multiply every
        ``multiply(8)`` cycles at 2.5 GHz.
        """
        if op_cycles is None:
            op_cycles = self.costs.multiply(self.element_bits)
        if op_cycles <= 0:
            raise SimulationError("op cycle count must be positive")
        return (self.geometry.alu_slots * self.frequency_hz) / op_cycles
