"""Fleet-wide bit-serial ops are bit-exact vs the single-array unit.

The acceptance contract of the array-fleet refactor: for random operands,
every :class:`FleetBitSerialUnit` operation must produce, in each member
array, exactly the bits that an independent single-array
:class:`BitSerialUnit` produces — and must charge exactly the same cycle
count, which the derived cost model pins analytically.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ArrayFleet, FleetBitSerialUnit
from repro.sram import BitSerialUnit, CycleCosts, Operand, SRAMArray

COSTS = CycleCosts.derived()
N_ARRAYS = 3
COLS = 16


def make_pair():
    fleet = FleetBitSerialUnit(ArrayFleet(N_ARRAYS, rows=256, cols=COLS))
    singles = [BitSerialUnit(SRAMArray(rows=256, cols=COLS))
               for _ in range(N_ARRAYS)]
    return fleet, singles


def write_both(fleet, singles, op, values):
    fleet.write_values(op, values)
    for k, single in enumerate(singles):
        single.write_values(op, values[k])


def assert_agree(fleet, singles, op):
    got = fleet.read_values(op)
    for k, single in enumerate(singles):
        assert np.array_equal(got[k], single.read_values(op)), (
            f"array {k} diverged")


def assert_cycles(fleet, singles, expected=None):
    for single in singles:
        assert fleet.cycles == single.cycles
    if expected is not None:
        assert fleet.cycles == expected


@st.composite
def operand_matrices(draw, max_bits=10, count=2, min_value=0):
    nbits = draw(st.integers(min_value=1, max_value=max_bits))
    hi = (1 << nbits) - 1
    mats = []
    for _ in range(count):
        flat = draw(st.lists(st.integers(min_value=min_value, max_value=hi),
                             min_size=N_ARRAYS * COLS,
                             max_size=N_ARRAYS * COLS))
        mats.append(np.array(flat, dtype=np.int64).reshape(N_ARRAYS, COLS))
    return nbits, mats


@given(operand_matrices())
@settings(max_examples=40, deadline=None)
def test_add_matches_single_arrays(case):
    nbits, (av, bv) = case
    fleet, singles = make_pair()
    a, b = Operand(0, nbits), Operand(nbits, nbits)
    dst = Operand(2 * nbits, nbits + 1)
    write_both(fleet, singles, a, av)
    write_both(fleet, singles, b, bv)
    fleet.add(a, b, dst)
    for single in singles:
        single.add(a, b, dst)
    assert np.array_equal(fleet.read_values(dst), av + bv)
    assert_agree(fleet, singles, dst)
    assert_cycles(fleet, singles, COSTS.add(nbits))


@given(operand_matrices(max_bits=8))
@settings(max_examples=40, deadline=None)
def test_sub_matches_single_arrays(case):
    nbits, (av, bv) = case
    fleet, singles = make_pair()
    a, b = Operand(0, nbits), Operand(nbits, nbits)
    dst = Operand(2 * nbits, nbits + 1)
    scratch = Operand(4 * nbits, nbits)
    write_both(fleet, singles, a, av)
    write_both(fleet, singles, b, bv)
    fleet.sub(a, b, dst, scratch)
    for single in singles:
        single.sub(a, b, dst, scratch)
    assert_agree(fleet, singles, dst)
    assert_cycles(fleet, singles, COSTS.sub(nbits))


@given(operand_matrices(max_bits=8))
@settings(max_examples=30, deadline=None)
def test_multiply_matches_single_arrays(case):
    nbits, (av, bv) = case
    fleet, singles = make_pair()
    a, b = Operand(0, nbits), Operand(nbits, nbits)
    product = Operand(2 * nbits, 2 * nbits)
    write_both(fleet, singles, a, av)
    write_both(fleet, singles, b, bv)
    fleet.multiply(a, b, product)
    for single in singles:
        single.multiply(a, b, product)
    assert np.array_equal(fleet.read_values(product), av * bv)
    assert_agree(fleet, singles, product)
    assert_cycles(fleet, singles, COSTS.multiply(nbits))


@given(operand_matrices(max_bits=6, min_value=0))
@settings(max_examples=20, deadline=None)
def test_divide_matches_single_arrays(case):
    nbits, (av, bv) = case
    bv = np.maximum(bv, 1)  # the mapper never divides by zero
    fleet, singles = make_pair()
    a, b = Operand(0, nbits), Operand(nbits, nbits)
    quotient = Operand(2 * nbits, nbits)
    work = Operand(3 * nbits, 3 * nbits + 4)
    write_both(fleet, singles, a, av)
    write_both(fleet, singles, b, bv)
    fleet.divide(a, b, quotient, work)
    for single in singles:
        single.divide(a, b, quotient, work)
    assert np.array_equal(fleet.read_values(quotient), av // bv)
    assert_agree(fleet, singles, quotient)
    assert_cycles(fleet, singles, COSTS.divide(nbits))


@given(operand_matrices(max_bits=8))
@settings(max_examples=30, deadline=None)
def test_max_update_matches_single_arrays(case):
    nbits, (av, bv) = case
    fleet, singles = make_pair()
    current, cand = Operand(0, nbits), Operand(nbits, nbits)
    scratch = Operand(2 * nbits, 2 * nbits + 1)
    write_both(fleet, singles, current, av)
    write_both(fleet, singles, cand, bv)
    fleet.max_update(current, cand, scratch)
    for single in singles:
        single.max_update(current, cand, scratch)
    assert np.array_equal(fleet.read_values(current), np.maximum(av, bv))
    assert_agree(fleet, singles, current)
    assert_cycles(fleet, singles, COSTS.max_update(nbits))


@given(operand_matrices(max_bits=8))
@settings(max_examples=30, deadline=None)
def test_mac_matches_single_arrays(case):
    nbits, (av, bv) = case
    acc_bits = 2 * nbits + 4
    fleet, singles = make_pair()
    a, b = Operand(0, nbits), Operand(nbits, nbits)
    scratch = Operand(2 * nbits, 2 * nbits)
    acc = Operand(4 * nbits, acc_bits)
    write_both(fleet, singles, a, av)
    write_both(fleet, singles, b, bv)
    fleet.zero(acc)
    for single in singles:
        single.zero(acc)
    fleet.mac(a, b, scratch, acc)
    for single in singles:
        single.mac(a, b, scratch, acc)
    assert np.array_equal(fleet.read_values(acc), av * bv)
    assert_agree(fleet, singles, acc)
    assert_cycles(fleet, singles,
                  COSTS.const_write(acc_bits) + COSTS.mac(nbits, acc_bits))


@given(operand_matrices(max_bits=8, count=1))
@settings(max_examples=30, deadline=None)
def test_relu_matches_single_arrays(case):
    nbits, (av,) = case
    fleet, singles = make_pair()
    op = Operand(0, nbits)
    write_both(fleet, singles, op, av)
    fleet.relu(op, sign_row=op.bit(nbits - 1))
    for single in singles:
        single.relu(op, sign_row=op.bit(nbits - 1))
    sign = (av >> (nbits - 1)) & 1
    assert np.array_equal(fleet.read_values(op), np.where(sign, 0, av))
    assert_agree(fleet, singles, op)
    assert_cycles(fleet, singles, COSTS.relu(nbits))


@given(operand_matrices(max_bits=8))
@settings(max_examples=30, deadline=None)
def test_logicals_match_single_arrays(case):
    nbits, (av, bv) = case
    fleet, singles = make_pair()
    a, b = Operand(0, nbits), Operand(nbits, nbits)
    dst = Operand(2 * nbits, nbits)
    write_both(fleet, singles, a, av)
    write_both(fleet, singles, b, bv)
    fleet.logical_xor(a, b, dst)
    for single in singles:
        single.logical_xor(a, b, dst)
    assert np.array_equal(fleet.read_values(dst), av ^ bv)
    assert_agree(fleet, singles, dst)
    assert_cycles(fleet, singles, COSTS.logical(nbits))


def test_reduce_tree_matches_single_arrays():
    rng = np.random.default_rng(11)
    width, elements = 6, 4
    av = rng.integers(0, 1 << width, (N_ARRAYS, COLS)).astype(np.int64)
    fleet, singles = make_pair()
    base = Operand(0, width + 2)
    segment = Operand(16, width + 2)
    write_both(fleet, singles, Operand(0, width), av)
    fleet.reduce_tree(base, segment, elements, width)
    for single in singles:
        single.reduce_tree(base, segment, elements, width)
    got = fleet.read_values(base)
    heads = np.arange(0, COLS, elements)
    expected = av.reshape(N_ARRAYS, -1, elements).sum(axis=2)
    assert np.array_equal(got[:, heads], expected)
    assert_agree(fleet, singles, base)
    assert_cycles(fleet, singles, COSTS.reduction(elements, width))


def test_equality_and_search_match_single_arrays():
    rng = np.random.default_rng(13)
    nbits = 5
    av = rng.integers(0, 1 << nbits, (N_ARRAYS, COLS)).astype(np.int64)
    bv = av.copy()
    flip = rng.integers(0, 2, (N_ARRAYS, COLS)).astype(bool)
    bv[flip] = (bv[flip] + 1) % (1 << nbits)
    fleet, singles = make_pair()
    a, b = Operand(0, nbits), Operand(nbits, nbits)
    write_both(fleet, singles, a, av)
    write_both(fleet, singles, b, bv)
    fleet.equality_compare(a, b, 3 * nbits)
    for single in singles:
        single.equality_compare(a, b, 3 * nbits)
    flags = Operand(3 * nbits, 1)
    assert np.array_equal(fleet.read_values(flags), (av == bv).astype(int))
    assert_agree(fleet, singles, flags)
    assert_cycles(fleet, singles, COSTS.equality_compare(nbits))

    fleet2, singles2 = make_pair()
    write_both(fleet2, singles2, a, av)
    key = int(av[0, 0])
    fleet2.search(a, key, 3 * nbits)
    for single in singles2:
        single.search(a, key, 3 * nbits)
    assert np.array_equal(fleet2.read_values(flags), (av == key).astype(int))
    assert_agree(fleet2, singles2, flags)
    assert_cycles(fleet2, singles2, COSTS.search(nbits))


def test_shift_copy_matches_single_arrays():
    rng = np.random.default_rng(17)
    nbits, shift = 6, 3
    av = rng.integers(0, 1 << nbits, (N_ARRAYS, COLS)).astype(np.int64)
    fleet, singles = make_pair()
    src, dst = Operand(0, nbits), Operand(nbits, nbits)
    write_both(fleet, singles, src, av)
    fleet.shift_copy(src, dst, shift)
    for single in singles:
        single.shift_copy(src, dst, shift)
    expected = np.zeros_like(av)
    expected[:, :-shift] = av[:, shift:]
    assert np.array_equal(fleet.read_values(dst), expected)
    assert_agree(fleet, singles, dst)
    assert_cycles(fleet, singles, COSTS.move(nbits))


def test_write_values_broadcasts_scalars_and_vectors():
    fleet, _ = make_pair()
    op = Operand(0, 8)
    fleet.write_values(op, 42)
    assert np.all(fleet.read_values(op) == 42)
    vec = np.arange(COLS, dtype=np.int64)
    fleet.write_values(op, vec)
    for k in range(N_ARRAYS):
        assert np.array_equal(fleet.read_values(op)[k], vec)


def test_lockstep_compute_cycles_equal_single_array_cycles():
    """A fleet executes any sequence in the cycles of ONE array."""
    fleet, singles = make_pair()
    a, b = Operand(0, 8), Operand(8, 8)
    product = Operand(16, 16)
    fleet.write_values(a, 7)
    fleet.write_values(b, 9)
    singles[0].write_values(a, np.full(COLS, 7, dtype=np.int64))
    singles[0].write_values(b, np.full(COLS, 9, dtype=np.int64))
    fleet.multiply(a, b, product)
    singles[0].multiply(a, b, product)
    assert fleet.fleet.compute_cycles == singles[0].array.compute_cycles
