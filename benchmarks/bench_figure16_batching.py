"""Figure 16: throughput vs batch size for all three devices.

Benchmarks the 9-point batch sweep (1..256). Checks the published shape:
Neural Cache beats the other devices' *maximum* throughput even without
batching, gains from filter amortisation, and ends near 604 inf/s (2.2x
GPU, 12.4x CPU).
"""

from repro.analysis import figure16, paper
from repro.baselines import CpuBaseline, GpuBaseline
from repro.core.executor import NeuralCacheSimulator
from repro.nn import build_inception_v3

BATCHES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def regenerate_batch_sweep():
    network = build_inception_v3()
    sim = NeuralCacheSimulator(network)
    cpu = CpuBaseline(network)
    gpu = GpuBaseline(network)
    return {
        "neural_cache": [sim.throughput(b) for b in BATCHES],
        "cpu": [cpu.throughput(b) for b in BATCHES],
        "gpu": [gpu.throughput(b) for b in BATCHES],
    }


def test_figure16_batching(benchmark, record):
    series = benchmark(regenerate_batch_sweep)
    nc_peak = max(series["neural_cache"])
    assert series["neural_cache"][0] > max(series["gpu"])
    assert series["neural_cache"][0] > max(series["cpu"])
    assert abs(nc_peak - paper.NC_MAX_THROUGHPUT) / paper.NC_MAX_THROUGHPUT < 0.2
    # GPU plateaus after batch 64 (Sec. VI-B).
    gpu_64 = series["gpu"][BATCHES.index(64)]
    assert gpu_64 > 0.85 * max(series["gpu"])
    record(figure16())
