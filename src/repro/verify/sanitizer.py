"""Shadow-state sanitizer: the dynamic oracle behind the static passes.

:class:`ShadowPlaneStore` wraps any
:class:`~repro.engine.fleet.PlaneStore` and tracks one bit of shadow
state per wordline: *has anything ever written this row?* Every read path
of the store seam — compute sensing (``sense``/``sense_single``/
``read_plane``), tag-masked writes (which read the destination through
the write drivers' mux), and host reads (``read_row``/``dump_bits``) —
checks the shadow first and raises a structured
:class:`~repro.common.errors.VerifyError` at the exact offending
primitive. That makes it the runtime ground truth the static
``uninit-read`` pass is tested against: a program the static pass calls
clean must execute under the sanitizer without raising, and a seeded
uninitialized read must trip both.

Shadow granularity is per-row (not per-column): the lockstep execution
model runs the same bit-serial program on every bitline, so partial-row
host loads are treated as initialising the row. Physically the arrays
power up to well-defined zeros — the sanitizer is checking *program*
discipline (the paper's "validate once, broadcast everywhere" contract),
not electrical state.

Composition, not inheritance: the wrapper holds the real store and
forwards everything, so it works identically over the unpacked
reference store, the packed word store and the shared-memory store. The
cycle counters are property proxies onto the inner store — sequencer
code does ``fleet.compute_cycles += 1`` and both halves of that
read-modify-write must land on the same counter.

Opt in via ``make_fleet(..., sanitize=True)`` or ``NEURALCACHE_SANITIZE=1``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.common.errors import VerifyError
from repro.engine.fleet import PlaneStore

__all__ = ["ShadowPlaneStore"]


class ShadowPlaneStore:
    """A :class:`PlaneStore` wrapper that traps uninitialized reads."""

    def __init__(self, store: PlaneStore):
        self._store = store
        self._shadow = np.zeros(store.rows, dtype=bool)
        self.n_arrays = store.n_arrays
        self.rows = store.rows
        self.cols = store.cols

    # -- shadow state --------------------------------------------------
    def _require(self, row: int, what: str) -> None:
        if 0 <= row < self.rows and not self._shadow[row]:
            raise VerifyError(
                f"{what} reads wordline {row} before anything wrote it",
                check="uninit-read", op=what, row=row)

    def _mark(self, row: int, n_rows: int = 1) -> None:
        self._shadow[max(row, 0):row + n_rows] = True

    @property
    def shadow_written(self) -> np.ndarray:
        """Copy of the per-row init state (True = initialized)."""
        return self._shadow.copy()

    def mark_initialized(self, row: int, n_rows: int = 1) -> None:
        """Declare externally staged rows initialized (test preloads)."""
        self._mark(row, n_rows)

    def reset_shadow(self) -> None:
        """Forget all init state (e.g. between program runs)."""
        self._shadow[:] = False

    # -- counters (shared read-modify-write with the inner store) ------
    @property
    def access_cycles(self) -> int:
        return self._store.access_cycles

    @access_cycles.setter
    def access_cycles(self, value: int) -> None:
        self._store.access_cycles = value

    @property
    def compute_cycles(self) -> int:
        return self._store.compute_cycles

    @compute_cycles.setter
    def compute_cycles(self, value: int) -> None:
        self._store.compute_cycles = value

    # -- checked read paths --------------------------------------------
    def read_plane(self, row: int) -> np.ndarray:
        self._require(row, "compute sensing")
        return self._store.read_plane(row)

    def sense(self, row_a: int, row_b: int) -> tuple[np.ndarray, np.ndarray]:
        self._require(row_a, "compute sensing")
        self._require(row_b, "compute sensing")
        return self._store.sense(row_a, row_b)

    def sense_single(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        self._require(row, "compute sensing")
        return self._store.sense_single(row)

    def plane_any(self, row: int) -> bool:
        # Explicit proxy: the sparsity engine's zero-plane probe senses
        # real state, so the row must be initialized like any other read
        # — and when the probe says "all zero" (the only answer that
        # elides work), re-check against the raw plane so a store whose
        # zero flag drifts from its contents (e.g. a packed tail-mask
        # bug) trips here, at the skip decision, not as silent corruption.
        self._require(row, "sparsity zero-plane probe")
        result = bool(self._store.plane_any(row))
        if not result and bool(np.any(self._store.row_plane(row))):
            raise VerifyError(
                f"sparsity probe reported wordline {row} all-zero but the "
                f"plane holds set bits: the skipped step would have "
                f"changed state", check="sparse-skip", op="plane_any",
                row=row)
        return result

    def read_row(self, row: int) -> np.ndarray:
        self._require(row, "host read")
        return self._store.read_row(row)

    def dump_bits(self, top_row: int, n_rows: int, col_offset: int = 0,
                  n_cols: int | None = None) -> np.ndarray:
        for row in range(top_row, top_row + n_rows):
            self._require(row, "host dump")
        return self._store.dump_bits(top_row, n_rows, col_offset, n_cols)

    # -- checked write paths (masked writes read the destination) ------
    def store_plane(self, row: int, plane: np.ndarray,
                    mask: np.ndarray | None = None) -> None:
        if mask is not None:
            self._require(row, "tag-masked write-back")
        self._store.store_plane(row, plane, mask)
        self._mark(row)

    def write_back(self, row: int, plane: np.ndarray,
                   mask: np.ndarray | None = None) -> None:
        if mask is not None:
            self._require(row, "tag-masked write-back")
        self._store.write_back(row, plane, mask)
        self._mark(row)

    def move_plane(self, src_row: int, dst_row: int, stride: int,
                   group: int) -> None:
        # Explicit proxy: the inner store's move_plane reads the source
        # wordline through its own row_plane, which would bypass the
        # shadow if this fell through __getattr__.
        self._require(src_row, "cross-array move")
        self._store.move_plane(src_row, dst_row, stride, group)
        self._mark(dst_row)

    def write_row(self, row: int, bits: np.ndarray,
                  mask: np.ndarray | None = None) -> None:
        if mask is not None:
            self._require(row, "masked host write")
        self._store.write_row(row, bits, mask)
        self._mark(row)

    def load_bits(self, top_row: int, bits: np.ndarray,
                  col_offset: int = 0) -> None:
        self._store.load_bits(top_row, bits, col_offset)
        n_rows = np.asarray(bits).shape[-2]
        self._mark(top_row, n_rows)

    # -- everything else is the inner store's business -----------------
    def __getattr__(self, name: str) -> Any:
        # Only reached for names not defined above: plane ops, checks,
        # make_periphery, nbytes, reset_counters, ...
        return getattr(self._store, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShadowPlaneStore({self._store!r})"
