"""Bit-level helpers shared by the SRAM functional model and tests.

The bit-serial arrays store integers *vertically*: bit ``b`` of element ``i``
lives at wordline ``base + b`` and bitline ``i``. These helpers convert
between NumPy integer vectors and LSB-first bit matrices (shape
``(nbits, nelems)``, dtype uint8, values 0/1).
"""

from __future__ import annotations

import numpy as np


def int_to_bits(values: np.ndarray, nbits: int) -> np.ndarray:
    """Convert a 1-D vector of non-negative ints to an LSB-first bit matrix.

    Returns an array of shape ``(nbits, len(values))`` where row ``b`` holds
    bit ``b`` (LSB = row 0) of every element. Values are masked to ``nbits``
    (the hardware simply ignores bits that do not fit in the allocated rows).
    """
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {values.shape}")
    if nbits <= 0:
        raise ValueError(f"nbits must be positive, got {nbits}")
    if np.any(values < 0):
        raise ValueError("int_to_bits only handles non-negative values; "
                         "encode signed data in two's complement first")
    shifts = np.arange(nbits, dtype=np.int64)[:, None]
    return ((values[None, :] >> shifts) & 1).astype(np.uint8)


def bits_to_int(bits: np.ndarray) -> np.ndarray:
    """Convert an LSB-first bit matrix back to a vector of ints (int64)."""
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError(f"expected a 2-D bit matrix, got shape {bits.shape}")
    nbits = bits.shape[0]
    weights = (np.int64(1) << np.arange(nbits, dtype=np.int64))[:, None]
    return (bits.astype(np.int64) * weights).sum(axis=0)


def int_to_bitplanes(values: np.ndarray, nbits: int) -> np.ndarray:
    """Convert an ``(n, cols)`` matrix of non-negative ints to bit planes.

    Returns ``(n, nbits, cols)`` uint8 where ``[:, b, :]`` holds bit ``b``
    (LSB = plane 0) of every element — the fleet-wide analogue of
    :func:`int_to_bits`. Values are masked to ``nbits``.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {values.shape}")
    if nbits <= 0:
        raise ValueError(f"nbits must be positive, got {nbits}")
    if values.dtype == np.uint8 and nbits <= 8:
        # Byte planes straight from uint8 tensors (the bulk-load hot
        # path): no int64 round-trip, no sign scan.
        shifts = np.arange(nbits, dtype=np.uint8)[None, :, None]
        return (values[:, None, :] >> shifts) & np.uint8(1)
    values = values.astype(np.int64, copy=False)
    if np.any(values < 0):
        raise ValueError("int_to_bitplanes only handles non-negative values; "
                         "encode signed data in two's complement first")
    if nbits <= 8:
        # Byte-wide fields (activation/filter planes, the bulk-load hot
        # path): extract bits in uint8 so the (n, nbits, cols)
        # intermediate is 8x smaller than the int64 general case.
        compact = (values & ((1 << nbits) - 1)).astype(np.uint8)
        shifts = np.arange(nbits, dtype=np.uint8)[None, :, None]
        return (compact[:, None, :] >> shifts) & np.uint8(1)
    # Wider fields: unpack the int64 little-endian byte view at C speed
    # instead of materialising an (n, nbits, cols) int64 shift product.
    as_bytes = np.ascontiguousarray(
        values.astype("<i8", copy=False)).view(np.uint8)
    bits = np.unpackbits(as_bytes.reshape(*values.shape, 8), axis=-1,
                         bitorder="little")[..., :nbits]
    return bits.transpose(0, 2, 1)


def bitplanes_to_int(bits: np.ndarray) -> np.ndarray:
    """Convert ``(n, nbits, cols)`` LSB-first bit planes back to ints.

    The bit planes are packed to byte planes at C speed and the (at most
    eight) byte planes combined in int64 — the host unpack boundary for
    fleet read-backs, so it must not materialise an ``(n, nbits, cols)``
    int64 intermediate as the naive weighted sum would.
    """
    bits = np.asarray(bits)
    if bits.ndim != 3:
        raise ValueError(f"expected a 3-D bit tensor, got shape {bits.shape}")
    n, nbits, cols = bits.shape
    if nbits > 64:
        raise ValueError(f"bit planes wider than 64 bits ({nbits}) do not "
                         f"fit the int64 host currency")
    packed = np.packbits(bits, axis=1, bitorder="little")
    out = np.zeros((n, cols), dtype=np.int64)
    for k in range(packed.shape[1]):
        out |= packed[:, k, :].astype(np.int64) << (8 * k)
    return out


#: Bits per machine word of the packed bit-plane store.
WORD_BITS = 64


def packed_words(cols: int) -> int:
    """Words needed to hold ``cols`` bit-columns (``ceil(cols / 64)``)."""
    if cols <= 0:
        raise ValueError(f"cols must be positive, got {cols}")
    return ceil_div(cols, WORD_BITS)


def pack_bit_plane(bits: np.ndarray, n_words: int | None = None) -> np.ndarray:
    """Pack 0/1 bit columns into uint64 words along the last axis.

    ``bits`` is ``(..., cols)`` with values 0/1; the result is
    ``(..., n_words)`` uint64 where column ``c`` lives at bit ``c % 64``
    (LSB-first) of word ``c // 64``. Tail bits beyond ``cols`` are zero.
    This is the host<->packed-store boundary conversion; the packed store
    itself only ever operates on whole words.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    cols = bits.shape[-1]
    if n_words is None:
        n_words = packed_words(cols)
    if n_words * WORD_BITS < cols:
        raise ValueError(
            f"{n_words} words cannot hold {cols} bit columns")
    as_bytes = np.packbits(bits, axis=-1, bitorder="little")
    pad = n_words * (WORD_BITS // 8) - as_bytes.shape[-1]
    if pad:
        as_bytes = np.concatenate(
            [as_bytes, np.zeros((*as_bytes.shape[:-1], pad), dtype=np.uint8)],
            axis=-1)
    # '<u8' reads byte 0 as the least-significant byte on any host, so the
    # LSB-first column order survives regardless of platform endianness.
    words = np.ascontiguousarray(as_bytes).view("<u8")
    return words.astype(np.uint64, copy=False)


def unpack_bit_plane(words: np.ndarray, cols: int) -> np.ndarray:
    """Unpack uint64 words back into ``(..., cols)`` 0/1 uint8 columns.

    Inverse of :func:`pack_bit_plane` for the first ``cols`` bits.
    """
    if cols <= 0:
        raise ValueError(f"cols must be positive, got {cols}")
    words = np.asarray(words)
    if words.shape[-1] * WORD_BITS < cols:
        raise ValueError(
            f"{words.shape[-1]} words hold fewer than {cols} bit columns")
    as_bytes = np.ascontiguousarray(
        words.astype("<u8", copy=False)).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    return bits[..., :cols]


def to_twos_complement(values: np.ndarray, nbits: int) -> np.ndarray:
    """Encode (possibly negative) ints into ``nbits``-wide two's complement."""
    values = np.asarray(values, dtype=np.int64)
    mask = (np.int64(1) << nbits) - 1
    return values & mask


def from_twos_complement(values: np.ndarray, nbits: int) -> np.ndarray:
    """Decode ``nbits``-wide two's complement back into signed ints."""
    values = np.asarray(values, dtype=np.int64)
    sign_bit = np.int64(1) << (nbits - 1)
    mask = (np.int64(1) << nbits) - 1
    values = values & mask
    return np.where(values & sign_bit, values - (np.int64(1) << nbits), values)


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= ``n`` (``n`` must be positive)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return 1 << (n - 1).bit_length()


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)
