"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro                 # everything, in paper order
    python -m repro figure14 table3 # specific experiments
    python -m repro --list          # available experiment names
    python -m repro --backend fleet # one inference via the Backend API
    python -m repro --backend fleet-packed   # same, packed plane store
    python -m repro --backend analytic --batch 16
    python -m repro --backend sharded --batch 8 --shards 4
    python -m repro --backend sharded --shards 2 --shard-driver process
    python -m repro --backend fleet --batch 8 --no-batched   # per-image loop
    python -m repro serve-bench --requests 32 --sockets 2    # serving smoke
    python -m repro fault-sweep --images 16          # accuracy vs defects
    python -m repro verify                  # static dataflow verification
    python -m repro verify --model lenet5 -v

The ``--backend`` mode drives an execution engine through the unified
:class:`~repro.engine.backend.Backend` protocol — ``analytic`` runs the
paper's deterministic model on Inception v3, ``fleet`` runs bit-exact
functional verification on the vectorized array fleet, ``fleet-packed``
runs the same verification on the packed uint64 plane store (8x smaller,
faster lockstep primitives, identical results), and ``sharded`` splits
the batch round-robin across socket shards (``--shards``, default
``config.sockets``), each on its own packed fleet, with results and
cycle totals identical to the unsharded run. ``--shard-driver`` selects
how the shard pool executes — ``serial`` (default), ``thread``,
``process`` (real wall-clock parallelism across OS processes) or
``pool`` (persistent zero-copy workers: forked once, image payloads
through shared-memory arenas); every driver is bit-exact and
cycle-report-identical to serial.

Functional backends fold the whole batch into the fleet's array axis by
default (one fleet pass per layer computes every image);
``--no-batched`` selects the per-image reference loop, whose outputs and
cycle reports are identical — only wall-clock differs.

The ``serve-bench`` subcommand runs the async batched serving benchmark
(:mod:`repro.serving`): a request stream coalesced into batched fleet
passes over a pool of sharded backends, reporting p50/p95/p99 tail
latency and throughput, and exiting non-zero when any response is lost,
duplicated or not bit-exact against the direct ``run_requests`` path —
the CI serving smoke gate.

The ``fault-sweep`` subcommand runs the hardware fault-injection
experiment (:mod:`repro.faults`): the deterministic image stream on a
population of chips with seeded stuck-at bit-cell defects at increasing
rates, reporting top-1 agreement with the fault-free run and exiting
non-zero unless the degradation curve is monotone from a clean
zero-rate baseline.

The ``verify`` subcommand statically checks the dataflow of every
registered model's recorded bit-serial layer programs (def-before-use,
operand overlap, geometry bounds, tag/carry discipline, dead writes) —
see :mod:`repro.verify`. CI runs it as the ``verify`` job.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import experiments
from repro.engine.backend import (
    BackendOptions,
    available_backends,
    get_backend,
)
from repro.engine.sharding import SHARD_DRIVERS

#: name -> zero-argument callable returning an ExperimentResult.
EXPERIMENTS = {
    "table1": experiments.table1,
    "table2": experiments.table2,
    "table3": experiments.table3,
    "table4": experiments.table4,
    "figure13": experiments.figure13,
    "figure14": experiments.figure14,
    "figure15": experiments.figure15,
    "figure16": experiments.figure16,
    "example6a": experiments.section6a_example,
    "arithmetic": experiments.arithmetic_latencies,
    "peak": experiments.peak_throughput,
    "area": experiments.area_report,
    "fleet": experiments.fleet_verification,
    "sparsity": experiments.sparsity,
    "sharding": experiments.sharding,
    "serving": experiments.serving,
}


def serve_bench_main(argv: list[str]) -> int:
    """The ``serve-bench`` subcommand: serving smoke + tail latency."""
    from repro.serving import render_serving_report, run_serving_benchmark

    parser = argparse.ArgumentParser(
        prog="python -m repro serve-bench",
        description="Async batched serving benchmark: coalesce a request "
                    "stream into batched fleet passes over a pool of "
                    "sharded backends; reports p50/p95/p99 tail latency "
                    "and throughput, fails on lost/duplicated responses "
                    "or bit-inexact results vs the direct run_batch "
                    "path.")
    parser.add_argument("--requests", type=int, default=32, metavar="N",
                        help="requests in the stream (default 32)")
    parser.add_argument("--sockets", type=int, default=2, metavar="N",
                        help="socket shards per pool node (default 2)")
    parser.add_argument("--pool", type=int, default=2, metavar="N",
                        help="backends in the serving pool (default 2)")
    parser.add_argument("--max-batch", type=int, default=8, metavar="N",
                        help="largest coalesced batch (default 8)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        metavar="MS",
                        help="longest wait for a partial batch to fill "
                             "(default 2.0)")
    parser.add_argument("--shard-driver", choices=SHARD_DRIVERS,
                        default="thread",
                        help="shard driver of each pool node "
                             "(default thread)")
    parser.add_argument("--arrival-gap-ms", type=float, default=0.0,
                        metavar="MS",
                        help="spacing between request arrivals "
                             "(default 0: an already-queued burst)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizing (fewer requests, smaller "
                             "batches); gates are never relaxed")
    args = parser.parse_args(argv)
    for name in ("requests", "sockets", "pool", "max_batch"):
        if getattr(args, name) <= 0:
            parser.error(f"--{name.replace('_', '-')} must be positive")
    if args.max_wait_ms < 0 or args.arrival_gap_ms < 0:
        parser.error("waits and gaps must be non-negative")
    if args.quick:
        args.requests = min(args.requests, 12)
        args.max_batch = min(args.max_batch, 4)
    stats = run_serving_benchmark(
        n_requests=args.requests, sockets=args.sockets,
        pool_size=args.pool, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, driver=args.shard_driver,
        arrival_gap_ms=args.arrival_gap_ms)
    print(render_serving_report(stats))
    if not stats["ok"]:
        print("serve-bench: FAIL — responses lost, duplicated or not "
              "bit-exact vs the direct run_batch path", file=sys.stderr)
        return 1
    return 0


def fault_sweep_main(argv: list[str]) -> int:
    """The ``fault-sweep`` subcommand: accuracy vs stuck-at defect rate."""
    from repro.faults import DEFAULT_RATES, render_fault_sweep, run_fault_sweep

    parser = argparse.ArgumentParser(
        prog="python -m repro fault-sweep",
        description="Hardware fault-injection experiment: run the "
                    "deterministic image stream on chips with seeded "
                    "stuck-at bit-cell defects at increasing rates and "
                    "report top-1 agreement with the fault-free run. "
                    "Fails unless the curve is monotone non-increasing "
                    "and the zero-rate point is clean.")
    parser.add_argument("--rates", type=float, nargs="+",
                        default=list(DEFAULT_RATES), metavar="R",
                        help="stuck-at cell probabilities to sweep "
                             "(default: %(default)s)")
    parser.add_argument("--images", type=int, default=16, metavar="N",
                        help="images per rate point (default 16)")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="image/weight stream seed (default 0)")
    parser.add_argument("--fault-seed", type=int, default=0, metavar="N",
                        help="chip-population seed: chip i draws its "
                             "defect field from fault-seed + i "
                             "(default 0)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizing (fewer images, fewer "
                             "rates); gates are never relaxed")
    args = parser.parse_args(argv)
    if args.images <= 0:
        parser.error(f"--images must be positive, got {args.images}")
    if any(not 0.0 <= rate <= 1.0 for rate in args.rates):
        parser.error("--rates must be probabilities in [0, 1]")
    rates = tuple(args.rates)
    if args.quick:
        args.images = min(args.images, 8)
        rates = tuple(rates[:4])
    stats = run_fault_sweep(rates=rates, n_images=args.images,
                            seed=args.seed, fault_seed=args.fault_seed)
    print(render_fault_sweep(stats))
    if not stats["ok"]:
        print("fault-sweep: FAIL — degradation curve is not monotone "
              "non-increasing from a clean zero-rate baseline",
              file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve-bench":
        return serve_bench_main(argv[1:])
    if argv and argv[0] == "fault-sweep":
        return fault_sweep_main(argv[1:])
    if argv and argv[0] == "verify":
        from repro.verify.cli import main as verify_main

        return verify_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Neural Cache (ISCA 2018) reproduction: regenerate "
                    "the paper's tables and figures.")
    parser.add_argument("names", nargs="*", metavar="EXPERIMENT",
                        help="experiments to run (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment names")
    parser.add_argument("--backend", choices=available_backends(),
                        help="run one batch through the unified Backend "
                             "API and print its summary instead of "
                             "regenerating experiments")
    parser.add_argument("--batch", type=int, default=1, metavar="N",
                        help="batch size for --backend runs (default 1)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="socket shards for --backend sharded runs "
                             "(default: the config's socket count)")
    parser.add_argument("--shard-driver", choices=SHARD_DRIVERS,
                        default=None,
                        help="how --backend sharded runs its shard pool: "
                             "serial (default), thread, process "
                             "(wall-clock parallel) or pool (persistent "
                             "zero-copy workers; fork-based, POSIX "
                             "only); results identical")
    parser.add_argument("--batched", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="fold the batch into the fleet's array axis "
                             "for functional --backend runs (default: "
                             "batched; --no-batched keeps the per-image "
                             "reference loop)")
    parser.add_argument("--sparsity", action="store_true",
                        help="skip all-zero operand bit planes in "
                             "functional --backend runs: outputs stay "
                             "bit-exact, the cycle report becomes "
                             "data-dependent (the summary shows actual "
                             "and dense-equivalent cycles)")
    parser.add_argument("--precision", type=int, default=None,
                        metavar="BITS",
                        help="narrow every conv layer of functional "
                             "--backend runs to BITS-bit elements "
                             "(1..8; storage stays byte-aligned, only "
                             "bit-serial compute gets cheaper)")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    if args.backend:
        from repro.common.errors import SimulationError

        if args.names:
            parser.error(
                "--backend runs one inference and takes no experiment "
                f"names (got: {', '.join(args.names)})")
        if args.batch <= 0:
            parser.error(f"--batch must be positive, got {args.batch}")
        if args.shards is not None and args.shards <= 0:
            parser.error(f"--shards must be positive, got {args.shards}")
        precision = None
        if args.precision is not None:
            from repro.core.precision import LayerPrecision

            try:
                precision = LayerPrecision(default_bits=args.precision)
            except SimulationError as exc:
                parser.error(str(exc))
        # One options value carries every knob; the factory for the
        # chosen backend rejects any it cannot honour (no rebuild hack:
        # --shards reaches the sharded constructor directly).
        options = BackendOptions(
            batched=args.batched if args.batched is not None else True,
            driver=args.shard_driver, shards=args.shards,
            sparsity=args.sparsity, precision=precision)
        try:
            backend = get_backend(args.backend, options=options)
        except SimulationError as exc:
            # e.g. --shard-driver on a backend without a shard pool.
            parser.error(str(exc))
        if args.batched is not None and not hasattr(backend, "batched"):
            parser.error("--batched/--no-batched only applies to the "
                         "functional fleet backends")
        network = backend.default_network()
        try:
            print(backend.run(network, args.batch).summary())
        except SimulationError as exc:
            # A runtime engine failure (e.g. a bit-exactness divergence),
            # not a usage mistake: report it plainly, without usage text.
            print(f"python -m repro: backend {args.backend!r} failed: "
                  f"{exc}", file=sys.stderr)
            return 1
        finally:
            if hasattr(backend, "close"):
                backend.close()
        return 0

    if args.batch != 1:
        parser.error("--batch only applies to --backend runs")
    if args.shards is not None:
        parser.error("--shards only applies to --backend sharded runs")
    if args.shard_driver is not None:
        parser.error("--shard-driver only applies to --backend sharded "
                     "runs")
    if args.batched is not None:
        parser.error("--batched/--no-batched only applies to --backend "
                     "runs")
    if args.sparsity:
        parser.error("--sparsity only applies to --backend runs")
    if args.precision is not None:
        parser.error("--precision only applies to --backend runs")
    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)} "
                     f"(use --list)")
    for name in names:
        print(EXPERIMENTS[name]().render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
