"""Tests for the flexible bit-width extension (Sec. III-A)."""

import pytest

from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.core.precision import (
    MAX_PRECISION_BITS,
    config_for_precision,
    precision_sweep,
)
from repro.nn import build_inception_v3


@pytest.fixture(scope="module")
def net():
    return build_inception_v3()


@pytest.fixture(scope="module")
def sweep(net):
    return precision_sweep(net, bit_widths=(2, 4, 8))


class TestConfigForPrecision:
    def test_element_bits_set(self):
        config = config_for_precision(4)
        assert config.element_bits == 4

    def test_storage_regions_stay_byte_aligned(self):
        config = config_for_precision(4)
        base = NeuralCacheConfig()
        assert config.partial_sum_bits == base.partial_sum_bits
        assert config.reduction_bits == base.reduction_bits

    def test_base_fields_preserved(self):
        base = NeuralCacheConfig(sockets=4)
        config = config_for_precision(6, base)
        assert config.sockets == 4

    def test_bounds(self):
        with pytest.raises(SimulationError):
            config_for_precision(0)
        with pytest.raises(SimulationError):
            config_for_precision(MAX_PRECISION_BITS + 1)


class TestSweep:
    def test_mac_time_shrinks_with_precision(self, sweep):
        mac_times = [p.mac_time_s for p in sweep]
        assert mac_times == sorted(mac_times)  # 2-bit fastest

    def test_latency_monotone_in_bits(self, sweep):
        latencies = [p.latency_s for p in sweep]
        assert latencies == sorted(latencies)

    def test_diminishing_returns_from_data_movement(self, sweep):
        """Quartering precision gives a ~quadratic MAC win but far less
        total win: movement is unchanged (elements stay bytes) and the
        byte-aligned reduction/quantization widths are fixed."""
        p2, _, p8 = sweep
        mac_speedup = p8.mac_time_s / p2.mac_time_s
        total_speedup = p2.speedup_over(p8)
        assert mac_speedup > 4          # MAC cycles scale ~quadratically
        assert total_speedup < 2        # movement dominates
        assert total_speedup > 1.05

    def test_energy_tracks_compute(self, sweep):
        p2, _, p8 = sweep
        assert p2.energy_j < p8.energy_j

    def test_mac_cycles_scale_quadratically(self):
        """The per-MAC cost follows the multiply formula in the element
        width (derived preset, where no 8-bit override applies)."""
        from repro.sram.cost import CycleCosts
        costs = CycleCosts.derived()
        assert costs.mac(4, 24) < costs.mac(8, 24) / 2

    def test_empty_sweep_rejected(self, net):
        with pytest.raises(SimulationError):
            precision_sweep(net, bit_widths=())
