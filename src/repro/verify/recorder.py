"""Recorder: capture FleetBitSerialUnit call sequences for lifting.

``engine/bitserial.py`` exposes a module-wide trace hook that reports
every *top-level* composite call (nested internals — ``mac``'s inner
``multiply``, ``multiply``'s inner ``load_tag`` — are suppressed, so a
recording is the program the *engine* wrote, at the granularity the
lifter models). :func:`record_programs` installs a
:class:`ProgramRecorder` for the duration of a ``with`` block; engines
need no changes — run them under the context manager and read the
recording afterwards.

Calls are grouped per unit (each layer engine drives its own
:class:`~repro.engine.bitserial.FleetBitSerialUnit`), and the caller can
:meth:`~ProgramRecorder.annotate` the stream with labels (e.g. the
executing layer's name) so a recording of a whole network run splits into
per-layer programs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, NamedTuple

from repro.engine import bitserial
from repro.verify.facts import ProgramFacts
from repro.verify.lift import lift_calls

__all__ = ["ProgramRecorder", "RecordedCall", "record_programs"]


class RecordedCall(NamedTuple):
    """One top-level composite call, as the trace hook saw it."""

    method: str
    args: tuple[Any, ...]
    kwargs: dict[str, Any]


@dataclass
class _UnitTrace:
    """The call stream of one unit, with its geometry."""

    label: str
    rows: int
    cols: int
    calls: list[RecordedCall] = field(default_factory=list)


@dataclass
class ProgramRecorder:
    """Collects per-unit call streams; installable as the trace hook."""

    #: Unit id -> trace, in first-seen order (dicts preserve insertion).
    traces: dict[int, _UnitTrace] = field(default_factory=dict)
    _label: str = ""

    def annotate(self, label: str) -> None:
        """Label subsequently-seen *new* units (e.g. the current layer)."""
        self._label = label

    def __call__(self, unit: Any, method: str, args: tuple[Any, ...],
                 kwargs: dict[str, Any]) -> None:
        trace = self.traces.get(id(unit))
        if trace is None:
            trace = _UnitTrace(self._label, unit.rows, unit.cols)
            self.traces[id(unit)] = trace
        trace.calls.append(RecordedCall(method, args, dict(kwargs)))

    def programs(self) -> list[ProgramFacts]:
        """Lift every recorded unit's stream into the dataflow IR."""
        lifted = []
        for n, trace in enumerate(self.traces.values()):
            label = trace.label or f"unit-{n}"
            lifted.append(lift_calls(trace.calls, trace.rows, trace.cols,
                                     label=label))
        return lifted


@contextmanager
def record_programs() -> Iterator[ProgramRecorder]:
    """Record all composite calls made inside the block.

    Nesting restores the previous hook on exit, so recordings can wrap
    other recordings (the inner one wins while active).
    """
    recorder = ProgramRecorder()
    previous = bitserial.set_trace_hook(recorder)
    try:
        yield recorder
    finally:
        bitserial.set_trace_hook(previous)
