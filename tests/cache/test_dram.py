"""Tests for the DRAM channel model."""

import pytest

from repro.cache import DramModel
from repro.common.errors import GeometryError
from repro.common.units import GB, MB


class TestTiming:
    def test_default_effective_bandwidth(self):
        model = DramModel()
        assert model.effective_bandwidth_gbps == 10.0
        assert model.bytes_per_second == pytest.approx(10.0 * GB)

    def test_transfer_time(self):
        model = DramModel(effective_bandwidth_gbps=10.0)
        assert model.transfer_time(10 * GB) == pytest.approx(1.0)

    def test_inception_filter_volume_lands_near_paper_share(self):
        """~23.7 MB of 8-bit filters at the calibrated bandwidth take
        ~2.2 ms — the paper's 46% of a 4.72 ms inference."""
        model = DramModel()
        t = model.transfer_time(23.7 * MB)
        assert 0.0018 < t < 0.0027

    def test_zero_transfer_is_free(self):
        assert DramModel().transfer_time(0) == 0


class TestEnergy:
    def test_energy_scales_with_bytes(self):
        model = DramModel()
        assert model.transfer_energy(2) == pytest.approx(2 * 150e-12)

    def test_custom_energy(self):
        model = DramModel(energy_pj_per_byte=100.0)
        assert model.transfer_energy(1) == pytest.approx(100e-12)


class TestValidation:
    def test_bandwidth_must_be_positive(self):
        with pytest.raises(GeometryError):
            DramModel(effective_bandwidth_gbps=0)

    def test_energy_must_be_nonnegative(self):
        with pytest.raises(GeometryError):
            DramModel(energy_pj_per_byte=-1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(GeometryError):
            DramModel().transfer_time(-5)
