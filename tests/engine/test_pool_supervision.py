"""The self-healing pool: supervision, chaos plans, and the fail-fast mode.

The supervised :class:`~repro.engine.pool.ShardWorkerPool` must survive
workers that die or go silent mid-batch — respawn them, re-dispatch the
orphaned lanes, and keep the batch bit-exact with the serial reference —
while ``supervise=False`` pins the original fail-fast contract (tear
down loudly, sweep every segment, name the worker and its PID).
"""

import os
import signal

import pytest

from repro.common.errors import SimulationError
from repro.engine.backend import tiny_verification_network
from repro.engine.pool import ShardWorkerPool
from repro.engine.shared import (
    SHM_DIR,
    release_pooled_segments,
    shared_segment_stats,
)
from repro.engine.sharding import ShardedBackend
from repro.faults import FaultPlan, PoolFault


@pytest.fixture(scope="module")
def tiny_net():
    return tiny_verification_network()


def scope_segments(scope: str) -> list[str]:
    return [entry for entry in os.listdir(SHM_DIR)
            if entry.startswith(scope)]


def assert_no_segment_leaks():
    release_pooled_segments()
    assert shared_segment_stats().check() == []


def serial_reference(tiny_net, batch):
    return ShardedBackend(shards=2, driver="serial").run(
        tiny_net, batch_size=batch)


def assert_shards_match(result, reference):
    """Per-shard equality modulo the recovery log the chaos run grew."""
    from dataclasses import replace

    assert tuple(replace(s, recoveries=()) for s in result.shard_reports) \
        == reference.shard_reports


class TestSupervisedRecovery:
    def test_sigkill_between_batches_respawns_bit_exact(self, tiny_net):
        reference = serial_reference(tiny_net, 4)
        with ShardedBackend(shards=2, driver="pool") as backend:
            backend.run(tiny_net, batch_size=4)
            victim = backend.worker_pids()[1]
            os.kill(victim, signal.SIGKILL)
            result = backend.run(tiny_net, batch_size=4)
            assert result.report == reference.report
            assert_shards_match(result, reference)
            # A fresh incarnation took the slot.
            pids = backend.worker_pids()
            assert len(pids) == 2 and victim not in pids
            events = backend.recovery_events()
            kinds = {event.kind for event in events}
            assert "respawned" in kinds and "redispatched" in kinds
        assert_no_segment_leaks()

    def test_fault_plan_kill_heals_across_batches(self, tiny_net):
        reference = serial_reference(tiny_net, 4)
        plan = FaultPlan(pool=(PoolFault(kind="kill", shard=0, every=2),))
        with ShardedBackend(shards=2, driver="pool",
                            fault_plan=plan) as backend:
            for _ in range(3):
                result = backend.run(tiny_net, batch_size=4)
                assert result.report == reference.report
                assert_shards_match(result, reference)
            events = backend.recovery_events()
            assert any(event.kind == "respawned" for event in events)
        assert_no_segment_leaks()

    def test_drop_fault_recovers_via_the_reply_timeout(self, tiny_net):
        # The worker finishes the batch but never answers — the parent
        # can only see a hang, bounded by reply_timeout_s, and must
        # respawn + re-dispatch instead of waiting forever.
        reference = serial_reference(tiny_net, 4)
        plan = FaultPlan(pool=(PoolFault(kind="drop", shard=1, every=2),))
        with ShardedBackend(shards=2, driver="pool", fault_plan=plan,
                            reply_timeout_s=1.0) as backend:
            for _ in range(2):
                result = backend.run(tiny_net, batch_size=4)
                assert result.report == reference.report
            events = backend.recovery_events()
            assert any("hung" in event.detail for event in events)
        assert_no_segment_leaks()

    def test_delay_fault_needs_no_recovery(self, tiny_net):
        reference = serial_reference(tiny_net, 4)
        plan = FaultPlan(pool=(PoolFault(kind="delay", every=1,
                                         delay_s=0.05),))
        with ShardedBackend(shards=2, driver="pool",
                            fault_plan=plan) as backend:
            result = backend.run(tiny_net, batch_size=4)
            assert result.report == reference.report
            assert backend.recovery_events() == ()
        assert_no_segment_leaks()

    def test_respawn_failure_degrades_to_fewer_shards(self, tiny_net,
                                                      monkeypatch):
        reference = serial_reference(tiny_net, 4)
        with ShardedBackend(shards=2, driver="pool") as backend:
            backend.run(tiny_net, batch_size=4)
            pool = backend._pool

            def no_respawn(slot):
                ShardWorkerPool._reap(pool, slot)
                return False

            monkeypatch.setattr(pool, "_respawn", no_respawn)
            os.kill(backend.worker_pids()[1], signal.SIGKILL)
            # Slot 1's lane routes onto the surviving worker; the batch
            # still matches the serial reference exactly.
            result = backend.run(tiny_net, batch_size=4)
            assert result.report == reference.report
            assert pool.live_shards() == (0,)
            events = backend.recovery_events()
            assert any(event.kind == "degraded" for event in events)
        assert_no_segment_leaks()

    def test_recovery_exhaustion_tears_down_and_sweeps(self, tiny_net):
        with ShardedBackend(shards=2, driver="pool",
                            max_retries=0) as backend:
            backend.run(tiny_net, batch_size=4)
            scope = backend._pool.scope
            pool = backend._pool
            # Every respawned worker is killed before it can answer.
            original = pool._send_raw

            def killing_send(slot, message, _orig=original):
                _orig(slot, message)
                if message[0] == "run":
                    os.kill(pool._workers[slot].pid, signal.SIGKILL)

            pool._send_raw = killing_send
            with pytest.raises(SimulationError,
                               match="recovery exhausted"):
                backend.run(tiny_net, batch_size=4)
            assert scope_segments(scope) == []
        assert_no_segment_leaks()


class TestReporting:
    def test_shard_report_carries_recovery_events(self, tiny_net):
        plan = FaultPlan(pool=(PoolFault(kind="kill", shard=1, every=2),))
        with ShardedBackend(shards=2, driver="pool",
                            fault_plan=plan) as backend:
            backend.run(tiny_net, batch_size=4)     # arms seq counters
            result = backend.run(tiny_net, batch_size=4)
        recovered = [s for s in result.shard_reports if s.recoveries]
        assert recovered and recovered[0].shard == 1
        assert any("respawned" in line
                   for line in recovered[0].recoveries)
        assert "recovery:" in result.summary()

    def test_healthy_runs_report_no_recoveries(self, tiny_net):
        with ShardedBackend(shards=2, driver="pool") as backend:
            result = backend.run(tiny_net, batch_size=4)
        assert all(s.recoveries == () for s in result.shard_reports)
        assert "recovery:" not in result.summary()
        serial = serial_reference(tiny_net, 4)
        assert all(s.recoveries == () for s in serial.shard_reports)


class TestFailFastMode:
    def test_hung_worker_raises_instead_of_blocking_forever(self, tiny_net):
        """Satellite regression: _drain used to block on a silent worker.

        A deliberately sleeping worker (delay fault far past the reply
        timeout) must raise a SimulationError naming the shard and its
        PID instead of hanging the parent.
        """
        plan = FaultPlan(pool=(PoolFault(kind="delay", shard=0, every=1,
                                         delay_s=30.0),))
        backend = ShardedBackend(shards=2, driver="pool",
                                 supervise=False, fault_plan=plan,
                                 reply_timeout_s=0.5)
        scope = backend._pool.scope
        pid = backend.worker_pids()[0]
        with pytest.raises(
                SimulationError,
                match=rf"worker 0 \(pid {pid}\) sent no reply within "
                      rf"0\.5s \(hung\)"):
            backend.run(tiny_net, batch_size=4)
        assert scope_segments(scope) == []
        backend.close()
        assert_no_segment_leaks()

    def test_unsupervised_kill_still_fails_loudly(self, tiny_net):
        plan = FaultPlan(pool=(PoolFault(kind="kill", shard=1, every=2),))
        backend = ShardedBackend(shards=2, driver="pool",
                                 supervise=False, fault_plan=plan)
        backend.run(tiny_net, batch_size=4)
        with pytest.raises(SimulationError, match="died"):
            backend.run(tiny_net, batch_size=4)
        backend.close()
        assert_no_segment_leaks()


class TestValidation:
    def test_supervision_parameters_are_validated(self):
        with pytest.raises(SimulationError, match="reply timeout"):
            ShardedBackend(shards=2, driver="pool", reply_timeout_s=0)
        with pytest.raises(SimulationError, match="retry budget"):
            ShardedBackend(shards=2, driver="pool", max_retries=-1)
        with pytest.raises(SimulationError, match="FaultPlan"):
            ShardedBackend(shards=2, driver="pool", fault_plan="chaos")
        assert_no_segment_leaks()

    def test_fault_plan_needs_the_pool_driver(self):
        plan = FaultPlan(pool=(PoolFault(kind="kill", every=2),))
        with pytest.raises(SimulationError, match="no injection points"):
            ShardedBackend(shards=2, driver="thread", fault_plan=plan)
