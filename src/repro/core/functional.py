"""Functional in-cache execution: layers actually run on SRAM arrays.

This module is the reproduction's equivalent of the paper's simulator
verification ("verified by running data traces on it and matching the
results with traces obtained from instrumenting the TensorFlow model"):
convolution, pooling and quantization execute *bit by bit* on
:class:`~repro.sram.bitserial.BitSerialUnit` arrays, using the real data
layout (packing, splitting, channel padding) from the mapping engine, and
the results must match the golden NumPy executor exactly.

Execution of a convolution follows the paper's two stages:

1. **Compute stage** (per output batch, Fig. 10a -> 10b): filters sit
   transposed on the bitlines, the window streams in, one fused MAC per
   filter tap runs on every bitline at once, an input-sum accumulates
   alongside (for zero-point corrections), and the channel tree reduction
   (Fig. 5) collapses each output's lanes onto its head bitline.
2. **Quantization stage** (per layer, Sec. IV-D): raw sums and input sums
   are staged one-output-per-bitline; the zero-point corrections, ReLU
   (MSB-masked zero write) and the CPU's fixed-point requantization
   scalars are applied in cache in two's complement.

The quantization stage runs in cache for ReLU layers (every Inception v3
conv). Layers without ReLU (the final FC) can have negative accumulators;
their requantization happens on the host, as the paper also ships final
outputs to the CPU.

Since the array-fleet refactor, execution is *vectorized*: every serial
pass of a layer maps to one member of an
:class:`~repro.engine.fleet.PlaneStore` fleet, and the whole layer
executes as one lockstep bit-serial sequence across all arrays — the
paper's "thousands of arrays operating in lockstep" (Sec. III), and the
reason functional verification is now an order of magnitude faster.
``packed=True`` backs every fleet with the packed uint64 plane store
(:class:`~repro.engine.packed.PackedArrayFleet`) instead of the unpacked
byte-per-bit reference; outputs and cycle reports are identical either
way. The legacy
per-array path is kept behind ``vectorized=False`` on
:class:`FunctionalConv` for regression benchmarks; cycle reports
aggregate per-array cycles, so both paths account identically.

The *batch* dimension is a fleet dimension too: every engine exposes
``run_batch``, which folds a whole batch of images into the fleet's
``n_arrays`` axis — one fleet of ``batch * arrays_per_image`` arrays,
loaded with every image's bit planes at once, runs each layer's
bit-serial sequence once per *batch* instead of once per image. Arrays
stay aligned to image boundaries, so a batched pass executes exactly the
arrays the per-image loop would and reports identical per-image cycles
(the arrays are parallel hardware — batching changes wall-clock, not
modeled cycles). Fleets are chunked at ``config.max_fleet_arrays``
(default :data:`MAX_FLEET_ARRAYS`) arrays so memory stays bounded.

Layers whose padded channel count exceeds the array width span
``arrays_per_conv`` consecutive fleet members per output: each spanning
array reduces its own columns in-array, then
``FleetBitSerialUnit.reduce_across_arrays`` folds the per-array sums
over the mapper's :class:`~repro.core.mapping.ReductionPlan` (sense-amp
pair, quadrant bus, then ring hops) into the group's first array. Chunk
boundaries are reduction-group-aligned, so a lockstep chunk never
splits a spanning output.

Scale limits: the compute stage's input-sum must fit 16 bits for the
in-cache correction multiply, which bounds a layer's reduction size
(R.S.C) to 257 taps — enough for every verification-scale layer and for
real 1x1 Inception layers (packed channels); the analytic simulator has
no such bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.bits import from_twos_complement
from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.core.mapping import LayerMapping, map_conv, map_pool
from repro.engine.bitserial import FleetBitSerialUnit
from repro.engine.packed import make_fleet
from repro.nn.layers import AvgPool, Conv2D, MaxPool, same_padding_offsets
from repro.nn.reference import ConvWeights
from repro.nn.tensor import QuantizedTensor
from repro.sram.array import SRAMArray
from repro.sram.bitserial import BitSerialUnit, Operand

#: Two's complement working width for corrections (covers 24-bit sums).
CORRECTION_BITS = 34
#: Maximum taps per output so the input-sum fits the 16-bit multiply.
MAX_FUNCTIONAL_TAPS = 257
#: Arrays per lockstep chunk of a vectorized stage: bounds the fleet bit
#: tensor at ~16 MB per chunk. The conv compute stage additionally bounds
#: its int64 gather temporaries (whose size scales with taps * lanes) via
#: ``GATHER_BUDGET_ELEMENTS``; verification-scale layers still run in a
#: single all-arrays pass. Overridable per run via
#: ``NeuralCacheConfig.max_fleet_arrays`` (batched passes multiply the
#: array count by the batch size, so serving-scale batches chunk).
MAX_FLEET_ARRAYS = 256
#: Elements per int64 gather temporary in a conv chunk (~16 MB each).
GATHER_BUDGET_ELEMENTS = 1 << 21


@dataclass
class CycleReport:
    """Compute cycles the functional run spent, by phase.

    ``skipped`` counts the cycles the sparsity engine elided (all-zero
    operand bit planes skipped fleet-wide); with skipping enabled the
    phase counters hold the cycles that actually ran, so
    :attr:`dense_cycles` — the data-independent accounting the paper
    uses — is ``total + skipped``. Dense runs have ``skipped == 0`` and
    ``dense_cycles == total``.
    """

    mac: int = 0
    reduction: int = 0
    quantization: int = 0
    pooling: int = 0
    passes: int = 0
    skipped: int = 0

    @property
    def total(self) -> int:
        """All compute cycles across phases (excludes the pass count)."""
        return self.mac + self.reduction + self.quantization + self.pooling

    @property
    def dense_cycles(self) -> int:
        """Cycles a dense (no-skip) execution of the same run would take.

        This is the paper's data-independent accounting: cycle-identity
        gates pin ``dense_cycles``, which stays stable whatever the
        activation sparsity of the inputs.
        """
        return self.total + self.skipped

    def merged(self, other: "CycleReport") -> "CycleReport":
        return CycleReport(
            mac=self.mac + other.mac,
            reduction=self.reduction + other.reduction,
            quantization=self.quantization + other.quantization,
            pooling=self.pooling + other.pooling,
            passes=self.passes + other.passes,
            skipped=self.skipped + other.skipped)

    def scaled(self, n_images: int) -> "CycleReport":
        """The report of ``n_images`` identical per-image passes.

        Bit-serial sequences are data-independent, so every image of a
        batch costs exactly the same cycles; a batched fleet pass must
        therefore report precisely the per-image report times the batch —
        this is the *only* way to turn a per-image report into a batch
        total (summing a batch total again double-counts).
        """
        if n_images < 0:
            raise SimulationError(
                f"cannot scale a cycle report by {n_images} images")
        return CycleReport(
            mac=self.mac * n_images,
            reduction=self.reduction * n_images,
            quantization=self.quantization * n_images,
            pooling=self.pooling * n_images,
            passes=self.passes * n_images,
            skipped=self.skipped * n_images)


@dataclass(frozen=True)
class _LanePlan:
    """Where each (lane, tap) of a conv group finds its filter byte and
    input coordinate. ``None`` marks zero padding."""

    taps: int                       # bytes per bitline (R'.S')
    lanes: int                      # channels_padded (C'')
    # filter_source[lane][tap] -> (r, s, c) or None
    filter_source: tuple[tuple[tuple[int, int, int] | None, ...], ...]


def _plan_lanes(mapping: LayerMapping, kernel: tuple[int, int],
                channels: int) -> _LanePlan:
    """Build the lane/tap layout from the mapping's packing/splitting."""
    r_k, s_k = kernel
    taps = mapping.filter_bytes_per_bitline
    lanes = mapping.channels_padded
    window = [(r, s) for r in range(r_k) for s in range(s_k)]
    rows: list[tuple[tuple[int, int, int] | None, ...]] = []
    for lane in range(lanes):
        entries: list[tuple[int, int, int] | None] = []
        if mapping.pack_factor > 1:
            # Packed 1x1: lane holds pack_factor consecutive channels.
            base = lane * mapping.pack_factor
            for t in range(taps):
                c = base + t
                entries.append((0, 0, c) if c < channels else None)
        else:
            # Split (or plain) filters: lane = (channel, split part).
            c = lane // mapping.split_factor
            part = lane % mapping.split_factor
            for t in range(taps):
                w_idx = part * taps + t
                if c < channels and w_idx < len(window):
                    entries.append((*window[w_idx], c))
                else:
                    entries.append(None)
        rows.append(tuple(entries))
    return _LanePlan(taps=taps, lanes=lanes, filter_source=tuple(rows))


class FunctionalConv:
    """Executes one quantized convolution on bit-serial arrays."""

    def __init__(self, conv: Conv2D, input_shape: tuple[int, int, int],
                 weights: ConvWeights,
                 config: NeuralCacheConfig | None = None,
                 name: str = "conv",
                 output_params=None,
                 vectorized: bool = True,
                 packed: bool = False,
                 sparsity: bool = False,
                 sanitize: bool | None = None,
                 element_bits: int | None = None):
        self.conv = conv
        self.input_shape = input_shape
        self.weights = weights
        self.config = config if config is not None else NeuralCacheConfig()
        self.name = name
        self.output_params = output_params
        #: Execute all serial passes at once on an array fleet (default).
        #: ``False`` selects the legacy one-array-at-a-time path, kept for
        #: the fleet-vs-legacy regression benchmark.
        self.vectorized = vectorized
        #: Back the fleet with the packed uint64 plane store instead of
        #: the unpacked byte-per-bit reference (vectorized path only).
        self.packed = packed
        #: Skip all-zero operand bit planes fleet-wide (data-dependent
        #: ``CycleReport``; outputs stay bit-exact vs the dense path).
        self.sparsity = sparsity
        self.sanitize = sanitize
        if packed and not vectorized:
            raise SimulationError(
                "the packed plane store requires the vectorized path")
        if sparsity and not vectorized:
            raise SimulationError(
                "sparse-skip execution requires the vectorized fleet path")
        self.mapping = map_conv(self.config, name, conv, input_shape,
                                element_bits=element_bits)
        if self.mapping.element_bits > 8:
            raise SimulationError(
                f"layer {name!r}: the functional path stores byte-aligned "
                f"8-bit elements; {self.mapping.element_bits}-bit elements "
                f"are analytic-only")
        r, s, c, _ = conv.filter_shape(input_shape)
        if r * s * c > MAX_FUNCTIONAL_TAPS:
            raise SimulationError(
                f"layer {name!r} reduces {r * s * c} taps per output; the "
                f"functional path supports at most {MAX_FUNCTIONAL_TAPS} so "
                f"the input-sum correction fits the 16-bit in-cache "
                f"multiply")
        if self.mapping.arrays_per_conv > 1:
            cols = self.config.geometry.array_cols
            if not vectorized:
                raise SimulationError(
                    f"layer {name!r} spans "
                    f"{self.mapping.arrays_per_conv} arrays per output; "
                    f"the legacy per-array path is single-array — use the "
                    f"vectorized fleet path for spanning layers")
            if cols & (cols - 1):
                raise SimulationError(
                    f"layer {name!r} spans arrays, which reduces the full "
                    f"{cols}-column array width in-array first; that tree "
                    f"needs a power-of-two array_cols")
        self.plan = _plan_lanes(self.mapping, conv.kernel, c)
        self.report = CycleReport()

    # ------------------------------------------------------------------
    def run(self, x: QuantizedTensor) -> QuantizedTensor:
        """Execute and return the quantized output tensor."""
        if self.vectorized:
            return self.run_batch([x])[0]
        conv = self.conv
        if x.shape != self.input_shape:
            raise SimulationError(
                f"input shape {x.shape} does not match layer "
                f"{self.input_shape}")
        e, f, m = conv.output_shape(self.input_shape)
        raw, xsum = self._compute_stage_legacy(x)
        out = self._quantize_stage(raw[None, :], xsum[None, :],
                                   x.params.zero_point)[0]
        params = self.output_params
        if params is None:
            params = self._default_output_params()
        return QuantizedTensor(out.reshape(e, f, m).astype(np.uint8), params)

    def run_batch(self, xs: list[QuantizedTensor]) -> list[QuantizedTensor]:
        """Execute a whole batch as one fleet pass per stage.

        The batch folds into the fleet's array axis: image ``b``'s passes
        occupy arrays ``[b * arrays_per_image, (b + 1) * arrays_per_image)``
        — exactly the arrays the per-image loop would build — so outputs
        and per-image cycle accounting are identical to running ``run``
        once per image, while every bit-serial sequence executes once per
        *batch*.
        """
        # The input zero point broadcasts into padding and the quantize
        # constants, so the batch must share quantization parameters.
        _check_batch(xs, self.input_shape, shared_params=True)
        if not self.vectorized:
            # Legacy regression path: one array at a time, one image at
            # a time (``run`` accumulates into the same report).
            return [self.run(x) for x in xs]
        conv = self.conv
        e, f, m = conv.output_shape(self.input_shape)
        padded = self._padded_batch(np.stack([x.data for x in xs]),
                                    xs[0].params.zero_point)
        raw, xsum = self._compute_stage_fleet(padded)
        out = self._quantize_stage(raw, xsum, xs[0].params.zero_point)
        params = self.output_params
        if params is None:
            params = self._default_output_params()
        return [QuantizedTensor(o.reshape(e, f, m).astype(np.uint8), params)
                for o in out]

    def _default_output_params(self):
        # Standalone use: derive nominal parameters from the requant ratio.
        # When chaining layers, pass the real activation QuantParams in.
        from repro.nn.tensor import QuantParams
        requant = self.weights.requant
        acc_scale = requant.multiplier / (1 << requant.shift)
        return QuantParams(scale=max(acc_scale, 1e-12),
                           zero_point=requant.zero_point)

    # ------------------------------------------------------------------
    # Stage 1: MACs + reduction
    # ------------------------------------------------------------------
    def _compute_stage_legacy(self, x: QuantizedTensor
                              ) -> tuple[np.ndarray, np.ndarray]:
        """Pre-fleet path: a Python loop over one array pass at a time."""
        conv = self.conv
        mapping = self.mapping
        e, f, m = conv.output_shape(self.input_shape)
        outputs = [(i, j, mm) for i in range(e) for j in range(f)
                   for mm in range(m)]
        cols = self.config.geometry.array_cols
        lanes = mapping.channels_padded
        groups_per_array = max(cols // lanes, 1)

        padded = self._padded_input(x)
        filters = self.weights.filters.data  # (R, S, C, M)

        raw = np.zeros(len(outputs), dtype=np.int64)
        xsum = np.zeros(len(outputs), dtype=np.int64)
        for start in range(0, len(outputs), groups_per_array):
            batch = outputs[start:start + groups_per_array]
            r_vals, s_vals = self._run_array_pass(padded, filters, batch,
                                                  cols, lanes)
            raw[start:start + len(batch)] = r_vals
            xsum[start:start + len(batch)] = s_vals
            self.report.passes += 1
        return raw, xsum

    def _compute_stage_fleet(self, padded: np.ndarray
                             ) -> tuple[np.ndarray, np.ndarray]:
        """All images' output batches at once: one fleet member per pass.

        ``padded`` is the ``(batch, H_p, W_p, C)`` zero-point-padded input
        stack. The filter and input bit-planes for every pass of every
        image are gathered with vectorized indexing, then a *single*
        lockstep MAC/reduction sequence executes on the whole
        ``batch * arrays_per_image`` fleet — no Python loop over arrays
        or images. Arrays never straddle image boundaries, so cycle
        reports (``sequence_cycles * n_arrays`` per chunk) match the
        per-image loop exactly. Fleets larger than
        ``config.max_fleet_arrays`` execute in bounded chunks so the
        gather tensors never outgrow memory on output-heavy layers or
        large batches.
        """
        conv = self.conv
        e, f, m = conv.output_shape(self.input_shape)
        n_out = e * f * m
        n_images = padded.shape[0]
        cols = self.config.geometry.array_cols
        lanes = self.mapping.channels_padded
        groups = max(cols // lanes, 1)

        filters = self.weights.filters.data  # (R, S, C, M)

        # -- vectorized (lane, tap) -> (r, s, c) gather tables --
        plan = self.plan
        taps = plan.taps
        valid = np.zeros((lanes, taps), dtype=bool)
        rr = np.zeros((lanes, taps), dtype=np.int64)
        ss = np.zeros((lanes, taps), dtype=np.int64)
        cc = np.zeros((lanes, taps), dtype=np.int64)
        for lane in range(lanes):
            for t, entry in enumerate(plan.filter_source[lane]):
                if entry is None:
                    continue
                valid[lane, t] = True
                rr[lane, t], ss[lane, t], cc[lane, t] = entry
        # Chunk-invariant filter gather, hoisted out of the chunk loop.
        fgather = filters[rr, ss, cc]        # (lanes, taps, M)
        tables = (valid, rr, ss, cc, fgather)

        span = self.mapping.arrays_per_conv
        if span == 1:
            arrays_per_image = -(-n_out // groups)
        else:
            # Spanning layers: ``span`` consecutive arrays per output, so
            # groups is 1 and every image occupies a whole number of
            # reduction groups.
            arrays_per_image = n_out * span
        total_arrays = n_images * arrays_per_image
        raw = np.zeros((n_images, n_out), dtype=np.int64)
        xsum = np.zeros((n_images, n_out), dtype=np.int64)
        # Chunks are whole arrays and respect both the array cap and the
        # gather-temporary budget.
        arrays_by_gather = max(
            GATHER_BUDGET_ELEMENTS // (groups * lanes * taps), 1)
        per_chunk = min(_max_fleet_arrays(self.config), arrays_by_gather)
        if span > 1:
            # Chunks must hold whole reduction groups: round the cap down
            # to a group multiple (never below one group). Groups start at
            # multiples of ``span`` on the global axis, so aligned chunk
            # boundaries can never split one.
            per_chunk = max(per_chunk // span * span, span)
        for a0, a1 in _array_chunks(total_arrays, per_chunk):
            self._run_fleet_chunk(padded, tables, a0, a1, arrays_per_image,
                                  cols, lanes, groups, raw, xsum)
        return raw, xsum

    def _run_fleet_chunk(self, padded: np.ndarray, tables, a0: int, a1: int,
                         arrays_per_image: int, cols: int, lanes: int,
                         groups: int, raw: np.ndarray,
                         xsum: np.ndarray) -> None:
        """One bounded fleet: arrays ``[a0, a1)`` of the global
        batch-by-arrays axis, one array per pass. Results land in the
        ``(batch, n_out)`` ``raw``/``xsum`` accumulators."""
        conv = self.conv
        mapping = self.mapping
        e, f, m = conv.output_shape(self.input_shape)
        n_out = e * f * m
        valid, rr, ss, cc, fgather = tables
        taps = self.plan.taps
        stride = conv.stride
        packed = mapping.pack_factor > 1
        n_arrays = a1 - a0

        span = mapping.arrays_per_conv

        # Which image and which of its outputs each (array, group) serves.
        arr = np.arange(a0, a1)
        img = arr // arrays_per_image
        local = arr % arrays_per_image
        if span == 1:
            out_local = local[:, None] * groups + np.arange(groups)[None, :]
            live = out_local < n_out          # (n_arrays, groups)
            ol = np.minimum(out_local, n_out - 1)
        else:
            # Array ``local`` holds slot ``local % span`` (channel columns
            # [slot*cols, slot*cols + cols)) of output ``local // span``.
            # Every array computes real data; only slot 0 emits a result.
            slot = local % span
            ol = (local // span)[:, None]     # (n_arrays, 1), groups == 1
            live = np.broadcast_to(slot[:, None] == 0, ol.shape)
        out_i = ol // (f * m)
        out_j = (ol // m) % f
        out_m = ol % m

        # Filter bytes and window bytes per (array, group, lane, tap),
        # gathered and staged in uint8 end-to-end — the batched fleet's
        # temporaries are the batch's actual bytes, not int64 copies.
        if span == 1:
            fvals = np.where(valid[:, :, None, None], fgather[:, :, out_m],
                             np.uint8(0))
            fvals = fvals.transpose(2, 3, 0, 1)  # (arrays, groups, lanes, taps)
            fvals[~live] = 0
            row_idx = out_i[:, :, None, None] * stride + rr[None, None, :, :]
            col_idx = out_j[:, :, None, None] * stride + ss[None, None, :, :]
            ivals = padded[img[:, None, None, None], row_idx, col_idx,
                           cc[None, None, :, :]]
            ivals = np.where(valid[None, None, :, :], ivals, np.uint8(0))
            ivals[~live] = 0
            array_lanes = groups * lanes
        else:
            # Per-array lane window of the spanning group: slot k of the
            # group maps the gather tables' rows [k*cols, (k+1)*cols).
            lane_idx = slot[:, None] * cols + np.arange(cols)[None, :]
            fvals = np.where(valid[lane_idx],
                             fgather[lane_idx, :, out_m], np.uint8(0))
            row_idx = out_i[:, :, None] * stride + rr[lane_idx]
            col_idx = out_j[:, :, None] * stride + ss[lane_idx]
            ivals = padded[img[:, None, None], row_idx, col_idx,
                           cc[lane_idx]]
            ivals = np.where(valid[lane_idx], ivals, np.uint8(0))
            fvals = fvals[:, None]            # (n_arrays, 1, cols, taps)
            ivals = ivals[:, None]
            array_lanes = cols

        def planes(vals: np.ndarray) -> np.ndarray:
            """(n_arrays, groups, lanes, taps) -> (n_arrays, taps, cols)."""
            full = vals.transpose(0, 3, 1, 2).reshape(n_arrays, taps,
                                                      array_lanes)
            if array_lanes < cols:
                widened = np.zeros((n_arrays, taps, cols), dtype=vals.dtype)
                widened[:, :, :array_lanes] = full
                full = widened
            return full

        filter_plane = planes(fvals)
        input_plane = planes(ivals)
        nb = self.mapping.element_bits
        _check_narrowed(self.name, nb, filter_plane, input_plane)

        # -- row regions (Fig. 10a), identical to the legacy layout --
        # Spanning groups widen the accumulators by one row: the final
        # cross-array add carries into bit 32 of the reduction width.
        acc_rows = 33 if span > 1 else 32
        filter_rows = Operand(0, taps * 8)
        input_rows = Operand(filter_rows.end, 8 if packed else taps * 8)
        scratch = Operand(input_rows.end, 16)
        partial = Operand(scratch.end, acc_rows)  # 24 live + growth
        segment = Operand(partial.end, 32)
        xsum_rows = Operand(segment.end, acc_rows)  # 24 live + growth
        if xsum_rows.end > 256:
            raise SimulationError(
                f"functional layout needs {xsum_rows.end} rows")

        unit = FleetBitSerialUnit(
            make_fleet(n_arrays, rows=256, cols=cols, packed=self.packed,
                       sanitize=self.sanitize),
            sparsity=self.sparsity)
        # One vectorized host pack loads all taps' planes at once (the
        # per-tap write_values loop was the pack boundary hot spot).
        unit.write_value_block(filter_rows, filter_plane, 8)
        if not packed:
            unit.write_value_block(input_rows, input_plane, 8)
        unit.zero(Operand(partial.row, 24))
        unit.zero(Operand(xsum_rows.row, 24))
        if span > 1:
            # The cross-array adds read the full 32-bit reduction width;
            # the in-array tree only writes growth bits up to
            # ``24 + log2(cols)``, so the rows above that need explicit
            # zeros (zeroing lower growth bits would be dead writes).
            in_final = 24 + (cols.bit_length() - 1)
            if in_final < 32:
                unit.zero(Operand(partial.row + in_final, 32 - in_final))
                unit.zero(Operand(xsum_rows.row + in_final, 32 - in_final))

        # -- MACs: one fused multiply-accumulate per tap, whole fleet --
        # Narrowed layers (``element_bits < 8``) run the serial sequence
        # over the low ``nb`` planes only; storage stays byte-aligned.
        before = unit.cycles
        for t in range(taps):
            f_op = Operand(filter_rows.row + 8 * t, nb)
            if packed:
                x_op = Operand(input_rows.row, nb)
                unit.write_values(x_op, input_plane[:, t])  # streamed byte
            else:
                x_op = Operand(input_rows.row + 8 * t, nb)
            unit.mac(f_op, x_op, Operand(scratch.row, 2 * nb),
                     Operand(partial.row, 24))
            unit.add_into(x_op, Operand(xsum_rows.row, 24))
        self.report.mac += (unit.cycles - before) * n_arrays

        # -- reductions: raw sums, then input sums (Fig. 5 / Fig. 10b) --
        before = unit.cycles
        in_lanes = lanes if span == 1 else cols
        if in_lanes > 1:
            unit.reduce_tree(partial, segment, in_lanes, 24)
            unit.reduce_tree(xsum_rows, segment, in_lanes, 24)
        if span > 1:
            # Fold the spanning arrays' per-array sums into each group's
            # first array, over the mapper's hop schedule (sense-amp
            # pair, then bus/ring), at the full reduction width.
            width = self.config.reduction_bits
            unit.reduce_across_arrays(partial, Operand(segment.row, width),
                                      span, width)
            unit.reduce_across_arrays(xsum_rows, Operand(segment.row, width),
                                      span, width)
        self.report.reduction += (unit.cycles - before) * n_arrays
        self.report.skipped += unit.skipped_cycles * n_arrays
        self.report.passes += n_arrays

        # -- read back each group's head column (output move path) --
        # Only the rows the sequence wrote are live: 24 accumulator bits
        # plus one growth bit per reduction step (spanning groups: the
        # full widened accumulator). The rest of the 32-row regions hold
        # power-on zeros — reading them would work, but the dataflow
        # verifier rightly flags reads of never-written rows.
        if span == 1:
            live_bits = 24 + (lanes.bit_length() - 1 if lanes > 1 else 0)
        else:
            live_bits = acc_rows
        raw_bits = unit.read_values(Operand(partial.row, live_bits))
        sum_bits = unit.read_values(Operand(xsum_rows.row, live_bits))
        head = np.arange(groups) * (lanes if span == 1 else 0)
        img_of = np.broadcast_to(img[:, None], ol.shape)
        raw[img_of[live], ol[live]] = raw_bits[:, head][live]
        xsum[img_of[live], ol[live]] = sum_bits[:, head][live]

    def _padded_input(self, x: QuantizedTensor) -> np.ndarray:
        """'same'-pad one image with the input zero point."""
        return self._padded_batch(x.data[None], x.params.zero_point)[0]

    def _padded_batch(self, data: np.ndarray, zero_point: int) -> np.ndarray:
        """'same'-pad a ``(batch, H, W, C)`` stack with the input zero
        point (zero contribution)."""
        if self.conv.padding == "same":
            top, bottom = same_padding_offsets(data.shape[1],
                                               self.conv.kernel[0],
                                               self.conv.stride)
            left, right = same_padding_offsets(data.shape[2],
                                               self.conv.kernel[1],
                                               self.conv.stride)
            data = np.pad(data,
                          ((0, 0), (top, bottom), (left, right), (0, 0)),
                          constant_values=zero_point)
        return data

    def _run_array_pass(self, padded: np.ndarray, filters: np.ndarray,
                        batch: list[tuple[int, int, int]], cols: int,
                        lanes: int) -> tuple[np.ndarray, np.ndarray]:
        """One array, one pass: MACs for every tap, then both reductions."""
        plan = self.plan
        taps = plan.taps
        stride = self.conv.stride
        packed = self.mapping.pack_factor > 1
        unit = BitSerialUnit(SRAMArray(rows=256, cols=cols))

        # -- row regions (Fig. 10a, with the input-sum for corrections).
        # Packed 1x1 filters have no input reuse and stream one input byte
        # at a time into a single-byte region (Sec. IV-A).
        filter_rows = Operand(0, taps * 8)
        input_rows = Operand(filter_rows.end, 8 if packed else taps * 8)
        scratch = Operand(input_rows.end, 16)
        partial = Operand(scratch.end, 32)      # 24 live + growth
        segment = Operand(partial.end, 32)
        xsum_rows = Operand(segment.end, 32)    # 24 live + growth
        if xsum_rows.end > 256:
            raise SimulationError(
                f"functional layout needs {xsum_rows.end} rows")

        # -- build the filter and input planes column by column --
        filter_plane = np.zeros((taps, cols), dtype=np.int64)
        input_plane = np.zeros((taps, cols), dtype=np.int64)
        for g, (i, j, mm) in enumerate(batch):
            base_col = g * lanes
            for lane in range(lanes):
                col = base_col + lane
                for t, src in enumerate(plan.filter_source[lane]):
                    if src is None:
                        continue
                    r, s, c = src
                    filter_plane[t, col] = filters[r, s, c, mm]
                    input_plane[t, col] = padded[i * stride + r,
                                                 j * stride + s, c]

        nb = self.mapping.element_bits
        _check_narrowed(self.name, nb, filter_plane, input_plane)

        # -- load filters (and, unpacked, the whole window); zero work --
        for t in range(taps):
            unit.write_values(Operand(filter_rows.row + 8 * t, 8),
                              filter_plane[t])
            if not packed:
                unit.write_values(Operand(input_rows.row + 8 * t, 8),
                                  input_plane[t])
        unit.zero(Operand(partial.row, 24))
        unit.zero(Operand(xsum_rows.row, 24))

        # -- MACs: one fused multiply-accumulate per tap, all columns --
        before = unit.cycles
        for t in range(taps):
            f_op = Operand(filter_rows.row + 8 * t, nb)
            if packed:
                x_op = Operand(input_rows.row, nb)
                unit.write_values(x_op, input_plane[t])  # streamed byte
            else:
                x_op = Operand(input_rows.row + 8 * t, nb)
            unit.mac(f_op, x_op, Operand(scratch.row, 2 * nb),
                     Operand(partial.row, 24))
            unit.add_into(x_op, Operand(xsum_rows.row, 24))
        self.report.mac += unit.cycles - before

        # -- reductions: raw sums, then input sums (Fig. 5 / Fig. 10b) --
        before = unit.cycles
        if lanes > 1:
            unit.reduce_tree(partial, segment, lanes, 24)
            unit.reduce_tree(xsum_rows, segment, lanes, 24)
        self.report.reduction += unit.cycles - before

        # -- read back each group's head column (output move path) --
        # As in the batched stage: read only the written rows (24 + one
        # growth bit per reduction step); the tail of the 32-row regions
        # was never driven.
        live_bits = 24 + (lanes.bit_length() - 1 if lanes > 1 else 0)
        raw_bits = unit.read_values(Operand(partial.row, live_bits))
        sum_bits = unit.read_values(Operand(xsum_rows.row, live_bits))
        head = np.arange(len(batch)) * lanes
        return raw_bits[head], sum_bits[head]

    # ------------------------------------------------------------------
    # Stage 2: corrections + ReLU + requantization (Sec. IV-D)
    # ------------------------------------------------------------------
    def _quantize_stage(self, raw: np.ndarray, xsum: np.ndarray,
                        zpx: int) -> np.ndarray:
        """Apply zero-point corrections, ReLU and requantization in cache.

        ``raw``/``xsum`` are ``(batch, n_out)``; the whole batch stages
        into one fleet (arrays aligned to image boundaries) and the
        correction/requantization sequence runs once per batch. The true
        accumulator is recovered from the unsigned in-cache sums:

            acc = raw - zpw * xsum + (N * zpx * zpw - zpx * sum_w[m])

        where ``raw = sum(x_q * w_q)``, ``xsum = sum(x_q)``, ``N = R.S.C``
        and ``sum_w[m]`` is filter ``m``'s byte sum — the per-filter
        constant is preloaded alongside the filters, ``zpw`` arrives as a
        broadcast scalar, and everything runs in 34-bit two's complement
        so ReLU's MSB mask works exactly as Sec. IV-D describes.
        """
        conv = self.conv
        weights = self.weights
        requant = weights.requant
        zpw = weights.zero_point
        r, s, c, m = conv.filter_shape(self.input_shape)
        n_taps = r * s * c
        if np.any(xsum >= 1 << 16):
            raise SimulationError(
                "input sums exceed the 16-bit correction multiply")

        sum_w = weights.filters.data.astype(np.int64).sum(axis=(0, 1, 2))
        # Net constant per output: N*zpx*zpw - zpx*sum_w[m] (may be < 0).
        e, f, _ = conv.output_shape(self.input_shape)
        const = n_taps * zpx * zpw - zpx * sum_w  # per filter m
        const_per_output = np.tile(const, e * f)  # outputs are (i, j, m)

        in_cache_requant = conv.relu and requant.shift <= 39
        cols = self.config.geometry.array_cols
        if self.vectorized:
            return self._quantize_fleet(raw, xsum, const_per_output, zpw,
                                        in_cache_requant, cols)
        n_images, n_out = raw.shape
        out = np.zeros((n_images, n_out), dtype=np.int64)
        for b in range(n_images):
            for start in range(0, n_out, cols):
                end = min(start + cols, n_out)
                width = end - start
                out[b, start:end] = self._quantize_batch(
                    raw[b, start:end], xsum[b, start:end],
                    const_per_output[start:end], zpw, in_cache_requant,
                    cols)[:width]
        return out

    def _quantize_fleet(self, raw: np.ndarray, xsum: np.ndarray,
                        const: np.ndarray, zpw: int,
                        in_cache_requant: bool, cols: int) -> np.ndarray:
        """All quantization passes of the whole batch at once: one fleet
        member per pass of up-to-``cols`` outputs, same sequence as
        :meth:`_quantize_batch`. Chunked at ``config.max_fleet_arrays``
        arrays to bound memory."""
        from repro.common.bits import to_twos_complement

        n_images, n_out = raw.shape
        const_tc = to_twos_complement(const, CORRECTION_BITS)

        def stage_group(b0: int, b1: int) -> list[np.ndarray]:
            return [
                _stage_batch(raw[b0:b1], cols),
                _stage_batch(xsum[b0:b1], cols),
                _stage_batch(np.broadcast_to(const_tc, (b1 - b0, n_out)),
                             cols),
            ]

        return _run_batched_staged(
            n_images, n_out, cols, self.config, stage_group,
            lambda planes: self._quantize_fleet_chunk(
                planes[0], planes[1], planes[2], zpw, in_cache_requant,
                cols))

    def _quantize_fleet_chunk(self, raw_planes: np.ndarray,
                              xsum_planes: np.ndarray,
                              const_planes: np.ndarray, zpw: int,
                              in_cache_requant: bool,
                              cols: int) -> np.ndarray:
        """One bounded fleet of staged ``(n_arrays, cols)`` value planes;
        returns the resulting ``(n_arrays, cols)`` output values (dead
        lanes hold garbage and are discarded on unstaging)."""
        requant = self.weights.requant
        n_arrays = raw_planes.shape[0]
        unit = FleetBitSerialUnit(
            make_fleet(n_arrays, rows=256, cols=cols, packed=self.packed,
                       sanitize=self.sanitize),
            sparsity=self.sparsity)
        w = CORRECTION_BITS

        acc = Operand(0, w)          # 0..33
        xs16 = Operand(w, 16)        # 34..49
        m16 = Operand(50, 16)
        prod = Operand(66, w)        # 32-bit product + 2 zero rows
        kreg = Operand(100, w)
        scr = Operand(134, w)

        # Host staging (the output-move path already paid for this data).
        unit.write_values(acc, raw_planes)
        unit.write_values(xs16, xsum_planes)
        unit.write_values(kreg, const_planes)

        before = unit.cycles
        # acc += (N*zpx*zpw - zpx*sum_w[m]);  acc -= zpw * xsum
        unit.write_scalar(m16, zpw)
        unit.multiply(xs16, m16, Operand(prod.row, 32))
        unit.zero(Operand(prod.row + 32, 2))
        unit.add_into(kreg, acc)
        unit.sub_into(acc, prod, scr)

        if not in_cache_requant:
            # No-ReLU layers (the final FC) requantize on the host, as the
            # paper ships final outputs to the CPU anyway.
            self.report.quantization += (unit.cycles - before) * n_arrays
            self.report.skipped += unit.skipped_cycles * n_arrays
            signed = from_twos_complement(unit.read_values(acc), w)
            if self.conv.relu:
                signed = np.maximum(signed, 0)
            return requant.apply(signed).astype(np.int64)

        # ReLU: MSB-enabled zero write (Sec. IV-D).
        unit.relu(acc, sign_row=acc.bit(w - 1))

        # Requantize: acc * M0 (24x24 multiply), +rounding, shift, +zp.
        shift = requant.shift
        m24 = Operand(34, 24)            # xs16/m16 are dead now
        prod48 = Operand(58, 48)         # prod/kreg head are dead
        half48 = Operand(106, 48)        # kreg tail/scr head are dead
        zp9 = Operand(154, 9)
        out10 = Operand(163, 10)
        sat8 = Operand(173, 8)

        unit.write_scalar(m24, requant.multiplier)
        unit.multiply(Operand(acc.row, 24), m24, prod48)
        if shift > 0:
            unit.write_scalar(half48, 1 << (shift - 1))
            unit.add_into(half48, prod48)
        unit.write_scalar(zp9, requant.zero_point)
        unit.add(Operand(prod48.row + shift, 9), zp9, out10)
        # Saturate to 255 when any bit above the result window is set.
        unit.write_scalar(sat8, 255)
        for high in range(shift + 9, 48):
            unit.selective_copy(sat8, Operand(out10.row, 8),
                                prod48.row + high)
        for high in (8, 9):
            unit.selective_copy(sat8, Operand(out10.row, 8), out10.bit(high))
        self.report.quantization += (unit.cycles - before) * n_arrays
        self.report.skipped += unit.skipped_cycles * n_arrays
        return unit.read_values(Operand(out10.row, 8))

    def _quantize_batch(self, raw: np.ndarray, xsum: np.ndarray,
                        const: np.ndarray, zpw: int,
                        in_cache_requant: bool, cols: int) -> np.ndarray:
        """One quantization pass: up to ``cols`` outputs, one per bitline."""
        from repro.common.bits import to_twos_complement

        requant = self.weights.requant
        unit = BitSerialUnit(SRAMArray(rows=256, cols=cols))
        w = CORRECTION_BITS

        acc = Operand(0, w)          # 0..33
        xs16 = Operand(w, 16)        # 34..49
        m16 = Operand(50, 16)
        prod = Operand(66, w)        # 32-bit product + 2 zero rows
        kreg = Operand(100, w)
        scr = Operand(134, w)

        def staged(values: np.ndarray) -> np.ndarray:
            padded = np.zeros(cols, dtype=np.int64)
            padded[:len(values)] = values
            return padded

        # Host staging (the output-move path already paid for this data).
        unit.write_values(acc, staged(raw))
        unit.write_values(xs16, staged(xsum))
        unit.write_values(kreg, staged(to_twos_complement(const, w)))

        before = unit.cycles
        # acc += (N*zpx*zpw - zpx*sum_w[m]);  acc -= zpw * xsum
        unit.write_scalar(m16, zpw)
        unit.multiply(xs16, m16, Operand(prod.row, 32))
        unit.zero(Operand(prod.row + 32, 2))
        unit.add_into(kreg, acc)
        unit.sub_into(acc, prod, scr)

        if not in_cache_requant:
            # No-ReLU layers (the final FC) requantize on the host, as the
            # paper ships final outputs to the CPU anyway.
            self.report.quantization += unit.cycles - before
            signed = from_twos_complement(unit.read_values(acc), w)
            if self.conv.relu:
                signed = np.maximum(signed, 0)
            return requant.apply(signed).astype(np.int64)

        # ReLU: MSB-enabled zero write (Sec. IV-D).
        unit.relu(acc, sign_row=acc.bit(w - 1))

        # Requantize: acc * M0 (24x24 multiply), +rounding, shift, +zp.
        shift = requant.shift
        m24 = Operand(34, 24)            # xs16/m16 are dead now
        prod48 = Operand(58, 48)         # prod/kreg head are dead
        half48 = Operand(106, 48)        # kreg tail/scr head are dead
        zp9 = Operand(154, 9)
        out10 = Operand(163, 10)
        sat8 = Operand(173, 8)

        unit.write_scalar(m24, requant.multiplier)
        unit.multiply(Operand(acc.row, 24), m24, prod48)
        if shift > 0:
            unit.write_scalar(half48, 1 << (shift - 1))
            unit.add_into(half48, prod48)
        unit.write_scalar(zp9, requant.zero_point)
        unit.add(Operand(prod48.row + shift, 9), zp9, out10)
        # Saturate to 255 when any bit above the result window is set.
        unit.write_scalar(sat8, 255)
        for high in range(shift + 9, 48):
            unit.selective_copy(sat8, Operand(out10.row, 8),
                                prod48.row + high)
        for high in (8, 9):
            unit.selective_copy(sat8, Operand(out10.row, 8), out10.bit(high))
        self.report.quantization += unit.cycles - before
        return unit.read_values(Operand(out10.row, 8))


class FunctionalMaxPool:
    """Max pooling on bit-serial arrays (Sec. IV-D)."""

    def __init__(self, pool: MaxPool, input_shape: tuple[int, int, int],
                 config: NeuralCacheConfig | None = None,
                 name: str = "maxpool", packed: bool = False,
                 sparsity: bool = False,
                 sanitize: bool | None = None):
        self.pool = pool
        self.input_shape = input_shape
        self.config = config if config is not None else NeuralCacheConfig()
        self.mapping = map_pool(self.config, name, pool, input_shape)
        self.packed = packed
        self.sparsity = sparsity
        self.sanitize = sanitize
        self.report = CycleReport()

    def run(self, x: QuantizedTensor) -> QuantizedTensor:
        return self.run_batch([x])[0]

    def run_batch(self, xs: list[QuantizedTensor]) -> list[QuantizedTensor]:
        """Max-pool a whole batch in one fleet pass per chunk."""
        _check_batch(xs, self.input_shape)
        pool = self.pool
        e, f, c = pool.output_shape(self.input_shape)
        padded = _pad_pool_input(np.stack([x.data for x in xs]), pool,
                                 fill=0)
        n_out = e * f * c
        cols = self.config.geometry.array_cols
        out_i, out_j, out_c = _pool_output_coords(n_out, f, c)
        window = [(r, s) for r in range(pool.kernel[0])
                  for s in range(pool.kernel[1])]

        def stage_group(b0: int, b1: int) -> list[np.ndarray]:
            # Every window tap of the group's images, on the fleet axis.
            return [_stage_batch(
                        padded[b0:b1, out_i * pool.stride + r,
                               out_j * pool.stride + s,
                               out_c].astype(np.int64), cols)
                    for r, s in window]

        out = _run_batched_staged(
            len(xs), n_out, cols, self.config, stage_group,
            lambda planes: self._run_fleet(planes, cols))
        return [QuantizedTensor(o.reshape(e, f, c).astype(np.uint8),
                                x.params)
                for o, x in zip(out, xs)]

    def _run_fleet(self, taps: list[np.ndarray], cols: int) -> np.ndarray:
        """One bounded fleet: fold the staged window taps into a running
        maximum, all ``(n_arrays, cols)`` slots at once."""
        n_arrays = taps[0].shape[0]
        unit = FleetBitSerialUnit(
            make_fleet(n_arrays, rows=64, cols=cols, packed=self.packed,
                       sanitize=self.sanitize),
            sparsity=self.sparsity)
        current = Operand(0, 8)
        candidate = Operand(8, 8)
        scratch = Operand(16, 17)

        before = unit.cycles
        unit.write_values(current, taps[0])
        for tap in taps[1:]:
            unit.write_values(candidate, tap)
            unit.max_update(current, candidate, scratch)
        self.report.pooling += (unit.cycles - before) * n_arrays
        self.report.skipped += unit.skipped_cycles * n_arrays
        self.report.passes += n_arrays
        return unit.read_values(current)


class FunctionalAvgPool:
    """Average pooling: in-array window sum, then restoring division."""

    def __init__(self, pool: AvgPool, input_shape: tuple[int, int, int],
                 config: NeuralCacheConfig | None = None,
                 name: str = "avgpool", packed: bool = False,
                 sparsity: bool = False,
                 sanitize: bool | None = None):
        self.pool = pool
        self.input_shape = input_shape
        self.config = config if config is not None else NeuralCacheConfig()
        self.mapping = map_pool(self.config, name, pool, input_shape)
        self.packed = packed
        self.sparsity = sparsity
        self.sanitize = sanitize
        self.report = CycleReport()

    def run(self, x: QuantizedTensor) -> QuantizedTensor:
        return self.run_batch([x])[0]

    def run_batch(self, xs: list[QuantizedTensor]) -> list[QuantizedTensor]:
        """Average-pool a whole batch in one fleet pass per chunk."""
        _check_batch(xs, self.input_shape)
        pool = self.pool
        e, f, c = pool.output_shape(self.input_shape)
        padded = _pad_pool_input(np.stack([x.data for x in xs]), pool,
                                 fill=0)
        counts = _pool_tap_counts(self.input_shape, pool)
        n_out = e * f * c
        cols = self.config.geometry.array_cols
        out_i, out_j, out_c = _pool_output_coords(n_out, f, c)
        window = [(r, s) for r in range(pool.kernel[0])
                  for s in range(pool.kernel[1])]

        def stage_group(b0: int, b1: int) -> list[np.ndarray]:
            taps = [_stage_batch(
                        padded[b0:b1, out_i * pool.stride + r,
                               out_j * pool.stride + s,
                               out_c].astype(np.int64), cols)
                    for r, s in window]
            # Dead columns divide by 1 so divide() never sees a zero
            # divisor; tap counts are layout-only, shared by all images.
            taps.append(_stage_batch(
                np.broadcast_to(counts[out_i, out_j], (b1 - b0, n_out)),
                cols, fill=1))
            return taps

        out = _run_batched_staged(
            len(xs), n_out, cols, self.config, stage_group,
            lambda planes: self._run_fleet(planes[:-1], planes[-1], cols))
        return [QuantizedTensor(o.reshape(e, f, c).astype(np.uint8),
                                x.params)
                for o, x in zip(out, xs)]

    def _run_fleet(self, taps: list[np.ndarray], divisors: np.ndarray,
                   cols: int) -> np.ndarray:
        """One bounded fleet: window sum then restoring division on all
        staged ``(n_arrays, cols)`` slots at once."""
        n_arrays = taps[0].shape[0]
        acc_bits = 16

        unit = FleetBitSerialUnit(
            make_fleet(n_arrays, rows=128, cols=cols, packed=self.packed,
                       sanitize=self.sanitize),
            sparsity=self.sparsity)
        element = Operand(0, 8)
        acc = Operand(8, acc_bits)
        divisor = Operand(24, acc_bits)
        quotient = Operand(40, acc_bits)
        work = Operand(56, 3 * acc_bits + 4)

        before = unit.cycles
        unit.zero(acc)
        for tap in taps:
            unit.write_values(element, tap)
            unit.add_into(element, acc)
        unit.write_values(divisor, divisors)
        unit.divide(acc, divisor, quotient, work)
        self.report.pooling += (unit.cycles - before) * n_arrays
        self.report.skipped += unit.skipped_cycles * n_arrays
        self.report.passes += n_arrays
        return unit.read_values(quotient)


class FunctionalAdd:
    """Element-wise quantized addition in cache (residual connections).

    One output per bitline: add the operands (Fig. 4), subtract the
    shared zero point, clamp below at zero (or at the zero point when a
    ReLU is fused) and saturate above at 255 — all with the tag-predicated
    writes of Sec. III.
    """

    def __init__(self, input_shape: tuple[int, int, int],
                 config: NeuralCacheConfig | None = None,
                 relu: bool = False, name: str = "add",
                 packed: bool = False, sparsity: bool = False,
                 sanitize: bool | None = None):
        self.input_shape = input_shape
        self.config = config if config is not None else NeuralCacheConfig()
        self.relu = relu
        self.name = name
        self.packed = packed
        self.sparsity = sparsity
        self.sanitize = sanitize
        self.report = CycleReport()

    def run(self, a: QuantizedTensor, b: QuantizedTensor) -> QuantizedTensor:
        return self.run_batch([a], [b])[0]

    def run_batch(self, a_list: list[QuantizedTensor],
                  b_list: list[QuantizedTensor]) -> list[QuantizedTensor]:
        """Add a whole batch of operand pairs in one fleet pass per chunk.

        The shared zero point broadcasts to the entire fleet, so every
        image of the batch must carry the same quantization parameters
        (they do, coming out of one network's branches).
        """
        if len(a_list) != len(b_list):
            raise SimulationError(
                f"operand batches must match: {len(a_list)} vs "
                f"{len(b_list)} images")
        _check_batch(a_list, self.input_shape, shared_params=True)
        _check_batch(b_list, self.input_shape, shared_params=True)
        if a_list[0].params != b_list[0].params:
            raise SimulationError(
                "elementwise add requires shared quantization parameters; "
                "requantize the branches first")
        zp = a_list[0].params.zero_point
        n_out = int(np.prod(self.input_shape))
        cols = self.config.geometry.array_cols

        def stage_group(b0: int, b1: int) -> list[np.ndarray]:
            return [_stage_batch(
                        np.stack([t.data.reshape(-1)
                                  for t in ts[b0:b1]]).astype(np.int64),
                        cols)
                    for ts in (a_list, b_list)]

        out = _run_batched_staged(
            len(a_list), n_out, cols, self.config, stage_group,
            lambda planes: self._run_fleet(planes[0], planes[1], zp, cols))
        return [QuantizedTensor(
                    o.reshape(self.input_shape).astype(np.uint8), a.params)
                for o, a in zip(out, a_list)]

    def _run_fleet(self, av: np.ndarray, bv: np.ndarray, zp: int,
                   cols: int) -> np.ndarray:
        """One bounded fleet over staged ``(n_arrays, cols)`` operands."""
        n_arrays = av.shape[0]
        unit = FleetBitSerialUnit(
            make_fleet(n_arrays, rows=96, cols=cols, packed=self.packed,
                       sanitize=self.sanitize),
            sparsity=self.sparsity)
        a8, b8 = Operand(0, 8), Operand(8, 8)
        total9 = Operand(16, 9)
        zp9 = Operand(25, 9)
        diff10 = Operand(34, 10)       # 9-bit difference + not-borrow
        scratch9 = Operand(44, 9)
        low9 = Operand(53, 9)
        sat8 = Operand(62, 8)
        relu_cmp = Operand(70, 10)     # second compare for fused ReLU

        unit.write_values(a8, av)
        unit.write_values(b8, bv)

        before = unit.cycles
        unit.add(a8, b8, total9)
        unit.write_scalar(zp9, zp)
        unit.sub(total9, zp9, diff10, scratch9)
        # Underflow: total < zp  ->  result clamps to 0.
        unit.write_scalar(low9, 0)
        unit.selective_copy(low9, Operand(diff10.row, 9), diff10.bit(9),
                            invert=True)
        # Overflow: difference >= 256  ->  saturate to 255.
        unit.write_scalar(sat8, 255)
        unit.selective_copy(sat8, Operand(diff10.row, 8), diff10.bit(8))
        if self.relu:
            # Fused ReLU clamps below the zero point: out = max(out, zp).
            unit.sub(Operand(diff10.row, 9), zp9, relu_cmp, scratch9)
            unit.write_scalar(low9, zp)
            unit.selective_copy(low9, Operand(diff10.row, 9),
                                relu_cmp.bit(9), invert=True)
        self.report.pooling += (unit.cycles - before) * n_arrays
        self.report.skipped += unit.skipped_cycles * n_arrays
        self.report.passes += n_arrays
        return unit.read_values(Operand(diff10.row, 8))


class FunctionalBatchNorm:
    """Explicit in-cache batch normalisation (Sec. IV-D).

    Per output: a 16-bit multiply by the channel's scalar, a two's
    complement add of the channel's bias integer, the MSB-masked ReLU,
    then the rounding shift / zero-point / saturation epilogue — the
    "multiplications, adds, and shifts to be performed on all the output
    elements" of the paper. Layers without ReLU read the signed
    accumulator back and finish on the host (as with the final FC).
    """

    def __init__(self, input_shape: tuple[int, int, int], bn_weights,
                 config: NeuralCacheConfig | None = None,
                 relu: bool = True, zp_out: int = 0, name: str = "bn",
                 packed: bool = False, sparsity: bool = False,
                 sanitize: bool | None = None):
        self.input_shape = input_shape
        self.bn = bn_weights
        self.config = config if config is not None else NeuralCacheConfig()
        self.relu = relu
        self.zp_out = zp_out
        self.name = name
        self.packed = packed
        self.sparsity = sparsity
        self.sanitize = sanitize
        self.report = CycleReport()
        if input_shape[2] != bn_weights.channels:
            raise SimulationError(
                f"BN has {bn_weights.channels} channels, input has "
                f"{input_shape[2]}")
        if relu and bn_weights.shift + 9 > 34:
            raise SimulationError(
                f"BN shift {bn_weights.shift} too large for the in-cache "
                f"epilogue window")

    def run(self, x: QuantizedTensor) -> QuantizedTensor:
        return self.run_batch([x])[0]

    def run_batch(self, xs: list[QuantizedTensor]) -> list[QuantizedTensor]:
        """Batch-normalise a whole batch in one fleet pass per chunk."""
        from repro.nn.tensor import QuantParams, round_shift

        from repro.common.bits import to_twos_complement

        _check_batch(xs, self.input_shape)
        h, w, c = self.input_shape
        n_out = h * w * c
        # Channel index of each flattened output (C varies fastest); the
        # per-channel scalars/biases are layout-only, shared by all images.
        channel_of = np.tile(np.arange(c), h * w)
        cols = self.config.geometry.array_cols
        mult_col = self.bn.multiplier[channel_of]
        bias_col = to_twos_complement(self.bn.bias[channel_of],
                                      CORRECTION_BITS)

        def stage_group(b0: int, b1: int) -> list[np.ndarray]:
            group = b1 - b0
            return [
                _stage_batch(np.stack([x.data.reshape(-1)
                                       for x in xs[b0:b1]]).astype(np.int64),
                             cols),
                _stage_batch(np.broadcast_to(mult_col, (group, n_out)),
                             cols),
                _stage_batch(np.broadcast_to(bias_col, (group, n_out)),
                             cols),
            ]

        out = _run_batched_staged(
            len(xs), n_out, cols, self.config, stage_group,
            lambda planes: self._run_fleet(planes[0], planes[1],
                                           planes[2], cols))
        if not self.relu:
            # Host epilogue for no-ReLU layers (as with the final FC).
            signed = from_twos_complement(out, CORRECTION_BITS)
            out = np.clip(round_shift(signed, self.bn.shift) + self.zp_out,
                          0, 255)
        return [QuantizedTensor(
                    o.reshape(self.input_shape).astype(np.uint8),
                    QuantParams(scale=x.params.scale,
                                zero_point=self.zp_out))
                for o, x in zip(out, xs)]

    def _run_fleet(self, q_planes: np.ndarray, mult_planes: np.ndarray,
                   bias_planes: np.ndarray, cols: int) -> np.ndarray:
        """One bounded fleet over staged ``(n_arrays, cols)`` values.

        Returns the requantized bytes (ReLU layers) or the raw 34-bit
        two's complement accumulators (no-ReLU layers, host epilogue)."""
        n_arrays = q_planes.shape[0]
        unit = FleetBitSerialUnit(
            make_fleet(n_arrays, rows=256, cols=cols, packed=self.packed,
                       sanitize=self.sanitize),
            sparsity=self.sparsity)
        w = CORRECTION_BITS
        q16 = Operand(0, 16)
        mult16 = Operand(16, 16)
        acc = Operand(32, w)        # 32-bit product + 2 growth rows
        bias34 = Operand(66, w)
        scratch = Operand(100, w)
        half34 = Operand(134, w)
        zp9 = Operand(168, 9)
        out10 = Operand(177, 10)
        sat8 = Operand(187, 8)

        unit.write_values(q16, q_planes)
        unit.write_values(mult16, mult_planes)
        unit.write_values(bias34, bias_planes)

        before = unit.cycles
        unit.multiply(q16, mult16, Operand(acc.row, 32))
        unit.zero(Operand(acc.row + 32, 2))
        unit.add_into(bias34, acc)

        if not self.relu:
            self.report.quantization += (unit.cycles - before) * n_arrays
            self.report.skipped += unit.skipped_cycles * n_arrays
            self.report.passes += n_arrays
            return unit.read_values(acc)

        unit.relu(acc, sign_row=acc.bit(w - 1))
        shift = self.bn.shift
        if shift > 0:
            unit.write_scalar(half34, 1 << (shift - 1))
            unit.add_into(half34, acc)
        unit.write_scalar(zp9, self.zp_out)
        unit.add(Operand(acc.row + shift, 9), zp9, out10)
        unit.write_scalar(sat8, 255)
        for high in range(shift + 9, w):
            unit.selective_copy(sat8, Operand(out10.row, 8),
                                acc.row + high)
        for high in (8, 9):
            unit.selective_copy(sat8, Operand(out10.row, 8), out10.bit(high))
        self.report.quantization += (unit.cycles - before) * n_arrays
        self.report.skipped += unit.skipped_cycles * n_arrays
        self.report.passes += n_arrays
        return unit.read_values(Operand(out10.row, 8))


class FunctionalExecutor:
    """Runs a whole quantized network on bit-serial arrays.

    Convolutions (including FC-as-conv) and pooling execute in-cache;
    concatenation is pure data movement (the outputs of branches land in
    adjacent regions of the reserved way) and happens on the host, exactly
    as the architecture leaves it to the output-management machinery.

    Layer engines (and therefore every layer's mapping plan) are built on
    first use and reused across :meth:`run`/:meth:`run_batch` calls — the
    filters stay resident across a batch, exactly as the architecture
    amortises filter loading (Sec. IV-E). Per-run state (the cycle
    reports) is reset at the start of each run, so
    ``reports``/:meth:`total_report` always describe the most recent
    run — one image for :meth:`run`, the whole batch for
    :meth:`run_batch`.
    """

    def __init__(self, network, weights,
                 config: NeuralCacheConfig | None = None,
                 packed: bool = False,
                 sparsity: bool = False,
                 sanitize: bool | None = None,
                 precision=None):
        from repro.nn.layers import (
            Add,
            BatchNorm,
            Concat,
            FullyConnected,
            QuantizedBatchNorm,
        )
        self.network = network
        self.weights = weights
        self.config = config if config is not None else NeuralCacheConfig()
        #: Plane store for every layer's fleet (packed words vs reference).
        self.packed = packed
        #: Skip all-zero operand bit planes (data-dependent cycles;
        #: outputs bit-exact vs dense, ``dense_cycles`` stays stable).
        self.sparsity = sparsity
        self.sanitize = sanitize
        #: Per-layer element precision (:class:`~repro.core.precision
        #: .LayerPrecision`); falls back to the network's attached table.
        if precision is None:
            precision = getattr(network, "precision", None)
        if precision is not None:
            precision.validate(network)
        self.precision = precision
        self.reports: dict[str, CycleReport] = {}
        #: Node name -> layer engine, planned once and reused per image.
        self._engines: dict[str, object] = {}
        self._concat_type = Concat
        self._bn_type = BatchNorm
        self._fc_type = FullyConnected
        self._add_type = Add
        self._qbn_type = QuantizedBatchNorm

    def run(self, image: QuantizedTensor) -> dict[str, QuantizedTensor]:
        """Execute every layer; returns all node outputs by name."""
        batch = self.run_batch([image])
        return {name: tensors[0] for name, tensors in batch.items()}

    def run_batch(self, images: list[QuantizedTensor]
                  ) -> dict[str, list[QuantizedTensor]]:
        """Execute every layer once for a whole batch of images.

        The batch folds into each layer's fleet dimension
        (``batch * arrays_per_image`` arrays), so every bit-serial
        sequence of the network runs once per *batch* instead of once per
        image, with outputs and aggregate cycle reports identical to
        looping :meth:`run` (``reports`` holds each layer's whole-batch
        cycles — the per-image loop total, since batching changes
        wall-clock, not modeled cycles). Returns node name -> one output
        tensor per image.
        """
        if not images:
            raise SimulationError("run_batch needs at least one image")
        for image in images:
            if image.shape != self.network.input_shape:
                raise SimulationError(
                    f"input shape {image.shape} does not match network "
                    f"{self.network.input_shape}")
        self.reports = {}
        results = {self.network.input_name: list(images)}
        for node in self.network.layer_nodes():
            inputs = [results[name] for name in node.inputs]
            results[node.name] = self._run_node(node, inputs)
        return results

    def run_output(self, image: QuantizedTensor) -> QuantizedTensor:
        return self.run(image)[self.network.output_name]

    def _engine_for(self, node, inputs):
        """The node's layer engine, built (planned) once per executor."""
        engine = self._engines.get(node.name)
        if engine is None:
            engine = self._build_engine(node, inputs)
            self._engines[node.name] = engine
        # Per-run state: each run/batch reports its own cycles.
        engine.report = CycleReport()
        return engine

    def _build_engine(self, node, inputs):
        layer = node.layer
        activation = self.weights.activation_params
        if isinstance(layer, self._add_type):
            return FunctionalAdd(inputs[0].shape, self.config,
                                 relu=layer.relu, name=node.name,
                                 packed=self.packed, sparsity=self.sparsity,
                                 sanitize=self.sanitize)
        if isinstance(layer, self._qbn_type):
            return FunctionalBatchNorm(
                inputs[0].shape, self.weights.bn_for_node(node.name),
                self.config, relu=layer.relu,
                zp_out=activation.zero_point, name=node.name,
                packed=self.packed, sparsity=self.sparsity,
                sanitize=self.sanitize)
        if isinstance(layer, MaxPool):
            return FunctionalMaxPool(layer, inputs[0].shape, self.config,
                                     name=node.name, packed=self.packed,
                                     sparsity=self.sparsity,
                                     sanitize=self.sanitize)
        if isinstance(layer, AvgPool):
            return FunctionalAvgPool(layer, inputs[0].shape, self.config,
                                     name=node.name, packed=self.packed,
                                     sparsity=self.sparsity,
                                     sanitize=self.sanitize)
        conv = self.network.conv_of(node)
        shape = inputs[0].shape
        if isinstance(layer, self._fc_type):
            shape = (1, 1, int(np.prod(shape)))
        element_bits = (self.precision.bits_for(node.name)
                        if self.precision is not None else None)
        return FunctionalConv(conv, shape,
                              self.weights.for_node(node.name),
                              self.config, name=node.name,
                              output_params=activation,
                              packed=self.packed, sparsity=self.sparsity,
                              sanitize=self.sanitize,
                              element_bits=element_bits)

    def _run_node(self, node, inputs):
        """Run one node for the whole batch; ``inputs`` are per-branch
        lists of per-image tensors."""
        layer = node.layer
        if isinstance(layer, self._concat_type):
            # Pure data movement, on the host (Sec. IV-E).
            return [QuantizedTensor(
                        np.concatenate([branch[i].data for branch in inputs],
                                       axis=2),
                        inputs[0][i].params)
                    for i in range(len(inputs[0]))]
        if isinstance(layer, self._bn_type):
            return inputs[0]
        engine = self._engine_for(node, [branch[0] for branch in inputs])
        if isinstance(layer, self._add_type):
            out = engine.run_batch(inputs[0], inputs[1])
        elif isinstance(layer, self._fc_type):
            out = engine.run_batch(
                [QuantizedTensor(x.data.reshape(1, 1, -1), x.params)
                 for x in inputs[0]])
        else:
            out = engine.run_batch(inputs[0])
        self.reports[node.name] = engine.report
        return out

    def total_report(self) -> CycleReport:
        """Cycle totals across all executed layers."""
        total = CycleReport()
        for report in self.reports.values():
            total = total.merged(report)
        return total


def _check_narrowed(name: str, nb: int, filter_plane: np.ndarray,
                    input_plane: np.ndarray) -> None:
    """Narrowed layers must actually fit their elements in ``nb`` bits.

    Precision narrowing only drops the serial passes over the high
    planes; it is exact *only* when those planes are zero for every
    staged value, so an operand outside ``[0, 2**nb)`` is a hard error,
    not silent truncation.
    """
    if nb >= 8:
        return
    limit = 1 << nb
    f_max = int(filter_plane.max(initial=0))
    x_max = int(input_plane.max(initial=0))
    if f_max >= limit or x_max >= limit:
        raise SimulationError(
            f"layer {name!r} narrows elements to {nb} bits but staged "
            f"operands reach {max(f_max, x_max)} (>= {limit}); narrowed "
            f"execution would truncate them")


def _max_fleet_arrays(config: NeuralCacheConfig) -> int:
    """The configured per-chunk array cap (module default when unset)."""
    if config.max_fleet_arrays is not None:
        return config.max_fleet_arrays
    return MAX_FLEET_ARRAYS


def _array_chunks(total_arrays: int, max_arrays: int
                  ) -> list[tuple[int, int]]:
    """Slices of the global batch-by-arrays axis, at most ``max_arrays``
    each, bounding fleet memory on activation-heavy layers and batches."""
    return [(a0, min(a0 + max_arrays, total_arrays))
            for a0 in range(0, total_arrays, max_arrays)]


def _run_batched_staged(n_images: int, n_out: int, cols: int,
                        config: NeuralCacheConfig, stage_group,
                        run_chunk) -> np.ndarray:
    """Drive a staged batched pass with bounded peak memory.

    Images are processed in image-aligned groups sized so one group's
    staged planes respect ``config.max_fleet_arrays`` (a single image
    whose own fleet exceeds the cap still forms a group and is chunked on
    the array axis inside) — staging the whole batch up front would let
    peak host memory grow with the batch regardless of the chunk knob.
    ``stage_group(b0, b1)`` returns the group's staged
    ``(arrays, cols)`` value planes; ``run_chunk(planes)`` executes one
    bounded fleet over chunk slices of them and returns the output plane.
    Chunk and group boundaries are unobservable: bit-serial sequences are
    data-independent and cycles are charged per array, so any partition
    yields identical outputs and cycle reports (property-tested with
    ``max_fleet_arrays=2``).
    """
    max_arrays = _max_fleet_arrays(config)
    arrays_per_image = -(-n_out // cols)
    per_group = max(max_arrays // arrays_per_image, 1)
    out = np.zeros((n_images, n_out), dtype=np.int64)
    for b0 in range(0, n_images, per_group):
        b1 = min(b0 + per_group, n_images)
        planes = stage_group(b0, b1)
        out_planes = np.zeros_like(planes[0])
        for a0, a1 in _array_chunks(planes[0].shape[0], max_arrays):
            out_planes[a0:a1] = run_chunk([p[a0:a1] for p in planes])
        out[b0:b1] = _unstage_batch(out_planes, b1 - b0, n_out)
    return out


def _check_batch(xs, input_shape, shared_params: bool = False) -> None:
    """Validate a ``run_batch`` image list: non-empty, every image the
    layer's shape, and (when the sequence broadcasts a scalar derived
    from them) shared quantization parameters."""
    if not xs:
        raise SimulationError("run_batch needs at least one image")
    for x in xs:
        if x.shape != input_shape:
            raise SimulationError(
                f"input shape {x.shape} does not match layer "
                f"{input_shape}")
        if shared_params and x.params != xs[0].params:
            raise SimulationError(
                "batched execution requires every image of the batch to "
                "share quantization parameters")


def _stage_batch(values: np.ndarray, cols: int, fill: int = 0) -> np.ndarray:
    """Stage ``(batch, n_out)`` values as ``(batch * arrays, cols)`` fleet
    planes, arrays aligned to image boundaries.

    Image ``b`` occupies arrays ``[b * arrays, (b + 1) * arrays)`` with
    ``arrays = ceil(n_out / cols)``; array ``p`` of an image receives its
    elements ``[p * cols, (p + 1) * cols)``, and the tail columns of each
    image's last array are padded with ``fill`` (dead lanes) — exactly the
    arrays a per-image loop would stage, so batched cycle accounting
    (cycles x arrays) matches the loop.
    """
    values = np.asarray(values, dtype=np.int64)
    batch, n_out = values.shape
    arrays_per_image = -(-n_out // cols)
    staged = np.full((batch, arrays_per_image * cols), fill, dtype=np.int64)
    staged[:, :n_out] = values
    return staged.reshape(batch * arrays_per_image, cols)


def _unstage_batch(planes: np.ndarray, batch: int, n_out: int) -> np.ndarray:
    """Inverse of :func:`_stage_batch`: the live ``(batch, n_out)`` values
    of per-image-aligned ``(batch * arrays, cols)`` planes."""
    return planes.reshape(batch, -1)[:, :n_out]


def _pool_output_coords(n_out: int, f: int, c: int
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flattened output index -> (i, j, channel), C varying fastest."""
    out_idx = np.arange(n_out)
    return out_idx // (f * c), (out_idx // c) % f, out_idx % c


def _pad_pool_input(data: np.ndarray, pool, fill: int) -> np.ndarray:
    """'same'-pad a ``(H, W, C)`` image or a ``(batch, H, W, C)`` stack."""
    if pool.padding == "valid":
        return data
    lead = data.ndim - 3
    top, bottom = same_padding_offsets(data.shape[lead], pool.kernel[0],
                                       pool.stride)
    left, right = same_padding_offsets(data.shape[lead + 1], pool.kernel[1],
                                       pool.stride)
    return np.pad(data,
                  ((0, 0),) * lead + ((top, bottom), (left, right), (0, 0)),
                  constant_values=fill)


def _pool_tap_counts(shape: tuple[int, ...], pool) -> np.ndarray:
    """In-bounds tap counts per output position ('same' average pools)."""
    ones = np.ones((shape[0], shape[1], 1), dtype=np.int64)
    padded = _pad_pool_input(ones, pool, fill=0)
    r, s = pool.kernel
    e = (padded.shape[0] - r) // pool.stride + 1
    f = (padded.shape[1] - s) // pool.stride + 1
    counts = np.zeros((e, f), dtype=np.int64)
    for i in range(r):
        for j in range(s):
            counts += padded[i:i + e * pool.stride:pool.stride,
                             j:j + f * pool.stride:pool.stride, 0]
    return counts
