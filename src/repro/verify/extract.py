"""Extract the bit-serial programs of a registered model's layers.

Bit-serial sequences are data-independent — the cycles and the
read/write structure of a layer's program depend only on the mapping
(shapes, bit widths, geometry), never on activation values. Running one
deterministic image through the functional executor under the recorder
therefore yields each layer's *canonical* program, which is exactly what
the static verifier checks.

Models whose functional execution is out of scope (e.g. Inception-v3's
multi-array filter mappings exceed the functional engine's bounds) are
reported as skipped with the engine's reason rather than failed — the
analytic model still covers them, there is just no program to lift.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.nn.models import model_zoo, model_zoo_configs
from repro.verify.facts import ProgramFacts
from repro.verify.recorder import record_programs

__all__ = ["ModelPrograms", "extract_model_programs", "registered_models"]


@dataclass(frozen=True)
class ModelPrograms:
    """The lifted per-layer programs of one model, or the skip reason."""

    model: str
    programs: tuple[ProgramFacts, ...] = ()
    skipped: str | None = None


def _networks() -> dict[str, object]:
    """Every checkable network: the zoo plus the tiny verification net.

    The tiny conv+maxpool network is the one guaranteed-extractable
    program source (full-scale zoo layers can exceed the functional
    engine's bounds), and the only zoo-independent MaxPool coverage.
    """
    from repro.engine.backend import tiny_verification_network

    networks: dict[str, object] = dict(model_zoo())
    networks["tiny-verification"] = tiny_verification_network()
    return networks


def registered_models() -> list[str]:
    """Names of every checkable model, in registration order."""
    return list(_networks())


def extract_model_programs(name: str, packed: bool = True) -> ModelPrograms:
    """Record one functional inference of model ``name`` and lift it.

    Returns a :class:`ModelPrograms` with one
    :class:`~repro.verify.facts.ProgramFacts` per (layer, fleet) —
    chunked layers contribute one program per fleet chunk, labelled with
    the layer name.
    """
    from repro.core.functional import FunctionalExecutor
    from repro.engine.backend import FleetExecutor, deterministic_images

    network = _networks()[name]
    # Models with a companion configuration (e.g. inception-span's
    # spanning geometry) record under it, so the lifted programs cover
    # the mapping the model exists to exercise.
    config = model_zoo_configs().get(name)
    backend = FleetExecutor(config=config, packed=packed, verify=False)
    weights = backend.weights_for(network)
    image = deterministic_images(network, weights, backend.seed, 1)[0]

    executor = FunctionalExecutor(network, weights, config=config,
                                  packed=packed)
    original_run_node = executor._run_node

    with record_programs() as recorder:
        def labelled_run_node(node, inputs):  # noqa: ANN001 - mirror target
            recorder.annotate(node.name)
            return original_run_node(node, inputs)

        executor._run_node = labelled_run_node  # type: ignore[method-assign]
        try:
            executor.run(image)
        except ReproError as exc:
            return ModelPrograms(model=name,
                                 skipped=f"{type(exc).__name__}: {exc}")
        finally:
            executor._run_node = original_run_node  # type: ignore[method-assign]

    return ModelPrograms(model=name, programs=tuple(recorder.programs()))
