"""Tests for the calibrated CPU/GPU baselines."""

import pytest

from repro.baselines import (
    CpuBaseline,
    GpuBaseline,
    TITAN_XP,
    XEON_E5_2697_V3,
    network_work,
    roofline_time,
)
from repro.common.errors import SimulationError
from repro.nn import build_inception_v3


@pytest.fixture(scope="module")
def net():
    return build_inception_v3()


@pytest.fixture(scope="module")
def cpu(net):
    return CpuBaseline(net)


@pytest.fixture(scope="module")
def gpu(net):
    return GpuBaseline(net)


class TestRoofline:
    def test_compute_bound(self):
        t = roofline_time(flops=1e9, traffic_bytes=1, peak_flops=1e12,
                          compute_efficiency=0.5, memory_bandwidth=1e11,
                          memory_efficiency=1.0)
        assert t == pytest.approx(1e9 / 0.5e12)

    def test_memory_bound(self):
        t = roofline_time(flops=1, traffic_bytes=1e9, peak_flops=1e12,
                          compute_efficiency=1.0, memory_bandwidth=1e10,
                          memory_efficiency=0.5)
        assert t == pytest.approx(1e9 / 0.5e10)

    def test_validation(self):
        with pytest.raises(SimulationError):
            roofline_time(-1, 0, 1e12, 0.5, 1e10, 0.5)
        with pytest.raises(SimulationError):
            roofline_time(1, 1, 0, 0.5, 1e10, 0.5)
        with pytest.raises(SimulationError):
            roofline_time(1, 1, 1e12, 1.5, 1e10, 0.5)


class TestNetworkWork:
    def test_counts_all_mappable_layers(self, net):
        work = network_work(net)
        assert len(work) == 109  # 95 convs + 14 pools

    def test_flops_match_graph_macs(self, net):
        conv_flops = sum(w.flops for w in network_work(net)
                         if w.name in {n.name for n in net.conv_nodes()})
        assert conv_flops == pytest.approx(2.0 * net.total_macs())


class TestCpuCalibration:
    """Anchors from the paper: 86 ms, ~48.7 inf/s plateau, 105.56 W,
    9.137 J."""

    def test_batch1_latency(self, cpu):
        assert cpu.latency() == pytest.approx(86e-3, rel=0.05)

    def test_max_throughput(self, cpu):
        assert cpu.max_throughput() == pytest.approx(48.7, rel=0.08)

    def test_energy_matches_table3(self, cpu):
        assert cpu.energy() == pytest.approx(9.137, rel=0.05)

    def test_power_is_measured_value(self, cpu):
        assert cpu.average_power == 105.56

    def test_spec_matches_table2(self):
        assert XEON_E5_2697_V3.frequency_ghz == 2.6
        assert XEON_E5_2697_V3.parallel_units == 14
        assert XEON_E5_2697_V3.process_nm == 22
        assert XEON_E5_2697_V3.tdp_watts == 145.0


class TestGpuCalibration:
    """Anchors from the paper: ~36 ms, ~275 inf/s plateau, 112.87 W,
    4.087 J."""

    def test_batch1_latency(self, gpu):
        assert gpu.latency() == pytest.approx(36.3e-3, rel=0.05)

    def test_max_throughput(self, gpu):
        assert gpu.max_throughput() == pytest.approx(275, rel=0.08)

    def test_energy_matches_table3(self, gpu):
        assert gpu.energy() == pytest.approx(4.087, rel=0.05)

    def test_power_is_measured_value(self, gpu):
        assert gpu.average_power == 112.87

    def test_spec_matches_table2(self):
        assert TITAN_XP.parallel_units == 3840
        assert TITAN_XP.process_nm == 16
        assert TITAN_XP.tdp_watts == 250.0


class TestShapes:
    def test_gpu_faster_than_cpu_everywhere(self, cpu, gpu):
        for batch in (1, 4, 64):
            assert gpu.latency(batch) < cpu.latency(batch)

    def test_throughput_rises_with_batch(self, cpu, gpu):
        for device in (cpu, gpu):
            t1 = device.throughput(1)
            t16 = device.throughput(16)
            t256 = device.throughput(256)
            assert t1 < t16 <= t256 < device.max_throughput() * 1.001

    def test_gpu_plateaus_after_batch_64(self, gpu):
        # Fig. 16: "GPU throughput plateaus after batch size exceeds 64".
        assert gpu.throughput(64) > 0.85 * gpu.max_throughput()

    def test_mixed_groups_dominate_layer_latency(self, cpu, gpu):
        # Fig. 13: "A majority of time is spent on the mixed layers for
        # both CPU and GPU".
        for device in (cpu, gpu):
            groups = device.group_latency()
            mixed = sum(v for k, v in groups.items()
                        if k.startswith("Mixed"))
            assert mixed > 0.5 * sum(groups.values())

    def test_group_latency_sums_to_total(self, cpu):
        assert sum(cpu.group_latency().values()) == pytest.approx(
            cpu.latency())

    def test_energy_per_image_improves_with_batch(self, cpu):
        assert cpu.energy_per_image(64) < cpu.energy_per_image(1)

    def test_bad_batch_rejected(self, cpu):
        with pytest.raises(SimulationError):
            cpu.latency(0)


class TestPaperHeadlines:
    """The headline speedups of the abstract, with our simulated NC."""

    def test_relative_latency_ordering(self, cpu, gpu):
        from repro.core.executor import NeuralCacheSimulator
        from repro.nn import build_inception_v3
        nc = NeuralCacheSimulator(build_inception_v3()).latency()
        cpu_speedup = cpu.latency() / nc
        gpu_speedup = gpu.latency() / nc
        # Paper: 18.3x over CPU, 7.7x over GPU. Allow the model's band.
        assert 14 < cpu_speedup < 26
        assert 6 < gpu_speedup < 11
        assert cpu_speedup > gpu_speedup
