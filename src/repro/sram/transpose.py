"""Transpose Memory Unit (TMU) — Figure 8.

The TMU sits in the cache control box (C-BOX) and converts between the
regular (one element per row, bits along the wordline) and transposed
(one element per bitline, bits along the bitline) layouts. It is built from
an 8T SRAM array with sense amplifiers and drivers in both directions, so a
block of data can be written row-wise and read column-wise (or vice versa).

Functionally the conversion is an exact bit transpose; the cost model
charges one cycle per wordline written plus one per bitline read, which is
what a dual-direction array does. A TMU tile is small (the paper reports
0.019 mm^2 for an 8T transpose bit-cell array); only a few are needed to
saturate the interconnect, so the architecture model treats TMU throughput
as matched to the bus and never the bottleneck.
"""

from __future__ import annotations

import numpy as np

from repro.common.bits import bits_to_int, int_to_bits
from repro.common.errors import ArrayStateError

#: Area of one TMU tile from Figure 8, in mm^2.
TMU_TILE_AREA_MM2 = 0.019


class TransposeMemoryUnit:
    """Functional + cycle model of one TMU tile.

    Parameters
    ----------
    word_bits:
        Width of one element in bits (8 for Neural Cache's byte elements).
    capacity_words:
        How many elements one tile can hold per conversion batch (bounded
        by the tile's bitline count; 64 matches the 64-bit quadrant buses).
    """

    def __init__(self, word_bits: int = 8, capacity_words: int = 64):
        if word_bits <= 0 or capacity_words <= 0:
            raise ArrayStateError("TMU dimensions must be positive")
        self.word_bits = word_bits
        self.capacity_words = capacity_words
        self.cycles = 0

    def transpose(self, values: np.ndarray) -> np.ndarray:
        """Regular -> transposed: integers to an LSB-first bit matrix.

        Returns shape ``(word_bits, len(values))``. Costs one cycle per
        word written plus one per bit-row read, per batch of
        ``capacity_words``.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ArrayStateError(
                f"TMU transposes vectors, got shape {values.shape}")
        self.cycles += self._batch_cycles(len(values))
        return int_to_bits(values, self.word_bits)

    def untranspose(self, bits: np.ndarray) -> np.ndarray:
        """Transposed -> regular: an LSB-first bit matrix back to integers."""
        bits = np.asarray(bits)
        if bits.ndim != 2 or bits.shape[0] != self.word_bits:
            raise ArrayStateError(
                f"expected a ({self.word_bits}, n) bit matrix, got shape "
                f"{bits.shape}")
        self.cycles += self._batch_cycles(bits.shape[1])
        return bits_to_int(bits)

    def _batch_cycles(self, n_words: int) -> int:
        cycles = 0
        remaining = n_words
        while remaining > 0:
            batch = min(remaining, self.capacity_words)
            cycles += batch + self.word_bits
            remaining -= batch
        return cycles


def software_transpose_ops(n_elements: int, word_bits: int = 8,
                           simd_width_bits: int = 256) -> int:
    """x86 SIMD instruction count for a Parabix-style software transpose.

    Sec. IV-C: "Software transposing of weights is a one time cost and can
    be done cheaply using x86 SIMD shuffle and pack instructions". The
    Parabix bit-matrix transpose runs ``log2(word_bits)`` pack/shuffle
    stages over the data; each stage touches every byte once, so the
    instruction count is about

        ceil(bytes / simd_bytes) * log2(word_bits) * 2

    (one shuffle plus one pack/merge per stage). This estimates the
    one-time host cost of pre-transposing filter images for DRAM.
    """
    if n_elements < 0:
        raise ArrayStateError(f"element count must be >= 0, got {n_elements}")
    if word_bits <= 0 or word_bits & (word_bits - 1):
        raise ArrayStateError(
            f"word width must be a positive power of two, got {word_bits}")
    if simd_width_bits <= 0 or simd_width_bits % 8:
        raise ArrayStateError(
            f"SIMD width must be a positive multiple of 8, got "
            f"{simd_width_bits}")
    total_bytes = n_elements * (word_bits // 8 or 1)
    simd_bytes = simd_width_bits // 8
    vectors = -(-total_bytes // simd_bytes)
    stages = word_bits.bit_length() - 1
    return vectors * stages * 2
