"""On-chip interconnect model: ring + intra-slice buses (Sec. IV-C).

The modelled Xeon E5-2697 v3 LLC has 14 slices on a bidirectional ring.
Inside a slice, a 256-bit data bus (physically four 64-bit quadrant buses,
one per group of banks) delivers data to the 20 ways; two 8KB arrays in a
bank share sense amps and receive 32 bits per bus cycle. Both the ring and
the intra-slice bus can broadcast, which makes filter replication across
slices/ways free of extra transfers. A 64-bit latch at each bank halves
input-streaming time when the same input data is needed by several arrays
of a bank.

Energy constants are engineering estimates for long on-chip wires (the
paper does not publish interconnect energy separately; data movement is a
second-order term next to array compute energy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry
from repro.common.errors import GeometryError
from repro.common.units import pj_to_joules
from repro.sram.energy import COMPUTE_FREQUENCY_HZ


@dataclass(frozen=True)
class InterconnectModel:
    """Transfer-time and energy calculators for the LLC interconnect."""

    geometry: CacheGeometry
    #: Clock of bus transfers while the cache is in compute mode.
    frequency_hz: float = COMPUTE_FREQUENCY_HZ
    #: Ring stop width: 32 bytes/cycle per direction.
    ring_bytes_per_cycle: int = 32
    #: Intra-slice data bus: 256 bits = 32 bytes/cycle ...
    slice_bus_bytes_per_cycle: int = 32
    #: ... organised as four 64-bit quadrant buses.
    quadrant_buses: int = 4
    #: Estimated energy to move one byte over the ring (long global wires).
    ring_energy_pj_per_byte: float = 50.0
    #: Estimated energy to move one byte over an intra-slice bus.
    bus_energy_pj_per_byte: float = 10.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise GeometryError("interconnect frequency must be positive")
        if self.ring_bytes_per_cycle <= 0 or self.slice_bus_bytes_per_cycle <= 0:
            raise GeometryError("bus widths must be positive")
        if self.slice_bus_bytes_per_cycle % self.quadrant_buses:
            raise GeometryError(
                "slice bus width must divide evenly into quadrant buses")

    # -- widths ---------------------------------------------------------------
    @property
    def quadrant_bus_bytes_per_cycle(self) -> int:
        """One 64-bit quadrant bus moves 8 bytes per cycle."""
        return self.slice_bus_bytes_per_cycle // self.quadrant_buses

    @property
    def bank_bits_per_cycle(self) -> int:
        """Two arrays sharing sense amps receive 32 bits every bus cycle."""
        return self.quadrant_bus_bytes_per_cycle * 8 // 2

    # -- timing ---------------------------------------------------------------
    def broadcast_time(self, nbytes: float) -> float:
        """Seconds to broadcast a stream to *all* slices and ways.

        The ring and the intra-slice buses broadcast natively (Sec. IV-C:
        filter replication), so a single pass of the stream suffices
        regardless of the replication factor.
        """
        self._check_bytes(nbytes)
        return nbytes / self.ring_bytes_per_cycle / self.frequency_hz

    def intra_slice_time(self, bytes_per_slice: float,
                         use_bank_latch: bool = False) -> float:
        """Seconds for every slice to deliver ``bytes_per_slice`` internally.

        Slices stream in parallel, so only the per-slice volume matters.
        ``use_bank_latch`` halves the time when inputs are duplicated
        across the arrays of a bank (the 64-bit bank latch of Sec. IV-C).
        """
        self._check_bytes(bytes_per_slice)
        effective = self.slice_bus_bytes_per_cycle * (2 if use_bank_latch else 1)
        return bytes_per_slice / effective / self.frequency_hz

    def inter_slice_time(self, bytes_per_slice: float) -> float:
        """Seconds for neighbour exchanges on the ring (output halos).

        Slices exchange with neighbours concurrently; each moves its own
        ``bytes_per_slice`` through its ring stop.
        """
        self._check_bytes(bytes_per_slice)
        return bytes_per_slice / self.ring_bytes_per_cycle / self.frequency_hz

    # -- energy ---------------------------------------------------------------
    def ring_energy(self, nbytes: float) -> float:
        """Joules to move ``nbytes`` across the ring."""
        self._check_bytes(nbytes)
        return pj_to_joules(self.ring_energy_pj_per_byte) * nbytes

    def bus_energy(self, nbytes: float) -> float:
        """Joules to move ``nbytes`` over intra-slice buses."""
        self._check_bytes(nbytes)
        return pj_to_joules(self.bus_energy_pj_per_byte) * nbytes

    @staticmethod
    def _check_bytes(nbytes: float) -> None:
        if nbytes < 0:
            raise GeometryError(f"byte count must be non-negative, got {nbytes}")
