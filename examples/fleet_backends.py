"""One Backend API, three engines: analytic, vectorized fleet, sharded.

Every execution engine in the reproduction sits behind
``Backend.run(network, batch_size)``:

* the *analytic* backend runs the paper's deterministic latency/energy
  model on Inception v3 (Fig. 13-16 scale);
* the *fleet* backend executes a verification-scale network bit by bit
  on the vectorized :class:`~repro.engine.fleet.ArrayFleet` — every
  bit-serial cycle runs on all arrays of the layer at once — and checks
  each output against the golden NumPy executor;
* the *fleet-packed* backend is the same engine on the packed plane
  store (:class:`~repro.engine.packed.PackedArrayFleet`): 64 bit-columns
  per uint64 word, 8x less memory, identical outputs and cycle reports;
* the *sharded* backend splits the batch round-robin across socket
  shards (Sec. VI-B's multi-socket node), each shard a fleet executor on
  its own packed plane store, and aggregates per-shard cycle reports —
  bit-exact and cycle-identical to the unsharded run.

The functional backends fold the whole batch into the fleet's array
axis by default (``batched=True``): one fleet pass per layer computes
every image, with outputs and cycle reports identical to the per-image
loop (``batched=False``) — batching changes wall-clock, not modeled
cycles.

Run:  python examples/fleet_backends.py
"""

from repro import ShardedBackend, get_backend
from repro.engine import (
    ArrayFleet,
    FleetBitSerialUnit,
    Operand,
    PackedArrayFleet,
)


def main() -> None:
    # -- the engines through the one protocol -----------------------------
    for name in ("analytic", "fleet", "fleet-packed", "sharded"):
        backend = get_backend(name)
        result = backend.run(backend.default_network(), batch_size=2)
        print(result.summary())
        print()

    # -- sharding is lossless: any shard count, same answer ---------------
    fleet_packed = get_backend("fleet-packed")
    net = fleet_packed.default_network()
    reference = fleet_packed.run(net, batch_size=5)
    for shards in (2, 3):        # divides the batch and does not
        sharded = ShardedBackend(shards=shards).run(net, batch_size=5)
        assert sharded.report == reference.report
        per_shard = [s.report.total for s in sharded.shard_reports]
        print(f"{shards} shards over batch 5: per-shard cycles "
              f"{per_shard}, aggregate {sharded.report.total} == "
              f"unsharded {reference.report.total}")
    print()

    # -- batch-in-fleet execution is invisible except in wall-clock -------
    per_image = get_backend("fleet-packed", batched=False)
    loop_result = per_image.run(net, batch_size=5)
    assert loop_result.report == reference.report
    out = net.output_name
    assert (loop_result.outputs[out].data
            == reference.outputs[out].data).all()
    print(f"batched vs per-image loop over batch 5: identical outputs "
          f"and {reference.report.total} compute cycles either way")
    print()

    # -- the fleet primitive underneath ------------------------------------
    # 4 arrays x 256 bitlines = 1024 bit-serial ALU lanes; one multiply
    # sequence executes on all of them in the cycles of a single array.
    unit = FleetBitSerialUnit(ArrayFleet(n_arrays=4))
    a, b = Operand(0, 8), Operand(8, 8)
    product = Operand(16, 16)
    unit.write_values(a, 23)
    unit.write_values(b, 11)
    unit.multiply(a, b, product)
    values = unit.read_values(product)      # (n_arrays, cols)
    assert (values == 253).all()
    print(f"fleet multiply: {values.size} lanes x (23 * 11) in "
          f"{unit.cycles} lockstep cycles "
          f"({unit.fleet.compute_cycles} array compute cycles)")

    # -- the packed store runs the same sequence on uint64 word planes ----
    packed = FleetBitSerialUnit(PackedArrayFleet(n_arrays=4))
    packed.write_values(a, 23)
    packed.write_values(b, 11)
    packed.multiply(a, b, product)
    assert (packed.read_values(product) == 253).all()
    assert packed.cycles == unit.cycles
    print(f"packed store: same result in the same {packed.cycles} cycles, "
          f"{packed.fleet.nbytes} resident bytes vs {unit.fleet.nbytes} "
          f"unpacked ({unit.fleet.nbytes // packed.fleet.nbytes}x smaller)")


if __name__ == "__main__":
    main()
