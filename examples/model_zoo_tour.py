"""Tour the model zoo: Neural Cache beyond Inception v3.

The paper argues the architecture accelerates "the broader class of
DNNs". This example maps four extra topologies — LeNet-5, a tiny VGG, a
residual network (with in-cache element-wise adds) and an MLP — onto the
cache, reports their analytic latency/energy, and runs the residual
network bit-exactly on the functional simulator to show the Add path at
work.

Run:  python examples/model_zoo_tour.py
"""

import numpy as np

from repro import NeuralCacheSimulator, QuantizedTensor, ReferenceExecutor, initialise_weights
from repro.core.functional import FunctionalExecutor
from repro.nn import build_resnet_tiny, model_zoo


def main() -> None:
    print(f"{'model':14s} {'layers':>6s} {'MACs':>12s} {'weights/KB':>10s} "
          f"{'latency':>10s} {'energy':>10s} {'inf/s/socket':>12s}")
    print("-" * 80)
    for name, net in model_zoo().items():
        sim = NeuralCacheSimulator(net)
        result = sim.run()
        macs = net.total_macs()
        print(f"{name:14s} {len(net.layer_nodes()):6d} {macs:12,d} "
              f"{net.total_weight_bytes() / 1024:10.1f} "
              f"{result.total_time * 1e6:8.1f}us "
              f"{result.total_energy * 1e6:8.1f}uJ "
              f"{1 / result.total_time:12,.0f}")

    # -- the residual network, bit by bit ---------------------------------
    print("\nResNet-tiny on the functional simulator (in-cache adds):")
    net = build_resnet_tiny(input_size=8, base_channels=4)
    weights = initialise_weights(net, seed=2)
    rng = np.random.default_rng(0)
    image = QuantizedTensor.from_real(rng.uniform(0, 6, net.input_shape),
                                      weights.input_params)
    golden = ReferenceExecutor(net, weights).run(image)
    executor = FunctionalExecutor(net, weights)
    in_cache = executor.run(image)
    mismatches = sum(
        not np.array_equal(in_cache[n.name].data, golden[n.name].data)
        for n in net.layer_nodes())
    adds = [name for name in executor.reports if name.endswith("/add")]
    print(f"  {len(net.layer_nodes())} layers, {len(adds)} residual adds, "
          f"{mismatches} mismatches vs the golden executor")
    for name in adds:
        report = executor.reports[name]
        print(f"  {name}: {report.pooling} in-cache cycles over "
              f"{report.passes} pass(es)")


if __name__ == "__main__":
    main()
