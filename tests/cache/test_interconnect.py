"""Tests for the ring/bus interconnect model."""

import pytest

from repro.cache import InterconnectModel, xeon_e5_2697_v3
from repro.common.errors import GeometryError


@pytest.fixture
def model():
    return InterconnectModel(geometry=xeon_e5_2697_v3())


class TestWidths:
    def test_quadrant_buses(self, model):
        # 256-bit slice bus = four 64-bit quadrant buses (Sec. IV-C).
        assert model.slice_bus_bytes_per_cycle == 32
        assert model.quadrant_bus_bytes_per_cycle == 8

    def test_bank_receives_32_bits_per_cycle(self, model):
        # "Two 8 KB arrays within a bank share sense-amps and receive
        # 32 bits every bus cycle."
        assert model.bank_bits_per_cycle == 32


class TestTiming:
    def test_broadcast_time_is_single_stream(self, model):
        # Broadcasting is replication-free: time depends only on volume.
        t = model.broadcast_time(32 * 2.5e9)  # 32 bytes/cycle for 1 second
        assert t == pytest.approx(1.0)

    def test_intra_slice_parallel_across_slices(self, model):
        # Only per-slice bytes matter; both calls see the same volume/slice.
        assert (model.intra_slice_time(1000)
                == model.intra_slice_time(1000))
        assert model.intra_slice_time(3200) == pytest.approx(
            3200 / 32 / 2.5e9)

    def test_bank_latch_halves_input_time(self, model):
        base = model.intra_slice_time(4096)
        latched = model.intra_slice_time(4096, use_bank_latch=True)
        assert latched == pytest.approx(base / 2)

    def test_inter_slice_neighbour_exchange(self, model):
        assert model.inter_slice_time(64) == pytest.approx(64 / 32 / 2.5e9)

    def test_zero_bytes_is_free(self, model):
        assert model.broadcast_time(0) == 0
        assert model.intra_slice_time(0) == 0


class TestEnergy:
    def test_ring_energy_scales(self, model):
        assert model.ring_energy(2) == pytest.approx(2 * 50e-12)

    def test_bus_energy_scales(self, model):
        assert model.bus_energy(10) == pytest.approx(10 * 10e-12)

    def test_ring_costs_more_than_bus(self, model):
        assert model.ring_energy(1) > model.bus_energy(1)


class TestValidation:
    def test_negative_bytes_rejected(self, model):
        with pytest.raises(GeometryError):
            model.broadcast_time(-1)
        with pytest.raises(GeometryError):
            model.ring_energy(-1)

    def test_bad_configuration_rejected(self):
        with pytest.raises(GeometryError):
            InterconnectModel(geometry=xeon_e5_2697_v3(), frequency_hz=0)
        with pytest.raises(GeometryError):
            InterconnectModel(geometry=xeon_e5_2697_v3(),
                              slice_bus_bytes_per_cycle=30, quadrant_buses=4)
