"""DNN substrate: quantized tensors, layers, graphs, golden executor,
and the Inception v3 benchmark model."""

from repro.nn.graph import Network, Node
from repro.nn.inception import (
    INPUT_SHAPE,
    LayerGroupStats,
    build_inception_v3,
    group_stats,
    table1,
)
from repro.nn.layers import (
    Add,
    AvgPool,
    BatchNorm,
    Concat,
    Conv2D,
    FullyConnected,
    MaxPool,
    QuantizedBatchNorm,
    conv_output_size,
)
from repro.nn.models import (
    build_lenet5,
    build_mlp,
    build_resnet_tiny,
    build_vgg_tiny,
    model_zoo,
)
from repro.nn.reference import (
    BnWeights,
    ConvWeights,
    NetworkWeights,
    ReferenceExecutor,
    bn_apply,
    conv_accumulate,
    finalize_conv,
    initialise_weights,
)
from repro.nn.tensor import (
    QuantParams,
    QuantizedTensor,
    RequantParams,
    round_shift,
)

__all__ = [
    "Add",
    "AvgPool",
    "BatchNorm",
    "BnWeights",
    "Concat",
    "Conv2D",
    "ConvWeights",
    "FullyConnected",
    "INPUT_SHAPE",
    "LayerGroupStats",
    "MaxPool",
    "Network",
    "NetworkWeights",
    "Node",
    "QuantParams",
    "QuantizedBatchNorm",
    "QuantizedTensor",
    "ReferenceExecutor",
    "bn_apply",
    "RequantParams",
    "build_inception_v3",
    "build_lenet5",
    "build_mlp",
    "build_resnet_tiny",
    "build_vgg_tiny",
    "conv_accumulate",
    "model_zoo",
    "conv_output_size",
    "finalize_conv",
    "group_stats",
    "initialise_weights",
    "round_shift",
    "table1",
]
