"""Flexible operand bit-width (Sec. III-A's bit-serial advantage).

"Bit-serial operation allows for flexible operand bit-width, which can be
advantageous in DNNs where the required bit width can vary from layer to
layer." This module makes that concrete: sweep the element precision and
watch MAC/quantization time scale, Stripes-style, while the data layout
stays byte-aligned (the paper stores every element as a multiple of a
byte "for simplicity, software programmability, and easier data
movement" — so below 8 bits only *compute* gets cheaper, not storage or
movement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.core.executor import NeuralCacheSimulator
from repro.nn.graph import Network

#: Widest supported element precision. Up to 8 bits matches the paper's
#: byte-aligned storage; 9..16 models double-byte elements (two storage
#: bytes per element, accumulators widened to keep 49 taps overflow-free).
MAX_PRECISION_BITS = 16

#: The byte-aligned uint8 value plane caps *functional* (bit-exact)
#: execution — and per-layer narrowing tables — at 8 bits.
MAX_FUNCTIONAL_BITS = 8


def config_for_precision(bits: int,
                         base: NeuralCacheConfig | None = None
                         ) -> NeuralCacheConfig:
    """A configuration computing on ``bits``-wide elements.

    Storage regions (Fig. 10) keep their byte-aligned sizes; only the
    bit-serial op widths shrink, exactly as the paper's layout rules
    imply. Above 8 bits the accumulator widths grow proportionally
    (3x/4x the element width, matching the 24/32-bit ratios the paper
    uses at 8 bits) so wide elements do not overflow the partial sums.
    """
    if not isinstance(bits, int) or isinstance(bits, bool):
        raise SimulationError(
            f"flexible precision wants an integer bit width, got "
            f"{bits!r}")
    if not 1 <= bits <= MAX_PRECISION_BITS:
        raise SimulationError(
            f"flexible precision supports 1..{MAX_PRECISION_BITS} bits, "
            f"got {bits}")
    if base is None:
        base = NeuralCacheConfig()
    return NeuralCacheConfig(
        geometry=base.geometry, costs=base.costs, dram=base.dram,
        energy=base.energy, frequency_hz=base.frequency_hz,
        sockets=base.sockets,
        output_buffer_fraction=base.output_buffer_fraction,
        split_threshold_bytes=base.split_threshold_bytes,
        pack_limit=base.pack_limit,
        element_bits=bits,
        input_gather_calibration=base.input_gather_calibration,
        output_gather_calibration=base.output_gather_calibration,
        input_reuse_floor=base.input_reuse_floor,
        partial_sum_bits=max(base.partial_sum_bits, 3 * bits),
        reduction_bits=max(base.reduction_bits, 4 * bits))


@dataclass(frozen=True)
class LayerPrecision:
    """Per-layer element bit widths for dynamic precision narrowing.

    ``default_bits`` applies to every conv/FC layer not named in
    ``overrides``. The table is validated at map time
    (:func:`~repro.core.mapping.map_network`) against the network's
    actual layer names, so a stale override fails loudly before any
    cycles are charged. Widths are capped at
    :data:`MAX_FUNCTIONAL_BITS` because the functional executor stages
    values in byte-aligned uint8 planes; the analytic-only 9..16 range
    goes through :func:`config_for_precision` instead.
    """

    default_bits: int = 8
    overrides: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "overrides", dict(self.overrides))
        for name, bits in [("default", self.default_bits),
                           *self.overrides.items()]:
            if not isinstance(bits, int) or isinstance(bits, bool):
                raise SimulationError(
                    f"layer precision for {name!r} wants an integer bit "
                    f"width, got {bits!r}")
            if not 1 <= bits <= MAX_FUNCTIONAL_BITS:
                raise SimulationError(
                    f"layer precision for {name!r} must be "
                    f"1..{MAX_FUNCTIONAL_BITS} bits (byte-aligned uint8 "
                    f"storage), got {bits}")

    def bits_for(self, layer_name: str) -> int:
        """Element width for one layer (override, else the default)."""
        return self.overrides.get(layer_name, self.default_bits)

    def validate(self, network: Network) -> None:
        """Check every override names a real layer of ``network``."""
        known = {node.name for node in network.layer_nodes()}
        for name in self.overrides:
            if name not in known:
                raise SimulationError(
                    f"precision table overrides unknown layer {name!r} "
                    f"(network {network.name!r} has no such layer)")


@dataclass(frozen=True)
class PrecisionPoint:
    """One precision setting's costs on a network."""

    bits: int
    latency_s: float
    mac_time_s: float
    compute_time_s: float       # mac + reduction + quantization + pooling
    energy_j: float

    def speedup_over(self, other: "PrecisionPoint") -> float:
        """Latency ratio other/self (>1 means this point is faster)."""
        return other.latency_s / self.latency_s


def precision_sweep(network: Network,
                    bit_widths: tuple[int, ...] = (2, 4, 6, 8),
                    base: NeuralCacheConfig | None = None
                    ) -> list[PrecisionPoint]:
    """Latency/energy at each precision (Fig. 16-style series).

    Data movement (filter loading, input streaming, output transfer) is
    unchanged — elements stay bytes — so the returns diminish as movement
    dominates, which is the honest version of the bit-precision trade-off
    on this architecture.
    """
    if not bit_widths:
        raise SimulationError("precision sweep needs at least one width")
    points = []
    for bits in bit_widths:
        config = config_for_precision(bits, base)
        result = NeuralCacheSimulator(network, config).run()
        breakdown = result.breakdown()
        compute = (breakdown.mac + breakdown.reduction
                   + breakdown.quantization + breakdown.pooling)
        points.append(PrecisionPoint(
            bits=bits, latency_s=result.total_time,
            mac_time_s=breakdown.mac, compute_time_s=compute,
            energy_j=result.total_energy))
    return points
