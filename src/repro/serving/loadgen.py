"""Deterministic load generation and the serving correctness gate.

:func:`run_load` drives a request stream through a :class:`Server` and
checks the three properties the serving frontend must never lose, the
same invariants the sharded backend is property-tested on:

* **no lost responses** — every submitted request resolves;
* **no duplicated responses** — every response future resolves once;
* **bit-exactness** — response ``i`` equals what the direct
  ``run_requests`` path produces for image ``i``, regardless of how
  arrivals were coalesced into batches or which pool backend ran them.

:func:`run_serving_benchmark` wraps that into the one-call smoke the CI
gate and the ``serve-bench`` CLI run: build a pool of sharded backends,
generate the deterministic image stream, compute the expected responses
directly, serve the stream, and report tail latency + throughput next
to the correctness verdict.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.engine.backend import (
    FleetExecutor,
    deterministic_images,
    tiny_verification_network,
)
from repro.engine.sharding import ShardedBackend
from repro.nn.graph import Network
from repro.serving.server import Server, ServingReport


@dataclass(frozen=True)
class LoadResult:
    """One served stream: the report plus the correctness verdict."""

    report: ServingReport
    #: Requests that never resolved (must stay 0; close() drains).
    lost: int
    #: Responses delivered more than once (must stay 0).
    duplicates: int
    #: Responses compared bit-for-bit against the expected stream.
    matched: int
    #: True iff every response matched its expected tensor exactly.
    bit_exact: bool

    @property
    def ok(self) -> bool:
        """The serving smoke gate: nothing lost, nothing duplicated,
        everything bit-exact."""
        return self.lost == 0 and self.duplicates == 0 and self.bit_exact


async def _drive(server: Server, images, arrival_gap_ms: float):
    """Submit the stream (optionally spaced) and gather the responses."""

    async def _submit(image):
        return await server.submit(image)

    tasks = []
    async with server:
        for image in images:
            tasks.append(asyncio.ensure_future(_submit(image)))
            if arrival_gap_ms > 0:
                await asyncio.sleep(arrival_gap_ms / 1e3)
            else:
                # Yield to the loop so the batcher sees arrivals in
                # submission order, like a network socket would deliver
                # them.
                await asyncio.sleep(0)
        responses = await asyncio.gather(*tasks)
    return responses


def run_load(
    backends,
    network: Network,
    images,
    expected=None,
    max_batch: int = 8,
    max_wait_ms: float = 2.0,
    arrival_gap_ms: float = 0.0,
    max_retries: int = 0,
    request_timeout_s: float | None = None,
) -> LoadResult:
    """Serve ``images`` through a fresh :class:`Server`; check exactness.

    ``expected`` is the per-image response stream of the direct
    ``run_requests`` path (computed here via ``backends[0]`` when not
    supplied). ``max_retries``/``request_timeout_s`` pass through to the
    server — the chaos tests serve a stream while a fault plan kills
    pool workers and still demand ``ok``. Synchronous wrapper — runs
    its own event loop.
    """
    images = list(images)
    if expected is None:
        expected = backends[0].run_requests(network, images).responses
    server = Server(
        backends,
        network,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        max_retries=max_retries,
        request_timeout_s=request_timeout_s,
    )
    responses = asyncio.run(_drive(server, images, arrival_gap_ms))
    report = server.report()
    matched = sum(
        1
        for got, want in zip(responses, expected)
        if got is not None and np.array_equal(got.data, want.data)
    )
    return LoadResult(
        report=report,
        lost=len(images) - report.responded,
        duplicates=report.duplicates,
        matched=matched,
        bit_exact=matched == len(images),
    )


def run_serving_benchmark(
    n_requests: int = 32,
    sockets: int = 2,
    pool_size: int = 2,
    max_batch: int = 8,
    max_wait_ms: float = 2.0,
    driver: str = "thread",
    arrival_gap_ms: float = 0.0,
    seed: int = 0,
    network: Network | None = None,
    config: NeuralCacheConfig | None = None,
    fault_plan=None,
    max_retries: int = 0,
    reply_timeout_s: float = 60.0,
    options=None,
) -> dict:
    """One serving run with everything the smoke gate needs, as a dict.

    The pool holds ``pool_size`` independent
    :class:`~repro.engine.sharding.ShardedBackend` nodes of ``sockets``
    shards each on the given ``driver`` (``pool`` nodes fork their
    persistent workers here, before serving starts any threads, and are
    closed when the run ends); expected responses come from a
    *serial-driver* backend so the whole concurrent serving stack is
    checked against the reference path. Verification against the golden
    executor is off in both paths — serving-rate correctness is the
    bit-exactness check itself.

    ``fault_plan`` (pool driver only) arms the chaos hooks in every
    serving node's workers — the expected responses still come from the
    clean serial reference, so the smoke gate demands bit-exact serving
    *through* the injected faults. ``max_retries`` adds server-level
    batch retries on top of the pool's own self-healing, and
    ``reply_timeout_s`` bounds every pool reply wait. The recovery
    events the nodes took are counted in the stats.

    ``options`` is a :class:`~repro.engine.backend.BackendOptions`
    carrying the functional-engine knobs (``sparsity``, ``sanitize``,
    ``precision``) for every serving node *and* the serial reference —
    both knobs are value-preserving, so the bit-exactness gate holds
    unchanged while the nodes' cycle reports become data-dependent.
    Topology knobs (``driver``, ``shards``, ``batched``, ``faults``)
    belong to this function's own arguments and are rejected on
    ``options`` to keep one source of truth.
    """
    if network is None:
        network = tiny_verification_network()
    engine_knobs: dict = {}
    if options is not None:
        for knob in ("driver", "shards", "faults"):
            if getattr(options, knob) is not None:
                raise SimulationError(
                    f"run_serving_benchmark sets {knob!r} through its own "
                    f"arguments; leave it unset on BackendOptions")
        if not options.batched:
            raise SimulationError(
                "run_serving_benchmark always batches coalesced requests; "
                "leave 'batched' unset on BackendOptions")
        engine_knobs = {"sparsity": options.sparsity,
                        "sanitize": options.sanitize,
                        "precision": options.precision}
    template = FleetExecutor(config, packed=True, verify=False)
    weights = template.weights_for(network)
    images = deterministic_images(network, weights, seed, n_requests)
    reference = ShardedBackend(
        config, shards=sockets, verify=False, driver="serial",
        **engine_knobs
    )
    expected = reference.run_requests(network, images).responses
    pool_options = {}
    if driver == "pool":
        pool_options = {
            "fault_plan": fault_plan,
            "reply_timeout_s": reply_timeout_s,
        }
    elif fault_plan is not None:
        raise SimulationError(
            "fault_plan software faults need the pool driver's workers; "
            f"driver {driver!r} has no injection points"
        )
    pool = [
        ShardedBackend(
            config, shards=sockets, verify=False, driver=driver,
            **engine_knobs, **pool_options
        )
        for _ in range(pool_size)
    ]
    try:
        result = run_load(
            pool,
            network,
            images,
            expected=expected,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            arrival_gap_ms=arrival_gap_ms,
            max_retries=max_retries,
        )
        recoveries = sum(
            len(backend.recovery_events()) for backend in pool
        )
    finally:
        for backend in pool:
            backend.close()
    report = result.report
    return {
        "n_requests": n_requests,
        "sockets": sockets,
        "pool_size": pool_size,
        "max_batch": max_batch,
        "max_wait_ms": max_wait_ms,
        "driver": driver,
        "responded": report.responded,
        "lost": result.lost,
        "duplicates": result.duplicates,
        "bit_exact": result.bit_exact,
        "batches": report.batches,
        "mean_batch": report.mean_batch,
        "p50_ms": report.p50_ms,
        "p95_ms": report.p95_ms,
        "p99_ms": report.p99_ms,
        "throughput_rps": report.throughput_rps,
        "wall_s": report.wall_s,
        "retries": report.retries,
        "expired": report.expired,
        "recoveries": recoveries,
        "ok": result.ok,
    }


def render_serving_report(stats: dict) -> str:
    """The one-line account the bench and the CLI print."""
    text = (
        f"Serving benchmark: {stats['n_requests']} requests over "
        f"{stats['pool_size']} node(s) x {stats['sockets']} socket "
        f"shard(s) ({stats['driver']} driver, max_batch "
        f"{stats['max_batch']}, max_wait {stats['max_wait_ms']:.1f} ms) "
        f"-> {stats['throughput_rps']:.1f} req/s in {stats['batches']} "
        f"batch(es) (mean {stats['mean_batch']:.1f}), latency p50 "
        f"{stats['p50_ms']:.1f} / p95 {stats['p95_ms']:.1f} / p99 "
        f"{stats['p99_ms']:.1f} ms, lost={stats['lost']} "
        f"duplicates={stats['duplicates']} bit-exact={stats['bit_exact']}"
    )
    if stats.get("recoveries") or stats.get("retries"):
        text += (
            f" (survived {stats['recoveries']} worker recovery/ies, "
            f"{stats['retries']} batch retry/ies)"
        )
    return text
