"""Walk through the paper's bit-serial arithmetic figures, step by step.

Recreates Figure 4 (addition), Figure 6 (predicated multiplication) and
Figure 5 (reduction) on a tiny SRAM array, printing the transposed array
contents after each stage so you can watch carries ripple down bitlines.
Also shows the ISA/FSM path: the same multiplication expressed as a
broadcast instruction program.

Run:  python examples/bitserial_playground.py
"""

import numpy as np

from repro.core.isa import ControlFSM, Instruction, Opcode
from repro.sram import BitSerialUnit, Operand, SRAMArray


def show(unit: BitSerialUnit, rows: int, cols: int, label: str) -> None:
    print(f"\n{label}")
    bits = unit.array.dump_bits(0, rows, n_cols=cols)
    for r in range(rows):
        print(f"  row {r:2d}: " + " ".join(str(b) for b in bits[r]))


def addition_figure4() -> None:
    print("=" * 60)
    print("Figure 4: bit-serial addition of two 4-bit vectors")
    print("=" * 60)
    unit = BitSerialUnit(SRAMArray(rows=16, cols=4))
    a, b = Operand(0, 4), Operand(4, 4)
    total = Operand(8, 5)
    va = np.array([3, 7, 12, 15])
    vb = np.array([5, 9, 4, 15])
    unit.write_values(a, va)
    unit.write_values(b, vb)
    show(unit, 8, 4, "operands (vector A rows 0-3, vector B rows 4-7, "
                     "LSB first; one word per bitline):")
    unit.add(a, b, total)
    show(unit, 13, 4, "after the add (sum in rows 8-12):")
    print(f"  read back: {list(unit.read_values(total))} "
          f"(expected {list(va + vb)}); {unit.cycles} cycles = n+1 = 5")


def multiplication_figure6() -> None:
    print("\n" + "=" * 60)
    print("Figure 6: predicated multiplication, 4 words per bitline")
    print("=" * 60)
    unit = BitSerialUnit(SRAMArray(rows=16, cols=4))
    a, b = Operand(0, 2), Operand(2, 2)
    product = Operand(4, 4)
    va = np.array([3, 2, 1, 3])
    vb = np.array([3, 3, 2, 1])
    unit.write_values(a, va)
    unit.write_values(b, vb)
    unit.multiply(a, b, product)
    show(unit, 8, 4, "after multiply (product rows 4-7):")
    print(f"  read back: {list(unit.read_values(product))} "
          f"(expected {list(va * vb)}); {unit.cycles} cycles "
          f"(paper formula n^2+5n-2 = 12)")


def reduction_figure5() -> None:
    print("\n" + "=" * 60)
    print("Figure 5: reducing 4 words across bitlines")
    print("=" * 60)
    unit = BitSerialUnit(SRAMArray(rows=32, cols=4))
    base, segment = Operand(0, 12), Operand(16, 12)
    values = np.array([10, 20, 30, 40])
    unit.write_values(Operand(0, 10), values)
    unit.reduce_tree(base, segment, elements=4, width=10)
    print(f"  C1+C2+C3+C4 = {unit.read_values(base)[0]} "
          f"(expected {values.sum()}); {unit.cycles} cycles over "
          f"log2(4)=2 move+add steps")


def isa_program() -> None:
    print("\n" + "=" * 60)
    print("Sec. IV-F: the same multiply as a broadcast ISA program")
    print("=" * 60)
    fsm = ControlFSM(units=[BitSerialUnit(SRAMArray(rows=32, cols=8)),
                            BitSerialUnit(SRAMArray(rows=32, cols=8))])
    a, b, product = Operand(0, 4), Operand(4, 4), Operand(8, 8)
    for i, unit in enumerate(fsm.units):
        unit.write_values(a, np.full(8, 5 + i))
        unit.write_values(b, np.full(8, 9))
    program = [Instruction(Opcode.CMULT, (a, b, product))]
    cycles = fsm.execute(program)
    print(f"  broadcast '{program[0]}' to {len(fsm.units)} arrays in "
          f"lockstep: {cycles} cycles each")
    for i, unit in enumerate(fsm.units):
        print(f"  array {i}: {unit.read_values(product)[0]} "
              f"(= {5 + i} x 9)")


def main() -> None:
    addition_figure4()
    multiplication_figure6()
    reduction_figure5()
    isa_program()


if __name__ == "__main__":
    main()
