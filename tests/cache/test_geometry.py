"""Tests anchoring the cache geometry to the paper's published counts."""

import pytest

from repro.cache import (
    CacheGeometry,
    capacity_sweep,
    xeon_45mb,
    xeon_60mb,
    xeon_e5_2697_v3,
)
from repro.common.errors import GeometryError
from repro.common.units import KB, MB


class TestXeonPreset:
    def setup_method(self):
        self.geometry = xeon_e5_2697_v3()

    def test_array_is_8kb_256x256(self):
        assert self.geometry.array_bytes == 8 * KB
        assert self.geometry.array_rows == 256
        assert self.geometry.array_cols == 256

    def test_bank_is_32kb_of_four_arrays(self):
        assert self.geometry.bank_bytes == 32 * KB
        assert self.geometry.arrays_per_bank == 4

    def test_slice_is_80_banks_20_ways_2_5mb(self):
        assert self.geometry.banks_per_slice == 80
        assert self.geometry.ways_per_slice == 20
        assert self.geometry.slice_bytes == 2.5 * MB
        assert self.geometry.arrays_per_slice == 320

    def test_cache_is_35mb_4480_arrays(self):
        assert self.geometry.slices == 14
        assert self.geometry.total_bytes == 35 * MB
        assert self.geometry.total_arrays == 4480

    def test_paper_headline_alu_slots(self):
        # Abstract / Sec. I: "up to 1,146,880 bit-serial ALU slots".
        assert self.geometry.alu_slots == 1_146_880

    def test_reserved_ways(self):
        # Way 20 for the CPU, way 19 for inputs/outputs (Sec. IV).
        assert self.geometry.reserved_ways == 2
        assert self.geometry.compute_ways == 18

    def test_compute_resources(self):
        assert self.geometry.compute_arrays_per_slice == 18 * 16
        assert self.geometry.compute_arrays == 4032
        assert self.geometry.compute_slots == 4032 * 256

    def test_io_way_capacity(self):
        # One reserved way per slice = 128 KB of I/O buffering (Sec. IV-C).
        assert self.geometry.io_way_bytes_per_slice == 128 * KB


class TestCapacityScaling:
    def test_table4_capacities(self):
        assert xeon_e5_2697_v3().total_bytes == 35 * MB
        assert xeon_45mb().total_bytes == 45 * MB
        assert xeon_60mb().total_bytes == 60 * MB

    def test_scaling_only_adds_slices(self):
        base, big = xeon_e5_2697_v3(), xeon_60mb()
        assert big.slices == 24
        assert big.slice_bytes == base.slice_bytes
        assert big.arrays_per_slice == base.arrays_per_slice

    def test_capacity_sweep_order(self):
        sweep = capacity_sweep()
        assert [g.slices for g in sweep] == [14, 18, 24]

    def test_compute_slots_scale_linearly(self):
        base, big = xeon_e5_2697_v3(), xeon_45mb()
        assert big.compute_slots * 14 == base.compute_slots * 18


class TestValidation:
    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(GeometryError):
            CacheGeometry(name="bad", slices=0)
        with pytest.raises(GeometryError):
            CacheGeometry(name="bad", array_rows=-1)

    def test_rejects_all_ways_reserved(self):
        with pytest.raises(GeometryError):
            CacheGeometry(name="bad", ways_per_slice=2,
                          reserved_cpu_ways=1, reserved_io_ways=1)

    def test_rejects_unaligned_columns(self):
        with pytest.raises(GeometryError):
            CacheGeometry(name="bad", array_cols=255)

    def test_rejects_negative_reservations(self):
        with pytest.raises(GeometryError):
            CacheGeometry(name="bad", reserved_cpu_ways=-1)
