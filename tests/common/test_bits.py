"""Tests for bit-manipulation helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import (
    bits_to_int,
    ceil_div,
    from_twos_complement,
    int_to_bits,
    is_power_of_two,
    next_power_of_two,
    to_twos_complement,
)


class TestIntBitsConversion:
    def test_int_to_bits_lsb_first(self):
        bits = int_to_bits(np.array([6]), 4)
        assert list(bits[:, 0]) == [0, 1, 1, 0]

    def test_round_trip(self):
        values = np.array([0, 1, 255, 1000, 65535])
        assert np.array_equal(bits_to_int(int_to_bits(values, 16)), values)

    def test_masking_to_width(self):
        bits = int_to_bits(np.array([0x1FF]), 8)
        assert bits_to_int(bits)[0] == 0xFF

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(np.array([-1]), 8)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            int_to_bits(np.zeros((2, 2)), 8)
        with pytest.raises(ValueError):
            bits_to_int(np.zeros(4))
        with pytest.raises(ValueError):
            int_to_bits(np.array([1]), 0)


class TestTwosComplement:
    def test_encode_negative(self):
        assert to_twos_complement(np.array([-1]), 8)[0] == 255
        assert to_twos_complement(np.array([-128]), 8)[0] == 128

    def test_round_trip(self):
        values = np.array([-128, -1, 0, 1, 127])
        encoded = to_twos_complement(values, 8)
        assert np.array_equal(from_twos_complement(encoded, 8), values)

    def test_positive_unchanged(self):
        assert to_twos_complement(np.array([100]), 8)[0] == 100


class TestPowersOfTwo:
    @pytest.mark.parametrize("n,expected", [
        (1, 1), (2, 2), (3, 4), (5, 8), (128, 128), (129, 256), (1000, 1024),
    ])
    def test_next_power_of_two(self, n, expected):
        assert next_power_of_two(n) == expected

    def test_next_power_of_two_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)


class TestCeilDiv:
    @pytest.mark.parametrize("a,b,expected", [
        (0, 5, 0), (1, 5, 1), (5, 5, 1), (6, 5, 2), (25, 9, 3),
    ])
    def test_ceil_div(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_rejects_nonpositive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)


@given(st.lists(st.integers(min_value=0, max_value=2**20 - 1), min_size=1,
                max_size=64))
@settings(max_examples=50, deadline=None)
def test_bits_round_trip_property(values):
    array = np.array(values, dtype=np.int64)
    assert np.array_equal(bits_to_int(int_to_bits(array, 20)), array)


@given(st.integers(min_value=1, max_value=10**9))
@settings(max_examples=100, deadline=None)
def test_next_power_of_two_properties(n):
    p = next_power_of_two(n)
    assert is_power_of_two(p)
    assert p >= n
    assert p < 2 * n or n == 1
