"""Vectorized model of a fleet of compute-capable SRAM arrays.

The paper's parallelism story (Sec. III-IV) is that *thousands* of 256x256
arrays execute the same bit-serial instruction in lockstep: one compute
cycle activates the same two wordlines in every array of a slice.
:class:`ArrayFleet` models exactly that — ``n_arrays`` arrays stored as one
``(n_arrays, rows, cols)`` uint8 tensor, with every primitive (two-row
sensing, masked write-back, plain reads/writes) operating on *all arrays
per call* as NumPy bit-plane operations.

Cycle accounting is lockstep: one :meth:`PlaneStore.sense` call is one
compute cycle *of the whole fleet*, because the hardware broadcasts one
instruction to every array. A fleet of one array therefore behaves exactly
like the original scalar :class:`repro.sram.array.SRAMArray`, which is now
a thin ``n_arrays=1`` view over this class.

The storage format sits behind the :class:`PlaneStore` seam: every
lockstep primitive is written once here in terms of a handful of abstract
*plane ops* (``row_plane``, ``plane_not``, ``shift_plane``, pack/unpack),
so the same sequencer code drives both the unpacked reference store
(:class:`ArrayFleet`, one byte per bit) and the packed store
(:class:`repro.engine.packed.PackedArrayFleet`, 64 bit-columns per uint64
word — 8x smaller, several times faster per lockstep op).

Plane currency: host-facing methods (``read_row``, ``write_row``,
``load_bits``, ``dump_bits``) always speak 0/1 uint8, whatever the store;
compute-facing methods (``sense``, ``sense_single``, ``write_back`` and
the plane ops) speak the store's *native* planes — uint8 ``(n_arrays,
cols)`` for the unpacked store, uint64 ``(n_arrays, n_words)`` for the
packed one. Callers that sequence compute cycles treat native planes as
opaque values supporting ``& | ^``.

This module must stay dependency-light (NumPy + error types only): the
single-array classes in :mod:`repro.sram` import it, so importing anything
from :mod:`repro.core` here would create a cycle.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ArrayStateError

#: Geometry of the 8KB array used throughout the paper.
DEFAULT_ROWS = 256
DEFAULT_COLS = 256


def mux(mask: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise select: ``a`` where a mask bit is set, else ``b``.

    ``b ^ ((a ^ b) & mask)`` works unchanged on 0/1 uint8 planes and on
    packed uint64 word planes — it is the store-agnostic form of the
    tag-gated write drivers of Figure 7.
    """
    return b ^ ((a ^ b) & mask)


class PlaneStore:
    """Shared lockstep primitives over an abstract bit-plane storage.

    Subclasses provide the storage and the native plane ops; every
    primitive (and all its bounds/value validation) lives here exactly
    once, so the packed and unpacked stores cannot drift apart.

    This interface is also the composition seam for cross-cutting
    wrappers — the shadow-state sanitizer
    (:class:`repro.verify.sanitizer.ShadowPlaneStore`) and the hardware
    fault injector (:class:`repro.faults.hardware.FaultyPlaneStore`)
    both wrap any store behind it, and
    :func:`~repro.engine.packed.make_fleet` stacks them (sanitizer
    outside, faults inside) without the sequencer knowing.

    Parameters
    ----------
    n_arrays:
        Number of arrays in the fleet (>= 1). All arrays receive the same
        instruction each cycle; data differs per array.
    rows:
        Wordlines per array (default 256).
    cols:
        Bitlines per array (default 256). Each bitline of each array is one
        bit-serial ALU slot, so the fleet exposes ``n_arrays * cols`` lanes.
    """

    def __init__(self, n_arrays: int = 1, rows: int = DEFAULT_ROWS,
                 cols: int = DEFAULT_COLS):
        if n_arrays <= 0:
            raise ArrayStateError(
                f"fleet must contain at least one array, got {n_arrays}")
        if rows <= 0 or cols <= 0:
            raise ArrayStateError(f"array must be non-empty, got {rows}x{cols}")
        self.n_arrays = n_arrays
        self.rows = rows
        self.cols = cols
        self.access_cycles = 0
        self.compute_cycles = 0

    # ------------------------------------------------------------------
    # Native plane ops (the seam subclasses implement)
    # ------------------------------------------------------------------
    def row_plane(self, row: int) -> np.ndarray:
        """Writable native view of one wordline across every array."""
        raise NotImplementedError

    def const_plane(self, bit: int):
        """A broadcastable constant native plane (all-0 or all-1 columns).

        May be a scalar or a shared read-only array; callers must not
        mutate it.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Read/write seam over row_plane. ``row_plane`` alone cannot tell a
    # sensed wordline from a driven one, so sequencers that touch native
    # planes directly (the hot per-cycle path of FleetBitSerialUnit) go
    # through these two wrappers instead — which is what lets the
    # shadow-state sanitizer (repro.verify.sanitizer) observe every
    # compute-phase access without being in the default path.
    # ------------------------------------------------------------------
    def read_plane(self, row: int) -> np.ndarray:
        """Native view of one wordline being *sensed* (compute read)."""
        return self.row_plane(row)

    def store_plane(self, row: int, plane: np.ndarray,
                    mask: np.ndarray | None = None) -> None:
        """Raw write-back of a native plane (compute write, hot path).

        Unlike :meth:`write_back` this performs no plane coercion — the
        caller is the sequencer whose planes came from this store's own
        ops. ``mask`` models the tag-gated write drivers; masked columns
        keep their value (an implicit read of the destination row).
        """
        dst = self.row_plane(row)
        if mask is None:
            dst[...] = plane
        else:
            dst[...] = mux(mask, plane, dst)

    def new_plane(self) -> np.ndarray:
        """A fresh writable all-zero native plane, ``(n_arrays, ...)``."""
        raise NotImplementedError

    def plane_not(self, plane: np.ndarray) -> np.ndarray:
        """Complement of the active columns of a native plane."""
        raise NotImplementedError

    def shift_plane(self, plane: np.ndarray, shift: int) -> np.ndarray:
        """Move bits ``shift`` columns toward column 0, zero-filling at the
        right edge (the column-mux / sense-amp-cycling moves of
        Sec. III-D)."""
        raise NotImplementedError

    def pack_plane(self, bits: np.ndarray) -> np.ndarray:
        """Host 0/1 uint8 ``(n_arrays, cols)`` -> native plane."""
        raise NotImplementedError

    def unpack_plane(self, plane: np.ndarray) -> np.ndarray:
        """Native plane -> fresh host 0/1 uint8 ``(n_arrays, cols)``."""
        raise NotImplementedError

    def coerce_plane(self, plane: np.ndarray) -> np.ndarray:
        """Validate an externally supplied native plane."""
        raise NotImplementedError

    def make_periphery(self):
        """Column peripherals whose latches use this store's native planes."""
        raise NotImplementedError

    def _read_region(self, top_row: int, n_rows: int, col_offset: int,
                     n_cols: int) -> np.ndarray:
        """Host uint8 ``(n_arrays, n_rows, n_cols)`` copy of a region."""
        raise NotImplementedError

    def _write_region(self, top_row: int, n_rows: int, col_offset: int,
                      bits: np.ndarray) -> None:
        """Store validated host bits ``(n_arrays, n_rows, n_cols)``."""
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        """Resident bytes of the backing bit-plane storage."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Plain SRAM behaviour (single wordline, all arrays; host currency)
    # ------------------------------------------------------------------
    def read_row(self, row: int) -> np.ndarray:
        """Read one wordline of every array; returns ``(n_arrays, cols)``."""
        self._check_row(row)
        self.access_cycles += 1
        return self.unpack_plane(self.row_plane(row))

    def write_row(self, row: int, bits: np.ndarray,
                  mask: np.ndarray | None = None) -> None:
        """Write one wordline of every array.

        ``mask`` models the per-column bit-line drivers gated by the tag
        latch (Figure 7): positions where ``mask == 0`` keep their value.
        """
        self._check_row(row)
        plane = self.pack_plane(self._coerce_bits(bits))
        self.access_cycles += 1
        dst = self.row_plane(row)
        if mask is None:
            dst[...] = plane
        else:
            dst[...] = mux(self.pack_plane(self._coerce_bits(mask)),
                           plane, dst)

    # ------------------------------------------------------------------
    # Compute behaviour (two simultaneous wordlines; native currency)
    # ------------------------------------------------------------------
    def sense(self, row_a: int, row_b: int) -> tuple[np.ndarray, np.ndarray]:
        """Activate two wordlines fleet-wide and sense both rails.

        Returns native planes ``(bl, blb)`` where ``bl = A AND B`` and
        ``blb = A NOR B`` per bitline (Figure 2b). One lockstep compute
        cycle for the whole fleet.
        """
        self._check_row(row_a)
        self._check_row(row_b)
        if row_a == row_b:
            raise ArrayStateError(
                f"compute sensing requires two distinct wordlines, got {row_a}")
        self.compute_cycles += 1
        a = self.row_plane(row_a)
        b = self.row_plane(row_b)
        return a & b, self.plane_not(a) & self.plane_not(b)

    def sense_single(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """Activate one wordline in compute mode fleet-wide.

        The missing operand reads as all-ones on BL sensing, so
        ``bl = A`` and ``blb = NOT A``. Used for moves and tag loads.
        """
        self._check_row(row)
        self.compute_cycles += 1
        a = self.row_plane(row)
        return a.copy(), self.plane_not(a)

    def plane_any(self, row: int) -> bool:
        """True when any bit of ``row`` is set in *any* array of the fleet.

        This is the zero-plane probe of the sparsity engine: a bit-serial
        sequencer may skip a multiply/add step fleet-wide only when the
        driving operand plane is all-zero across every array. Modeled as
        free (0 cycles) — the hardware analogue is a per-wordline zero
        flag the periphery maintains as planes are written, and on the
        packed store the probe is one ``np.any`` over native uint64 words
        (exact, because bits past the last column are invariantly zero).
        """
        self._check_row(row)
        return bool(np.any(self.row_plane(row)))

    def write_back(self, row: int, plane: np.ndarray,
                   mask: np.ndarray | None = None) -> None:
        """Phase-2 write of a compute cycle (WWL activation), all arrays.

        Takes *native* planes (e.g. the rails :meth:`sense` returned).
        Does *not* count an extra cycle: the paper's compute cycle has a
        sensing phase and a write-back phase inside one clock.
        """
        self._check_row(row)
        plane = self.coerce_plane(plane)
        dst = self.row_plane(row)
        if mask is None:
            dst[...] = plane
        else:
            dst[...] = mux(self.coerce_plane(mask), plane, dst)

    def move_plane(self, src_row: int, dst_row: int, stride: int,
                   group: int) -> None:
        """Rotate one wordline's planes between arrays of a reduction group.

        Arrays are partitioned into consecutive groups of ``group`` along
        the fleet axis; every array's ``dst_row`` receives ``src_row`` from
        the array ``stride`` positions ahead *within its group*, wrapping
        at the group boundary. The wrap keeps every destination plane
        defined — donor arrays at the top of a group receive rotated data
        they never read, instead of garbage.

        This is the inter-array hop of cross-array reduction (Sec. III-D /
        IV-C): sense-amp-paired arrays at stride 1, quadrant-bus and ring
        hops at larger strides. Because every store keeps the fleet axis
        first in its native planes (``row_plane`` returns ``(n_arrays,
        ...)``), one permutation along axis 0 implements the hop for the
        unpacked, packed and shared stores alike. Raw plane op: no cycle
        accounting here — sequencers charge hop cycles themselves.
        """
        self._check_row(src_row)
        self._check_row(dst_row)
        if group < 2 or group > self.n_arrays:
            raise ArrayStateError(
                f"cross-array group must have 2..{self.n_arrays} arrays, "
                f"got {group}")
        if self.n_arrays % group:
            raise ArrayStateError(
                f"fleet of {self.n_arrays} arrays does not divide into "
                f"groups of {group}")
        if not 1 <= stride < group:
            raise ArrayStateError(
                f"cross-array stride must be in 1..{group - 1}, got {stride}")
        idx = np.arange(self.n_arrays)
        perm = idx - idx % group + (idx % group + stride) % group
        src = self.row_plane(src_row)
        dst = self.row_plane(dst_row)
        dst[...] = src[perm]

    # ------------------------------------------------------------------
    # Test/host-side helpers (no cycle accounting; data arrives via TMU)
    # ------------------------------------------------------------------
    def load_bits(self, top_row: int, bits: np.ndarray,
                  col_offset: int = 0) -> None:
        """Bulk-store a bit tensor with its row 0 at ``top_row``.

        ``bits`` is ``(n_arrays, n_rows, n_cols)``, or ``(n_rows, n_cols)``
        to broadcast the same plane into every array, with values 0/1.
        This is the host/TMU initialisation path; transfer costs are
        charged by the transfer models, not here.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim == 2:
            bits = np.broadcast_to(bits, (self.n_arrays, *bits.shape))
        if bits.ndim != 3 or bits.shape[0] != self.n_arrays:
            raise ArrayStateError(
                f"expected a ({self.n_arrays}, rows, cols) bit tensor, got "
                f"shape {bits.shape}")
        if np.any(bits > 1):
            raise ArrayStateError("bit values must be 0 or 1")
        _, n_rows, n_cols = bits.shape
        self._check_region(top_row, n_rows, col_offset, n_cols)
        self._write_region(top_row, n_rows, col_offset, bits)

    def dump_bits(self, top_row: int, n_rows: int, col_offset: int = 0,
                  n_cols: int | None = None) -> np.ndarray:
        """Bulk-read ``(n_arrays, n_rows, n_cols)`` (host/TMU path)."""
        if n_cols is None:
            n_cols = self.cols - col_offset
        self._check_region(top_row, n_rows, col_offset, n_cols)
        return self._read_region(top_row, n_rows, col_offset, n_cols)

    def reset_counters(self) -> None:
        """Zero the lockstep access/compute cycle counters."""
        self.access_cycles = 0
        self.compute_cycles = 0

    # ------------------------------------------------------------------
    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ArrayStateError(
                f"row {row} outside array of {self.rows} rows")

    def _check_region(self, top_row: int, n_rows: int, col_offset: int,
                      n_cols: int) -> None:
        """Bounds for a rectangular host-path region (load and dump share
        this, so a dump can no longer wrap a negative offset or silently
        truncate past the last column)."""
        if n_rows < 0 or top_row < 0 or top_row + n_rows > self.rows:
            raise ArrayStateError(
                f"rows [{top_row}, {top_row + n_rows}) outside array of "
                f"{self.rows} rows")
        if n_cols < 0 or col_offset < 0 or col_offset + n_cols > self.cols:
            raise ArrayStateError(
                f"columns [{col_offset}, {col_offset + n_cols}) outside array "
                f"of {self.cols} columns")

    def _coerce_bits(self, bits: np.ndarray) -> np.ndarray:
        """Validate host 0/1 bits, broadcasting ``(cols,)`` to every array."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape == (self.cols,):
            bits = np.broadcast_to(bits, (self.n_arrays, self.cols))
        if bits.shape != (self.n_arrays, self.cols):
            raise ArrayStateError(
                f"expected ({self.n_arrays}, {self.cols}) bits, got shape "
                f"{bits.shape}")
        if np.any(bits > 1):
            raise ArrayStateError("bit values must be 0 or 1")
        return bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(n_arrays={self.n_arrays}, "
                f"rows={self.rows}, cols={self.cols}, "
                f"access={self.access_cycles}, "
                f"compute={self.compute_cycles})")


class ArrayFleet(PlaneStore):
    """``n_arrays`` compute SRAM arrays executing in lockstep.

    The unpacked *reference* store: one uint8 byte per bit, native planes
    are the host planes. Kept byte-per-bit so tests and debuggers can look
    straight at ``_bits``; the production store is
    :class:`repro.engine.packed.PackedArrayFleet`.
    """

    def __init__(self, n_arrays: int = 1, rows: int = DEFAULT_ROWS,
                 cols: int = DEFAULT_COLS):
        super().__init__(n_arrays, rows, cols)
        self._bits = np.zeros((n_arrays, rows, cols), dtype=np.uint8)

    # -- plane ops ------------------------------------------------------
    def row_plane(self, row: int) -> np.ndarray:
        return self._bits[:, row]

    def const_plane(self, bit: int):
        return np.uint8(1) if bit else np.uint8(0)

    def new_plane(self) -> np.ndarray:
        return np.zeros((self.n_arrays, self.cols), dtype=np.uint8)

    def plane_not(self, plane: np.ndarray) -> np.ndarray:
        return plane ^ 1

    def shift_plane(self, plane: np.ndarray, shift: int) -> np.ndarray:
        if shift <= 0:
            raise ArrayStateError(f"column shift must be positive, got {shift}")
        shifted = np.zeros_like(plane)
        if shift < plane.shape[-1]:
            shifted[..., :-shift] = plane[..., shift:]
        return shifted

    def pack_plane(self, bits: np.ndarray) -> np.ndarray:
        return bits

    def unpack_plane(self, plane: np.ndarray) -> np.ndarray:
        return plane.copy()

    def coerce_plane(self, plane: np.ndarray) -> np.ndarray:
        return self._coerce_bits(plane)

    def make_periphery(self) -> "FleetPeriphery":
        return FleetPeriphery(self.n_arrays, self.cols)

    def _read_region(self, top_row: int, n_rows: int, col_offset: int,
                     n_cols: int) -> np.ndarray:
        return self._bits[:, top_row:top_row + n_rows,
                          col_offset:col_offset + n_cols].copy()

    def _write_region(self, top_row: int, n_rows: int, col_offset: int,
                      bits: np.ndarray) -> None:
        self._bits[:, top_row:top_row + n_rows,
                   col_offset:col_offset + bits.shape[-1]] = bits

    @property
    def nbytes(self) -> int:
        return self._bits.nbytes


class FleetPeriphery:
    """Column peripherals (Figure 7) for every array of a fleet at once.

    The carry and tag latches are ``(n_arrays, cols)`` planes; the
    combinational full-adder/XOR logic evaluates on whole planes. Mirrors
    :class:`repro.sram.peripheral.ColumnPeriphery`, which is the
    ``n_arrays=1`` reference implementation.
    :class:`repro.engine.packed.PackedFleetPeriphery` subclasses this with
    packed uint64 latches; the adder logic is shared, only latch storage
    and the rail complement differ.
    """

    def __init__(self, n_arrays: int, cols: int):
        if n_arrays <= 0 or cols <= 0:
            raise ArrayStateError(
                f"periphery needs positive dimensions, got "
                f"{n_arrays}x{cols}")
        self.n_arrays = n_arrays
        self.cols = cols
        self._alloc_latches()

    def _alloc_latches(self) -> None:
        """Allocate the carry (cleared) and tag (all-enabled) latches in
        this periphery's native plane format."""
        self.carry = np.zeros((self.n_arrays, self.cols), dtype=np.uint8)
        self.tag = np.ones((self.n_arrays, self.cols), dtype=np.uint8)

    # -- latch management (resets happen during instruction issue and cost
    # -- no array cycles)
    def clear_carry(self) -> None:
        self.carry[:] = 0

    def set_carry(self) -> None:
        self.carry[:] = 1

    def set_tag_all(self) -> None:
        self.tag[:] = 1

    def load_tag(self, bits: np.ndarray, invert: bool = False) -> None:
        """Latch a sensed plane into the tag latches (optionally inverted
        for free via the BLB sense amp)."""
        bits = self._coerce(bits)
        self.tag[:] = self._invert(bits) if invert else bits

    def load_carry(self, bits: np.ndarray) -> None:
        self.carry[:] = self._coerce(bits)

    # -- combinational logic -------------------------------------------
    def xor_from_rails(self, bl_and: np.ndarray,
                       blb_nor: np.ndarray) -> np.ndarray:
        """``A XOR B`` from the two sensed rails: ``NOR(A&B, A NOR B)``."""
        return self._invert(bl_and) & self._invert(blb_nor)

    def add_step(self, a_and_b: np.ndarray,
                 a_xor_b: np.ndarray) -> np.ndarray:
        """The sum/carry latch update from pre-decoded AND/XOR planes.

        This is the single implementation of the adder logic: the
        validated rail-based :meth:`full_add`, the hot per-cycle path of
        :class:`~repro.engine.bitserial.FleetBitSerialUnit`, and the
        packed store's periphery all land here, so the carry semantics
        cannot drift between them. The carry latch supplies carry-in and
        is overwritten with the carry-out; returns the sum plane.
        """
        carry = self.carry
        total = a_xor_b ^ carry
        carry[...] = a_and_b | (a_xor_b & carry)
        return total

    def full_add(self, bl_and: np.ndarray,
                 blb_nor: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One full-adder evaluation for every column of every array.

        Takes the two sensed rails (``A AND B``, ``A NOR B``), validated;
        returns ``(sum, carry_out)``.
        """
        a_and_b = self._coerce(bl_and)
        a_xor_b = self.xor_from_rails(a_and_b, self._coerce(blb_nor))
        total = self.add_step(a_and_b, a_xor_b)
        return total, self.carry.copy()

    def write_mask(self, predicated: bool) -> np.ndarray | None:
        """Per-column write-driver enables: tag when predicated, else all."""
        return self.tag.copy() if predicated else None

    # ------------------------------------------------------------------
    def _invert(self, bits: np.ndarray) -> np.ndarray:
        """Complement a latch plane (store-specific in subclasses)."""
        return (bits ^ 1).astype(np.uint8)

    def _coerce(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.n_arrays, self.cols):
            raise ArrayStateError(
                f"expected ({self.n_arrays}, {self.cols}) column bits, got "
                f"shape {bits.shape}")
        if np.any(bits > 1):
            raise ArrayStateError("latch bit values must be 0 or 1")
        return bits
