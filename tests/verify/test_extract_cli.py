"""Recorder granularity, model program extraction, and the verify CLI."""

import pytest

from repro.common.errors import VerifyError
from repro.engine.bitserial import FleetBitSerialUnit, Operand
from repro.engine.packed import make_fleet
from repro.verify import (
    extract_model_programs,
    lift_calls,
    record_programs,
    registered_models,
    verify_program,
)
from repro.verify.cli import main as verify_main

ROWS, COLS = 64, 16


class TestRecorder:
    def test_top_level_calls_only(self):
        # mac runs multiply + add_into + dozens of cycle primitives
        # internally; the recording must show exactly the calls the
        # engine made, at the granularity the lifter models.
        unit = FleetBitSerialUnit(make_fleet(1, ROWS, COLS))
        with record_programs() as recorder:
            unit.write_values(Operand(0, 4), 5)
            unit.write_values(Operand(4, 4), 9)
            unit.write_values(Operand(16, 9), 0)
            unit.mac(Operand(0, 4), Operand(4, 4), Operand(8, 8),
                     Operand(16, 9))
        (trace,) = recorder.traces.values()
        assert [call.method for call in trace.calls] == \
            ["write_values", "write_values", "write_values", "mac"]

    def test_calls_group_per_unit_with_labels(self):
        store = make_fleet(1, ROWS, COLS)
        unit_a, unit_b = FleetBitSerialUnit(store), FleetBitSerialUnit(store)
        with record_programs() as recorder:
            recorder.annotate("layer-a")
            unit_a.write_values(Operand(0, 4), 1)
            recorder.annotate("layer-b")
            unit_b.write_values(Operand(0, 4), 2)
            unit_a.zero(Operand(8, 4))  # back on the first unit
        programs = recorder.programs()
        assert [p.label for p in programs] == ["layer-a", "layer-b"]
        assert len(programs[0]) == 2
        assert len(programs[1]) == 1

    def test_recording_lifts_and_verifies_clean(self):
        unit = FleetBitSerialUnit(make_fleet(1, ROWS, COLS))
        with record_programs() as recorder:
            unit.write_values(Operand(0, 4), 5)
            unit.write_values(Operand(4, 4), 9)
            unit.add(Operand(0, 4), Operand(4, 4), Operand(8, 5))
            unit.read_values(Operand(8, 5))
        (program,) = recorder.programs()
        assert program.rows == ROWS and program.cols == COLS
        assert verify_program(program) == []

    def test_hook_restored_on_exit(self):
        unit = FleetBitSerialUnit(make_fleet(1, ROWS, COLS))
        with record_programs() as recorder:
            unit.write_values(Operand(0, 4), 5)
        unit.write_values(Operand(4, 4), 9)  # after the block: not recorded
        (trace,) = recorder.traces.values()
        assert len(trace.calls) == 1

    def test_nested_recordings(self):
        unit = FleetBitSerialUnit(make_fleet(1, ROWS, COLS))
        with record_programs() as outer:
            unit.write_values(Operand(0, 4), 1)
            with record_programs() as inner:
                unit.write_values(Operand(4, 4), 2)
            unit.write_values(Operand(8, 4), 3)
        (outer_trace,) = outer.traces.values()
        (inner_trace,) = inner.traces.values()
        assert len(outer_trace.calls) == 2  # inner call went to `inner`
        assert len(inner_trace.calls) == 1


class TestLiftErrors:
    def test_unknown_method_is_a_lift_error(self):
        with pytest.raises(VerifyError) as excinfo:
            lift_calls([("frobnicate", (), {})], ROWS, COLS)
        assert excinfo.value.check == "lift"

    def test_too_many_positionals_is_a_lift_error(self):
        with pytest.raises(VerifyError, match="positional"):
            lift_calls([("set_tag_all", (1, 2, 3), {})], ROWS, COLS)


class TestExtraction:
    def test_tiny_verification_model_extracts_clean(self):
        extracted = extract_model_programs("tiny-verification")
        assert extracted.skipped is None
        assert extracted.programs, "no programs recorded"
        labels = {p.label for p in extracted.programs}
        assert any("pool" in label or "conv" in label for label in labels)
        for program in extracted.programs:
            assert verify_program(program) == [], program.label

    def test_registered_models_cover_the_zoo(self):
        models = registered_models()
        assert "tiny-verification" in models
        assert "mlp" in models
        assert "lenet5" in models

    def test_out_of_scope_model_reports_skip_reason(self):
        extracted = extract_model_programs("inception-v3")
        assert extracted.skipped is not None
        assert extracted.programs == ()


class TestCli:
    def test_clean_model_exits_zero(self, capsys):
        assert verify_main(["--model", "tiny-verification"]) == 0
        out = capsys.readouterr().out
        assert "tiny-verification: ok" in out
        assert ": 0 finding(s)" in out

    def test_verbose_lists_programs(self, capsys):
        assert verify_main(["--model", "tiny-verification", "-v"]) == 0
        out = capsys.readouterr().out
        assert "tiny-verification/" in out

    def test_unknown_model_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            verify_main(["--model", "no-such-model"])
        assert excinfo.value.code == 2
        assert "unknown model" in capsys.readouterr().err

    def test_skipped_model_reports_and_exits_zero(self, capsys):
        assert verify_main(["--model", "inception-v3"]) == 0
        assert "SKIP" in capsys.readouterr().out
