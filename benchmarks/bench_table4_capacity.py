"""Table IV: latency scaling with cache capacity (35/45/60 MB).

Paper: 4.72 / 4.12 / 3.79 ms — compute and input streaming speed up with
extra slices while filter loading stays constant.
"""

from repro.analysis import table4
from repro.cache.geometry import capacity_sweep
from repro.config import NeuralCacheConfig
from repro.core.executor import NeuralCacheSimulator
from repro.nn import build_inception_v3


def regenerate_capacity_sweep():
    network = build_inception_v3()
    times = {}
    for geometry in capacity_sweep():
        config = NeuralCacheConfig().with_geometry(geometry)
        times[geometry.total_bytes // 2**20] = \
            NeuralCacheSimulator(network, config).latency()
    return times


def test_table4_capacity_scaling(benchmark, record):
    times = benchmark(regenerate_capacity_sweep)
    assert times[35] > times[45] > times[60]
    # Paper ratios: 0.873 and 0.803 of the 35 MB latency.
    assert abs(times[45] / times[35] - 0.873) < 0.06
    assert abs(times[60] / times[35] - 0.803) < 0.06
    record(table4())
