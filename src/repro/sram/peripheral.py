"""Column peripherals of a compute SRAM array (Figure 7).

Each bitline has, below the column mux:

* two single-ended sense amplifiers producing ``A AND B`` (from BL) and
  ``A NOR B`` (from BLB);
* a NOR gate combining them into ``A XOR B``;
* sum / carry logic: ``sum = A ^ B ^ Cin`` and
  ``Cout = (A & B) | ((A ^ B) & Cin)``;
* a carry latch ``C`` and a tag latch ``T``;
* a 4:1 write-back mux selecting among ``{sum, carry, data-in, tag}``; the
  tag bit gates the bit-line write driver (predication).

This module implements that combinational logic and latch state for all 256
columns at once as NumPy vectors. It is deliberately dumb: sequencing and
cycle accounting live in :class:`repro.sram.bitserial.BitSerialUnit`.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.common.errors import ArrayStateError


class WritebackSelect(Enum):
    """The 4:1 write-back mux inputs of Figure 7."""

    SUM = "sum"
    CARRY = "carry"
    DATA_IN = "data_in"
    TAG = "tag"


class ColumnPeriphery:
    """Latches and combinational logic shared by every column of one array."""

    def __init__(self, cols: int):
        if cols <= 0:
            raise ArrayStateError(f"cols must be positive, got {cols}")
        self.cols = cols
        self.carry = np.zeros(cols, dtype=np.uint8)
        self.tag = np.ones(cols, dtype=np.uint8)

    # -- latch management (latch resets happen during instruction issue and
    # -- cost no array cycles; see DESIGN.md section 5)
    def clear_carry(self) -> None:
        """Reset every carry latch to 0."""
        self.carry[:] = 0

    def set_carry(self) -> None:
        """Set every carry latch to 1 (used as borrow-in for subtraction)."""
        self.carry[:] = 1

    def set_tag_all(self) -> None:
        """Enable the write drivers on every column (unpredicated mode)."""
        self.tag[:] = 1

    def load_tag(self, bits: np.ndarray, invert: bool = False) -> None:
        """Latch a sensed row into the tag latches (optionally complemented).

        The complement comes for free from the BLB sense amp.
        """
        bits = self._coerce(bits)
        self.tag[:] = (1 - bits) if invert else bits

    def load_carry(self, bits: np.ndarray) -> None:
        """Latch an explicit value into the carry latches."""
        self.carry[:] = self._coerce(bits)

    # -- combinational logic -------------------------------------------------
    @staticmethod
    def xor_from_rails(bl_and: np.ndarray, blb_nor: np.ndarray) -> np.ndarray:
        """``A XOR B`` from the two sensed rails: ``NOR(A&B, A NOR B)``."""
        return ((1 - bl_and) & (1 - blb_nor)).astype(np.uint8)

    def full_add(self, bl_and: np.ndarray,
                 blb_nor: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One full-adder evaluation for every column.

        Takes the two sensed rails for operand rows ``A`` and ``B``, uses the
        carry latch as carry-in, and returns ``(sum, carry_out)``. The carry
        latch is updated to ``carry_out`` (it overwrites at the end of the
        cycle, becoming the next cycle's carry-in).
        """
        a_and_b = self._coerce(bl_and)
        a_xor_b = self.xor_from_rails(a_and_b, self._coerce(blb_nor))
        total = a_xor_b ^ self.carry
        carry_out = (a_and_b | (a_xor_b & self.carry)).astype(np.uint8)
        self.carry[:] = carry_out
        return total, carry_out

    def select(self, wb: WritebackSelect,
               total: np.ndarray | None = None,
               data_in: np.ndarray | None = None) -> np.ndarray:
        """Drive the 4:1 write-back mux and return the bits to write."""
        if wb is WritebackSelect.SUM:
            if total is None:
                raise ArrayStateError("SUM write-back requires a sum vector")
            return total
        if wb is WritebackSelect.CARRY:
            return self.carry.copy()
        if wb is WritebackSelect.TAG:
            return self.tag.copy()
        if wb is WritebackSelect.DATA_IN:
            if data_in is None:
                raise ArrayStateError("DATA_IN write-back requires data bits")
            return self._coerce(data_in)
        raise ArrayStateError(f"unknown write-back select {wb!r}")

    def write_mask(self, predicated: bool) -> np.ndarray | None:
        """The per-column write-driver enable: tag when predicated, else all."""
        return self.tag.copy() if predicated else None

    # ------------------------------------------------------------------
    def _coerce(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.cols,):
            raise ArrayStateError(
                f"expected {self.cols} column bits, got shape {bits.shape}")
        if np.any(bits > 1):
            raise ArrayStateError("latch bit values must be 0 or 1")
        return bits
