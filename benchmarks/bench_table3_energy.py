"""Table III: energy per inference and average power.

Paper: CPU 9.137 J / 105.56 W, GPU 4.087 J / 112.87 W, Neural Cache
0.246 J / 52.92 W — a 37.1x / 16.6x energy-efficiency win.
"""

from repro.analysis import table2, table3
from repro.baselines import CpuBaseline, GpuBaseline
from repro.core.executor import NeuralCacheSimulator
from repro.nn import build_inception_v3


def regenerate_energy():
    network = build_inception_v3()
    result = NeuralCacheSimulator(network).run()
    return {
        "cpu": CpuBaseline(network).energy(),
        "gpu": GpuBaseline(network).energy(),
        "neural_cache": result.total_energy,
        "nc_power": result.average_power,
    }


def test_table3_energy_power(benchmark, record):
    data = benchmark(regenerate_energy)
    assert data["neural_cache"] < data["gpu"] < data["cpu"]
    assert 25 < data["cpu"] / data["neural_cache"] < 60    # paper 37.1x
    assert 12 < data["gpu"] / data["neural_cache"] < 30    # paper 16.6x
    assert data["nc_power"] < 105.56                        # below CPU
    record(table2())
    record(table3())
