"""Async batched serving: a live request stream over the shard pool.

The paper's data-center throughput claim (Sec. VI-B, Fig. 16) is about
a *request stream*: a node keeps its sockets busy by batching whatever
arrived. This example runs that serving stack end to end:

* a pool of :class:`~repro.engine.sharding.ShardedBackend` nodes, each
  splitting its batches across socket shards on a concurrent driver;
* a :class:`~repro.serving.Server` coalescing ``submit()`` arrivals
  into batched fleet passes under ``max_batch`` / ``max_wait_ms``;
* per-request responses that are bit-exact the direct ``run_requests``
  path, plus the serving numbers — p50/p95/p99 tail latency and
  throughput.

Run:  python examples/async_serving.py
"""

import asyncio

import numpy as np

from repro.engine.backend import (
    FleetExecutor,
    deterministic_images,
    tiny_verification_network,
)
from repro.engine.sharding import ShardedBackend
from repro.serving import Server


async def main() -> None:
    network = tiny_verification_network()

    # The request stream: deterministic images, so the serving run is
    # reproducible and checkable against the direct batch path.
    template = FleetExecutor(packed=True, verify=False)
    weights = template.weights_for(network)
    images = deterministic_images(network, weights, seed=0, batch_size=24)
    expected = template.run_requests(network, images, weights).responses

    # Two serving nodes, each a dual-socket sharded backend whose shard
    # pool runs on the thread driver.
    pool = [
        ShardedBackend(shards=2, verify=False, driver="thread")
        for _ in range(2)
    ]

    async with Server(pool, network, max_batch=6, max_wait_ms=2.0) as server:
        responses = await asyncio.gather(
            *(server.submit(image) for image in images)
        )

    # Serving changes wall-clock, never results.
    for got, want in zip(responses, expected):
        assert np.array_equal(got.data, want.data)
    report = server.report()
    print(report.summary())
    assert report.responded == len(images)
    assert report.duplicates == 0
    print(
        f"all {len(images)} responses bit-exact vs the direct "
        f"run_requests path"
    )


if __name__ == "__main__":
    asyncio.run(main())
