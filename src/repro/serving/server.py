"""Asyncio request queue: coalesce arrivals into batched fleet passes.

The paper's data-center claim (Sec. VI-B, Fig. 16) is about a *request
stream*, not one-off batch runs: a node keeps its sockets busy by
batching whatever arrived, trading a bounded queueing delay for the
batch-in-fleet throughput win. :class:`Server` is that frontend:

* :meth:`Server.submit` enqueues one image and returns an awaitable
  response — the request's network output tensor, bit-exact with the
  direct ``run_requests`` path;
* a batcher task coalesces queued arrivals into batches of at most
  ``max_batch`` images, waiting at most ``max_wait_ms`` after the first
  arrival before flushing a partial batch (the classic
  size-or-deadline policy of serving stacks like BrainWave's);
* each batch is dispatched to an idle backend from a **pool** (any
  objects with ``run_requests(network, images)``, e.g. one
  :class:`~repro.engine.sharding.ShardedBackend` per node) on a worker
  thread, so the event loop keeps accepting arrivals while fleets
  compute and up to ``len(backends)`` batches execute concurrently;
* per-request latency (submit -> response) and per-batch sizes are
  recorded, and :meth:`Server.report` reduces them to the serving
  numbers that matter: p50/p95/p99 tail latency and throughput.

Everything is deterministic given the arrival order: batches preserve
queue order, responses map back by position, and a response future is
resolved exactly once (double resolution would mean a duplicated
response — the counter is exposed so the smoke gate can fail on it).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.common.errors import SimulationError
from repro.engine.backend import BatchOutcome
from repro.nn.graph import Network


@runtime_checkable
class ServingBackend(Protocol):
    """Anything the server can drive: explicit images in, outcome out."""

    def run_requests(self, network: Network, images) -> BatchOutcome:
        """Execute ``images`` and return per-image responses in order."""
        ...  # pragma: no cover - protocol signature


@dataclass(frozen=True)
class ServingReport:
    """Tail latency and throughput of one serving run."""

    #: Requests submitted / responses delivered (equal unless lost).
    requests: int
    responded: int
    #: Responses whose future was already resolved (must stay 0).
    duplicates: int
    #: Batches dispatched and their mean size (the coalescing win).
    batches: int
    mean_batch: float
    #: Submit -> response latency percentiles, milliseconds.
    p50_ms: float
    p95_ms: float
    p99_ms: float
    #: Responses per second over the whole run (first submit -> last
    #: response).
    throughput_rps: float
    #: Wall-clock seconds from first submit to last response.
    wall_s: float
    #: Batch dispatches retried after a backend failure (appended with
    #: a default so pinned call sites predating the field keep working).
    retries: int = 0
    #: Requests that hit their per-request deadline before a response.
    expired: int = 0

    def summary(self) -> str:
        """A short human-readable account of the run."""
        text = (
            f"served {self.responded}/{self.requests} request(s) in "
            f"{self.batches} batch(es) (mean batch {self.mean_batch:.1f}) "
            f"-> {self.throughput_rps:.1f} req/s, latency p50 "
            f"{self.p50_ms:.1f} ms / p95 {self.p95_ms:.1f} ms / p99 "
            f"{self.p99_ms:.1f} ms"
        )
        if self.retries or self.expired:
            text += (
                f" [{self.retries} batch retry/ies, {self.expired} expired]"
            )
        return text


class _Request:
    """One queued image and the future its response resolves."""

    __slots__ = ("image", "future", "submitted_at")

    def __init__(self, image, future, submitted_at: float):
        self.image = image
        self.future = future
        self.submitted_at = submitted_at


class Server:
    """Batch-coalescing serving frontend over a pool of backends.

    Use as an async context manager::

        backends = [ShardedBackend(shards=2, driver="thread")]
        async with Server(backends, network, max_batch=8) as server:
            outputs = await asyncio.gather(
                *(server.submit(image) for image in images)
            )

    ``max_batch`` caps how many queued requests one fleet pass computes
    (the fold into the fleet's array axis); ``max_wait_ms`` bounds how
    long the first request of a batch waits for company before a
    partial batch is flushed. ``max_wait_ms=0`` disables coalescing
    beyond what is already queued at dispatch time.

    ``close_backends`` hands the pool's lifecycle to the server: after
    the drain, :meth:`close` also calls each backend's own ``close()``
    (backends without one are left alone). This is how a server over
    pool-driver :class:`~repro.engine.sharding.ShardedBackend` nodes —
    which hold one persistent worker pool across *all* ``submit``
    calls, instead of paying driver startup per coalesced batch —
    releases those workers and their shared segments exactly once.

    Fault tolerance: ``max_retries`` re-dispatches a batch whose
    backend raised, after a short exponential backoff, on the next idle
    backend (the failed one goes to the back of the rotation) — with
    self-healing pool-driver backends underneath, a worker crash taken
    past the pool's own recovery budget still only costs a server-level
    retry, not the stream's responses. ``request_timeout_s`` is the
    per-request deadline: a ``submit`` whose response takes longer
    fails with a structured :class:`~repro.common.errors.SimulationError`
    (counted as ``expired``, never as a duplicate).
    """

    def __init__(
        self,
        backends: Sequence[ServingBackend],
        network: Network,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        close_backends: bool = False,
        max_retries: int = 0,
        retry_backoff_s: float = 0.05,
        request_timeout_s: float | None = None,
    ):
        if not backends:
            raise SimulationError("serving needs at least one backend")
        for backend in backends:
            if not isinstance(backend, ServingBackend):
                raise SimulationError(
                    f"{type(backend).__name__} cannot serve: it has no "
                    f"run_requests(network, images) entry point"
                )
        if max_batch <= 0:
            raise SimulationError(
                f"max_batch must be positive, got {max_batch}"
            )
        if max_wait_ms < 0:
            raise SimulationError(
                f"max_wait_ms must be non-negative, got {max_wait_ms}"
            )
        if max_retries < 0:
            raise SimulationError(
                f"max_retries must be non-negative, got {max_retries}"
            )
        if retry_backoff_s < 0:
            raise SimulationError(
                f"retry_backoff_s must be non-negative, got {retry_backoff_s}"
            )
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise SimulationError(
                f"request_timeout_s must be positive, got {request_timeout_s}"
            )
        self.network = network
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.close_backends = close_backends
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.request_timeout_s = request_timeout_s
        self._backends = tuple(backends)
        # Lifecycle state (created by start(), torn down by close()).
        self._queue: deque[_Request] = deque()
        self._wake: asyncio.Event | None = None
        self._idle: asyncio.Queue | None = None
        self._batcher: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()
        self._closing = False
        self._started = False
        # Statistics.
        self._latencies: list[float] = []
        self._batch_sizes: list[int] = []
        self._requests = 0
        self._responded = 0
        self._duplicates = 0
        self._retries = 0
        self._expired = 0
        self._first_submit: float | None = None
        self._last_response: float | None = None

    # -- lifecycle --------------------------------------------------------
    async def start(self) -> "Server":
        """Start the batcher; requests can be submitted afterwards."""
        if self._started:
            raise SimulationError("server already started")
        self._started = True
        self._closing = False
        self._wake = asyncio.Event()
        self._idle = asyncio.Queue()
        for backend in self._backends:
            self._idle.put_nowait(backend)
        self._batcher = asyncio.create_task(self._run_batches())
        return self

    async def close(self) -> None:
        """Drain the queue, wait for in-flight batches, stop the batcher.

        Every request submitted before ``close`` still gets its
        response — draining flushes partial batches rather than
        dropping them. With ``close_backends`` the drained pool's
        backends are closed too (their own ``close`` is idempotent, so
        a caller that also closes them directly loses nothing).

        The shutdown sequence is exception-safe: even if the batcher
        task (or an in-flight batch await) raises, any request still
        queued is failed with a structured error instead of hanging its
        awaiter forever, and ``close_backends`` still releases the
        backends — a crashed batcher must not leak worker pools.
        """
        if not self._started:
            return
        self._closing = True
        self._wake.set()
        try:
            try:
                await self._batcher
            finally:
                if self._inflight:
                    await asyncio.gather(
                        *tuple(self._inflight), return_exceptions=True
                    )
                self._fail_pending()
        finally:
            self._started = False
            if self.close_backends:
                for backend in self._backends:
                    closer = getattr(backend, "close", None)
                    if closer is not None:
                        closer()

    def _fail_pending(self) -> None:
        """Fail every still-queued request with a structured error.

        On a clean close the batcher drains the queue first, so this is
        a no-op; it only bites when the batcher died early — the
        requests it stranded must reject loudly, not await forever.
        """
        while self._queue:
            request = self._queue.popleft()
            if not request.future.done():
                request.future.set_exception(
                    SimulationError(
                        "server closed before the request was dispatched"
                    )
                )

    async def __aenter__(self) -> "Server":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- the request surface ----------------------------------------------
    async def submit(self, image):
        """Enqueue one image; awaits and returns its network output.

        Submissions coalesce: whatever is queued when a backend becomes
        available executes as one fleet pass (up to ``max_batch``).

        With ``request_timeout_s`` set, a response that misses the
        deadline raises :class:`~repro.common.errors.SimulationError`
        naming the deadline; the request counts as ``expired`` and its
        (cancelled) future can never surface as a duplicate.
        """
        if not self._started or self._closing:
            raise SimulationError("server is not accepting requests")
        now = time.perf_counter()
        if self._first_submit is None:
            self._first_submit = now
        self._requests += 1
        future = asyncio.get_running_loop().create_future()
        self._queue.append(_Request(image, future, now))
        self._wake.set()
        if self.request_timeout_s is None:
            return await future
        try:
            return await asyncio.wait_for(future, self.request_timeout_s)
        except (TimeoutError, asyncio.TimeoutError):
            self._expired += 1
            raise SimulationError(
                f"request missed its {self.request_timeout_s:g}s deadline "
                f"(queued or executing too long)"
            ) from None

    # -- batching ---------------------------------------------------------
    async def _run_batches(self) -> None:
        while True:
            batch = await self._collect()
            if batch is None:
                return
            backend = await self._idle.get()
            task = asyncio.create_task(self._execute(backend, batch))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _collect(self) -> list[_Request] | None:
        """Wait for requests; return up to ``max_batch`` of them.

        Returns ``None`` when the server is closing and the queue is
        drained — the batcher's exit signal.
        """
        while not self._queue:
            if self._closing:
                return None
            self._wake.clear()
            await self._wake.wait()
        deadline = self._queue[0].submitted_at + self.max_wait_ms / 1e3
        while len(self._queue) < self.max_batch and not self._closing:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), remaining)
            except (TimeoutError, asyncio.TimeoutError):
                break
        batch = []
        while self._queue and len(batch) < self.max_batch:
            batch.append(self._queue.popleft())
        return batch

    async def _execute(self, backend: ServingBackend, batch) -> None:
        """Run one batch on a worker thread; resolve its futures.

        A backend exception is retried up to ``max_retries`` times with
        exponential backoff, each attempt on the next idle backend —
        the failed one returns to the back of the rotation first, so a
        multi-backend pool routes the retry around it. Re-running a
        batch is safe: every backend is bit-exact on the same images,
        and a request resolves its future exactly once.
        """
        images = [request.image for request in batch]
        loop = asyncio.get_running_loop()
        attempt = 0
        while True:
            try:
                outcome = await loop.run_in_executor(
                    None, backend.run_requests, self.network, images
                )
                break
            except Exception as exc:
                self._idle.put_nowait(backend)
                attempt += 1
                if attempt > self.max_retries:
                    for request in batch:
                        if not request.future.done():
                            request.future.set_exception(exc)
                    return
                self._retries += 1
                await asyncio.sleep(self.retry_backoff_s * 2 ** (attempt - 1))
                backend = await self._idle.get()
        self._idle.put_nowait(backend)
        now = time.perf_counter()
        self._batch_sizes.append(len(batch))
        self._last_response = now
        for request, response in zip(batch, outcome.responses):
            if request.future.cancelled():
                # The requester's deadline expired while we computed;
                # already counted there, and not a duplicate.
                continue
            if request.future.done():
                # A future resolved twice would be a duplicated
                # response; count it so the smoke gate can fail.
                self._duplicates += 1
                continue
            request.future.set_result(response)
            self._responded += 1
            self._latencies.append(now - request.submitted_at)

    # -- statistics -------------------------------------------------------
    def report(self) -> ServingReport:
        """Reduce the recorded run to tail latency and throughput."""
        latencies_ms = np.asarray(self._latencies) * 1e3
        if latencies_ms.size:
            p50, p95, p99 = np.percentile(latencies_ms, (50, 95, 99))
        else:
            p50 = p95 = p99 = 0.0
        wall = 0.0
        if self._first_submit is not None and self._last_response is not None:
            wall = self._last_response - self._first_submit
        return ServingReport(
            requests=self._requests,
            responded=self._responded,
            duplicates=self._duplicates,
            batches=len(self._batch_sizes),
            mean_batch=(
                float(np.mean(self._batch_sizes)) if self._batch_sizes else 0.0
            ),
            p50_ms=float(p50),
            p95_ms=float(p95),
            p99_ms=float(p99),
            throughput_rps=self._responded / wall if wall > 0 else 0.0,
            wall_s=wall,
            retries=self._retries,
            expired=self._expired,
        )
