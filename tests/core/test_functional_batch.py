"""Batch-in-fleet execution: a batched pass must be indistinguishable
from the per-image loop.

The batch dimension folds into the fleet's array axis
(``batch * arrays_per_image`` arrays, arrays aligned to image
boundaries), so for every layer type, every batch size and both plane
stores, ``run_batch`` must produce bit-exact outputs AND an identical
cycle report to looping ``run`` — batching changes wall-clock, not
modeled cycles. Chunked cases (the batched fleet exceeding
``max_fleet_arrays``) are covered explicitly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.core.functional import (
    CycleReport,
    FunctionalAdd,
    FunctionalAvgPool,
    FunctionalBatchNorm,
    FunctionalConv,
    FunctionalExecutor,
    FunctionalMaxPool,
)
from repro.nn import (
    AvgPool,
    Conv2D,
    MaxPool,
    Network,
    QuantizedTensor,
    initialise_weights,
)
from repro.nn.tensor import QuantParams

RNG = np.random.default_rng(77)

BATCH_SIZES = [1, 3, 8]
#: A config whose fleets chunk after 2 arrays: any batch > 1 straddles
#: chunk boundaries, so ragged chunking is exercised on every stage.
TINY_CHUNKS = NeuralCacheConfig(max_fleet_arrays=2)


def conv_case(conv, shape, seed=0, config=None):
    net = Network(name="batch-case")
    x = net.add_input("in", shape)
    net.add("c", conv, x)
    weights = initialise_weights(net, seed=seed)
    return (lambda packed: FunctionalConv(
                conv, shape, weights.for_node("c"), config=config,
                output_params=weights.activation_params, packed=packed),
            weights.input_params)


def images_for(shape, params, batch, seed=1):
    rng = np.random.default_rng(seed)
    return [QuantizedTensor.from_real(rng.uniform(0, 6, shape), params)
            for _ in range(batch)]


def assert_batched_matches_loop(make_engine, images, run_batch, run_one):
    """Core property: fresh-engine batched pass == fresh-engine loop."""
    batched_engine = make_engine()
    batched_out = run_batch(batched_engine, images)
    loop_engine = make_engine()
    loop_out = [run_one(loop_engine, image) for image in images]
    for got, want in zip(batched_out, loop_out):
        assert np.array_equal(got.data, want.data)
        assert got.params == want.params
    assert batched_engine.report == loop_engine.report
    return batched_engine.report


CONV_VARIANTS = [
    (Conv2D(8, (3, 3), padding="same"), (8, 8, 8)),       # plain + ReLU
    (Conv2D(6, (1, 1)), (5, 5, 24)),                      # packed 1x1
    (Conv2D(2, (5, 5), padding="valid"), (8, 8, 4)),      # split filters
    (Conv2D(4, (3, 3), stride=2, padding="valid"), (7, 7, 5)),
    (Conv2D(4, (3, 3), relu=False), (6, 6, 4)),           # host requant
]


class TestConvBatched:
    @pytest.mark.parametrize("packed", [False, True])
    @pytest.mark.parametrize("conv,shape", CONV_VARIANTS)
    def test_every_variant_matches_loop(self, conv, shape, packed):
        make, params = conv_case(conv, shape)
        images = images_for(shape, params, batch=3)
        assert_batched_matches_loop(
            lambda: make(packed), images,
            lambda e, xs: e.run_batch(xs), lambda e, x: e.run(x))

    @pytest.mark.parametrize("packed", [False, True])
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_batch_sizes(self, batch, packed):
        conv, shape = CONV_VARIANTS[0]
        make, params = conv_case(conv, shape)
        images = images_for(shape, params, batch=batch)
        report = assert_batched_matches_loop(
            lambda: make(packed), images,
            lambda e, xs: e.run_batch(xs), lambda e, x: e.run(x))
        # Data-independent sequences: the batch total is exactly the
        # per-image report scaled by the batch.
        single = make(packed)
        single.run(images[0])
        assert single.report.scaled(batch) == report

    @pytest.mark.parametrize("packed", [False, True])
    def test_chunked_batch_matches_unchunked(self, packed):
        """batch * arrays_per_image > max_fleet_arrays: the batched fleet
        splits into many ragged chunks, observably changing nothing."""
        conv, shape = CONV_VARIANTS[0]
        make_full, params = conv_case(conv, shape)
        make_tiny, _ = conv_case(conv, shape, config=TINY_CHUNKS)
        images = images_for(shape, params, batch=3)
        full = make_full(packed)
        full_out = full.run_batch(images)
        tiny = make_tiny(packed)
        tiny_out = tiny.run_batch(images)
        for got, want in zip(tiny_out, full_out):
            assert np.array_equal(got.data, want.data)
        assert tiny.report == full.report

    def test_empty_batch_rejected(self):
        make, _ = conv_case(*CONV_VARIANTS[0])
        with pytest.raises(SimulationError, match="at least one image"):
            make(False).run_batch([])

    def test_mixed_params_rejected(self):
        conv, shape = CONV_VARIANTS[0]
        make, params = conv_case(conv, shape)
        images = images_for(shape, params, batch=2)
        other = QuantizedTensor(images[1].data,
                                QuantParams(params.scale * 2,
                                            params.zero_point))
        with pytest.raises(SimulationError, match="share quantization"):
            make(False).run_batch([images[0], other])

    def test_legacy_path_loops_per_image(self):
        """vectorized=False run_batch falls back to the per-image loop
        with the same outputs and report as the fleet path."""
        conv, shape = CONV_VARIANTS[0]
        net = Network(name="legacy")
        x = net.add_input("in", shape)
        net.add("c", conv, x)
        weights = initialise_weights(net, seed=0)
        images = images_for(shape, weights.input_params, batch=2)
        legacy = FunctionalConv(conv, shape, weights.for_node("c"),
                                output_params=weights.activation_params,
                                vectorized=False)
        fleet = FunctionalConv(conv, shape, weights.for_node("c"),
                               output_params=weights.activation_params)
        legacy_out = legacy.run_batch(images)
        fleet_out = fleet.run_batch(images)
        for got, want in zip(legacy_out, fleet_out):
            assert np.array_equal(got.data, want.data)
        assert legacy.report == fleet.report


class TestPoolBatched:
    @pytest.mark.parametrize("packed", [False, True])
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_maxpool(self, batch, packed):
        shape = (7, 7, 3)
        pool = MaxPool(kernel=(3, 3), stride=1, padding="same")
        params = QuantParams(scale=0.05, zero_point=9)
        images = [QuantizedTensor(
                      RNG.integers(0, 256, shape).astype(np.uint8), params)
                  for _ in range(batch)]
        assert_batched_matches_loop(
            lambda: FunctionalMaxPool(pool, shape, packed=packed), images,
            lambda e, xs: e.run_batch(xs), lambda e, x: e.run(x))

    @pytest.mark.parametrize("packed", [False, True])
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_avgpool(self, batch, packed):
        shape = (8, 8, 2)
        pool = AvgPool(kernel=(3, 3), stride=2, padding="same")
        params = QuantParams(scale=0.05, zero_point=9)
        images = [QuantizedTensor(
                      RNG.integers(0, 256, shape).astype(np.uint8), params)
                  for _ in range(batch)]
        assert_batched_matches_loop(
            lambda: FunctionalAvgPool(pool, shape, packed=packed), images,
            lambda e, xs: e.run_batch(xs), lambda e, x: e.run(x))

    @pytest.mark.parametrize("packed", [False, True])
    def test_maxpool_chunked(self, packed):
        shape = (7, 7, 3)
        pool = MaxPool(kernel=(2, 2), stride=2, padding="valid")
        params = QuantParams(scale=0.05, zero_point=9)
        images = [QuantizedTensor(
                      RNG.integers(0, 256, shape).astype(np.uint8), params)
                  for _ in range(4)]
        full = FunctionalMaxPool(pool, shape, packed=packed)
        tiny = FunctionalMaxPool(pool, shape, config=TINY_CHUNKS,
                                 packed=packed)
        full_out = full.run_batch(images)
        tiny_out = tiny.run_batch(images)
        for got, want in zip(tiny_out, full_out):
            assert np.array_equal(got.data, want.data)
        assert tiny.report == full.report


class TestAddAndBnBatched:
    @pytest.mark.parametrize("packed", [False, True])
    @pytest.mark.parametrize("relu", [False, True])
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_add(self, batch, relu, packed):
        shape = (5, 5, 4)
        params = QuantParams(scale=0.05, zero_point=12)
        a_list = [QuantizedTensor(
                      RNG.integers(0, 256, shape).astype(np.uint8), params)
                  for _ in range(batch)]
        b_list = [QuantizedTensor(
                      RNG.integers(0, 256, shape).astype(np.uint8), params)
                  for _ in range(batch)]
        batched = FunctionalAdd(shape, relu=relu, packed=packed)
        batched_out = batched.run_batch(a_list, b_list)
        loop = FunctionalAdd(shape, relu=relu, packed=packed)
        loop_out = [loop.run(a, b) for a, b in zip(a_list, b_list)]
        for got, want in zip(batched_out, loop_out):
            assert np.array_equal(got.data, want.data)
        assert batched.report == loop.report

    def test_add_batch_length_mismatch_rejected(self):
        shape = (3, 3, 2)
        params = QuantParams(scale=0.05, zero_point=12)
        ts = [QuantizedTensor(
                  RNG.integers(0, 256, shape).astype(np.uint8), params)
              for _ in range(3)]
        with pytest.raises(SimulationError, match="operand batches"):
            FunctionalAdd(shape).run_batch(ts[:2], ts)

    @pytest.mark.parametrize("packed", [False, True])
    @pytest.mark.parametrize("relu", [False, True])
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_batchnorm(self, batch, relu, packed):
        from repro.nn.reference import BnWeights

        shape = (5, 5, 6)
        rng = np.random.default_rng(3)
        bn = BnWeights(
            multiplier=rng.integers(1 << 10, 1 << 14, 6, dtype=np.int64),
            bias=rng.integers(-(1 << 20), 1 << 20, 6, dtype=np.int64),
            shift=12)
        params = QuantParams(scale=0.02, zero_point=10)
        images = [QuantizedTensor(
                      RNG.integers(0, 256, shape).astype(np.uint8), params)
                  for _ in range(batch)]
        batched = FunctionalBatchNorm(shape, bn, relu=relu, zp_out=30,
                                      packed=packed)
        batched_out = batched.run_batch(images)
        loop = FunctionalBatchNorm(shape, bn, relu=relu, zp_out=30,
                                   packed=packed)
        loop_out = [loop.run(x) for x in images]
        for got, want in zip(batched_out, loop_out):
            assert np.array_equal(got.data, want.data)
        assert batched.report == loop.report


class TestExecutorBatched:
    def _mini_net(self):
        """Conv, branch, avg/max pooling, concat and an FC head."""
        from repro.nn import Concat, FullyConnected

        net = Network(name="mini-batch")
        x = net.add_input("in", (8, 8, 4))
        x = net.add("stem", Conv2D(8, (3, 3), padding="same"), x)
        b0 = net.add("b0", Conv2D(4, (1, 1)), x)
        b1 = net.add("pool", AvgPool((3, 3), stride=1, padding="same"), x)
        b1 = net.add("b1", Conv2D(4, (1, 1)), b1)
        x = net.add("cat", Concat(), (b0, b1))
        x = net.add("mp", MaxPool((2, 2), stride=2, padding="valid"), x)
        x = net.add("gap", AvgPool((4, 4), stride=1, padding="valid"), x)
        net.add("fc", FullyConnected(5), x)
        return net

    @pytest.mark.parametrize("packed", [False, True])
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_run_batch_matches_run_loop(self, batch, packed):
        net = self._mini_net()
        weights = initialise_weights(net, seed=11)
        images = images_for((8, 8, 4), weights.input_params, batch, seed=5)
        batched = FunctionalExecutor(net, weights, packed=packed)
        results = batched.run_batch(images)
        batched_total = batched.total_report()
        loop = FunctionalExecutor(net, weights, packed=packed)
        total = CycleReport()
        for i, image in enumerate(images):
            outs = loop.run(image)
            total = total.merged(loop.total_report())
            for name, tensor in outs.items():
                assert np.array_equal(results[name][i].data, tensor.data), \
                    name
        assert batched_total == total

    def test_chunked_executor_matches(self):
        net = self._mini_net()
        weights = initialise_weights(net, seed=11)
        images = images_for((8, 8, 4), weights.input_params, 3, seed=5)
        full = FunctionalExecutor(net, weights)
        tiny = FunctionalExecutor(net, weights, TINY_CHUNKS)
        out = net.output_name
        full_out = full.run_batch(images)[out]
        tiny_out = tiny.run_batch(images)[out]
        for got, want in zip(tiny_out, full_out):
            assert np.array_equal(got.data, want.data)
        assert full.total_report() == tiny.total_report()

    def test_empty_batch_rejected(self):
        net = self._mini_net()
        weights = initialise_weights(net)
        with pytest.raises(SimulationError, match="at least one image"):
            FunctionalExecutor(net, weights).run_batch([])


class TestCycleReportScaled:
    def test_scaled_is_the_batch_total(self):
        report = CycleReport(mac=5, reduction=4, quantization=3, pooling=2,
                             passes=1)
        assert report.scaled(3) == CycleReport(mac=15, reduction=12,
                                               quantization=9, pooling=6,
                                               passes=3)

    def test_scaled_zero_and_identity(self):
        report = CycleReport(mac=5, passes=2)
        assert report.scaled(0) == CycleReport()
        assert report.scaled(1) == report

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            CycleReport(mac=1).scaled(-1)

    def test_batched_pass_never_double_counts(self):
        """Regression: a batched pass reports exactly the per-image
        report scaled by the batch — merging per-image totals again
        would double-count."""
        conv, shape = CONV_VARIANTS[0]
        make, params = conv_case(conv, shape)
        images = images_for(shape, params, batch=4)
        batched = make(False)
        batched.run_batch(images)
        single = make(False)
        single.run(images[0])
        assert batched.report == single.report.scaled(4)
        assert batched.report != single.report.scaled(8)


@given(st.integers(min_value=0, max_value=2**31),
       st.integers(min_value=1, max_value=5),
       st.booleans())
@settings(max_examples=10, deadline=None)
def test_batched_conv_property(seed, batch, packed):
    """Random weights/images, any batch, either store: the batched pass
    is indistinguishable from the per-image loop."""
    conv = Conv2D(4, (3, 3), padding="same")
    shape = (6, 6, 3)
    net = Network(name="prop-batch")
    x = net.add_input("in", shape)
    net.add("c", conv, x)
    weights = initialise_weights(net, seed=seed % (2**32))
    rng = np.random.default_rng(seed)
    images = [QuantizedTensor.from_real(rng.uniform(0, 6, shape),
                                        weights.input_params)
              for _ in range(batch)]

    def make():
        return FunctionalConv(conv, shape, weights.for_node("c"),
                              output_params=weights.activation_params,
                              packed=packed)

    batched = make()
    batched_out = batched.run_batch(images)
    loop = make()
    loop_out = [loop.run(image) for image in images]
    for got, want in zip(batched_out, loop_out):
        assert np.array_equal(got.data, want.data)
    assert batched.report == loop.report
