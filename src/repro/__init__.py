"""Neural Cache (ISCA 2018) reproduction.

A bit-serial in-cache DNN accelerator, reproduced end to end:

* :mod:`repro.sram` — compute-capable SRAM arrays, bit-serial arithmetic,
  transpose units, cycle/energy/area models;
* :mod:`repro.cache` — the Xeon-class LLC geometry, interconnect and DRAM;
* :mod:`repro.nn` — a quantized DNN substrate with a faithful Inception v3;
* :mod:`repro.core` — the Neural Cache mapping/scheduling/execution model,
  both analytic (paper-scale) and functional (bit-exact);
* :mod:`repro.engine` — the vectorized array-fleet engine (all SRAM arrays
  execute each bit-serial cycle at once) and the unified Backend API;
* :mod:`repro.baselines` — calibrated Xeon E5 / Titan Xp roofline models;
* :mod:`repro.analysis` — regenerates every table and figure of the paper.

Quickstart::

    from repro import NeuralCacheSimulator, build_inception_v3
    result = NeuralCacheSimulator(build_inception_v3()).run()
    print(result.total_time)          # ~4 ms, the paper's Fig. 15
    print(result.breakdown().fractions())   # Fig. 14
"""

from repro.baselines import CpuBaseline, GpuBaseline
from repro.cache import (
    CacheGeometry,
    DramModel,
    InterconnectModel,
    LastLevelCache,
    xeon_e5_2697_v3,
)
from repro.config import NeuralCacheConfig
from repro.core import (
    ControlFSM,
    FunctionalConv,
    FunctionalExecutor,
    Instruction,
    NeuralCacheSimulator,
    Opcode,
    map_network,
    simulate_inference,
)
from repro.engine import (
    ArrayFleet,
    FleetBitSerialUnit,
    PackedArrayFleet,
    make_fleet,
)
from repro.core.precision import LayerPrecision
from repro.engine.backend import (
    AnalyticBackend,
    Backend,
    BackendOptions,
    BackendResult,
    BatchOutcome,
    FleetExecutor,
    get_backend,
)
from repro.engine.sharding import ShardedBackend
from repro.faults import (
    FaultPlan,
    HardwareFaultModel,
    PoolFault,
    hardware_faults,
)
from repro.serving import Server, ServingReport
from repro.nn import (
    Conv2D,
    Network,
    QuantizedTensor,
    ReferenceExecutor,
    build_inception_v3,
    initialise_weights,
)
from repro.sram import BitSerialUnit, CycleCosts, Operand, SRAMArray

__version__ = "1.0.0"

__all__ = [
    "AnalyticBackend",
    "ArrayFleet",
    "Backend",
    "BackendOptions",
    "BackendResult",
    "BatchOutcome",
    "BitSerialUnit",
    "FleetBitSerialUnit",
    "FleetExecutor",
    "CacheGeometry",
    "ControlFSM",
    "Conv2D",
    "CpuBaseline",
    "CycleCosts",
    "DramModel",
    "FaultPlan",
    "FunctionalConv",
    "FunctionalExecutor",
    "GpuBaseline",
    "HardwareFaultModel",
    "Instruction",
    "LayerPrecision",
    "PoolFault",
    "hardware_faults",
    "PackedArrayFleet",
    "make_fleet",
    "InterconnectModel",
    "LastLevelCache",
    "Network",
    "NeuralCacheConfig",
    "NeuralCacheSimulator",
    "Opcode",
    "Operand",
    "QuantizedTensor",
    "ReferenceExecutor",
    "Server",
    "ServingReport",
    "SRAMArray",
    "ShardedBackend",
    "build_inception_v3",
    "get_backend",
    "initialise_weights",
    "map_network",
    "simulate_inference",
    "xeon_e5_2697_v3",
]
