"""Cache substrate: geometry, interconnect, DRAM and the LLC facade."""

from repro.cache.dram import DramModel
from repro.cache.geometry import (
    CacheGeometry,
    capacity_sweep,
    xeon_45mb,
    xeon_60mb,
    xeon_e5_2697_v3,
)
from repro.cache.interconnect import InterconnectModel
from repro.cache.llc import ArrayCoordinate, LastLevelCache, SetLocation

__all__ = [
    "ArrayCoordinate",
    "CacheGeometry",
    "DramModel",
    "InterconnectModel",
    "LastLevelCache",
    "SetLocation",
    "capacity_sweep",
    "xeon_45mb",
    "xeon_60mb",
    "xeon_e5_2697_v3",
]
