"""Tests for quantization parameters, tensors and requantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import QuantizationError
from repro.nn import QuantParams, QuantizedTensor, RequantParams, round_shift


class TestQuantParams:
    def test_from_range_includes_zero(self):
        params = QuantParams.from_range(1.0, 5.0)
        # Range widened to [0, 5] so zero is representable.
        assert params.zero_point == 0
        assert params.scale == pytest.approx(5.0 / 255)

    def test_symmetric_range(self):
        params = QuantParams.from_range(-1.0, 1.0)
        assert 126 <= params.zero_point <= 129

    def test_degenerate_range(self):
        params = QuantParams.from_range(0.0, 0.0)
        assert params.scale == 1.0
        assert params.zero_point == 0

    def test_zero_quantizes_to_zero_point(self):
        params = QuantParams.from_range(-3.0, 3.0)
        assert params.quantize(np.array([0.0]))[0] == params.zero_point

    def test_quantize_saturates(self):
        params = QuantParams.from_range(0.0, 1.0)
        q = params.quantize(np.array([-10.0, 10.0]))
        assert list(q) == [0, 255]

    def test_round_trip_error_bounded_by_scale(self):
        params = QuantParams.from_range(-2.0, 2.0)
        real = np.linspace(-2, 2, 101)
        err = np.abs(params.dequantize(params.quantize(real)) - real)
        assert err.max() <= params.scale / 2 + 1e-12

    def test_validation(self):
        with pytest.raises(QuantizationError):
            QuantParams(scale=0.0, zero_point=0)
        with pytest.raises(QuantizationError):
            QuantParams(scale=1.0, zero_point=256)
        with pytest.raises(QuantizationError):
            QuantParams.from_range(2.0, 1.0)
        with pytest.raises(QuantizationError):
            QuantParams.from_range(float("nan"), 1.0)


class TestQuantizedTensor:
    def test_from_real_auto_range(self):
        real = np.array([[0.0, 1.0], [2.0, 4.0]])
        tensor = QuantizedTensor.from_real(real)
        assert tensor.shape == (2, 2)
        assert tensor.data.dtype == np.uint8
        assert np.allclose(tensor.dequantize(), real, atol=tensor.params.scale)

    def test_nbytes_one_per_element(self):
        tensor = QuantizedTensor.from_real(np.zeros((3, 4, 5)))
        assert tensor.nbytes == 60

    def test_dtype_enforced(self):
        with pytest.raises(QuantizationError):
            QuantizedTensor(np.zeros((2, 2), dtype=np.int32),
                            QuantParams(1.0, 0))


class TestRoundShift:
    def test_basic(self):
        assert round_shift(np.array([10]), 2)[0] == 3   # 10/4 = 2.5 -> 3
        assert round_shift(np.array([9]), 2)[0] == 2    # 9/4 = 2.25 -> 2

    def test_zero_shift_identity(self):
        assert round_shift(np.array([7]), 0)[0] == 7

    def test_negative_shift_rejected(self):
        with pytest.raises(QuantizationError):
            round_shift(np.array([1]), -1)


class TestRequantParams:
    def test_from_scales_accuracy(self):
        out = QuantParams(scale=0.05, zero_point=10)
        requant = RequantParams.from_scales(acc_scale=0.001, out=out)
        ratio = requant.multiplier / (1 << requant.shift)
        assert ratio == pytest.approx(0.001 / 0.05, rel=1e-4)
        assert requant.zero_point == 10

    def test_multiplier_uses_full_precision(self):
        out = QuantParams(scale=1.0, zero_point=0)
        requant = RequantParams.from_scales(acc_scale=0.5, out=out)
        assert requant.multiplier >= 1 << 14  # close to the 16-bit ceiling

    def test_apply_matches_float_scaling(self):
        out = QuantParams(scale=0.1, zero_point=5)
        requant = RequantParams.from_scales(acc_scale=0.01, out=out)
        acc = np.arange(0, 1000, 37, dtype=np.int64)
        got = requant.apply(acc)
        expected = np.clip(np.round(acc * 0.1) + 5, 0, 255)
        assert np.abs(got.astype(int) - expected).max() <= 1

    def test_apply_clamps(self):
        requant = RequantParams(multiplier=1 << 10, shift=10, zero_point=250)
        assert requant.apply(np.array([1_000_000]))[0] == 255
        assert requant.apply(np.array([-1_000_000]))[0] == 0

    def test_validation(self):
        with pytest.raises(QuantizationError):
            RequantParams(multiplier=0, shift=0, zero_point=0)
        with pytest.raises(QuantizationError):
            RequantParams(multiplier=1 << 16, shift=0, zero_point=0)
        with pytest.raises(QuantizationError):
            RequantParams(multiplier=1, shift=-1, zero_point=0)
        with pytest.raises(QuantizationError):
            RequantParams.from_scales(acc_scale=0.0,
                                      out=QuantParams(1.0, 0))


@given(st.floats(min_value=1e-4, max_value=1e2),
       st.floats(min_value=1e-3, max_value=10.0))
@settings(max_examples=60, deadline=None)
def test_requant_ratio_property(acc_scale, out_scale):
    out = QuantParams(scale=out_scale, zero_point=0)
    requant = RequantParams.from_scales(acc_scale=acc_scale, out=out)
    ratio = requant.multiplier / (1 << requant.shift)
    true_ratio = acc_scale / out_scale
    # 16-bit fixed point keeps relative error tiny unless the ratio itself
    # saturates the encoding.
    if 2**-40 < true_ratio < 2**15:
        assert ratio == pytest.approx(true_ratio, rel=2e-4)


@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                max_size=50))
@settings(max_examples=60, deadline=None)
def test_quantize_round_trip_property(values):
    real = np.array(values)
    params = QuantParams.from_range(float(real.min()), float(real.max()))
    err = np.abs(params.dequantize(params.quantize(real)) - real)
    assert err.max() <= params.scale / 2 + 1e-9
