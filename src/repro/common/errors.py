"""Exception hierarchy for the Neural Cache reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GeometryError(ReproError):
    """A cache-geometry constraint was violated (e.g. non-divisible sizes)."""


class LayoutError(ReproError):
    """A transposed data-layout request does not fit in the SRAM array."""


class ArrayStateError(ReproError):
    """An SRAM array operation was issued against invalid rows or state."""


class MappingError(ReproError):
    """A DNN layer cannot be mapped onto the cache with the given config."""


class ShapeError(ReproError):
    """Tensor/layer shapes are inconsistent."""


class QuantizationError(ReproError):
    """Invalid quantization parameters (scale <= 0, bad zero point, ...)."""


class SimulationError(ReproError):
    """The analytic or functional simulator reached an inconsistent state."""


class IsaError(ReproError):
    """An in-cache instruction is malformed or cannot be decoded."""


class VerifyError(ReproError):
    """A program failed static dataflow verification or the shadow-state
    sanitizer caught an illegal access at runtime.

    Structured so tools can act on the failure, not just print it:
    ``check`` names the verification pass or sanitizer rule that fired
    (e.g. ``"uninit-read"``), ``op`` names the offending operation when
    known (instruction text or recorded call), and ``row`` pinpoints the
    wordline involved, if any.
    """

    def __init__(self, message: str, *, check: str = "verify",
                 op: str | None = None, row: int | None = None):
        super().__init__(message)
        self.check = check
        self.op = op
        self.row = row
