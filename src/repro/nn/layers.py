"""DNN layer definitions with shape inference (Sec. II-A nomenclature).

Dimensions follow the paper: inputs are ``H x W x C`` (height, width,
channels); conv filters are ``R x S x C x M`` (height, width, channels,
output batches); outputs are ``E x F x M``; the stride is ``U``.

Layers are immutable descriptions — execution lives in
:mod:`repro.nn.reference` (golden NumPy) and :mod:`repro.core.functional`
(bit-serial in-cache).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ShapeError

Shape = tuple[int, int, int]  # (H, W, C)


def conv_output_size(size: int, kernel: int, stride: int, padding: str) -> int:
    """Spatial output size of a conv/pool window sweep."""
    if size <= 0 or kernel <= 0 or stride <= 0:
        raise ShapeError(
            f"sizes must be positive: size={size}, kernel={kernel}, "
            f"stride={stride}")
    if padding == "valid":
        if kernel > size:
            raise ShapeError(f"kernel {kernel} larger than input {size}")
        return (size - kernel) // stride + 1
    if padding == "same":
        return -(-size // stride)
    raise ShapeError(f"padding must be 'same' or 'valid', got {padding!r}")


def same_padding_offsets(size: int, kernel: int, stride: int) -> tuple[int, int]:
    """(pad_before, pad_after) for TF 'same' padding along one axis."""
    out = -(-size // stride)
    total = max((out - 1) * stride + kernel - size, 0)
    before = total // 2
    return before, total - before


def _check_shape(shape: Shape) -> None:
    if len(shape) != 3 or any(d <= 0 for d in shape):
        raise ShapeError(f"expected a positive (H, W, C) shape, got {shape}")


@dataclass(frozen=True)
class Conv2D:
    """Convolution layer; ReLU is folded in (as in quantized Inception v3)."""

    out_channels: int
    kernel: tuple[int, int]
    stride: int = 1
    padding: str = "same"
    relu: bool = True

    def __post_init__(self) -> None:
        if self.out_channels <= 0:
            raise ShapeError(f"out_channels must be positive, got "
                             f"{self.out_channels}")
        if len(self.kernel) != 2 or any(k <= 0 for k in self.kernel):
            raise ShapeError(f"kernel must be positive (R, S), got "
                             f"{self.kernel}")
        if self.stride <= 0:
            raise ShapeError(f"stride must be positive, got {self.stride}")
        if self.padding not in ("same", "valid"):
            raise ShapeError(f"bad padding {self.padding!r}")

    def output_shape(self, input_shape: Shape) -> Shape:
        _check_shape(input_shape)
        h, w, _ = input_shape
        r, s = self.kernel
        return (conv_output_size(h, r, self.stride, self.padding),
                conv_output_size(w, s, self.stride, self.padding),
                self.out_channels)

    def filter_shape(self, input_shape: Shape) -> tuple[int, int, int, int]:
        """(R, S, C, M) of the weight tensor."""
        _check_shape(input_shape)
        r, s = self.kernel
        return (r, s, input_shape[2], self.out_channels)

    def weight_bytes(self, input_shape: Shape) -> int:
        """Filter footprint at one byte per weight (8-bit quantized)."""
        r, s, c, m = self.filter_shape(input_shape)
        return r * s * c * m

    def convolutions(self, input_shape: Shape) -> int:
        """Output elements = single convolutions (Table I 'Conv' column)."""
        e, f, m = self.output_shape(input_shape)
        return e * f * m

    def macs(self, input_shape: Shape) -> int:
        """8-bit multiply-accumulates for the whole layer."""
        r, s, c, _ = self.filter_shape(input_shape)
        return self.convolutions(input_shape) * r * s * c


@dataclass(frozen=True)
class Pool2D:
    """Shared shape logic for max/average pooling."""

    kernel: tuple[int, int]
    stride: int = 1
    padding: str = "valid"

    def __post_init__(self) -> None:
        if len(self.kernel) != 2 or any(k <= 0 for k in self.kernel):
            raise ShapeError(f"kernel must be positive (R, S), got "
                             f"{self.kernel}")
        if self.stride <= 0:
            raise ShapeError(f"stride must be positive, got {self.stride}")
        if self.padding not in ("same", "valid"):
            raise ShapeError(f"bad padding {self.padding!r}")

    def output_shape(self, input_shape: Shape) -> Shape:
        _check_shape(input_shape)
        h, w, c = input_shape
        r, s = self.kernel
        return (conv_output_size(h, r, self.stride, self.padding),
                conv_output_size(w, s, self.stride, self.padding),
                c)

    @property
    def window(self) -> int:
        return self.kernel[0] * self.kernel[1]


@dataclass(frozen=True)
class MaxPool(Pool2D):
    """Max pooling (Sec. IV-D: repeated compare + selective copy)."""


@dataclass(frozen=True)
class AvgPool(Pool2D):
    """Average pooling (Sec. IV-D: window sum, then in-cache division)."""


@dataclass(frozen=True)
class FullyConnected:
    """Fully connected layer, executed as a 1x1 convolution (Sec. IV-D)."""

    out_features: int
    relu: bool = False

    def __post_init__(self) -> None:
        if self.out_features <= 0:
            raise ShapeError(f"out_features must be positive, got "
                             f"{self.out_features}")

    def as_conv(self) -> Conv2D:
        """The equivalent convolution (TensorFlow does this conversion)."""
        return Conv2D(out_channels=self.out_features, kernel=(1, 1),
                      stride=1, padding="valid", relu=self.relu)

    def output_shape(self, input_shape: Shape) -> Shape:
        _check_shape(input_shape)
        if input_shape[0] != 1 or input_shape[1] != 1:
            raise ShapeError(
                f"fully connected layers expect 1x1 spatial input, got "
                f"{input_shape}; add pooling first")
        return (1, 1, self.out_features)

    def weight_bytes(self, input_shape: Shape) -> int:
        return input_shape[2] * self.out_features


@dataclass(frozen=True)
class Add:
    """Element-wise addition (residual connections).

    Both inputs must share quantization parameters; the integer form is
    then exact: ``q_out = clamp(q_a + q_b - zero_point)``. In cache this
    is one bit-serial addition plus a zero-point correction and a
    saturating write — the cheapest layer the architecture runs.
    """

    relu: bool = False

    def output_shape(self, *input_shapes: Shape) -> Shape:
        if len(input_shapes) != 2:
            raise ShapeError(
                f"elementwise add takes two inputs, got {len(input_shapes)}")
        for shape in input_shapes:
            _check_shape(shape)
        if input_shapes[0] != input_shapes[1]:
            raise ShapeError(
                f"elementwise add needs matching shapes: "
                f"{input_shapes[0]} vs {input_shapes[1]}")
        return input_shapes[0]


@dataclass(frozen=True)
class Concat:
    """Channel-wise concatenation of the mixed-module branches."""

    def output_shape(self, *input_shapes: Shape) -> Shape:
        if not input_shapes:
            raise ShapeError("concat needs at least one input")
        for shape in input_shapes:
            _check_shape(shape)
        h, w, _ = input_shapes[0]
        for shape in input_shapes[1:]:
            if shape[:2] != (h, w):
                raise ShapeError(
                    f"concat inputs must share spatial dims: "
                    f"{input_shapes[0]} vs {shape}")
        return (h, w, sum(shape[2] for shape in input_shapes))


@dataclass(frozen=True)
class BatchNorm:
    """Folded batch normalisation (a no-op placeholder).

    At inference BN usually folds into the preceding conv's weights,
    which is how the Inception v3 graph is built here. For the paper's
    explicit in-cache BN flow use :class:`QuantizedBatchNorm`.
    """

    def output_shape(self, input_shape: Shape) -> Shape:
        _check_shape(input_shape)
        return input_shape


@dataclass(frozen=True)
class QuantizedBatchNorm:
    """Explicit in-cache batch normalisation (Sec. IV-D).

    The paper's flow: multiply every value by a CPU-provided scalar and
    shift (quantizing to 32-bit), add per-output-channel scalar integers,
    then requantize. The integer semantics both executors share:

        acc   = q * mult[c] + bias[c]          (32-bit)
        acc   = max(acc, 0)                     (when relu)
        q_out = clamp(zp_out + round_shift(acc, shift))

    where ``mult``/``bias``/``shift`` come from
    :class:`repro.nn.reference.BnWeights` (the "scalar integers...
    calculated in the CPU").
    """

    relu: bool = True

    def output_shape(self, input_shape: Shape) -> Shape:
        _check_shape(input_shape)
        return input_shape
