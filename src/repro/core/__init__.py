"""Neural Cache core: mapping, scheduling, analytic and functional
execution, and the in-cache ISA."""

from repro.core.executor import (
    InferenceResult,
    LayerResult,
    NeuralCacheSimulator,
    simulate_inference,
)
from repro.core.functional import (
    CycleReport,
    FunctionalAdd,
    FunctionalAvgPool,
    FunctionalBatchNorm,
    FunctionalConv,
    FunctionalExecutor,
    FunctionalMaxPool,
)
from repro.core.precision import (
    LayerPrecision,
    config_for_precision,
    precision_sweep,
)
from repro.core.isa import ControlFSM, Instruction, Opcode, fsm_total_area_mm2
from repro.core.mapping import (
    LayerMapping,
    map_conv,
    map_network,
    map_node,
    map_pool,
)
from repro.core.schedule import (
    PHASES,
    LayerSchedule,
    PhaseBreakdown,
    schedule_layer,
)

__all__ = [
    "ControlFSM",
    "CycleReport",
    "FunctionalAdd",
    "FunctionalAvgPool",
    "FunctionalBatchNorm",
    "FunctionalConv",
    "FunctionalExecutor",
    "FunctionalMaxPool",
    "InferenceResult",
    "Instruction",
    "LayerMapping",
    "LayerPrecision",
    "LayerResult",
    "LayerSchedule",
    "NeuralCacheSimulator",
    "Opcode",
    "PHASES",
    "PhaseBreakdown",
    "config_for_precision",
    "fsm_total_area_mm2",
    "precision_sweep",
    "map_conv",
    "map_network",
    "map_node",
    "map_pool",
    "schedule_layer",
    "simulate_inference",
]
