"""Tests for the analytic cycle-cost model and its two presets."""

import pytest

from repro.common.errors import SimulationError
from repro.sram import CycleCosts


class TestDerivedPreset:
    def setup_method(self):
        self.costs = CycleCosts.derived()

    def test_mode_label(self):
        assert self.costs.mode == "derived"

    def test_add_is_n_plus_one(self):
        assert self.costs.add(8) == 9
        assert self.costs.add(32) == 33

    def test_copy_is_n(self):
        assert self.costs.copy(8) == 8

    def test_multiply_derived_formula(self):
        # n^2 + 4n - 1
        assert self.costs.multiply(2) == 11
        assert self.costs.multiply(8) == 95

    def test_divide_derived_formula(self):
        # 3n^2 + 8n + 1
        assert self.costs.divide(8) == 3 * 64 + 64 + 1

    def test_sub_needs_complement_copy(self):
        assert self.costs.sub(8) == 17

    def test_sub_into_in_place(self):
        assert self.costs.sub_into(8) == 16
        assert CycleCosts.paper().sub_into(8) == 8

    def test_compute_cache_op_costs(self):
        assert self.costs.logical(8) == 8
        assert self.costs.logical_or(8) == 16
        assert self.costs.equality_compare(8) == 9
        assert self.costs.search(8) == 9

    def test_mac_is_multiply_plus_accumulate(self):
        assert self.costs.mac(8, 24) == self.costs.multiply(8) + 24

    def test_reduction_grows_with_width_per_step(self):
        # 2 elements: one step of move(w) + add(w).
        w = 24
        assert self.costs.reduction(2, w) == w + (w + 1)
        # 4 elements adds a second, wider step.
        assert self.costs.reduction(4, w) == (w + w + 1) + (w + 1 + w + 2)

    def test_max_update_composition(self):
        assert self.costs.max_update(8) == self.costs.sub(8) + 1 + 8
        assert self.costs.min_update(8) == self.costs.max_update(8)

    def test_relu_and_selective_copy(self):
        assert self.costs.relu(8) == 9
        assert self.costs.selective_copy(8) == 9


class TestPaperPreset:
    def setup_method(self):
        self.costs = CycleCosts.paper()

    def test_mode_label(self):
        assert self.costs.mode == "paper"

    def test_published_op_formulas(self):
        # Sec. III: add n+1, multiply n^2+5n-2, divide 1.5n^2+5.5n.
        assert self.costs.add(8) == 9
        assert self.costs.multiply(8) == 102
        assert self.costs.multiply(2) == 12
        assert self.costs.divide(8) == 140
        assert self.costs.divide(4) == 46

    def test_divide_formula_is_always_integral(self):
        for n in range(1, 33):
            value = 1.5 * n * n + 5.5 * n
            assert value == int(value)
            assert self.costs.divide(n) == int(value)

    def test_worked_example_mac_override(self):
        # Sec. VI-A: 236 cycles per 8-bit MAC.
        assert self.costs.mac(8, 24) == 236

    def test_worked_example_reduction_override(self):
        # Sec. VI-A: 660 cycles to reduce 128 channels of 3-byte sums.
        assert self.costs.reduction(128, 24) == 660

    def test_non_overridden_widths_fall_back_to_formulas(self):
        assert self.costs.mac(4, 16) == self.costs.multiply(4) + 16

    def test_paper_sub_assumes_inverted_sensing(self):
        assert self.costs.sub(8) == 9

    def test_moves_cost_two_cycles_per_bit(self):
        assert self.costs.move(10) == 20


class TestValidation:
    @pytest.mark.parametrize("method", ["add", "copy", "sub", "multiply",
                                        "divide", "relu", "const_write",
                                        "add_into", "complement_copy"])
    def test_nonpositive_width_rejected(self, method):
        costs = CycleCosts.derived()
        with pytest.raises(SimulationError):
            getattr(costs, method)(0)

    def test_reduction_requires_power_of_two(self):
        costs = CycleCosts.derived()
        with pytest.raises(SimulationError):
            costs.reduction(3, 8)

    def test_reduction_requires_positive_elements(self):
        costs = CycleCosts.derived()
        with pytest.raises(SimulationError):
            costs.reduction(0, 8)

    def test_reduction_of_one_element_is_free(self):
        assert CycleCosts.derived().reduction(1, 8) == 0


class TestConventions:
    def test_latch_ops(self):
        costs = CycleCosts.derived()
        assert costs.tag_load() == 1
        assert costs.carry_store() == 1

    def test_derived_vs_paper_multiply_gap_is_linear(self):
        """The presets differ by exactly n - 1 cycles on multiplication,
        i.e. a bounded bookkeeping difference, not an algorithmic one."""
        derived, paper = CycleCosts.derived(), CycleCosts.paper()
        for n in range(2, 17):
            assert paper.multiply(n) - derived.multiply(n) == n - 1
