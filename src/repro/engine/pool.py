"""Persistent shard workers: warm executors behind shared-memory arenas.

The ``process`` shard driver pays two costs per batch that have nothing
to do with computing: it re-forks a ``ProcessPoolExecutor`` (pool
spin-up), and it pickles every image slice and the full weight set
through :class:`~repro.engine.sharding.ShardWork` (serialization of the
very bytes the fleets are about to compute on). Both costs sit on the
serving path, where they recur per coalesced batch.

:class:`ShardWorkerPool` removes both. Workers are forked **once per
backend lifetime** and each holds warm program state — the network, the
resolved weights, the golden executor when verification is on, and a
:class:`~repro.engine.backend.FleetExecutor` whose packed uint64 bit
planes live in shared-memory segments
(:class:`~repro.engine.shared.SharedPlaneStore`). Per batch, the parent
writes the image payloads into a shared **input arena**, sends each
worker a :class:`PoolShardWork` that names the arena and the worker's
round-robin lane (``start``/``stride``/``batch`` arithmetic — no index
lists, no arrays), and reads the responses back out of a shared
**output arena**. The only bytes that cross the pipes are the O(1) work
descriptors, the per-shard cycle reports, and (for the one shard that
owns the globally-last image) the small per-node outputs dict.

Arena layout: one fixed-size slot per image, ``16-byte quantization
header + payload`` (`~repro.nn.tensor.QuantParams` as ``scale: f8,
zero: i8``), slots aligned to 16 bytes. Image ``i`` occupies slot ``i``
in both arenas, so shard ``k`` touches exactly the slots
``k, k+shards, ...`` — the same round-robin assignment every other
driver uses, which is what keeps the pool bit-exact and
shard-report-identical to the serial reference.

Supervision (``supervise=True``, the default): every reply wait is
bounded by ``reply_timeout_s`` — there is no unbounded blocking
``recv`` anywhere — and every send health-checks its worker first. A
worker that dies or hangs mid-batch is reaped (terminated, its pipe
closed, its incarnation's plane segments swept) and **respawned**; the
works its death orphaned are re-dispatched, under ``max_retries``
bounded rounds with exponential backoff. If a respawn fails, the pool
**degrades**: the dead slot's lanes route to the surviving workers (a
lane names its slots by ``shard``/``stride`` arithmetic, so any warm
worker can run any lane) until no live worker remains, which — like
exhausting the retry budget — tears the pool down loudly. Recovery is
observable: :meth:`pop_recovery_events` returns the
:class:`RecoveryEvent` log, which the sharded backend republishes on
its ``ShardReport``. Re-execution of an orphaned lane is safe by
construction: a lane writes only its own output slots and every driver
is bit-exact, so a re-run overwrites identical bytes.

With ``supervise=False`` the pool keeps the original fail-fast
contract: a dead *or hung* worker tears the whole pool down
(:class:`~repro.common.errors.SimulationError` naming the shard and its
PID), every segment under the pool's scope is swept, and the pool is
unusable afterwards. A worker-*reported* error is gentler in both
modes: the replies of every other shard in the round are drained first
(keeping the pipes level), the error raises, and the pool keeps
serving.

Chaos hooks: a seeded :class:`~repro.faults.plan.FaultPlan` makes the
workers inject the faults supervision exists to survive — ``kill``
(``os._exit`` mid-batch), ``delay`` (late reply) and ``drop`` (finish
the lane, never reply — indistinguishable from a hang upstream) — on a
deterministic schedule driven by the parent's per-slot send counters.

Lifecycle is explicit and owned by the pool: the parent owns both
arenas (created under the pool's segment scope, grown by powers of two,
unlinked on close); each worker incarnation scopes its plane segments
under the pool's scope too, so after a crash the parent can sweep
everything the dead worker had allocated by prefix
(:func:`~repro.engine.shared.unlink_scope`) without asking it. Normal
shutdown drains the workers (they release their recycled plane segments
themselves) and then sweeps anyway; ``close()`` is idempotent.

Platform: workers are forked (they inherit the program objects and the
arena handles by address), so the pool driver needs the ``fork`` start
method — POSIX only, and unsafe to construct after the owner process
has started threads. Construction raises on platforms without fork and
warns if extra threads are already running.
"""

from __future__ import annotations

import os
import secrets
import threading
import time
import warnings
from dataclasses import dataclass
from multiprocessing import get_context

import numpy as np

from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.engine.backend import BatchOutcome, FleetExecutor
from repro.engine.shared import (
    SharedSegment,
    release_pooled_segments,
    reset_shared_state,
    set_segment_scope,
    unlink_scope,
)
from repro.faults.plan import FaultPlan
from repro.nn.graph import Network
from repro.nn.tensor import QuantParams, QuantizedTensor

__all__ = ["PoolShardWork", "RecoveryEvent", "ShardWorkerPool"]

#: Per-image arena header: the image's quantization parameters. 16 bytes,
#: so slots stay 16-byte aligned without padding games.
_PARAM_DTYPE = np.dtype([("scale", "<f8"), ("zero", "<i8")])

#: Slot alignment (and header size) in bytes.
_ALIGN = 16


def _slot_size(payload_nbytes: int) -> int:
    """One arena slot: header + payload, rounded up to the alignment."""
    raw = _ALIGN + payload_nbytes
    return (raw + _ALIGN - 1) // _ALIGN * _ALIGN


def _write_slot(buf: np.ndarray, slot: int, slot_size: int,
                tensor: QuantizedTensor) -> None:
    """Serialize one image into its arena slot (header + raw uint8)."""
    base = slot * slot_size
    header = buf[base:base + _ALIGN].view(_PARAM_DTYPE)
    header["scale"] = tensor.params.scale
    header["zero"] = tensor.params.zero_point
    payload = tensor.data.reshape(-1)
    buf[base + _ALIGN:base + _ALIGN + payload.size] = payload


def _read_slot(buf: np.ndarray, slot: int, slot_size: int,
               shape: tuple) -> QuantizedTensor:
    """Materialize one image from its arena slot (copies out)."""
    base = slot * slot_size
    header = buf[base:base + _ALIGN].view(_PARAM_DTYPE)
    params = QuantParams(scale=float(header["scale"][0]),
                         zero_point=int(header["zero"][0]))
    count = int(np.prod(shape, dtype=np.int64))
    data = buf[base + _ALIGN:base + _ALIGN + count].reshape(shape).copy()
    return QuantizedTensor(data=data, params=params)


@dataclass(frozen=True)
class PoolShardWork:
    """One shard's lane through the arenas — O(1) bytes, no arrays.

    The pool-driver counterpart of
    :class:`~repro.engine.sharding.ShardWork`: where that unit carries
    its image slice (and weights) by value, this one carries only the
    arena segment names and the round-robin arithmetic
    ``slots = range(shard, batch, stride)``. Its pickle size is
    therefore independent of batch size and image resolution — the
    regression test pins that, because any array sneaking in here
    silently reintroduces the per-batch serialization the pool exists
    to remove.
    """

    #: Shard index, which is also the first slot of the shard's lane.
    shard: int
    #: Total images in the staged batch (slots ``0..batch-1``).
    batch: int
    #: Slot stride of the lane (= the pool's shard count).
    stride: int
    #: Shared-memory segment names of the staged arenas.
    input_segment: str
    output_segment: str
    #: Per-image payload geometry (fixes the slot size on both sides).
    input_shape: tuple
    output_shape: tuple
    #: Whether this shard must ship the per-node outputs dict back over
    #: the pipe (true only for the shard owning the globally-last image).
    want_outputs: bool

    @property
    def count(self) -> int:
        """Images on this shard's lane."""
        return len(range(self.shard, self.batch, self.stride))


@dataclass(frozen=True)
class RecoveryEvent:
    """One self-healing action the supervised pool took."""

    #: Worker slot the event concerns.
    shard: int
    #: ``respawned``, ``redispatched`` or ``degraded``.
    kind: str
    #: Human-readable account (old/new PIDs, images re-dispatched, ...).
    detail: str

    def __str__(self) -> str:
        return f"worker {self.shard} {self.kind}: {self.detail}"


class _WorkerFailure(Exception):
    """Internal: a worker slot died or hung; carries who and how."""

    def __init__(self, slot: int, kind: str, pid: int | None):
        super().__init__(f"worker {slot} (pid {pid}) {kind}")
        self.slot = slot
        #: ``died`` (process gone / pipe broken) or ``hung`` (alive but
        #: silent past the reply timeout).
        self.kind = kind
        self.pid = pid


class _WorkerState:
    """Everything a pool worker keeps warm between batches."""

    def __init__(self):
        self.network = None
        self.weights = None
        self.executor = None
        self.golden = None
        #: Arena attachments cached by role, keyed by segment name —
        #: re-attach only when the parent grew (renamed) an arena.
        self.arenas: dict[str, SharedSegment] = {}

    def load_program(self, network, weights, config, packed, batched,
                     verify, seed, sparsity=False, sanitize=None,
                     precision=None) -> None:
        """(Re)build the warm executor for a broadcast program.

        ``packed=True`` becomes ``packed="shared"`` here: the worker's
        fleets allocate their word planes on
        :class:`~repro.engine.shared.SharedPlaneStore` segments (scoped
        to this worker, recycled across layer chunks), which is the
        zero-copy tentpole — plane state lives in mappable segments,
        not private heap.
        """
        self.network = network
        self.weights = weights
        self.executor = FleetExecutor(
            config, weights=weights, seed=seed, verify=verify,
            packed="shared" if packed else False, batched=batched,
            sparsity=sparsity, sanitize=sanitize, precision=precision)
        self.golden = self.executor.golden_for(network, weights)

    def _arena(self, role: str, name: str) -> SharedSegment:
        # Pop first, re-cache only on success: a failed attach must not
        # leave a closed (or stale) segment behind as the cache entry.
        cached = self.arenas.pop(role, None)
        if cached is not None:
            if cached.name == name:
                self.arenas[role] = cached
                return cached
            cached.close()
        segment = SharedSegment.attach(name)
        self.arenas[role] = segment
        return segment

    def run(self, work: PoolShardWork):
        """Execute one lane: arena in, warm executor, arena out."""
        if self.executor is None:
            raise SimulationError("pool worker has no program loaded")
        in_slot = _slot_size(int(np.prod(work.input_shape,
                                         dtype=np.int64)))
        out_slot = _slot_size(int(np.prod(work.output_shape,
                                          dtype=np.int64)))
        slots = range(work.shard, work.batch, work.stride)
        in_buf = self._arena("in", work.input_segment).view(
            np.uint8, (work.batch * in_slot,))
        images = [_read_slot(in_buf, slot, in_slot, work.input_shape)
                  for slot in slots]
        del in_buf
        outcome = self.executor.run_requests(self.network, images,
                                             self.weights, self.golden)
        out_buf = self._arena("out", work.output_segment).view(
            np.uint8, (work.batch * out_slot,))
        for slot, response in zip(slots, outcome.responses):
            _write_slot(out_buf, slot, out_slot, response)
        del out_buf
        outputs = outcome.outputs if work.want_outputs else None
        return len(images), outcome.report, outcome.verified, outputs

    def close(self) -> None:
        for segment in self.arenas.values():
            try:
                segment.close()
            except Exception:  # pragma: no cover - shutdown best-effort
                pass
        self.arenas.clear()


def _worker_main(conn, scope: str, shard: int = 0,
                 fault_plan: FaultPlan | None = None) -> None:
    """A pool worker's whole life: scope, serve messages, clean up.

    ``fault_plan`` arms the chaos hooks: the plan's hardware model is
    installed process-globally (every fleet this worker builds runs on
    faulty arrays), and each ``run`` message's sequence number is
    checked against the plan's software faults — ``kill`` exits
    mid-batch, ``delay`` answers late, ``drop`` finishes the lane but
    never answers (upstream can only see that as a hang).
    """
    set_segment_scope(scope)
    # The fork copied the parent's recycler/ledger; forget it, or this
    # worker's exit-time release would unlink names the parent owns.
    reset_shared_state()
    if fault_plan is not None and fault_plan.hardware is not None:
        from repro.faults.context import set_hardware_faults
        set_hardware_faults(fault_plan.hardware)
    state = _WorkerState()
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:  # pragma: no cover - parent vanished
                break
            kind = message[0]
            if kind == "close":
                break
            try:
                if kind == "program":
                    state.load_program(*message[1:])
                    conn.send(("ok",))
                elif kind == "run":
                    work, seq = message[1], message[2]
                    action = (fault_plan.pool_action(shard, seq)
                              if fault_plan is not None else None)
                    if action is not None and action.kind == "kill":
                        os._exit(17)
                    result = state.run(work)
                    if action is not None and action.kind == "drop":
                        continue
                    if action is not None and action.kind == "delay":
                        time.sleep(action.delay_s)
                    conn.send(("done", *result))
                else:
                    conn.send(("error", f"unknown message {kind!r}"))
            except Exception as exc:
                # Report-and-continue: a failed batch must not take the
                # warm worker (and its segments) down with it.
                try:
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
                except Exception:  # pragma: no cover - pipe gone too
                    break
    finally:
        state.close()
        release_pooled_segments()
        conn.close()


class ShardWorkerPool:
    """A long-lived, self-healing pool of warm shard workers.

    Spawned eagerly at construction (one fork per shard, before any
    caller can have started threads), reused across every
    ``run``/``run_requests`` batch of its owning backend, and shut down
    exactly once — by :meth:`close`, which the backend's own ``close``
    (and the serving layer's ``Server.close(close_backends=True)``)
    calls.

    See the module docstring for the supervision contract (timeouts,
    health checks, respawn with re-dispatch, graceful degradation) and
    the unsupervised fail-fast contract behind ``supervise=False``.
    """

    def __init__(self, shards: int, config: NeuralCacheConfig,
                 packed: bool = True, batched: bool = True,
                 verify: bool = True, seed: int = 0,
                 reply_timeout_s: float = 60.0,
                 max_retries: int = 2,
                 retry_backoff_s: float = 0.05,
                 supervise: bool = True,
                 fault_plan: FaultPlan | None = None,
                 sparsity: bool = False, sanitize: bool | None = None,
                 precision=None):
        if shards <= 0:
            raise SimulationError(
                f"shard count must be positive, got {shards}")
        if reply_timeout_s <= 0:
            raise SimulationError(
                f"reply timeout must be positive, got {reply_timeout_s}")
        if max_retries < 0:
            raise SimulationError(
                f"retry budget must be non-negative, got {max_retries}")
        if retry_backoff_s < 0:
            raise SimulationError(
                f"retry backoff must be non-negative, got "
                f"{retry_backoff_s}")
        if fault_plan is not None and not isinstance(fault_plan, FaultPlan):
            raise SimulationError(
                f"fault_plan must be a FaultPlan, got "
                f"{type(fault_plan).__name__}")
        self.shards = shards
        self.config = config
        self.packed = packed
        self.batched = batched
        self.verify = verify
        self.seed = seed
        self.reply_timeout_s = reply_timeout_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.supervise = supervise
        self.fault_plan = fault_plan
        #: Executor knobs broadcast to every worker with the program:
        #: bit-plane sparsity skipping, the sanitizer override and the
        #: per-layer precision table (all scalar/small, O(1) pickle).
        self.sparsity = sparsity
        self.sanitize = sanitize
        self.precision = precision
        #: Every segment this pool's parent or workers create carries
        #: this prefix — the crash-sweep handle.
        self.scope = f"repro-pool-{os.getpid()}-{secrets.token_hex(4)}"
        self._program: tuple | None = None
        self._input: SharedSegment | None = None
        self._output: SharedSegment | None = None
        self._closed = False
        # Fork eagerly: workers must exist before the owner's process
        # ever starts threads (the serving executor does), and eager
        # spawn is what "no re-fork per batch" means. Fork is required
        # — workers inherit the program objects and arena handles — so
        # the pool driver is POSIX-only (Linux/macOS).
        try:
            self._context = get_context("fork")
        except ValueError:
            raise SimulationError(
                "the pool shard driver needs the fork start method, "
                "which this platform does not support; use "
                "driver='process' instead") from None
        if threading.active_count() > 1:
            warnings.warn(
                "ShardWorkerPool forks while this process already runs "
                f"{threading.active_count() - 1} extra thread(s); "
                "construct pool-driver backends before starting any "
                "threads (forking a multithreaded process is unsafe)",
                RuntimeWarning, stacklevel=3)
        # Start the shared-memory resource tracker *before* forking:
        # otherwise each worker lazily spawns its own tracker, and a
        # killed worker's private tracker dies with it — eagerly
        # unlinking segments out from under the supervisor and warning
        # about "leaks" the parent's scope sweep owns. One parent-owned
        # tracker outlives every worker incarnation.
        try:  # pragma: no cover - private API may move
            from multiprocessing import resource_tracker
            resource_tracker.ensure_running()
        except Exception:
            pass
        self._conns: list = [None] * shards
        self._workers: list = [None] * shards
        #: Incarnation number per slot (bumped on every respawn; names
        #: the incarnation's segment scope so a reap can sweep it).
        self._gen = [0] * shards
        #: Run messages sent per slot, ever — the fault plans' clock.
        self._sent = [0] * shards
        self._events: list[RecoveryEvent] = []
        for slot in range(shards):
            self._spawn(slot)

    # -- worker lifecycle --------------------------------------------------
    def _spawn(self, slot: int) -> None:
        """Fork one worker incarnation into ``slot``."""
        parent_conn, child_conn = self._context.Pipe()
        worker = self._context.Process(
            target=_worker_main,
            args=(child_conn, f"{self.scope}-w{slot}g{self._gen[slot]}",
                  slot, self.fault_plan),
            name=f"repro-shard-worker-{slot}", daemon=True)
        worker.start()
        child_conn.close()
        self._conns[slot] = parent_conn
        self._workers[slot] = worker

    def _reap(self, slot: int) -> None:
        """Retire ``slot``'s incarnation: kill, close, sweep its scope."""
        worker = self._workers[slot]
        conn = self._conns[slot]
        self._workers[slot] = None
        self._conns[slot] = None
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if worker is not None:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5)
                if worker.is_alive():  # pragma: no cover - ignores TERM
                    worker.kill()
                    worker.join(timeout=5)
            else:
                worker.join(timeout=1)
        # Sweep the dead incarnation's plane segments now — respawns
        # must not accumulate leaked segments across generations.
        unlink_scope(f"{self.scope}-w{slot}g{self._gen[slot]}")

    def _respawn(self, slot: int) -> bool:
        """Replace ``slot``'s incarnation; re-ship the current program.

        Returns ``False`` (slot left empty = degraded) if the fork or
        the program hand-off fails.
        """
        self._reap(slot)
        self._gen[slot] += 1
        try:
            self._spawn(slot)
        except Exception:  # pragma: no cover - fork exhaustion
            self._workers[slot] = None
            self._conns[slot] = None
            return False
        if self._program is not None:
            _, network, weights = self._program
            message = ("program", network, weights, self.config,
                       self.packed, self.batched, self.verify, self.seed,
                       self.sparsity, self.sanitize, self.precision)
            try:
                self._send_raw(slot, message)
                reply = self._recv_raw(slot)
                if reply[0] != "ok":
                    raise _WorkerFailure(slot, "died",
                                         self._workers[slot].pid)
            except _WorkerFailure:
                self._reap(slot)
                return False
        return True

    def _repair(self, failure: _WorkerFailure) -> None:
        """Respawn-or-degrade one failed slot; log what happened."""
        slot = failure.slot
        if self._respawn(slot):
            self._events.append(RecoveryEvent(
                shard=slot, kind="respawned",
                detail=f"pid {failure.pid} {failure.kind}; replaced by "
                       f"pid {self._workers[slot].pid}"))
        else:
            self._events.append(RecoveryEvent(
                shard=slot, kind="degraded",
                detail=f"pid {failure.pid} {failure.kind}; respawn "
                       f"failed, {len(self.live_shards())} live "
                       f"worker(s) remain"))

    # -- plumbing ----------------------------------------------------------
    def _check_alive(self) -> None:
        if self._closed:
            raise SimulationError("shard worker pool is closed")

    def _send_raw(self, slot: int, message: tuple) -> None:
        """Send one message; health-check first, never write dead pipes."""
        conn = self._conns[slot]
        worker = self._workers[slot]
        if conn is None or worker is None:
            raise _WorkerFailure(slot, "died", None)
        if not worker.is_alive():
            raise _WorkerFailure(slot, "died", worker.pid)
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            raise _WorkerFailure(slot, "died", worker.pid) from None

    def _recv_raw(self, slot: int) -> tuple:
        """One reply from a slot, bounded by the reply timeout.

        Polls in short slices so a worker that dies without closing its
        pipe end is noticed well before the timeout; a worker that is
        alive but silent past ``reply_timeout_s`` is a ``hung``
        failure — the unbounded blocking ``recv`` this replaces could
        wait on it forever.
        """
        conn = self._conns[slot]
        worker = self._workers[slot]
        if conn is None or worker is None:
            raise _WorkerFailure(slot, "died", None)
        deadline = time.monotonic() + self.reply_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _WorkerFailure(slot, "hung", worker.pid)
            try:
                if conn.poll(min(remaining, 0.2)):
                    return conn.recv()
            except (EOFError, OSError):
                raise _WorkerFailure(slot, "died", worker.pid) from None
            if not worker.is_alive():
                # One last look: the reply may have been written before
                # the worker exited.
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):  # pragma: no cover
                    pass
                raise _WorkerFailure(slot, "died", worker.pid) from None

    def _drain(self, shards) -> dict[int, tuple]:
        """One reply per shard, drained fully even when some are errors.

        The unsupervised receive path. Every shard that was sent a
        message in this round answers exactly once, so its reply must
        be consumed *before* any error raises — otherwise the surviving
        workers' queued "done" replies would pair with the next round's
        messages, desyncing the protocol and silently corrupting every
        later batch. Raises after the drain if any shard reported an
        error; the workers (and the pool) stay serviceable. A shard
        that died or hung instead of answering tears the pool down via
        :meth:`_fail` — reply waits are bounded by ``reply_timeout_s``,
        so a hung worker can no longer block this forever.
        """
        replies: dict[int, tuple] = {}
        errors = []
        for shard in shards:
            try:
                reply = self._recv_raw(shard)
            except _WorkerFailure as failure:
                self._fail(failure)
            if reply[0] == "error":
                errors.append((shard, reply[1]))
            else:
                replies[shard] = reply
        if errors:
            raise SimulationError("pool " + "; ".join(
                f"shard {shard} failed: {msg}" for shard, msg in errors))
        return replies

    def _fail(self, failure: _WorkerFailure) -> None:
        """Unsupervised verdict: tear the whole pool down, then raise."""
        self.close(drain=False)
        if failure.kind == "hung":
            detail = (f"sent no reply within {self.reply_timeout_s:g}s "
                      f"(hung)")
        else:
            detail = "died"
        raise SimulationError(
            f"pool shard worker {failure.slot} (pid {failure.pid}) "
            f"{detail}; pool shut down and its segments were swept")

    def _unrecoverable(self, why: str) -> None:
        """Supervision gave up: tear down and raise."""
        self.close(drain=False)
        raise SimulationError(
            f"pool {why}; pool shut down and its segments were swept")

    def _broadcast_program(self, network: Network, weights) -> None:
        """Ship the program once per (network, weights) identity.

        Strong references to the broadcast pair are kept, so the
        ``id()``-keyed cache can never alias a collected object (the
        same guard the analytic backend's simulator cache uses).
        Supervised pools repair workers that fail mid-broadcast (a
        respawn re-ships the program itself); a worker-*reported*
        program error unsets the cache so the next stage() converges
        every worker again.
        """
        key = (id(network), id(weights))
        if self._program is not None and self._program[0] == key:
            return
        self._program = None
        message = ("program", network, weights, self.config, self.packed,
                   self.batched, self.verify, self.seed, self.sparsity,
                   self.sanitize, self.precision)
        if not self.supervise:
            for slot in range(self.shards):
                try:
                    self._send_raw(slot, message)
                except _WorkerFailure as failure:
                    self._fail(failure)
            # A partial failure leaves _program unset, so the next
            # stage() re-broadcasts and the workers converge again.
            self._drain(range(self.shards))
            self._program = (key, network, weights)
            return
        sent = []
        failures = []
        errors = []
        for slot in self.live_shards():
            try:
                self._send_raw(slot, message)
                sent.append(slot)
            except _WorkerFailure as failure:
                failures.append(failure)
        for slot in sent:
            try:
                reply = self._recv_raw(slot)
            except _WorkerFailure as failure:
                failures.append(failure)
                continue
            if reply[0] == "error":
                errors.append((slot, reply[1]))
        # Set before repairing: _respawn re-ships the cached program.
        self._program = (key, network, weights)
        for failure in failures:
            self._repair(failure)
        if not self.live_shards():
            self._unrecoverable("lost every shard worker")
        if errors:
            self._program = None
            raise SimulationError("pool " + "; ".join(
                f"shard {slot} failed: {msg}" for slot, msg in errors))

    def _ensure_arena(self, current: SharedSegment | None,
                      nbytes: int) -> SharedSegment:
        """An owned arena of at least ``nbytes`` (power-of-two growth)."""
        if current is not None and current.nbytes >= nbytes:
            return current
        if current is not None:
            current.close(unlink=True)
        capacity = 1 << max(0, int(nbytes - 1).bit_length())
        return SharedSegment.create(capacity, scope=self.scope)

    # -- the batch surface -------------------------------------------------
    def stage(self, network: Network, images, weights) -> list[PoolShardWork]:
        """Write a batch into the input arena; return the O(1) works.

        Split from :meth:`dispatch` so the pickle-payload regression
        test can stage real batches and measure exactly the bytes a
        dispatch would push through the pipes.
        """
        self._check_alive()
        self._broadcast_program(network, weights)
        images = list(images)
        batch = len(images)
        input_shape = tuple(network.input_shape)
        output_shape = tuple(network.node(network.output_name).output_shape)
        in_slot = _slot_size(int(np.prod(input_shape, dtype=np.int64)))
        out_slot = _slot_size(int(np.prod(output_shape, dtype=np.int64)))
        self._input = self._ensure_arena(self._input,
                                         max(1, batch * in_slot))
        self._output = self._ensure_arena(self._output,
                                          max(1, batch * out_slot))
        in_buf = self._input.view(np.uint8, (self._input.nbytes,))
        try:
            for slot, image in enumerate(images):
                if tuple(image.data.shape) != input_shape:
                    raise SimulationError(
                        f"image {slot} has shape {image.data.shape}, "
                        f"expected the network input {input_shape}")
                _write_slot(in_buf, slot, in_slot, image)
        finally:
            del in_buf
        last_shard = (batch - 1) % self.shards
        return [PoolShardWork(shard=k, batch=batch, stride=self.shards,
                              input_segment=self._input.name,
                              output_segment=self._output.name,
                              input_shape=input_shape,
                              output_shape=output_shape,
                              want_outputs=(batch > 0 and k == last_shard))
                for k in range(self.shards)]

    def _run_works(self, busy: list[PoolShardWork]) -> dict[int, tuple]:
        """Execute the busy lanes; one ``done`` reply per lane.

        Unsupervised: the original send-all / drain-all flow, now with
        bounded reply waits. Supervised: lanes route to live slots
        (a dead slot's lane goes to ``live[shard % len(live)]``), sends
        pair with FIFO receives per slot, and any slot that dies or
        hangs is repaired while its orphaned lanes re-dispatch on the
        next round — bounded by ``max_retries`` rounds with exponential
        backoff. Worker-*reported* errors never trigger recovery: the
        round is drained level, then the error raises with the pool
        still serviceable.
        """
        if not busy:
            return {}
        if not self.supervise:
            for work in busy:
                self._sent[work.shard] += 1
                try:
                    self._send_raw(work.shard,
                                   ("run", work, self._sent[work.shard]))
                except _WorkerFailure as failure:
                    self._fail(failure)
            return self._drain([work.shard for work in busy])
        replies: dict[int, tuple] = {}
        pending = list(busy)
        attempt = 0
        while pending:
            live = self.live_shards()
            if not live:
                self._unrecoverable("lost every shard worker")
            live_set = set(live)
            routed: dict[int, list[PoolShardWork]] = {}
            for work in pending:
                target = (work.shard if work.shard in live_set
                          else live[work.shard % len(live)])
                routed.setdefault(target, []).append(work)
            failed: dict[int, _WorkerFailure] = {}
            for target, queue in routed.items():
                for work in queue:
                    self._sent[target] += 1
                    try:
                        self._send_raw(target,
                                       ("run", work, self._sent[target]))
                    except _WorkerFailure as failure:
                        failed[target] = failure
                        break
            errors = []
            answered: set[int] = set()
            for target, queue in routed.items():
                if target in failed:
                    continue
                for work in queue:
                    try:
                        reply = self._recv_raw(target)
                    except _WorkerFailure as failure:
                        failed[target] = failure
                        break
                    answered.add(id(work))
                    if reply[0] == "error":
                        errors.append((work.shard, reply[1]))
                    else:
                        replies[work.shard] = reply
            pending = []
            if failed:
                lost = [work
                        for target in failed
                        for work in routed[target]
                        if id(work) not in answered]
                for target, failure in failed.items():
                    orphaned = sum(work.count for work in routed[target]
                                   if id(work) not in answered)
                    self._events.append(RecoveryEvent(
                        shard=target, kind="redispatched",
                        detail=f"{orphaned} image(s) re-dispatched "
                               f"after worker {target} (pid "
                               f"{failure.pid}) {failure.kind}"))
                    self._repair(failure)
                if lost and not errors:
                    attempt += 1
                    if attempt > self.max_retries:
                        self._unrecoverable(
                            f"worker recovery exhausted after "
                            f"{self.max_retries} re-dispatch round(s)")
                    time.sleep(self.retry_backoff_s * 2 ** (attempt - 1))
                    pending = lost
            if errors:
                # Pipes are level (every sent message was answered or
                # its slot reaped), so the pool survives this raise.
                raise SimulationError("pool " + "; ".join(
                    f"shard {shard} failed: {msg}"
                    for shard, msg in errors))
        return replies

    def dispatch(self, works: list[PoolShardWork]) -> list:
        """Run staged works on the warm workers; outcomes in shard order.

        Empty lanes (``shards > batch``) are never sent — their idle
        outcomes are synthesized here, so idle workers cost nothing.
        """
        from repro.core.functional import CycleReport
        from repro.engine.sharding import ShardOutcome

        self._check_alive()
        # All replies are collected before the output arena is read, so
        # no receive (and thus no failure teardown) can fire while an
        # arena view below is live.
        replies = self._run_works([work for work in works if work.count])
        outcomes = []
        for work in works:
            if not work.count:
                outcomes.append(ShardOutcome(
                    shard=work.shard, images=0,
                    outcome=BatchOutcome(report=CycleReport(),
                                         responses=(), outputs=None,
                                         verified=0)))
                continue
            _, count, report, verified, outputs = replies[work.shard]
            out_buf = self._output.view(np.uint8, (self._output.nbytes,))
            out_slot = _slot_size(int(np.prod(work.output_shape,
                                              dtype=np.int64)))
            responses = tuple(
                _read_slot(out_buf, slot, out_slot, work.output_shape)
                for slot in range(work.shard, work.batch, work.stride))
            del out_buf
            outcomes.append(ShardOutcome(
                shard=work.shard, images=count,
                outcome=BatchOutcome(report=report, responses=responses,
                                     outputs=outputs, verified=verified)))
        return outcomes

    def run(self, network: Network, images, weights) -> list:
        """Stage + dispatch one batch."""
        return self.dispatch(self.stage(network, images, weights))

    # -- observability -----------------------------------------------------
    def live_shards(self) -> tuple[int, ...]:
        """Slots currently holding a live worker."""
        return tuple(slot for slot in range(self.shards)
                     if self._conns[slot] is not None
                     and self._workers[slot] is not None)

    def worker_pids(self) -> tuple[int, ...]:
        """The live workers' PIDs — how tests pin "no re-fork" (and,
        under chaos, observe a respawn's fresh incarnation)."""
        self._check_alive()
        return tuple(self._workers[slot].pid
                     for slot in self.live_shards())

    def pop_recovery_events(self) -> tuple[RecoveryEvent, ...]:
        """Drain the recovery log (respawns, re-dispatches, degrades)."""
        events = tuple(self._events)
        self._events.clear()
        return events

    # -- lifecycle ---------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Shut the pool down; idempotent.

        ``drain`` asks workers to exit cleanly (releasing their own
        recycled plane segments); the crash path passes ``False`` and
        terminates. Either way both arenas are unlinked and the pool's
        whole segment scope is swept, so nothing the pool ever created
        outlives it.
        """
        if self._closed:
            return
        self._closed = True
        for conn, worker in zip(self._conns, self._workers):
            if conn is None or worker is None:
                continue
            if drain:
                try:
                    conn.send(("close",))
                except (BrokenPipeError, OSError):
                    pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            worker.join(timeout=5 if drain else 0.5)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=5)
        for arena in (self._input, self._output):
            if arena is not None:
                try:
                    arena.close(unlink=True)
                except Exception:  # pragma: no cover - live views on a
                    pass           # crash path; the sweep below catches it
        self._input = self._output = None
        unlink_scope(self.scope)

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
