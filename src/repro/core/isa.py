"""Neural Cache ISA and bank control FSM (Sec. IV-F).

The paper adds a handful of instructions — in-cache addition,
multiplication, reduction and moves — that the host broadcasts over the
intra-slice address bus. Every bank has a small control FSM (~204 um^2;
0.23 mm^2 across 14 slices) that sequences the word-line/sense-amp signals
for each instruction. Because one layer executes at a time, *all* compute
arrays run the same instruction in lockstep: the cache behaves as a very
wide SIMD machine.

:class:`ControlFSM` models exactly that: it validates a program once and
applies every instruction to all attached arrays, mirroring the broadcast
execution model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import IsaError
from repro.sram.bitserial import BitSerialUnit, Operand

#: Area of one bank control FSM (Sec. IV-F).
FSM_AREA_UM2 = 204.0


class Opcode(Enum):
    """The in-cache compute and move instructions."""

    CZERO = "czero"          # zero a region
    CIMM = "cimm"            # broadcast an immediate
    CCOPY = "ccopy"          # region copy
    CMOVE = "cmove"          # copy with a cross-bitline shift
    CADD = "cadd"            # vector addition
    CSUB = "csub"            # vector subtraction (difference + not-borrow)
    CMULT = "cmult"          # vector multiplication
    CDIV = "cdiv"            # vector division
    CMAC = "cmac"            # fused multiply-accumulate
    CREDUCE = "creduce"      # intra-array tree reduction
    CMAX = "cmax"            # running-max fold
    CMIN = "cmin"            # running-min fold
    CRELU = "crelu"          # MSB-masked zero write
    CSELCOPY = "cselcopy"    # tag-predicated copy


#: operand-count and immediate expectations per opcode.
_SIGNATURES: dict[Opcode, tuple[int, bool]] = {
    Opcode.CZERO: (1, False),
    Opcode.CIMM: (1, True),
    Opcode.CCOPY: (2, False),
    Opcode.CMOVE: (2, True),
    Opcode.CADD: (3, False),
    Opcode.CSUB: (4, False),
    Opcode.CMULT: (3, False),
    Opcode.CDIV: (4, False),
    Opcode.CMAC: (4, False),
    Opcode.CREDUCE: (2, True),
    Opcode.CMAX: (3, False),
    Opcode.CMIN: (3, False),
    Opcode.CRELU: (1, True),
    Opcode.CSELCOPY: (2, True),
}


@dataclass(frozen=True)
class Instruction:
    """One broadcast in-cache instruction."""

    opcode: Opcode
    operands: tuple[Operand, ...]
    immediate: int | None = None

    def __post_init__(self) -> None:
        try:
            n_operands, takes_imm = _SIGNATURES[self.opcode]
        except KeyError:
            raise IsaError(f"unknown opcode {self.opcode!r}") from None
        if len(self.operands) != n_operands:
            raise IsaError(
                f"{self.opcode.value} takes {n_operands} operands, got "
                f"{len(self.operands)}")
        if takes_imm and self.immediate is None:
            raise IsaError(f"{self.opcode.value} requires an immediate")
        if not takes_imm and self.immediate is not None:
            raise IsaError(f"{self.opcode.value} takes no immediate")

    def __str__(self) -> str:
        ops = ", ".join(f"r{op.row}:{op.nbits}" for op in self.operands)
        imm = f", #{self.immediate}" if self.immediate is not None else ""
        return f"{self.opcode.value} {ops}{imm}"


@dataclass
class ControlFSM:
    """Broadcasts instruction streams to a set of compute arrays.

    All arrays execute each instruction simultaneously (the paper's SIMD
    execution model); the FSM tracks instruction count and the per-array
    cycle cost of the program (identical across arrays by construction).
    """

    units: list[BitSerialUnit] = field(default_factory=list)
    instructions_executed: int = 0

    def __post_init__(self) -> None:
        if not self.units:
            self.units = [BitSerialUnit()]

    @property
    def cycles(self) -> int:
        """Per-array cycle count (all arrays run in lockstep)."""
        return self.units[0].cycles

    def validate(self, program: list[Instruction]) -> None:
        """Reject programs that do not fit the attached arrays.

        The paper's contract is *validate once, broadcast everywhere*: a
        bounds violation must be caught here, before the first cycle, not
        as an :class:`~repro.common.errors.ArrayStateError` halfway
        through execution with every array's state already mutated.
        Checks every operand region and every row-valued immediate (the
        CRELU sign row, the CSELCOPY tag row) against the smallest
        attached geometry, and cross-bitline shifts against the columns.
        """
        rows = min(unit.rows for unit in self.units)
        cols = min(unit.cols for unit in self.units)
        for index, instr in enumerate(program):
            for operand in instr.operands:
                if operand.end > rows:
                    raise IsaError(
                        f"instruction {index} `{instr}`: operand "
                        f"r{operand.row}:{operand.nbits} ends at wordline "
                        f"{operand.end}, beyond the array's {rows} rows")
            imm = instr.immediate
            if instr.opcode in (Opcode.CRELU, Opcode.CSELCOPY):
                assert imm is not None  # __post_init__ guarantees it
                if not 0 <= imm < rows:
                    role = ("sign row" if instr.opcode is Opcode.CRELU
                            else "tag row")
                    raise IsaError(
                        f"instruction {index} `{instr}`: {role} {imm} "
                        f"outside the array's {rows} rows")
            elif instr.opcode is Opcode.CMOVE:
                assert imm is not None
                if not 0 < imm < cols:
                    raise IsaError(
                        f"instruction {index} `{instr}`: column shift "
                        f"{imm} outside the array's {cols} bitlines")

    def execute(self, program: list[Instruction]) -> int:
        """Run a validated program on every array; returns cycles consumed."""
        self.validate(program)
        start = self.cycles
        for instruction in program:
            self._dispatch(instruction)
            self.instructions_executed += 1
        cycles = self.cycles - start
        self._check_lockstep()
        return cycles

    # ------------------------------------------------------------------
    def _dispatch(self, instr: Instruction) -> None:
        op = instr.opcode
        args = instr.operands
        for unit in self.units:
            if op is Opcode.CZERO:
                unit.zero(args[0])
            elif op is Opcode.CIMM:
                unit.write_scalar(args[0], instr.immediate)
            elif op is Opcode.CCOPY:
                unit.copy(args[0], args[1])
            elif op is Opcode.CMOVE:
                unit.shift_copy(args[0], args[1], instr.immediate)
            elif op is Opcode.CADD:
                unit.add(args[0], args[1], args[2])
            elif op is Opcode.CSUB:
                unit.sub(args[0], args[1], args[2], args[3])
            elif op is Opcode.CMULT:
                unit.multiply(args[0], args[1], args[2])
            elif op is Opcode.CDIV:
                unit.divide(args[0], args[1], args[2], args[3])
            elif op is Opcode.CMAC:
                unit.mac(args[0], args[1], args[2], args[3])
            elif op is Opcode.CREDUCE:
                unit.reduce_tree(args[0], args[1], instr.immediate,
                                 args[0].nbits - (instr.immediate
                                                  .bit_length() - 1))
            elif op is Opcode.CMAX:
                unit.max_update(args[0], args[1], args[2])
            elif op is Opcode.CMIN:
                unit.min_update(args[0], args[1], args[2])
            elif op is Opcode.CRELU:
                unit.relu(args[0], instr.immediate)
            elif op is Opcode.CSELCOPY:
                unit.selective_copy(args[0], args[1], instr.immediate)
            else:  # pragma: no cover - enum is exhaustive
                raise IsaError(f"unhandled opcode {op!r}")

    def _check_lockstep(self) -> None:
        cycles = {unit.cycles for unit in self.units}
        if len(cycles) != 1:
            raise IsaError(
                f"arrays fell out of lockstep: cycle counts {sorted(cycles)}")


def parse_instruction(text: str) -> Instruction:
    """Parse the textual form produced by ``str(Instruction)``.

    Grammar: ``opcode rROW:BITS[, rROW:BITS ...][, #IMM]`` — e.g.
    ``cmult r0:8, r8:8, r16:16`` or ``cimm r4:8, #42``.
    """
    text = text.strip()
    if not text:
        raise IsaError("empty instruction")
    head, _, rest = text.partition(" ")
    try:
        opcode = Opcode(head.lower())
    except ValueError:
        raise IsaError(f"unknown opcode {head!r}") from None
    operands: list[Operand] = []
    immediate: int | None = None
    for token in filter(None, (t.strip() for t in rest.split(","))):
        if token.startswith("#"):
            if immediate is not None:
                raise IsaError(f"duplicate immediate in {text!r}")
            try:
                immediate = int(token[1:], 0)
            except ValueError:
                raise IsaError(f"bad immediate {token!r}") from None
        elif token.startswith("r") and ":" in token:
            row_text, _, bits_text = token[1:].partition(":")
            try:
                operands.append(Operand(int(row_text), int(bits_text)))
            except ValueError:
                raise IsaError(f"bad operand {token!r}") from None
        else:
            raise IsaError(f"unrecognised token {token!r} in {text!r}")
    return Instruction(opcode=opcode, operands=tuple(operands),
                       immediate=immediate)


def parse_program(text: str) -> list[Instruction]:
    """Parse a newline-separated program; '#'-prefixed lines and blank
    lines are comments (but '#' inside a line is an immediate)."""
    program = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        program.append(parse_instruction(stripped))
    return program


def fsm_total_area_mm2(banks: int) -> float:
    """Total FSM area for ``banks`` bank controllers (0.23 mm^2 for the
    14-slice Xeon: 14 x 80 banks x 204 um^2)."""
    if banks < 0:
        raise IsaError(f"bank count must be non-negative, got {banks}")
    return banks * FSM_AREA_UM2 * 1e-6
