"""Figure 13: per-layer inference latency for CPU, GPU and Neural Cache.

Benchmarks the full pipeline: graph construction, mapping all 109 layers
onto the cache, scheduling every phase, and aggregating per Table-I group;
plus the two baseline models.
"""

from repro.analysis import figure13
from repro.baselines import CpuBaseline, GpuBaseline
from repro.core.executor import NeuralCacheSimulator
from repro.nn import build_inception_v3


def regenerate_figure13():
    network = build_inception_v3()
    nc = NeuralCacheSimulator(network).run().group_latency()
    cpu = CpuBaseline(network).group_latency()
    gpu = GpuBaseline(network).group_latency()
    return nc, cpu, gpu


def test_figure13_layer_latency(benchmark, record):
    nc, cpu, gpu = benchmark(regenerate_figure13)
    assert len(nc) == len(cpu) == len(gpu) == 20
    # Neural Cache achieves "significantly better latency than baseline
    # for all layers" (Sec. VI-A).
    for group in nc:
        assert nc[group] < gpu[group] < cpu[group], group
    record(figure13())
