"""Batching spill path and socket-scaled throughput (Sec. IV-E / VI-B).

The output-buffer overflow -> DRAM dump accounting in
:class:`InferenceResult` and the linear socket scaling of ``throughput()``
previously had no direct unit tests; these pin both behaviours.
"""

import dataclasses

import pytest

from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.core.executor import NeuralCacheSimulator
from repro.nn import Conv2D, Network


def conv_network(size: int = 32, channels: int = 32,
                 filters: int = 64) -> Network:
    net = Network(name="spill-case")
    x = net.add_input("in", (size, size, channels))
    net.add("conv", Conv2D(filters, (3, 3), padding="same"), x)
    return net


@pytest.fixture(scope="module")
def config():
    return NeuralCacheConfig()


@pytest.fixture(scope="module")
def sim(config):
    return NeuralCacheSimulator(conv_network(), config)


def overflow_batch(sim, config) -> int:
    """Smallest batch whose outputs overflow the reserved-way buffer."""
    output_bytes = sim.mappings[0].output_bytes
    return int(config.output_buffer_bytes // output_bytes) + 1


class TestSpillPath:
    def test_no_spill_at_batch_one(self, sim):
        result = sim.run(1)
        assert result.spill_time == 0.0
        assert result.spill_energy == 0.0

    def test_no_spill_below_buffer_capacity(self, sim, config):
        batch = overflow_batch(sim, config) - 1
        result = sim.run(batch)
        assert result.spill_time == 0.0
        assert result.spill_energy == 0.0

    def test_overflow_charges_dump_and_reload(self, sim, config):
        batch = overflow_batch(sim, config)
        result = sim.run(batch)
        overflow = (batch * sim.mappings[0].output_bytes
                    - config.output_buffer_bytes)
        assert overflow > 0
        spilled = 2.0 * overflow  # dump + reload
        assert result.spill_time == pytest.approx(
            config.dram.transfer_time(spilled))
        assert result.spill_energy == pytest.approx(
            config.dram.transfer_energy(spilled))

    def test_spill_grows_with_batch(self, sim, config):
        batch = overflow_batch(sim, config)
        small = sim.run(batch)
        large = sim.run(2 * batch)
        assert large.spill_time > small.spill_time
        assert large.spill_energy > small.spill_energy

    def test_spill_included_in_totals(self, sim, config):
        batch = overflow_batch(sim, config)
        result = sim.run(batch)
        layer_time = sum(r.latency for r in result.layers)
        layer_energy = sum(r.schedule.total_energy for r in result.layers)
        assert result.total_time == pytest.approx(
            layer_time + result.spill_time)
        assert result.total_energy == pytest.approx(
            layer_energy + result.spill_energy)


class TestThroughputSocketScaling:
    def test_throughput_definition(self, sim, config):
        result = sim.run(4)
        assert sim.throughput(4) == pytest.approx(
            config.sockets * 4 / result.total_time)

    @pytest.mark.parametrize("sockets", [1, 2, 4])
    def test_linear_in_sockets(self, config, sockets):
        scaled = dataclasses.replace(config, sockets=sockets)
        net = conv_network()
        base = NeuralCacheSimulator(net, dataclasses.replace(config,
                                                             sockets=1))
        sim = NeuralCacheSimulator(net, scaled)
        assert sim.throughput(2) == pytest.approx(
            sockets * base.throughput(2))

    def test_latency_is_per_socket_and_unscaled(self, config):
        net = conv_network()
        one = NeuralCacheSimulator(net, dataclasses.replace(config,
                                                            sockets=1))
        two = NeuralCacheSimulator(net, dataclasses.replace(config,
                                                            sockets=2))
        assert one.latency(4) == pytest.approx(two.latency(4))

    def test_zero_socket_config_rejected(self, config):
        with pytest.raises(SimulationError):
            dataclasses.replace(config, sockets=0)
