"""Experiment-result containers and rendering helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.tables import format_table


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated table or figure.

    ``rows`` are machine-readable (lists of already-formatted cells plus a
    parallel ``data`` payload for assertions); ``render()`` produces the
    text that mirrors the paper's presentation.
    """

    name: str
    headers: tuple[str, ...]
    rows: tuple[tuple[str, ...], ...]
    data: dict = field(default_factory=dict)
    notes: tuple[str, ...] = ()

    def render(self) -> str:
        text = format_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text


def ratio_cell(measured: float, reference: float,
               precision: int = 2) -> str:
    """'measured (ref reference, x.xx of paper)' cell text."""
    if reference == 0:
        return f"{measured:.{precision}f} (ref 0)"
    return (f"{measured:.{precision}f} "
            f"({measured / reference:.2f}x of paper {reference:.{precision}f})")


def pct(fraction: float) -> str:
    """A fraction as a percent cell."""
    return f"{100 * fraction:.2f}%"
