"""Tests for the flexible bit-width extension (Sec. III-A)."""

import pytest

from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.core.precision import (
    MAX_FUNCTIONAL_BITS,
    MAX_PRECISION_BITS,
    LayerPrecision,
    config_for_precision,
    precision_sweep,
)
from repro.nn import build_inception_v3


@pytest.fixture(scope="module")
def net():
    return build_inception_v3()


@pytest.fixture(scope="module")
def sweep(net):
    return precision_sweep(net, bit_widths=(2, 4, 8))


class TestConfigForPrecision:
    def test_element_bits_set(self):
        config = config_for_precision(4)
        assert config.element_bits == 4

    def test_storage_regions_stay_byte_aligned(self):
        config = config_for_precision(4)
        base = NeuralCacheConfig()
        assert config.partial_sum_bits == base.partial_sum_bits
        assert config.reduction_bits == base.reduction_bits

    def test_base_fields_preserved(self):
        base = NeuralCacheConfig(sockets=4)
        config = config_for_precision(6, base)
        assert config.sockets == 4

    def test_bounds(self):
        with pytest.raises(SimulationError):
            config_for_precision(0)
        with pytest.raises(SimulationError):
            config_for_precision(MAX_PRECISION_BITS + 1)

    def test_bounds_error_names_the_supported_range(self):
        """Regression: out-of-range widths used to fall through to an
        opaque downstream failure; now the error states the 1..16
        contract up front."""
        with pytest.raises(SimulationError,
                           match=rf"1\.\.{MAX_PRECISION_BITS}"):
            config_for_precision(17)
        with pytest.raises(SimulationError,
                           match=rf"1\.\.{MAX_PRECISION_BITS}"):
            config_for_precision(-3)

    def test_non_integer_widths_rejected(self):
        for bad in (4.0, "8", None, True):
            with pytest.raises(SimulationError, match="integer bit width"):
                config_for_precision(bad)

    def test_sixteen_bit_elements_widen_the_accumulators(self):
        """9..16 bits is analytic-only double-byte mode: the partial-sum
        and reduction regions grow 3x/4x the element width so 49 taps
        cannot overflow."""
        config = config_for_precision(MAX_PRECISION_BITS)
        assert config.element_bits == 16
        assert config.partial_sum_bits == 48
        assert config.reduction_bits == 64

    def test_eight_bit_elements_keep_paper_accumulators(self):
        config = config_for_precision(8)
        base = NeuralCacheConfig()
        assert config.partial_sum_bits == base.partial_sum_bits
        assert config.reduction_bits == base.reduction_bits


class TestAnalyticIdentity:
    def test_inception_latency_bit_identical_without_a_table(self, net):
        """Networks with no precision table must charge exactly the
        pre-narrowing cycle model — pinned to the seed's float."""
        from repro.core.executor import NeuralCacheSimulator
        assert NeuralCacheSimulator(net).run().total_time \
            == 0.0040568930110328


class TestLayerPrecision:
    def test_default_and_overrides(self):
        table = LayerPrecision(default_bits=6, overrides={"conv": 4})
        assert table.bits_for("conv") == 4
        assert table.bits_for("anything-else") == 6

    def test_overrides_are_copied(self):
        src = {"conv": 4}
        table = LayerPrecision(overrides=src)
        src["conv"] = 2
        assert table.bits_for("conv") == 4

    def test_widths_capped_at_functional_range(self):
        """Functional tables stop at 8 bits — uint8 staging planes;
        wider elements go through config_for_precision instead."""
        with pytest.raises(SimulationError,
                           match=rf"1\.\.{MAX_FUNCTIONAL_BITS}"):
            LayerPrecision(default_bits=MAX_FUNCTIONAL_BITS + 1)
        with pytest.raises(SimulationError,
                           match=rf"1\.\.{MAX_FUNCTIONAL_BITS}"):
            LayerPrecision(overrides={"conv": 0})

    def test_non_integer_widths_rejected(self):
        with pytest.raises(SimulationError, match="integer bit width"):
            LayerPrecision(default_bits=4.0)
        with pytest.raises(SimulationError, match="integer bit width"):
            LayerPrecision(overrides={"conv": True})

    def test_validate_rejects_stale_override(self):
        from repro.engine.backend import tiny_verification_network
        net = tiny_verification_network()
        LayerPrecision(overrides={"conv": 4}).validate(net)
        with pytest.raises(SimulationError, match="unknown layer"):
            LayerPrecision(overrides={"conv_old": 4}).validate(net)

    def test_stale_override_fails_at_analytic_map_time(self):
        """The per-node analytic path validates an attached table too —
        a network carrying a stale override cannot silently run."""
        import dataclasses

        from repro.core.executor import NeuralCacheSimulator
        from repro.engine.backend import tiny_verification_network
        net = dataclasses.replace(
            tiny_verification_network(),
            precision=LayerPrecision(overrides={"nope": 4}))
        with pytest.raises(SimulationError, match="unknown layer"):
            NeuralCacheSimulator(net).run()

    def test_narrowing_speeds_up_the_analytic_model(self):
        """A 4-bit table cuts conv MAC serial cycles on the analytic
        simulator — the Stripes-style payoff."""
        import dataclasses

        from repro.core.executor import NeuralCacheSimulator
        from repro.engine.backend import tiny_verification_network
        net = tiny_verification_network()
        narrow = dataclasses.replace(
            net, precision=LayerPrecision(default_bits=4))
        wide = NeuralCacheSimulator(net).run()
        fast = NeuralCacheSimulator(narrow).run()
        assert fast.total_time < wide.total_time


class TestSweep:
    def test_mac_time_shrinks_with_precision(self, sweep):
        mac_times = [p.mac_time_s for p in sweep]
        assert mac_times == sorted(mac_times)  # 2-bit fastest

    def test_latency_monotone_in_bits(self, sweep):
        latencies = [p.latency_s for p in sweep]
        assert latencies == sorted(latencies)

    def test_diminishing_returns_from_data_movement(self, sweep):
        """Quartering precision gives a ~quadratic MAC win but far less
        total win: movement is unchanged (elements stay bytes) and the
        byte-aligned reduction/quantization widths are fixed."""
        p2, _, p8 = sweep
        mac_speedup = p8.mac_time_s / p2.mac_time_s
        total_speedup = p2.speedup_over(p8)
        assert mac_speedup > 4          # MAC cycles scale ~quadratically
        assert total_speedup < 2        # movement dominates
        assert total_speedup > 1.05

    def test_energy_tracks_compute(self, sweep):
        p2, _, p8 = sweep
        assert p2.energy_j < p8.energy_j

    def test_mac_cycles_scale_quadratically(self):
        """The per-MAC cost follows the multiply formula in the element
        width (derived preset, where no 8-bit override applies)."""
        from repro.sram.cost import CycleCosts
        costs = CycleCosts.derived()
        assert costs.mac(4, 24) < costs.mac(8, 24) / 2

    def test_empty_sweep_rejected(self, net):
        with pytest.raises(SimulationError):
            precision_sweep(net, bit_widths=())
