"""DRAM channel model for filter loading and batch output spills (Sec. V).

The paper measures filter-loading time with a C micro-benchmark that walks
exactly the cache sets a layer's filters occupy (the set decoding was
reverse-engineered), then scales by per-layer footprints. We substitute an
effective-bandwidth model: strided, set-indexed store streams into the LLC
achieve far below peak DDR4 bandwidth; the default 11 GB/s is calibrated so
filter loading lands at the paper's ~46% share of batch-1 inference time
(Fig. 14). DESIGN.md records this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import GeometryError
from repro.common.units import gbps_to_bytes_per_second, pj_to_joules

#: Effective bandwidth of set-walk filter loads, calibrated to Fig. 14.
DEFAULT_EFFECTIVE_BANDWIDTH_GBPS = 10.0

#: DDR4 access energy, an engineering estimate (~19 pJ/bit).
DEFAULT_DRAM_ENERGY_PJ_PER_BYTE = 150.0


@dataclass(frozen=True)
class DramModel:
    """Timing and energy of DRAM <-> LLC streams."""

    effective_bandwidth_gbps: float = DEFAULT_EFFECTIVE_BANDWIDTH_GBPS
    energy_pj_per_byte: float = DEFAULT_DRAM_ENERGY_PJ_PER_BYTE

    def __post_init__(self) -> None:
        if self.effective_bandwidth_gbps <= 0:
            raise GeometryError("DRAM bandwidth must be positive")
        if self.energy_pj_per_byte < 0:
            raise GeometryError("DRAM energy must be non-negative")

    @property
    def bytes_per_second(self) -> float:
        """Effective bandwidth in bytes/second."""
        return gbps_to_bytes_per_second(self.effective_bandwidth_gbps)

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to stream ``nbytes`` between DRAM and the LLC."""
        self._check(nbytes)
        return nbytes / self.bytes_per_second

    def transfer_energy(self, nbytes: float) -> float:
        """Joules to stream ``nbytes`` between DRAM and the LLC."""
        self._check(nbytes)
        return pj_to_joules(self.energy_pj_per_byte) * nbytes

    @staticmethod
    def _check(nbytes: float) -> None:
        if nbytes < 0:
            raise GeometryError(f"byte count must be non-negative, got {nbytes}")
