"""Calibrated baseline executor shared by the CPU and GPU models.

Timing model::

    latency(batch) = dispatch + batch * steady
    dispatch       = per_op_overhead * number_of_layers
    steady         = normalised roofline sum == 2*MACs / (peak * efficiency)

``dispatch`` captures framework/kernel-launch costs that the paper's
batch-throughput curves amortise; ``steady`` is the asymptotic per-image
time. Per-layer latencies (Fig. 13) distribute ``dispatch + steady``
proportionally to each layer's roofline time and op count. Power is the
paper's measured average (RAPL / nvidia-smi), making energy = power x
latency — which is exactly how Table III's numbers relate.
"""

from __future__ import annotations

from repro.baselines.roofline import DeviceSpec, LayerWork, roofline_time
from repro.common.errors import SimulationError
from repro.nn.graph import Network
from repro.nn.layers import AvgPool, MaxPool


def network_work(network: Network) -> list[LayerWork]:
    """FLOPs and memory traffic per mappable layer."""
    work: list[LayerWork] = []
    conv_names = {n.name for n in network.conv_nodes()}
    for node in network.layer_nodes():
        in_shape = network.input_shape_of(node.name)
        in_bytes = in_shape[0] * in_shape[1] * in_shape[2] * 4  # fp32
        out_shape = node.output_shape
        out_bytes = out_shape[0] * out_shape[1] * out_shape[2] * 4
        if node.name in conv_names:
            conv = network.conv_of(node)
            flops = 2.0 * conv.macs(in_shape)
            weights = conv.weight_bytes(in_shape) * 4
            work.append(LayerWork(node.name, node.group, flops,
                                  in_bytes + out_bytes + weights))
        elif isinstance(node.layer, (MaxPool, AvgPool)):
            window = node.layer.window
            flops = float(window) * out_shape[0] * out_shape[1] * out_shape[2]
            work.append(LayerWork(node.name, node.group, flops,
                                  in_bytes + out_bytes))
    return work


class CalibratedBaseline:
    """A measured-anchor roofline baseline for one device."""

    #: Subclasses set these calibration constants.
    spec: DeviceSpec
    compute_efficiency: float
    memory_efficiency: float
    per_op_overhead_s: float
    measured_power_w: float

    def __init__(self, network: Network):
        self.network = network
        self.work = network_work(network)
        if not self.work:
            raise SimulationError("network has no measurable layers")
        self._raw_times = [
            roofline_time(w.flops, w.traffic_bytes, self.spec.peak_flops,
                          self.compute_efficiency,
                          self.spec.memory_bandwidth,
                          self.memory_efficiency)
            for w in self.work]

    # -- aggregate timing ------------------------------------------------------
    @property
    def dispatch_time(self) -> float:
        """Fixed per-run overhead (framework dispatch, kernel launches)."""
        return self.per_op_overhead_s * len(self.work)

    @property
    def steady_time_per_image(self) -> float:
        """Asymptotic per-image execution time (large-batch limit)."""
        return sum(self._raw_times)

    def latency(self, batch_size: int = 1) -> float:
        """Seconds to run one batch."""
        if batch_size <= 0:
            raise SimulationError(
                f"batch size must be positive, got {batch_size}")
        return self.dispatch_time + batch_size * self.steady_time_per_image

    def throughput(self, batch_size: int = 1) -> float:
        """Inferences per second at the given batch size."""
        return batch_size / self.latency(batch_size)

    def max_throughput(self) -> float:
        """The large-batch plateau (Fig. 16's right edge)."""
        return 1.0 / self.steady_time_per_image

    # -- per-layer distribution (Fig. 13) ----------------------------------------
    def group_latency(self, batch_size: int = 1) -> dict[str, float]:
        """Batch-1 latency per Table-I group.

        The dispatch overhead spreads evenly over ops; the execution time
        follows each layer's roofline share.
        """
        total = self.latency(batch_size)
        steady_total = self.steady_time_per_image
        per_op_dispatch = self.dispatch_time / len(self.work)
        out: dict[str, float] = {}
        for w, raw in zip(self.work, self._raw_times):
            execution = (total - self.dispatch_time) * (raw / steady_total)
            out[w.group] = out.get(w.group, 0.0) + execution + per_op_dispatch
        return out

    # -- energy / power -----------------------------------------------------------
    @property
    def average_power(self) -> float:
        """The paper's measured average power for this device."""
        return self.measured_power_w

    def energy(self, batch_size: int = 1) -> float:
        """Joules for one batch: measured power x latency."""
        return self.measured_power_w * self.latency(batch_size)

    def energy_per_image(self, batch_size: int = 1) -> float:
        return self.energy(batch_size) / batch_size
