"""FaultPlan / PoolFault: validation and the deterministic schedule."""

import pickle

import pytest

from repro.common.errors import SimulationError
from repro.faults import FaultPlan, HardwareFaultModel, PoolFault


class TestPoolFaultValidation:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(SimulationError, match="unknown pool fault"):
            PoolFault(kind="explode")

    @pytest.mark.parametrize("kind", ["kill", "drop"])
    def test_reply_destroying_faults_need_room_for_the_retry(self, kind):
        # every=1 would also destroy the re-dispatched retry, forever.
        with pytest.raises(SimulationError, match="every >= 2"):
            PoolFault(kind=kind, every=1)
        PoolFault(kind=kind, every=2)       # the minimum that can heal

    def test_delay_may_fire_on_every_message(self):
        # A delayed reply still arrives; every=1 is survivable.
        assert PoolFault(kind="delay", every=1).every == 1

    def test_cadence_delay_and_shard_bounds(self):
        with pytest.raises(SimulationError, match=">= 1"):
            PoolFault(kind="delay", every=0)
        with pytest.raises(SimulationError, match="non-negative"):
            PoolFault(kind="delay", delay_s=-0.1)
        with pytest.raises(SimulationError, match="non-negative"):
            PoolFault(kind="delay", shard=-1)


class TestFaultPlan:
    def test_pool_entries_must_be_pool_faults(self):
        with pytest.raises(SimulationError, match="PoolFault"):
            FaultPlan(pool=("kill",))

    def test_schedule_is_a_pure_function_of_shard_and_seq(self):
        plan = FaultPlan(pool=(PoolFault(kind="kill", shard=1, every=3),))
        fired = [(shard, seq)
                 for shard in (0, 1) for seq in range(1, 8)
                 if plan.pool_action(shard, seq) is not None]
        # Only shard 1, on its 3rd and 6th run message (seq starts at 1).
        assert fired == [(1, 3), (1, 6)]

    def test_broadcast_fault_targets_every_shard(self):
        plan = FaultPlan(pool=(PoolFault(kind="delay", every=2),))
        assert plan.pool_action(0, 2) is not None
        assert plan.pool_action(5, 4) is not None
        assert plan.pool_action(5, 3) is None

    def test_first_matching_fault_wins(self):
        targeted = PoolFault(kind="drop", shard=0, every=2)
        broadcast = PoolFault(kind="delay", every=2)
        plan = FaultPlan(pool=(targeted, broadcast))
        assert plan.pool_action(0, 2) is targeted
        assert plan.pool_action(1, 2) is broadcast

    def test_plans_pickle_across_the_fork_boundary(self):
        plan = FaultPlan(
            seed=3,
            pool=(PoolFault(kind="kill", shard=0, every=2),),
            hardware=HardwareFaultModel(seed=1, stuck_rate=1e-5))
        assert pickle.loads(pickle.dumps(plan)) == plan
