"""Sec. VI-A worked example: Conv2d_2b_3x3.

Paper: ~32k convolutions in parallel, 43 serial, 2784 cycles per
convolution (236/MAC x 9 + ~660 reduction), 0.0479 ms of convolution time,
99.7% utilization.
"""

from repro.analysis import section6a_example
from repro.config import NeuralCacheConfig
from repro.core.mapping import map_conv
from repro.core.schedule import mac_cycles_per_pass, reduction_cycles_per_pass
from repro.nn import build_inception_v3


def regenerate_example():
    config = NeuralCacheConfig()
    network = build_inception_v3()
    node = network.node("Conv2d_2b_3x3")
    mapping = map_conv(config, node.name, network.conv_of(node),
                       network.input_shape_of(node.name))
    mac = mac_cycles_per_pass(config, mapping)
    reduce_c = reduction_cycles_per_pass(config, mapping)
    return mapping, mac + reduce_c


def test_section6a_worked_example(benchmark, record):
    mapping, per_conv = benchmark(regenerate_example)
    assert mapping.parallel_outputs == 32256
    assert mapping.serial_passes == 43
    assert abs(mapping.utilization - 0.997) < 0.001
    assert abs(per_conv - 2784) < 10
    record(section6a_example())
