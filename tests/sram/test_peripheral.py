"""Unit tests for the column peripheral logic (Figure 7)."""

import numpy as np
import pytest

from repro.common.errors import ArrayStateError
from repro.sram import ColumnPeriphery, WritebackSelect


def bits(values):
    return np.array(values, dtype=np.uint8)


class TestLatches:
    def test_carry_starts_cleared_and_tag_enabled(self):
        p = ColumnPeriphery(4)
        assert np.all(p.carry == 0)
        assert np.all(p.tag == 1)

    def test_set_and_clear_carry(self):
        p = ColumnPeriphery(4)
        p.set_carry()
        assert np.all(p.carry == 1)
        p.clear_carry()
        assert np.all(p.carry == 0)

    def test_load_tag_and_inverted_load(self):
        p = ColumnPeriphery(4)
        p.load_tag(bits([1, 0, 1, 0]))
        assert np.array_equal(p.tag, [1, 0, 1, 0])
        p.load_tag(bits([1, 0, 1, 0]), invert=True)
        assert np.array_equal(p.tag, [0, 1, 0, 1])

    def test_write_mask_follows_predication(self):
        p = ColumnPeriphery(4)
        p.load_tag(bits([0, 1, 1, 0]))
        assert p.write_mask(predicated=False) is None
        assert np.array_equal(p.write_mask(predicated=True), [0, 1, 1, 0])

    def test_latch_loads_reject_non_binary_values(self):
        # Regression: values > 1 used to latch silently and corrupt the
        # next full_add (mirrors the FleetPeriphery check).
        p = ColumnPeriphery(4)
        with pytest.raises(ArrayStateError, match="0 or 1"):
            p.load_tag(bits([0, 2, 0, 0]))
        with pytest.raises(ArrayStateError, match="0 or 1"):
            p.load_carry(bits([3, 0, 0, 0]))


class TestFullAdder:
    def test_xor_from_rails_truth_table(self):
        # (A, B) in {00, 01, 10, 11} -> AND = 0001, NOR = 1000, XOR = 0110
        bl_and = bits([0, 0, 0, 1])
        blb_nor = bits([1, 0, 0, 0])
        assert np.array_equal(
            ColumnPeriphery.xor_from_rails(bl_and, blb_nor), [0, 1, 1, 0])

    @pytest.mark.parametrize("a,b,cin,s,cout", [
        (0, 0, 0, 0, 0), (0, 1, 0, 1, 0), (1, 0, 0, 1, 0), (1, 1, 0, 0, 1),
        (0, 0, 1, 1, 0), (0, 1, 1, 0, 1), (1, 0, 1, 0, 1), (1, 1, 1, 1, 1),
    ])
    def test_full_add_truth_table(self, a, b, cin, s, cout):
        p = ColumnPeriphery(1)
        p.load_carry(bits([cin]))
        bl_and = bits([a & b])
        blb_nor = bits([(1 - a) & (1 - b)])
        total, carry = p.full_add(bl_and, blb_nor)
        assert total[0] == s
        assert carry[0] == cout
        assert p.carry[0] == cout  # latch updated for the next cycle

    def test_full_add_vectorised(self):
        p = ColumnPeriphery(8)
        a = bits([0, 0, 0, 0, 1, 1, 1, 1])
        b = bits([0, 0, 1, 1, 0, 0, 1, 1])
        cin = bits([0, 1, 0, 1, 0, 1, 0, 1])
        p.load_carry(cin)
        total, carry = p.full_add(a & b, (1 - a) & (1 - b))
        expected = a + b + cin
        assert np.array_equal(total, expected & 1)
        assert np.array_equal(carry, expected >> 1)


class TestWritebackMux:
    def test_select_sum(self):
        p = ColumnPeriphery(2)
        assert np.array_equal(
            p.select(WritebackSelect.SUM, total=bits([1, 0])), [1, 0])

    def test_select_carry_and_tag(self):
        p = ColumnPeriphery(2)
        p.load_carry(bits([1, 0]))
        p.load_tag(bits([0, 1]))
        assert np.array_equal(p.select(WritebackSelect.CARRY), [1, 0])
        assert np.array_equal(p.select(WritebackSelect.TAG), [0, 1])

    def test_select_data_in(self):
        p = ColumnPeriphery(2)
        assert np.array_equal(
            p.select(WritebackSelect.DATA_IN, data_in=bits([1, 1])), [1, 1])

    def test_missing_inputs_rejected(self):
        p = ColumnPeriphery(2)
        with pytest.raises(ArrayStateError):
            p.select(WritebackSelect.SUM)
        with pytest.raises(ArrayStateError):
            p.select(WritebackSelect.DATA_IN)

    def test_shape_validation(self):
        p = ColumnPeriphery(4)
        with pytest.raises(ArrayStateError):
            p.load_tag(bits([1, 0]))
