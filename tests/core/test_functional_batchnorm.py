"""Bit-exact tests for explicit in-cache batch normalisation (Sec. IV-D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import QuantizationError, SimulationError
from repro.core.functional import FunctionalBatchNorm, FunctionalExecutor
from repro.nn import (
    Conv2D,
    Network,
    QuantizedTensor,
    ReferenceExecutor,
    initialise_weights,
)
from repro.nn.layers import QuantizedBatchNorm
from repro.nn.reference import BnWeights, bn_apply
from repro.nn.tensor import QuantParams

RNG = np.random.default_rng(404)


def random_bn(channels, shift=12, seed=0):
    rng = np.random.default_rng(seed)
    multiplier = rng.integers(1 << 10, 1 << 14, channels, dtype=np.int64)
    bias = rng.integers(-(1 << 20), 1 << 20, channels, dtype=np.int64)
    return BnWeights(multiplier=multiplier, bias=bias, shift=shift)


class TestBnWeights:
    def test_validation(self):
        with pytest.raises(QuantizationError):
            BnWeights(multiplier=np.array([0]), bias=np.array([0]), shift=2)
        with pytest.raises(QuantizationError):
            BnWeights(multiplier=np.array([1 << 16]), bias=np.array([0]),
                      shift=2)
        with pytest.raises(QuantizationError):
            BnWeights(multiplier=np.array([5]), bias=np.array([0]), shift=-1)
        with pytest.raises(QuantizationError):
            BnWeights(multiplier=np.array([5, 6]), bias=np.array([0]),
                      shift=1)

    def test_bn_apply_channel_count_checked(self):
        bn = random_bn(4)
        with pytest.raises(QuantizationError):
            bn_apply(np.zeros((2, 2, 3), dtype=np.uint8), bn, 0, True)


class TestFunctionalBatchNorm:
    @pytest.mark.parametrize("relu", [True, False])
    @pytest.mark.parametrize("zp_out", [0, 30, 128])
    def test_matches_reference(self, relu, zp_out):
        shape = (5, 5, 6)
        bn = random_bn(6, seed=3)
        q = RNG.integers(0, 256, shape).astype(np.uint8)
        x = QuantizedTensor(q, QuantParams(0.02, 10))
        engine = FunctionalBatchNorm(shape, bn, relu=relu, zp_out=zp_out)
        got = engine.run(x)
        expected = bn_apply(q, bn, zp_out, relu)
        assert np.array_equal(got.data, expected)

    def test_saturation(self):
        shape = (1, 1, 2)
        bn = BnWeights(multiplier=np.array([1 << 15, 1 << 15]),
                       bias=np.array([0, -(1 << 24)]), shift=2)
        q = np.array([255, 1], dtype=np.uint8).reshape(shape)
        x = QuantizedTensor(q, QuantParams(0.02, 0))
        got = FunctionalBatchNorm(shape, bn, relu=True).run(x)
        expected = bn_apply(q, bn, 0, True)
        assert np.array_equal(got.data, expected)
        assert got.data.ravel().tolist() == [255, 0]

    def test_multi_batch(self):
        shape = (12, 12, 4)   # 576 outputs -> 3 passes of 256
        bn = random_bn(4, seed=5)
        q = RNG.integers(0, 256, shape).astype(np.uint8)
        x = QuantizedTensor(q, QuantParams(0.02, 7))
        engine = FunctionalBatchNorm(shape, bn, relu=True, zp_out=5)
        got = engine.run(x)
        assert np.array_equal(got.data, bn_apply(q, bn, 5, True))
        assert engine.report.passes == 3
        assert engine.report.quantization > 0

    def test_channel_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            FunctionalBatchNorm((4, 4, 3), random_bn(5))

    def test_oversized_shift_rejected(self):
        bn = BnWeights(multiplier=np.array([5]), bias=np.array([0]),
                       shift=30)
        with pytest.raises(SimulationError):
            FunctionalBatchNorm((2, 2, 1), bn, relu=True)

    def test_input_shape_checked(self):
        engine = FunctionalBatchNorm((4, 4, 2), random_bn(2))
        bad = QuantizedTensor(np.zeros((2, 2, 2), dtype=np.uint8),
                              QuantParams(1.0, 0))
        with pytest.raises(SimulationError):
            engine.run(bad)


class TestEndToEndWithBn:
    def build_net(self):
        net = Network(name="bn-net")
        x = net.add_input("in", (6, 6, 3))
        x = net.add("conv", Conv2D(4, (3, 3), relu=False), x)
        x = net.add("bn", QuantizedBatchNorm(relu=True), x)
        net.add("conv2", Conv2D(2, (1, 1)), x)
        return net

    def test_bn_network_bit_exact(self):
        net = self.build_net()
        weights = initialise_weights(net, seed=21)
        assert "bn" in weights.bn_weights
        image = QuantizedTensor.from_real(
            RNG.uniform(0, 6, (6, 6, 3)), weights.input_params)
        golden = ReferenceExecutor(net, weights).run(image)
        in_cache = FunctionalExecutor(net, weights).run(image)
        for node in net.layer_nodes():
            assert np.array_equal(in_cache[node.name].data,
                                  golden[node.name].data), node.name

    def test_bn_maps_and_schedules(self):
        from repro.core.executor import NeuralCacheSimulator
        net = self.build_net()
        sim = NeuralCacheSimulator(net)
        mapping = sim.mapping_for("bn")
        assert mapping.kind == "batchnorm"
        assert mapping.filter_load_bytes == 4 * 6   # 2B mult + 4B bias
        result = sim.run()
        assert result.total_time > 0


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=4, max_value=20), st.data())
@settings(max_examples=25, deadline=None)
def test_bn_property(zp_out, shift, data):
    channels = 4
    cols = channels * 2
    shape = (1, 2, channels)
    multiplier = np.array(data.draw(
        st.lists(st.integers(1, (1 << 16) - 1), min_size=channels,
                 max_size=channels)), dtype=np.int64)
    bias = np.array(data.draw(
        st.lists(st.integers(-(1 << 24), 1 << 24), min_size=channels,
                 max_size=channels)), dtype=np.int64)
    bn = BnWeights(multiplier=multiplier, bias=bias, shift=shift)
    q = np.array(data.draw(st.lists(st.integers(0, 255), min_size=cols,
                                    max_size=cols)),
                 dtype=np.uint8).reshape(shape)
    x = QuantizedTensor(q, QuantParams(0.02, 3))
    got = FunctionalBatchNorm(shape, bn, relu=True, zp_out=zp_out).run(x)
    assert np.array_equal(got.data, bn_apply(q, bn, zp_out, True))
