"""Bit-plane sparsity engine: skipping cycles must never change a bit.

The sparsity engine elides multiply/add steps whose operand bit plane
is all-zero fleet-wide, so execution becomes data-dependent. The whole
feature is admissible only under two invariants, pinned here:

- **Bit-exactness** — sparse outputs equal dense outputs exactly, on
  every functional backend, for arbitrary inputs (property-tested with
  the shadow-state sanitizer armed, so skipped planes are also proven
  all-zero at the store level).
- **Dense accounting is untouched** — ``CycleReport.dense_cycles``
  (actual + skipped) equals the dense run's total, which itself still
  equals the pre-sparsity seed model. Cycle-identity gates keep pinning
  the paper's data-independent numbers whatever the input sparsity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.functional import CycleReport
from repro.engine.backend import (
    FleetExecutor,
    deterministic_images,
    tiny_verification_network,
)
from repro.engine.sharding import ShardedBackend
from repro.nn import QuantizedTensor

#: The tiny verification network's per-image report before the sparsity
#: engine existed. Dense runs — and sparse runs' ``dense_cycles`` — must
#: reproduce it exactly.
SEED_TINY_REPORT = CycleReport(mac=20592, reduction=4896,
                               quantization=2890, pooling=78, passes=17)


@pytest.fixture(scope="module")
def tiny_net():
    return tiny_verification_network()


@pytest.fixture(scope="module")
def tiny_weights(tiny_net):
    return FleetExecutor(packed=True).weights_for(tiny_net)


def images_with_cap(net, weights, cap, seed, batch=1):
    """Uniform uint8 images in ``[0, cap]`` — capping the magnitude
    leaves the high bit planes all-zero, which is what the fleet-wide
    skip detector keys on."""
    rng = np.random.default_rng(seed)
    data = rng.integers(0, cap + 1, size=net.input_shape, dtype=np.uint8)
    return [QuantizedTensor(np.array(data), weights.input_params)
            for _ in range(batch)]


def run_pair(net, images, weights, packed):
    """Fresh dense and sparse executors over the same stream, both with
    the shadow-state sanitizer armed."""
    dense = FleetExecutor(packed=packed, sanitize=True).run_requests(
        net, images, weights)
    sparse = FleetExecutor(packed=packed, sparsity=True,
                           sanitize=True).run_requests(net, images, weights)
    return dense, sparse


def assert_bit_exact(dense, sparse):
    assert len(sparse.responses) == len(dense.responses)
    for got, want in zip(sparse.responses, dense.responses):
        assert np.array_equal(got.data, want.data)
        assert got.params == want.params


class TestBitExactness:
    @pytest.mark.parametrize("packed", [False, True])
    @settings(max_examples=8, deadline=None)
    @given(cap=st.sampled_from([255, 63, 15, 3, 0]),
           seed=st.integers(0, 2**16))
    def test_sparse_matches_dense_on_random_images(self, tiny_net,
                                                   tiny_weights, packed,
                                                   cap, seed):
        """The property: for arbitrary inputs, skipping changes cycle
        counts only — never outputs, never the dense-equivalent cost."""
        images = images_with_cap(tiny_net, tiny_weights, cap, seed)
        dense, sparse = run_pair(tiny_net, images, tiny_weights, packed)
        assert_bit_exact(dense, sparse)
        assert sparse.report.dense_cycles == dense.report.total
        assert dense.report.skipped == 0
        assert sparse.report.total == (sparse.report.dense_cycles
                                       - sparse.report.skipped)

    def test_sharded_pool_sparse_bit_exact(self, tiny_net, tiny_weights):
        """The deepest stack: sparsity knobs cross the pool protocol to
        persistent workers and still land bit-exact."""
        images = deterministic_images(tiny_net, tiny_weights, 0, 3)
        dense = ShardedBackend(shards=2, sanitize=True).run_requests(
            tiny_net, images)
        sparse = ShardedBackend(shards=2, driver="pool", sparsity=True,
                                sanitize=True).run_requests(tiny_net,
                                                            images)
        assert_bit_exact(dense, sparse)
        assert sparse.report.skipped > 0
        assert sparse.report.dense_cycles == dense.report.total
        # The aggregate matches an unsharded sparse run of the same
        # stream: sharding must not change what gets skipped.
        direct = FleetExecutor(packed=True, sparsity=True).run_requests(
            tiny_net, images, tiny_weights)
        assert sparse.report == direct.report

    def test_all_zero_image_skips_most_of_the_mac_phase(self, tiny_net,
                                                        tiny_weights):
        """The extreme: a zero image leaves every activation plane
        empty, so the modeled speedup is large (>2x on the tiny net)."""
        images = images_with_cap(tiny_net, tiny_weights, 0, seed=0)
        _, sparse = run_pair(tiny_net, images, tiny_weights, packed=True)
        assert sparse.report.dense_cycles / sparse.report.total > 2.0


class TestDenseIdentity:
    """dense_cycles is the pre-sparsity cycle model, bit for bit."""

    def test_dense_run_reproduces_seed_report(self, tiny_net,
                                              tiny_weights):
        images = deterministic_images(tiny_net, tiny_weights, 0, 1)
        dense, sparse = run_pair(tiny_net, images, tiny_weights,
                                 packed=True)
        assert dense.report == SEED_TINY_REPORT
        assert dense.report.total == 28456
        assert dense.report.dense_cycles == dense.report.total
        assert sparse.report.skipped > 0
        assert sparse.report.dense_cycles == 28456

    def test_batched_dense_cycles_scale_with_images(self, tiny_net,
                                                    tiny_weights):
        images = deterministic_images(tiny_net, tiny_weights, 0, 2)
        _, sparse = run_pair(tiny_net, images, tiny_weights, packed=True)
        assert sparse.report.dense_cycles == 2 * 28456


class TestSanitizerEnvVar:
    def test_env_var_arms_sanitizer_for_sparse_runs(self, tiny_net,
                                                    tiny_weights,
                                                    monkeypatch):
        """``NEURALCACHE_SANITIZE=1`` sanitizes a sparse run without
        code changes — and the run still completes bit-exact, i.e. the
        skip engine survives the plane_any cross-check."""
        monkeypatch.setenv("NEURALCACHE_SANITIZE", "1")
        images = deterministic_images(tiny_net, tiny_weights, 0, 1)
        dense = FleetExecutor(packed=True).run_requests(tiny_net, images,
                                                        tiny_weights)
        sparse = FleetExecutor(packed=True, sparsity=True).run_requests(
            tiny_net, images, tiny_weights)
        assert_bit_exact(dense, sparse)
        assert sparse.report.dense_cycles == dense.report.total


class TestSkippedAccounting:
    """CycleReport carries the skipped counter through its algebra."""

    def test_merged_sums_skipped(self):
        a = CycleReport(mac=10, skipped=3)
        b = CycleReport(mac=20, reduction=5, skipped=4)
        merged = a.merged(b)
        assert merged.skipped == 7
        assert merged.total == 35
        assert merged.dense_cycles == 42

    def test_scaled_multiplies_skipped(self):
        report = CycleReport(mac=100, skipped=25, passes=2)
        scaled = report.scaled(3)
        assert scaled.skipped == 75
        assert scaled.dense_cycles == 3 * report.dense_cycles

    def test_dense_report_dense_cycles_is_total(self):
        report = CycleReport(mac=7, reduction=2, quantization=1)
        assert report.skipped == 0
        assert report.dense_cycles == report.total == 10
