"""Quantized tensors (Sec. IV: 8-bit precision, quantized inputs/filters).

The scheme is the asymmetric uint8 quantization used by TensorFlow/gemmlowp
(and adopted by the TPU, which the paper cites): a real value ``r`` is
represented by an unsigned byte ``q`` with

    r = scale * (q - zero_point)

Accumulation happens in 32-bit integers; results are *requantized* back to
uint8 with a fixed-point multiplier (see :class:`RequantParams`), mirroring
the paper's flow where the CPU computes two integers from the layer's
min/max and the cache applies multiply/add/shift in place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import QuantizationError

UINT8_LEVELS = 255


@dataclass(frozen=True)
class QuantParams:
    """Affine quantization parameters for one tensor."""

    scale: float
    zero_point: int

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise QuantizationError(f"scale must be positive, got {self.scale}")
        if not 0 <= self.zero_point <= UINT8_LEVELS:
            raise QuantizationError(
                f"zero point must be a uint8 value, got {self.zero_point}")

    @classmethod
    def from_range(cls, min_value: float, max_value: float) -> "QuantParams":
        """TF-style parameters covering ``[min_value, max_value]``.

        The range is widened to include zero (so that zero is exactly
        representable, which padding and ReLU require).
        """
        if not np.isfinite(min_value) or not np.isfinite(max_value):
            raise QuantizationError("range must be finite")
        if min_value > max_value:
            raise QuantizationError(
                f"empty range: [{min_value}, {max_value}]")
        min_value = min(min_value, 0.0)
        max_value = max(max_value, 0.0)
        if min_value == max_value:
            # Degenerate all-zero tensor; any positive scale works.
            return cls(scale=1.0, zero_point=0)
        scale = (max_value - min_value) / UINT8_LEVELS
        zero_point = int(round(-min_value / scale))
        zero_point = max(0, min(UINT8_LEVELS, zero_point))
        return cls(scale=scale, zero_point=zero_point)

    def quantize(self, real: np.ndarray) -> np.ndarray:
        """Real values -> uint8 codes (round-to-nearest, saturating)."""
        q = np.round(np.asarray(real, dtype=np.float64) / self.scale
                     + self.zero_point)
        return np.clip(q, 0, UINT8_LEVELS).astype(np.uint8)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        """uint8 codes -> real values."""
        return (np.asarray(q, dtype=np.float64) - self.zero_point) * self.scale


@dataclass(frozen=True)
class QuantizedTensor:
    """A uint8 tensor with its quantization parameters."""

    data: np.ndarray
    params: QuantParams

    def __post_init__(self) -> None:
        if self.data.dtype != np.uint8:
            raise QuantizationError(
                f"quantized data must be uint8, got {self.data.dtype}")

    @classmethod
    def from_real(cls, real: np.ndarray,
                  params: QuantParams | None = None) -> "QuantizedTensor":
        """Quantize a real tensor (range taken from the data by default)."""
        real = np.asarray(real, dtype=np.float64)
        if params is None:
            params = QuantParams.from_range(float(real.min()),
                                            float(real.max()))
        return cls(data=params.quantize(real), params=params)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def nbytes(self) -> int:
        """Storage footprint: one byte per element."""
        return self.data.size

    def dequantize(self) -> np.ndarray:
        """Back to real values."""
        return self.params.dequantize(self.data)


def round_shift(value: np.ndarray, shift: int) -> np.ndarray:
    """Round-half-up right shift, the fixed-point rounding both execution
    paths share: ``(value + 2**(shift-1)) >> shift``."""
    if shift < 0:
        raise QuantizationError(f"shift must be non-negative, got {shift}")
    value = np.asarray(value, dtype=np.int64)
    if shift == 0:
        return value
    return (value + (np.int64(1) << (shift - 1))) >> shift


@dataclass(frozen=True)
class RequantParams:
    """Fixed-point requantization: acc32 -> uint8.

    ``q = clamp(zero_point + round_shift(acc * multiplier, shift))``

    The real-valued ratio ``scale_acc / scale_out`` is represented as
    ``multiplier / 2**shift`` with a 16-bit multiplier — the "two unsigned
    integers sent back by the CPU" of Sec. IV-D.
    """

    multiplier: int
    shift: int
    zero_point: int
    #: Bits available for the multiplier (16 keeps in-cache multiplies cheap).
    multiplier_bits: int = 16

    def __post_init__(self) -> None:
        if not 0 < self.multiplier < (1 << self.multiplier_bits):
            raise QuantizationError(
                f"multiplier must fit in {self.multiplier_bits} bits and be "
                f"positive, got {self.multiplier}")
        if self.shift < 0:
            raise QuantizationError(f"shift must be >= 0, got {self.shift}")
        if not 0 <= self.zero_point <= UINT8_LEVELS:
            raise QuantizationError(
                f"zero point must be a uint8 value, got {self.zero_point}")

    @classmethod
    def from_scales(cls, acc_scale: float, out: QuantParams,
                    multiplier_bits: int = 16) -> "RequantParams":
        """Fixed-point encoding of ``acc_scale / out.scale``.

        ``acc_scale`` is the accumulator's real value per unit (for a conv,
        ``input_scale * weight_scale``). The ratio is < 1 in practice; the
        shift is chosen so the multiplier uses its full precision.
        """
        if acc_scale <= 0:
            raise QuantizationError("accumulator scale must be positive")
        ratio = acc_scale / out.scale
        if ratio <= 0:
            raise QuantizationError("requantization ratio must be positive")
        shift = 0
        while ratio * (1 << (shift + 1)) < (1 << multiplier_bits) and shift < 62:
            shift += 1
        multiplier = int(round(ratio * (1 << shift)))
        multiplier = max(1, min((1 << multiplier_bits) - 1, multiplier))
        return cls(multiplier=multiplier, shift=shift, zero_point=out.zero_point,
                   multiplier_bits=multiplier_bits)

    def apply(self, acc: np.ndarray) -> np.ndarray:
        """Requantize int accumulators to uint8 (both paths share this)."""
        acc = np.asarray(acc, dtype=np.int64)
        scaled = round_shift(acc * np.int64(self.multiplier), self.shift)
        return np.clip(scaled + self.zero_point, 0, UINT8_LEVELS).astype(np.uint8)
