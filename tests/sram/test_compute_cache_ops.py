"""Tests for the Compute Cache heritage operations (Sec. II-B).

Neural Cache builds on Compute Cache's bit-parallel logicals, equality
comparison and search; these run directly off the sensed AND/NOR rails
with no bit-line interaction.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ArrayStateError
from repro.sram import BitSerialUnit, CycleCosts, Operand, SRAMArray

COSTS = CycleCosts.derived()
RNG = np.random.default_rng(55)


def fresh_unit(cols=64):
    return BitSerialUnit(SRAMArray(rows=64, cols=cols))


def loaded(n=8):
    unit = fresh_unit()
    a, b = Operand(0, n), Operand(n, n)
    av = RNG.integers(0, 1 << n, unit.cols, dtype=np.int64)
    bv = RNG.integers(0, 1 << n, unit.cols, dtype=np.int64)
    unit.write_values(a, av)
    unit.write_values(b, bv)
    return unit, a, b, av, bv


class TestLogicals:
    def test_and(self):
        unit, a, b, av, bv = loaded()
        dst = Operand(16, 8)
        unit.logical_and(a, b, dst)
        assert np.array_equal(unit.read_values(dst), av & bv)
        assert unit.cycles == COSTS.logical(8)

    def test_nor(self):
        unit, a, b, av, bv = loaded()
        dst = Operand(16, 8)
        unit.logical_nor(a, b, dst)
        assert np.array_equal(unit.read_values(dst), ~(av | bv) & 0xFF)
        assert unit.cycles == COSTS.logical(8)

    def test_or(self):
        unit, a, b, av, bv = loaded()
        dst = Operand(16, 8)
        unit.logical_or(a, b, dst)
        assert np.array_equal(unit.read_values(dst), av | bv)
        assert unit.cycles == COSTS.logical_or(8)

    def test_xor(self):
        unit, a, b, av, bv = loaded()
        dst = Operand(16, 8)
        unit.logical_xor(a, b, dst)
        assert np.array_equal(unit.read_values(dst), av ^ bv)
        assert unit.cycles == COSTS.logical(8)

    def test_width_mismatch_rejected(self):
        unit = fresh_unit()
        with pytest.raises(Exception):
            unit.logical_and(Operand(0, 8), Operand(8, 4), Operand(16, 8))

    def test_in_place_xor_is_safe(self):
        # dst may alias a: each bit is written after it is sensed.
        unit, a, b, av, bv = loaded()
        unit.logical_xor(a, b, a)
        assert np.array_equal(unit.read_values(a), av ^ bv)


class TestEqualityCompare:
    def test_flags_equal_columns(self):
        unit = fresh_unit()
        a, b = Operand(0, 8), Operand(8, 8)
        av = RNG.integers(0, 256, unit.cols, dtype=np.int64)
        bv = av.copy()
        differ = RNG.choice(unit.cols, size=unit.cols // 2, replace=False)
        bv[differ] = (bv[differ] + 1) % 256
        unit.write_values(a, av)
        unit.write_values(b, bv)
        unit.equality_compare(a, b, dst_row=20)
        flags = unit.array.read_row(20)
        assert np.array_equal(flags.astype(np.int64),
                              (av == bv).astype(np.int64))
        assert unit.cycles == COSTS.equality_compare(8)

    def test_all_equal(self):
        unit = fresh_unit()
        a, b = Operand(0, 4), Operand(4, 4)
        unit.write_values(a, 9)
        unit.write_values(b, 9)
        unit.equality_compare(a, b, dst_row=10)
        assert np.all(unit.array.read_row(10) == 1)


class TestSearch:
    def test_finds_matching_columns(self):
        unit = fresh_unit()
        hay = Operand(0, 8)
        values = RNG.integers(0, 16, unit.cols, dtype=np.int64)
        unit.write_values(hay, values)
        unit.search(hay, key=7, dst_row=20)
        flags = unit.array.read_row(20)
        assert np.array_equal(flags.astype(np.int64),
                              (values == 7).astype(np.int64))
        assert unit.cycles == COSTS.search(8)

    def test_no_match(self):
        unit = fresh_unit()
        hay = Operand(0, 4)
        unit.write_values(hay, 3)
        unit.search(hay, key=5, dst_row=10)
        assert np.all(unit.array.read_row(10) == 0)

    def test_key_must_fit(self):
        unit = fresh_unit()
        with pytest.raises(ArrayStateError):
            unit.search(Operand(0, 4), key=16, dst_row=10)
        with pytest.raises(ArrayStateError):
            unit.search(Operand(0, 4), key=-1, dst_row=10)

    def test_search_then_selective_copy(self):
        """The Compute Cache pattern: search, then act on the matches."""
        unit = fresh_unit()
        hay = Operand(0, 8)
        repl = Operand(8, 8)
        values = RNG.integers(0, 4, unit.cols, dtype=np.int64)
        unit.write_values(hay, values)
        unit.write_values(repl, 99)
        unit.search(hay, key=2, dst_row=20)
        unit.selective_copy(repl, hay, tag_row=20)
        expected = np.where(values == 2, 99, values)
        assert np.array_equal(unit.read_values(hay), expected)


@given(st.integers(min_value=1, max_value=12), st.data())
@settings(max_examples=40, deadline=None)
def test_logicals_property(nbits, data):
    hi = (1 << nbits) - 1
    cols = 32
    unit = BitSerialUnit(SRAMArray(rows=64, cols=cols))
    av = np.array(data.draw(st.lists(st.integers(0, hi), min_size=cols,
                                     max_size=cols)), dtype=np.int64)
    bv = np.array(data.draw(st.lists(st.integers(0, hi), min_size=cols,
                                     max_size=cols)), dtype=np.int64)
    a, b = Operand(0, nbits), Operand(nbits, nbits)
    dst = Operand(2 * nbits, nbits)
    unit.write_values(a, av)
    unit.write_values(b, bv)
    unit.logical_xor(a, b, dst)
    assert np.array_equal(unit.read_values(dst), av ^ bv)
    unit.logical_and(a, b, dst)
    assert np.array_equal(unit.read_values(dst), av & bv)
    unit.logical_or(a, b, dst)
    assert np.array_equal(unit.read_values(dst), av | bv)
