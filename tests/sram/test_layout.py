"""Tests for the per-array word-line layout allocator (Figure 10)."""

import pytest

from repro.common.errors import LayoutError
from repro.sram import ArrayLayout, conv_layout, max_conv_filter_bytes, reduction_layout
from repro.sram.layout import (
    OUTPUT_BITS,
    PARTIAL_SUM_BITS,
    REDUCTION_SEGMENT_BITS,
    SCRATCHPAD_BITS,
)


class TestAllocator:
    def test_sequential_allocation(self):
        layout = ArrayLayout(rows=64)
        a = layout.allocate("a", 16)
        b = layout.allocate("b", 8)
        assert (a.row, a.nbits) == (0, 16)
        assert (b.row, b.nbits) == (16, 8)
        assert layout.used_rows == 24
        assert layout.free_rows == 40

    def test_lookup_by_name(self):
        layout = ArrayLayout(rows=64)
        layout.allocate("x", 8)
        assert layout.region("x").nbits == 8
        with pytest.raises(LayoutError):
            layout.region("missing")

    def test_duplicate_name_rejected(self):
        layout = ArrayLayout(rows=64)
        layout.allocate("x", 8)
        with pytest.raises(LayoutError):
            layout.allocate("x", 8)

    def test_overflow_rejected(self):
        layout = ArrayLayout(rows=16)
        layout.allocate("a", 10)
        with pytest.raises(LayoutError):
            layout.allocate("b", 7)

    def test_zero_size_rejected(self):
        layout = ArrayLayout(rows=16)
        with pytest.raises(LayoutError):
            layout.allocate("a", 0)

    def test_names_in_order(self):
        layout = ArrayLayout(rows=64)
        layout.allocate("first", 8)
        layout.allocate("second", 8)
        assert layout.names() == ["first", "second"]


class TestConvLayout:
    def test_figure10a_regions_for_3x3(self):
        layout = conv_layout(filter_bytes=9)
        assert layout.region("filter").nbits == 72       # R.S x 8
        assert layout.region("input").nbits == 72
        assert layout.region("scratchpad").nbits == SCRATCHPAD_BITS
        assert layout.region("partial_sum").nbits == PARTIAL_SUM_BITS
        assert layout.region("output").nbits == OUTPUT_BITS

    def test_3x3_fits_a_256_row_array(self):
        layout = conv_layout(filter_bytes=9)
        assert layout.used_rows <= 256

    def test_extra_input_rows_for_reuse(self):
        layout = conv_layout(filter_bytes=3, extra_input_bytes=4)
        assert layout.region("input").nbits == (3 + 4) * 8

    def test_multiple_serial_outputs(self):
        layout = conv_layout(filter_bytes=3, outputs=3)
        assert layout.region("output").nbits == 3 * OUTPUT_BITS

    def test_oversized_filter_rejected(self):
        with pytest.raises(LayoutError):
            conv_layout(filter_bytes=16)

    def test_nonpositive_filter_rejected(self):
        with pytest.raises(LayoutError):
            conv_layout(filter_bytes=0)


class TestReductionLayout:
    def test_figure10b_regions(self):
        layout = reduction_layout()
        assert layout.region("reduce_a").nbits == REDUCTION_SEGMENT_BITS
        assert layout.region("reduce_b").nbits == REDUCTION_SEGMENT_BITS
        assert layout.region("output").nbits == OUTPUT_BITS

    def test_reduction_after_conv_keeps_filters_and_inputs(self):
        layout = reduction_layout(filter_bytes=9)
        # Filters and inputs survive; scratch + partial sums are overwritten
        # by the two reduction segments (Sec. IV-A).
        assert layout.region("filter").nbits == 72
        assert layout.region("input").nbits == 72
        assert layout.used_rows <= 256


class TestFilterCeiling:
    def test_max_filter_bytes_is_eleven(self):
        """With 256 rows, filters + inputs + fixed regions cap R'.S' at 11
        bytes — which is why the paper splits filters above 9 bytes."""
        assert max_conv_filter_bytes(256) == 11

    def test_paper_split_threshold_fits(self):
        assert 9 <= max_conv_filter_bytes(256)

    def test_smaller_arrays_have_smaller_ceilings(self):
        assert max_conv_filter_bytes(128) < max_conv_filter_bytes(256)
