"""Experiment harness: one entry point per table/figure, plus the
published reference numbers they compare against."""

from repro.analysis import paper
from repro.analysis.experiments import (
    all_experiments,
    area_report,
    arithmetic_latencies,
    figure13,
    figure14,
    figure15,
    figure16,
    peak_throughput,
    robustness_report,
    section6a_example,
    sharding,
    serving,
    sparsity,
    table1,
    table2,
    table3,
    table4,
)
from repro.analysis.export import (
    export_all,
    export_figure13,
    export_figure14,
    export_figure16,
    export_table4,
)
from repro.analysis.report import ExperimentResult, pct, ratio_cell

__all__ = [
    "ExperimentResult",
    "all_experiments",
    "area_report",
    "arithmetic_latencies",
    "export_all",
    "export_figure13",
    "export_figure14",
    "export_figure16",
    "export_table4",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "paper",
    "pct",
    "peak_throughput",
    "ratio_cell",
    "robustness_report",
    "section6a_example",
    "sharding",
    "serving",
    "sparsity",
    "table1",
    "table2",
    "table3",
    "table4",
]
