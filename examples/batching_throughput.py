"""Throughput vs batch size: reproduce Figure 16 and explore the knobs.

Sweeps the batch size for Neural Cache and both baselines, then shows the
two effects the paper discusses: filter-load amortisation (throughput
rises with batch) and output spills to DRAM once the reserved way
overflows (Sec. IV-E: "the first five [layers] require dumping").

Run:  python examples/batching_throughput.py
"""

from repro import NeuralCacheConfig, NeuralCacheSimulator, build_inception_v3
from repro.analysis import figure16


def main() -> None:
    print(figure16().render())

    net = build_inception_v3()
    sim = NeuralCacheSimulator(net)
    print("\nWhere does the batching benefit come from?")
    for batch in (1, 16, 256):
        result = sim.run(batch)
        breakdown = result.breakdown()
        filter_share = breakdown.filter_load / result.total_time
        print(f"  batch {batch:3d}: {result.latency_per_image * 1e3:6.2f} "
              f"ms/image, filter loading {filter_share * 100:5.1f}% of "
              f"time, spills {result.spill_time * 1e3:6.2f} ms")

    print("\nSpill sensitivity: output-buffer budget in the reserved way")
    for fraction in (0.25, 0.5, 1.0):
        config = NeuralCacheConfig(output_buffer_fraction=fraction)
        result = NeuralCacheSimulator(net, config).run(64)
        print(f"  {fraction * 100:5.1f}% of way-19 for outputs -> spills "
              f"{result.spill_time * 1e3:7.2f} ms at batch 64 "
              f"({64 * config.sockets / result.total_time:.0f} inf/s)")


if __name__ == "__main__":
    main()
