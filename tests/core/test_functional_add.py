"""Bit-exact tests for the in-cache element-wise Add (residual path)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.core.functional import FunctionalAdd, FunctionalExecutor
from repro.nn import (
    QuantParams,
    QuantizedTensor,
    ReferenceExecutor,
    build_resnet_tiny,
    initialise_weights,
)
from repro.nn.reference import add_quantized

RNG = np.random.default_rng(77)


def tensors(shape, zp):
    params = QuantParams(scale=0.05, zero_point=zp)
    a = QuantizedTensor(RNG.integers(0, 256, shape).astype(np.uint8), params)
    b = QuantizedTensor(RNG.integers(0, 256, shape).astype(np.uint8), params)
    return a, b


class TestFunctionalAdd:
    @pytest.mark.parametrize("zp", [0, 30, 128, 255])
    def test_matches_reference(self, zp):
        shape = (5, 5, 4)
        a, b = tensors(shape, zp)
        engine = FunctionalAdd(shape)
        got = engine.run(a, b)
        expected = add_quantized(a.data, b.data, zp)
        assert np.array_equal(got.data, expected)

    @pytest.mark.parametrize("zp", [0, 64, 200])
    def test_fused_relu(self, zp):
        shape = (4, 4, 3)
        a, b = tensors(shape, zp)
        engine = FunctionalAdd(shape, relu=True)
        got = engine.run(a, b)
        expected = add_quantized(a.data, b.data, zp, relu=True)
        assert np.array_equal(got.data, expected)

    def test_saturation_edges(self):
        shape = (1, 1, 4)
        params = QuantParams(scale=1.0, zero_point=10)
        a = QuantizedTensor(np.array([255, 255, 0, 5],
                                     dtype=np.uint8).reshape(shape), params)
        b = QuantizedTensor(np.array([255, 10, 0, 4],
                                     dtype=np.uint8).reshape(shape), params)
        got = FunctionalAdd(shape).run(a, b)
        # 255+255-10 -> 255 (saturate); 255+10-10 -> 255; 0+0-10 -> 0
        # (underflow); 5+4-10 -> 0 (underflow).
        assert got.data.ravel().tolist() == [255, 255, 0, 0]

    def test_multi_batch(self):
        # More elements than one array's 256 bitlines.
        shape = (10, 10, 7)
        a, b = tensors(shape, 40)
        engine = FunctionalAdd(shape)
        got = engine.run(a, b)
        assert np.array_equal(got.data, add_quantized(a.data, b.data, 40))
        assert engine.report.passes == 3   # 700 outputs / 256 per pass

    def test_mismatched_params_rejected(self):
        shape = (2, 2, 2)
        a, _ = tensors(shape, 10)
        b = QuantizedTensor(a.data.copy(), QuantParams(0.05, 11))
        with pytest.raises(SimulationError):
            FunctionalAdd(shape).run(a, b)

    def test_shape_checked(self):
        a, b = tensors((2, 2, 2), 0)
        with pytest.raises(SimulationError):
            FunctionalAdd((3, 3, 2)).run(a, b)


class TestResNetEndToEnd:
    def test_resnet_tiny_bit_exact(self):
        """The full residual network — including four in-cache Adds with
        fused ReLU — matches the golden executor node for node."""
        net = build_resnet_tiny(input_size=8, base_channels=4)
        weights = initialise_weights(net, seed=13)
        image = QuantizedTensor.from_real(
            RNG.uniform(0, 6, net.input_shape), weights.input_params)
        golden = ReferenceExecutor(net, weights).run(image)
        in_cache = FunctionalExecutor(net, weights).run(image)
        for node in net.layer_nodes():
            assert np.array_equal(in_cache[node.name].data,
                                  golden[node.name].data), node.name


@given(st.integers(min_value=0, max_value=255), st.booleans(), st.data())
@settings(max_examples=30, deadline=None)
def test_functional_add_property(zp, relu, data):
    cols = 16
    shape = (1, 1, cols)
    params = QuantParams(scale=0.1, zero_point=zp)
    av = np.array(data.draw(st.lists(st.integers(0, 255), min_size=cols,
                                     max_size=cols)), dtype=np.uint8)
    bv = np.array(data.draw(st.lists(st.integers(0, 255), min_size=cols,
                                     max_size=cols)), dtype=np.uint8)
    a = QuantizedTensor(av.reshape(shape), params)
    b = QuantizedTensor(bv.reshape(shape), params)
    got = FunctionalAdd(shape, relu=relu).run(a, b)
    expected = add_quantized(a.data, b.data, zp, relu=relu)
    assert np.array_equal(got.data, expected)
