"""Multi-socket sharding of the array fleet behind the Backend protocol.

The paper's throughput story is multi-socket: "Neural Cache throughput
scales linearly with the number of host CPUs" (Sec. VI-B), and Fig. 16 is
measured on a dual-socket node — two independent caches, each running the
full network over its own slice of the batch. The reproduction's
:class:`~repro.config.NeuralCacheConfig` already models ``sockets=2``;
this module makes a functional backend actually shard work that way.

:class:`ShardedBackend` splits a batch across ``shards`` sockets (one
:class:`~repro.engine.backend.FleetExecutor` per shard, each on its own
packed :class:`~repro.engine.packed.PackedArrayFleet` by default),
assigns images **round-robin** — image ``i`` goes to shard ``i % shards``,
the arrival-order policy a serving frontend would use — and aggregates
the per-shard cycle reports.

The design invariant, shared with systolic-array partitioning in
SCALE-Sim and BrainWave's weight-stationary sharding across FPGAs: the
sharded result must be *exactly* the unsharded result.  Three properties
make that hold here, and the property tests in
``tests/engine/test_sharding.py`` pin all of them for shard counts that
do and do not divide the batch:

* every shard sees the same deterministic image stream positions the
  unsharded run would (the stream depends only on ``(network, seed)``,
  never on the shard layout);
* per-image cycle reports depend only on ``(network, weights, image)``,
  and report aggregation is a commutative sum, so any partition of the
  batch merges back to the identical total;
* the result's ``outputs`` are the globally-last image's outputs, which
  round-robin places at the tail of shard ``(batch - 1) % shards``.
"""

from __future__ import annotations

from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.core.functional import CycleReport
from repro.engine.backend import (
    BackendResult,
    FleetExecutor,
    ShardReport,
    check_batch_size,
    deterministic_images,
)
from repro.nn.graph import Network


class ShardedBackend:
    """A batch sharded across sockets, bit-exact with the unsharded run.

    ``shards`` defaults to ``config.sockets`` (the paper's dual-socket
    node). Each shard is a :class:`~repro.engine.backend.FleetExecutor`
    whose layers execute on its own plane-store fleet — packed uint64
    words by default (``packed=False`` selects the unpacked byte-per-bit
    reference, registered as ``sharded-unpacked``).

    ``run`` returns the same :class:`~repro.engine.backend.BackendResult`
    surface as the unsharded fleet backends, plus a ``shard_reports``
    breakdown so ``summary()`` shows per-socket cycle totals — the
    functional side of the analytic model's linear socket scaling.
    """

    def __init__(self, config: NeuralCacheConfig | None = None,
                 shards: int | None = None, packed: bool = True,
                 weights=None, seed: int = 0, verify: bool = True,
                 batched: bool = True):
        self.config = config if config is not None else NeuralCacheConfig()
        if shards is None:
            shards = self.config.sockets
        if shards <= 0:
            raise SimulationError(
                f"shard count must be positive, got {shards}")
        self.shards = shards
        self.packed = packed
        self.weights = weights
        self.seed = seed
        self.verify = verify
        #: Batch-in-fleet execution inside each shard: a shard's whole
        #: round-robin slice runs as one fleet pass per layer (the
        #: per-image loop remains as ``batched=False``).
        self.batched = batched
        self.name = "sharded" if packed else "sharded-unpacked"
        #: One fleet executor per socket; stateless between batches.
        self._executors = tuple(
            FleetExecutor(self.config, weights=weights, seed=seed,
                          verify=verify, packed=packed, batched=batched)
            for _ in range(shards))

    def run(self, network: Network, batch_size: int = 1) -> BackendResult:
        check_batch_size(batch_size, self.name)
        weights = self._executors[0].weights_for(network)
        golden = self._executors[0].golden_for(network, weights)
        images = deterministic_images(network, weights, self.seed,
                                      batch_size)

        total = CycleReport()
        verified = 0
        outputs = None
        shard_reports = []
        for k, shard in enumerate(self._executors):
            assigned = images[k::self.shards]       # round-robin slice
            if not assigned:
                # More shards than images: this socket idles.
                shard_reports.append(ShardReport(shard=k, images=0,
                                                 report=CycleReport()))
                continue
            report, out_k, ver_k = shard.run_images(network, assigned,
                                                    weights, golden)
            total = total.merged(report)
            verified += ver_k
            shard_reports.append(ShardReport(shard=k, images=len(assigned),
                                             report=report))
            if (batch_size - 1) % self.shards == k:
                # The globally-last image is the tail of this shard's
                # slice, so its outputs match the unsharded run's.
                outputs = out_k
        return BackendResult(
            backend=self.name, network=network.name, batch_size=batch_size,
            report=total, outputs=outputs, verified_images=verified,
            verify=self.verify, shard_reports=tuple(shard_reports))

    def default_network(self) -> Network:
        """Same verification-scale default as the unsharded fleet."""
        return self._executors[0].default_network()
