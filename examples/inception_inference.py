"""Reproduce the paper's headline evaluation on Inception v3.

Runs the analytic Neural Cache simulator and the calibrated CPU/GPU
baselines over the full Inception v3 graph and prints the per-layer
latency (Fig. 13), the execution breakdown (Fig. 14), total latency and
speedups (Fig. 15), energy/power (Table III) and capacity scaling
(Table IV).

Run:  python examples/inception_inference.py
"""

from repro.analysis import figure13, figure14, figure15, table3, table4


def main() -> None:
    for experiment in (figure13(), figure14(), figure15(), table3(),
                       table4()):
        print(experiment.render())
        print()

    data = figure15().data
    print(f"Summary: Neural Cache {data['nc_s'] * 1e3:.2f} ms per "
          f"inference — {data['cpu_speedup']:.1f}x faster than the Xeon "
          f"E5 and {data['gpu_speedup']:.1f}x faster than the Titan Xp "
          f"(paper: 18.3x and 7.7x).")


if __name__ == "__main__":
    main()
