"""Table I: regenerate the Inception v3 layer-parameter table.

Benchmarks building the faithful 95-conv graph and computing every group's
statistics from scratch; asserts the 18 exactly-reproducible rows match
the published numbers.
"""

from repro.analysis import paper, table1
from repro.nn import build_inception_v3
from repro.nn.inception import table1 as compute_table1


def regenerate_table1():
    network = build_inception_v3()
    return compute_table1(network)


def test_table1_inception_parameters(benchmark, record):
    rows = benchmark(regenerate_table1)
    assert len(rows) == 20
    for stats in rows:
        if stats.group in paper.TABLE1_KNOWN_DISCREPANCIES:
            continue
        published = paper.TABLE1[stats.group]
        assert stats.convolutions == published[0], stats.group
        assert abs(stats.filter_mb - published[1]) < 0.0015, stats.group
        assert abs(stats.input_mb - published[2]) < 0.0015, stats.group
    record(table1())
