"""Property and consistency tests for the analytic simulator.

These probe the model's internal coherence rather than specific paper
numbers: conservation (parts sum to wholes), monotonicity (more hardware
never hurts; more work never helps), and batching asymptotics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import xeon_e5_2697_v3
from repro.common.errors import SimulationError
from repro.config import NeuralCacheConfig
from repro.core.executor import NeuralCacheSimulator
from repro.core.functional import FunctionalConv
from repro.core.mapping import map_conv
from repro.nn import Conv2D, build_inception_v3, build_vgg_tiny, initialise_weights
from repro.nn.graph import Network


@pytest.fixture(scope="module")
def inception_sim():
    return NeuralCacheSimulator(build_inception_v3())


class TestConservation:
    def test_layer_times_sum_to_total(self, inception_sim):
        result = inception_sim.run()
        assert sum(r.latency for r in result.layers) == pytest.approx(
            result.total_time - result.spill_time)

    def test_layer_energy_sums_to_total(self, inception_sim):
        result = inception_sim.run()
        assert sum(r.schedule.total_energy for r in result.layers) == \
            pytest.approx(result.total_energy - result.spill_energy)

    def test_breakdown_sums_to_layer_time(self, inception_sim):
        result = inception_sim.run()
        for layer in result.layers:
            assert layer.schedule.time.total == pytest.approx(layer.latency)

    def test_fractions_sum_to_one(self, inception_sim):
        fractions = inception_sim.run().breakdown().fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestMonotonicity:
    def test_more_slices_never_slower(self):
        net = build_vgg_tiny()
        base = xeon_e5_2697_v3()
        times = []
        for slices in (7, 14, 28):
            config = NeuralCacheConfig().with_geometry(
                base.scaled_to_slices(slices))
            times.append(NeuralCacheSimulator(net, config).latency())
        assert times[0] >= times[1] >= times[2]

    def test_slower_dram_never_faster(self):
        from repro.cache.dram import DramModel
        net = build_vgg_tiny()
        fast = NeuralCacheConfig(dram=DramModel(effective_bandwidth_gbps=20))
        slow = NeuralCacheConfig(dram=DramModel(effective_bandwidth_gbps=5))
        assert (NeuralCacheSimulator(net, fast).latency()
                < NeuralCacheSimulator(net, slow).latency())

    def test_larger_batch_never_increases_per_image_compute(self,
                                                            inception_sim):
        b1 = inception_sim.run(1)
        b8 = inception_sim.run(8)
        # Per-image time drops (filter amortisation beats spill growth at
        # small batches).
        assert b8.latency_per_image < b1.latency_per_image

    def test_spill_time_asymptote(self, inception_sim):
        """Per-image spill converges: overflow - buffer/N is bounded by
        2x the overflowing output volume."""
        per_image = [inception_sim.run(b).spill_time / b
                     for b in (32, 64, 128, 256)]
        assert per_image == sorted(per_image)          # increasing
        assert per_image[-1] - per_image[-2] < per_image[1] - per_image[0] \
            or per_image[-1] == pytest.approx(per_image[-2], rel=0.1)


@given(st.integers(min_value=1, max_value=9),
       st.integers(min_value=1, max_value=9),
       st.integers(min_value=1, max_value=256),
       st.integers(min_value=1, max_value=32),
       st.sampled_from([1, 2]))
@settings(max_examples=40, deadline=None)
def test_schedule_positive_and_finite(r, s, channels, out_channels, stride):
    """Any mappable conv produces a finite, positive, internally
    consistent schedule."""
    from repro.core.schedule import schedule_layer
    config = NeuralCacheConfig()
    conv = Conv2D(out_channels, (r, s), stride=stride, padding="same")
    mapping = map_conv(config, "prop", conv, (16, 16, channels))
    schedule = schedule_layer(config, mapping)
    assert np.isfinite(schedule.latency)
    assert schedule.latency > 0
    assert schedule.total_energy > 0
    assert schedule.time.mac > 0
    for phase, seconds in schedule.time.as_dict().items():
        assert seconds >= 0, phase


class TestFunctionalGuards:
    def test_cross_array_conv_requires_vectorized_path(self):
        # Spanning layers execute on the fleet path now; the legacy
        # one-array-at-a-time path stays single-array and must say so.
        config = NeuralCacheConfig(pack_limit=1)
        wide = Network(name="wide1x1")
        x = wide.add_input("in", (2, 2, 257))
        conv1 = Conv2D(2, (1, 1))
        wide.add("c", conv1, x)
        w = initialise_weights(wide)
        with pytest.raises(SimulationError, match="single-array"):
            FunctionalConv(conv1, (2, 2, 257), w.for_node("c"),
                           config=config, vectorized=False)

    def test_taps_guard_message(self):
        net = Network(name="deep")
        x = net.add_input("in", (4, 4, 64))
        conv = Conv2D(2, (3, 3))
        net.add("c", conv, x)
        weights = initialise_weights(net)
        with pytest.raises(SimulationError, match="taps per output"):
            FunctionalConv(conv, (4, 4, 64), weights.for_node("c"))
